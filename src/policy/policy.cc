#include "policy/policy.h"

#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "policy/admission.h"
#include "policy/cost_ttl.h"
#include "policy/provision.h"

namespace ecc::policy {

// --- DecisionLog -----------------------------------------------------------

void DecisionLog::PutU64(std::uint64_t v) {
  // Fixed-width little-endian, independent of host endianness.
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void DecisionLog::Evictions(const std::vector<Key>& keys) {
  bytes_.push_back('E');
  PutU64(keys.size());
  for (const Key k : keys) PutU64(k);
  ++decisions_;
}

void DecisionLog::Admit(Key k, bool admitted) {
  bytes_.push_back('A');
  PutU64(k);
  bytes_.push_back(admitted ? '\1' : '\0');
  ++decisions_;
}

void DecisionLog::Contract(bool contract) {
  bytes_.push_back('C');
  bytes_.push_back(contract ? '\1' : '\0');
  ++decisions_;
}

void DecisionLog::Prewarm(std::size_t n) {
  bytes_.push_back('P');
  PutU64(n);
  ++decisions_;
}

std::uint64_t DecisionLog::Digest() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes_) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

void DecisionLog::Clear() {
  bytes_.clear();
  decisions_ = 0;
}

// --- RecordingPolicy -------------------------------------------------------

bool RecordingPolicy::AdmitOnMiss(Key k) {
  const bool admitted = inner_->AdmitOnMiss(k);
  log_.Admit(k, admitted);
  return admitted;
}

std::vector<Key> RecordingPolicy::SelectEvictions(
    const std::vector<Key>& decay_candidates, const PolicyContext& ctx) {
  std::vector<Key> out = inner_->SelectEvictions(decay_candidates, ctx);
  log_.Evictions(out);
  return out;
}

bool RecordingPolicy::ShouldContract(const PolicyContext& ctx) {
  const bool contract = inner_->ShouldContract(ctx);
  log_.Contract(contract);
  return contract;
}

std::size_t RecordingPolicy::PrewarmTarget(const PolicyContext& ctx) {
  const std::size_t n = inner_->PrewarmTarget(ctx);
  log_.Prewarm(n);
  return n;
}

// --- Selection and configuration -------------------------------------------

const char* PolicyKindName(PolicyKind k) {
  switch (k) {
    case PolicyKind::kPaperBaseline: return "paper-baseline";
    case PolicyKind::kCostAwareTtl: return "cost-ttl";
    case PolicyKind::kMthAdmission: return "mth-admission";
    case PolicyKind::kPredictive: return "predictive";
  }
  return "unknown";
}

StatusOr<PolicyKind> ParsePolicyKind(const std::string& name) {
  for (const PolicyKind k :
       {PolicyKind::kPaperBaseline, PolicyKind::kCostAwareTtl,
        PolicyKind::kMthAdmission, PolicyKind::kPredictive}) {
    if (name == PolicyKindName(k)) return k;
  }
  return Status::InvalidArgument("unknown policy kind: " + name);
}

namespace {

const char* Env(const char* name) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? nullptr : v;
}

}  // namespace

PolicyParams PolicyParamsFromEnv(PolicyParams base) {
  if (const char* v = Env("ECC_POLICY")) {
    auto kind = ParsePolicyKind(v);
    if (kind.ok()) {
      base.kind = *kind;
    } else {
      ECC_LOG_WARN("policy: ignoring ECC_POLICY=%s (%s)", v,
                   kind.status().ToString().c_str());
    }
  }
  if (const char* v = Env("ECC_TTL_ALPHA")) {
    char* end = nullptr;
    const double alpha = std::strtod(v, &end);
    if (end != v && *end == '\0' && alpha > 0.0) {
      base.ttl_alpha = alpha;
    } else {
      ECC_LOG_WARN("policy: ignoring ECC_TTL_ALPHA=%s (want a double > 0)", v);
    }
  }
  if (const char* v = Env("ECC_ADMIT_M")) {
    char* end = nullptr;
    const long long m = std::strtoll(v, &end, 10);
    if (end != v && *end == '\0' && m >= 1) {
      base.admit_m = static_cast<std::size_t>(m);
    } else {
      ECC_LOG_WARN("policy: ignoring ECC_ADMIT_M=%s (want an int >= 1)", v);
    }
  }
  return base;
}

std::unique_ptr<ElasticityPolicy> MakePolicy(const PolicyParams& params) {
  switch (params.kind) {
    case PolicyKind::kPaperBaseline:
      return std::make_unique<PaperBaselinePolicy>(params.contraction_epsilon);
    case PolicyKind::kCostAwareTtl:
      return std::make_unique<CostAwareTtlPolicy>(params);
    case PolicyKind::kMthAdmission:
      return std::make_unique<MthRequestAdmissionPolicy>(params);
    case PolicyKind::kPredictive:
      return std::make_unique<PredictiveProvisionPolicy>(params, nullptr);
  }
  return std::make_unique<PaperBaselinePolicy>(params.contraction_epsilon);
}

}  // namespace ecc::policy
