// Pluggable elasticity policy engine (ROADMAP item 1, DESIGN.md §13).
//
// The paper's elasticity is one fixed rule: decay-score eviction at every
// slice boundary plus a contraction merge every epsilon expirations.  A
// production fleet sizes itself against a dollar cost model instead.  This
// module extracts the four elasticity decisions — which keys to evict,
// whether to admit a computed miss result, whether to attempt a contraction
// merge, and how many nodes to pre-provision — behind one interface the
// coordinators consult at well-defined points:
//
//   per query (single-threaded front-end only):
//     OnQuery(k, hit)      observation hook (reuse-distance tracking)
//     AdmitOnMiss(k)       gate the Put of a freshly computed result
//   per slice boundary (both front-ends, quiesced):
//     SelectEvictions()    replace/extend the decay rule's candidate set
//     ShouldContract()     the epsilon-merge cadence (or a cost override)
//     PrewarmTarget()      nodes to launch into the warm pool now
//
// PaperBaselinePolicy reproduces the seed behavior exactly: candidates pass
// through verbatim and contraction fires on the epsilon cadence.  The other
// policies (cost_ttl.h, admission.h, provision.h) implement the cost-aware
// TTL controller, cache-on-Mth-request admission, and predictive
// pre-provisioning ablations.  All policies are deterministic functions of
// their observation stream — the conformance suite (tests/policy_*.cc)
// replays seeded scenarios and asserts per-policy invariants plus
// byte-identical decision logs across runs.
//
// Policies are NOT thread-safe: the parallel front-end consults one only at
// the quiesced EndTimeStep boundary and skips the per-query hooks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace ecc::policy {

using core::Key;

/// Fleet/cost snapshot handed to the boundary-time decisions.  Built by the
/// coordinator after the sliding window advanced, before eviction executes.
/// Cost fields are zero when no cloud provider is attached — policies must
/// degrade gracefully (the TTL controller falls back to a price-free
/// break-even expression, see cost_ttl.h).
struct PolicyContext {
  /// Slice boundaries closed before this one (0 on the first EndTimeStep).
  std::size_t step = 0;
  /// Slices that fell out of the sliding window at this boundary (usually
  /// 0 while the window fills, then 1; more right after a dynamic shrink).
  std::size_t expired_slices = 0;
  std::size_t step_queries = 0;
  std::size_t step_hits = 0;
  // Cache occupancy (from CacheStats at the boundary).
  std::size_t node_count = 0;
  std::size_t total_records = 0;
  std::size_t used_bytes = 0;
  std::size_t capacity_bytes = 0;
  // Cloud provider state (zero when none attached).
  std::size_t live_instances = 0;
  std::size_t warm_pool = 0;
  /// Marginal fleet price observed from the billing report: accrued
  /// dollars over billed node-hours — includes whole-started-hour
  /// rounding waste, so it is the *real* cost of holding a node.
  double usd_per_node_hour = 0.0;
  double accrued_usd = 0.0;
  /// Virtual hours the slice that just closed spanned (EMA-smoothable).
  double slice_hours = 0.0;
};

class ElasticityPolicy {
 public:
  virtual ~ElasticityPolicy() = default;

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Per-query observation (front-tier hits included).  Only the
  /// single-threaded coordinator calls this; the parallel front-end keeps
  /// policies boundary-only.
  virtual void OnQuery(Key k, bool hit, std::size_t step) {
    (void)k;
    (void)hit;
    (void)step;
  }

  /// Should the freshly computed result for missed key `k` be inserted?
  /// Returning false leaves the cache untouched (the caller still gets the
  /// answer).  Called once per computed miss, in request order.
  [[nodiscard]] virtual bool AdmitOnMiss(Key k) {
    (void)k;
    return true;
  }

  /// Keys to evict at this boundary.  `decay_candidates` is the paper
  /// rule's selection (window scores below threshold); a policy may pass
  /// it through, filter it, or extend it (evicting keys the cache no
  /// longer holds is a harmless no-op).
  [[nodiscard]] virtual std::vector<Key> SelectEvictions(
      const std::vector<Key>& decay_candidates, const PolicyContext& ctx) = 0;

  /// Attempt a contraction merge at this boundary?
  [[nodiscard]] virtual bool ShouldContract(const PolicyContext& ctx) = 0;

  /// Instances to launch into the warm pool now (0 = none).  The
  /// implementation must keep live + warm + returned <= its quota.
  [[nodiscard]] virtual std::size_t PrewarmTarget(const PolicyContext& ctx) {
    (void)ctx;
    return 0;
  }
};

/// The paper's epsilon cadence with carry semantics: contraction is due
/// once every `epsilon` slice expirations.  Unlike the pre-refactor
/// counters (which reset to zero on fire), the surplus above epsilon is
/// carried forward — a dynamic-window shrink can expire several slices at
/// one boundary, and dropping the overshoot made the next contraction
/// arrive late by up to epsilon-1 expirations (the ISSUE 7 drift bug).
class EpsilonCadence {
 public:
  /// `epsilon` == 0 disables (never due).
  explicit EpsilonCadence(std::size_t epsilon) : epsilon_(epsilon) {}

  [[nodiscard]] bool Due(std::size_t expired_slices) {
    if (epsilon_ == 0 || expired_slices == 0) return false;
    pending_ += expired_slices;
    if (pending_ < epsilon_) return false;
    pending_ -= epsilon_;
    return true;
  }

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::size_t epsilon() const { return epsilon_; }

 private:
  std::size_t epsilon_;
  std::size_t pending_ = 0;
};

/// The seed rule, verbatim: decay candidates evict unchanged, contraction
/// on the epsilon cadence, admit everything, never pre-provision.
class PaperBaselinePolicy final : public ElasticityPolicy {
 public:
  explicit PaperBaselinePolicy(std::size_t contraction_epsilon)
      : cadence_(contraction_epsilon) {}

  [[nodiscard]] std::string Name() const override { return "paper-baseline"; }

  [[nodiscard]] std::vector<Key> SelectEvictions(
      const std::vector<Key>& decay_candidates,
      const PolicyContext& ctx) override {
    (void)ctx;
    return decay_candidates;
  }

  [[nodiscard]] bool ShouldContract(const PolicyContext& ctx) override {
    return cadence_.Due(ctx.expired_slices);
  }

  [[nodiscard]] const EpsilonCadence& cadence() const { return cadence_; }

 private:
  EpsilonCadence cadence_;
};

// --- Decision recording (determinism + conformance harness) ----------------

/// Canonical byte encoding of a policy's decision stream.  Two runs of the
/// same seeded scenario must produce byte-identical logs — the property
/// test that guards every future policy against hidden nondeterminism
/// (hash-map iteration order, wall-clock reads, uninitialized state).
class DecisionLog {
 public:
  void Evictions(const std::vector<Key>& keys);
  void Admit(Key k, bool admitted);
  void Contract(bool contract);
  void Prewarm(std::size_t n);

  [[nodiscard]] const std::string& bytes() const { return bytes_; }
  [[nodiscard]] std::size_t decisions() const { return decisions_; }
  /// FNV-1a over the byte stream, for cheap cross-run comparison.
  [[nodiscard]] std::uint64_t Digest() const;
  void Clear();

 private:
  void PutU64(std::uint64_t v);

  std::string bytes_;
  std::size_t decisions_ = 0;
};

/// Decorator: forwards every decision to `inner` and records it.  The
/// conformance suite wraps each policy under test with one of these.
class RecordingPolicy final : public ElasticityPolicy {
 public:
  /// `inner` is not owned and must outlive this wrapper.
  explicit RecordingPolicy(ElasticityPolicy* inner) : inner_(inner) {}

  [[nodiscard]] std::string Name() const override { return inner_->Name(); }
  void OnQuery(Key k, bool hit, std::size_t step) override {
    inner_->OnQuery(k, hit, step);
  }
  [[nodiscard]] bool AdmitOnMiss(Key k) override;
  [[nodiscard]] std::vector<Key> SelectEvictions(
      const std::vector<Key>& decay_candidates,
      const PolicyContext& ctx) override;
  [[nodiscard]] bool ShouldContract(const PolicyContext& ctx) override;
  [[nodiscard]] std::size_t PrewarmTarget(const PolicyContext& ctx) override;

  [[nodiscard]] const DecisionLog& log() const { return log_; }
  [[nodiscard]] ElasticityPolicy* inner() { return inner_; }

 private:
  ElasticityPolicy* inner_;
  DecisionLog log_;
};

// --- Selection and configuration -------------------------------------------

enum class PolicyKind {
  kPaperBaseline = 0,
  kCostAwareTtl,
  kMthAdmission,
  kPredictive,
};

[[nodiscard]] const char* PolicyKindName(PolicyKind k);
/// Accepts the PolicyKindName spellings ("paper-baseline", "cost-ttl",
/// "mth-admission", "predictive").
[[nodiscard]] StatusOr<PolicyKind> ParsePolicyKind(const std::string& name);

/// Tuning for every policy in one flat struct (the factory reads only the
/// fields its kind uses).  Env overlay: ECC_POLICY, ECC_TTL_ALPHA,
/// ECC_ADMIT_M (see PolicyParamsFromEnv and README).
struct PolicyParams {
  PolicyKind kind = PolicyKind::kPaperBaseline;

  /// Contraction cadence (the paper's epsilon); used by every policy.
  std::size_t contraction_epsilon = 5;

  // Cost-aware TTL controller (cost_ttl.h).
  /// Headroom multiplier on the observed reuse-gap EMA (ECC_TTL_ALPHA).
  double ttl_alpha = 2.0;
  /// TTL granted to keys seen only once, as a fraction of break-even.
  double ttl_one_shot_fraction = 0.5;
  /// Virtual hours one recompute costs (the paper's 23 s service).
  double recompute_hours = 23.0 / 3600.0;
  std::size_t ttl_min_slices = 2;
  std::size_t ttl_max_slices = 4096;
  /// Bound on the per-key tracking table (oldest-accessed evict past it).
  std::size_t ttl_tracked_cap = std::size_t{1} << 17;

  // Mth-request admission (admission.h).
  /// Admit a key on its Mth requested miss (ECC_ADMIT_M; 1 = admit all).
  std::size_t admit_m = 2;
  /// Ghost-table bound (keys remembered without being cached).
  std::size_t admit_ghost_capacity = std::size_t{1} << 16;

  // Predictive pre-provisioner (provision.h).
  /// Slices of forecast lookahead.
  std::size_t provision_horizon = 25;
  /// Hard cap on live + warm instances the policy may provision toward.
  std::size_t provision_quota = 12;
  /// Forecast-to-current volume ratio that triggers pre-provisioning.
  double provision_grow_ratio = 1.3;
};

/// Overlay environment variables onto `base`: ECC_POLICY (kind name),
/// ECC_TTL_ALPHA (double > 0), ECC_ADMIT_M (size_t >= 1).  Malformed
/// values are ignored with a warning, matching the recovery env overlay.
[[nodiscard]] PolicyParams PolicyParamsFromEnv(PolicyParams base);

/// Build a policy of `params.kind`.  The predictive kind starts without a
/// forecast (inert: never prewarms) — attach one via
/// PredictiveProvisionPolicy::set_forecast.
[[nodiscard]] std::unique_ptr<ElasticityPolicy> MakePolicy(
    const PolicyParams& params);

}  // namespace ecc::policy
