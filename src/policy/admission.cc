#include "policy/admission.h"

#include <algorithm>

namespace ecc::policy {

MthRequestAdmissionPolicy::MthRequestAdmissionPolicy(
    const PolicyParams& params)
    : p_(params), cadence_(params.contraction_epsilon) {
  p_.admit_m = std::max<std::size_t>(p_.admit_m, 1);
  p_.admit_ghost_capacity = std::max<std::size_t>(p_.admit_ghost_capacity, 1);
}

bool MthRequestAdmissionPolicy::AdmitOnMiss(Key k) {
  if (p_.admit_m <= 1) return true;
  auto it = ghost_.find(k);
  if (it == ghost_.end()) {
    // FIFO bound: forget the oldest ghost before remembering a new one.
    // A forgotten key restarts its count — the worst-case bound the ghost
    // capacity trades memory against.
    if (ghost_.size() >= p_.admit_ghost_capacity) {
      ghost_.erase(order_.front());
      order_.pop_front();
    }
    order_.push_back(k);
    ghost_.emplace(k, Ghost{1, std::prev(order_.end())});
    ++denied_;
    return false;
  }
  if (++it->second.count >= p_.admit_m) {
    order_.erase(it->second.order_it);
    ghost_.erase(it);
    return true;
  }
  ++denied_;
  return false;
}

}  // namespace ecc::policy
