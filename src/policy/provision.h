// Predictive pre-provisioner (DESIGN.md §13.4).
//
// The paper's GBA splits allocate reactively: the first overflow during a
// traffic ramp pays the full ~80 s boot wait, which is exactly Fig. 4's
// overhead spike.  Following *Optimized Dynamic Cache Instantiation under
// Time-varying Request Volume* (PAPERS.md), this policy reads a request
// volume forecast (the phased-rate workload's schedule is a perfect one —
// RateAt() is the planned intensity), and when the looked-ahead peak
// exceeds the current volume by grow_ratio it launches instances into the
// cloud provider's warm pool so that the reactive splits during the ramp
// find already-booted capacity (CloudProvider::Allocate prefers warm
// instances at zero wait).
//
// Invariant (conformance suite): the policy never provisions past its
// quota — at every decision, live + warm + PrewarmTarget() <= quota.  With
// no forecast attached the policy is inert (never prewarms) and behaves
// exactly like the baseline.  It also vetoes contraction while the
// forecast still rises — merging nodes moments before a known ramp is
// wasted churn.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/policy.h"

namespace ecc::policy {

/// Minimal forecast surface: expected queries in (1-based) time step
/// `step`.  workload::RateSchedule adapts onto this trivially; keeping the
/// abstraction here avoids a policy -> workload dependency cycle.
class VolumeForecast {
 public:
  virtual ~VolumeForecast() = default;
  [[nodiscard]] virtual std::size_t VolumeAt(std::size_t step) const = 0;
};

class PredictiveProvisionPolicy final : public ElasticityPolicy {
 public:
  /// `forecast` is not owned and may be null (inert until set_forecast).
  PredictiveProvisionPolicy(const PolicyParams& params,
                            const VolumeForecast* forecast);

  void set_forecast(const VolumeForecast* forecast) { forecast_ = forecast; }

  [[nodiscard]] std::string Name() const override { return "predictive"; }

  [[nodiscard]] std::vector<Key> SelectEvictions(
      const std::vector<Key>& decay_candidates,
      const PolicyContext& ctx) override {
    (void)ctx;
    return decay_candidates;
  }

  [[nodiscard]] bool ShouldContract(const PolicyContext& ctx) override;
  [[nodiscard]] std::size_t PrewarmTarget(const PolicyContext& ctx) override;

  /// Contractions vetoed because the forecast still rises.
  [[nodiscard]] std::uint64_t contraction_vetoes() const { return vetoes_; }

 private:
  /// Peak forecast volume over the lookahead horizon starting after the
  /// boundary that closed step `ctx.step` (steps are 1-based in
  /// RateSchedule terms: boundary s closes step s+1).
  [[nodiscard]] std::size_t PeakAhead(const PolicyContext& ctx) const;

  PolicyParams p_;
  EpsilonCadence cadence_;
  const VolumeForecast* forecast_;
  std::uint64_t vetoes_ = 0;
};

}  // namespace ecc::policy
