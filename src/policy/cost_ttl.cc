#include "policy/cost_ttl.h"

#include <algorithm>
#include <vector>

namespace ecc::policy {

namespace {
/// Smoothing for the slice-duration EMA (slices are near-constant length in
/// the simulator; the EMA just absorbs the warm-up transient).
constexpr double kSliceHoursBlend = 0.2;
/// Smoothing for per-key reuse gaps.
constexpr float kGapBlend = 0.5f;
}  // namespace

CostAwareTtlPolicy::CostAwareTtlPolicy(const PolicyParams& params)
    : p_(params), cadence_(params.contraction_epsilon) {}

void CostAwareTtlPolicy::OnQuery(Key k, bool hit, std::size_t step) {
  (void)hit;  // misses that get admitted matter just as much for reuse
  auto [it, fresh] = keys_.try_emplace(k);
  Tracked& t = it->second;
  const auto now = static_cast<std::uint32_t>(step);
  if (fresh) {
    t.last_step = now;
    return;
  }
  if (now > t.last_step) {
    const auto gap = static_cast<float>(now - t.last_step);
    t.gap_ema = t.gap_ema < 0 ? gap : t.gap_ema + kGapBlend * (gap - t.gap_ema);
    t.last_step = now;
  }
  // Repeats inside one slice carry no reuse-distance signal at slice
  // granularity; the sliding window already counts them.
}

void CostAwareTtlPolicy::RefreshCostModel(const PolicyContext& ctx) {
  if (ctx.slice_hours > 0.0) {
    slice_hours_ema_ =
        slice_hours_ema_ < 0
            ? ctx.slice_hours
            : slice_hours_ema_ +
                  kSliceHoursBlend * (ctx.slice_hours - slice_hours_ema_);
  }
  if (slice_hours_ema_ <= 0.0) return;
  // Records one node holds at its byte capacity, from live occupancy.
  const std::size_t nodes = std::max<std::size_t>(ctx.node_count, 1);
  double records_per_node = 0.0;
  if (ctx.total_records > 0 && ctx.used_bytes > 0 && ctx.capacity_bytes > 0) {
    const double rec_bytes = static_cast<double>(ctx.used_bytes) /
                             static_cast<double>(ctx.total_records);
    records_per_node = static_cast<double>(ctx.capacity_bytes) /
                       static_cast<double>(nodes) / rec_bytes;
  }
  if (records_per_node <= 0.0) return;  // empty cache: keep prior estimate
  // The fleet price cancels out of break_even (header comment); when a
  // provider is attached the observed usd_per_node_hour is still what a
  // separately-priced recompute bill would scale against.
  break_even_ = p_.recompute_hours * records_per_node / slice_hours_ema_;
  break_even_ = std::clamp(break_even_,
                           static_cast<double>(p_.ttl_min_slices),
                           static_cast<double>(p_.ttl_max_slices));
}

double CostAwareTtlPolicy::TtlFor(const Tracked& t) const {
  const double lo = static_cast<double>(p_.ttl_min_slices);
  const double hi = break_even_ > 0 ? break_even_
                                    : static_cast<double>(p_.ttl_max_slices);
  if (t.gap_ema > 0) {
    return std::clamp(p_.ttl_alpha * static_cast<double>(t.gap_ema), lo, hi);
  }
  return std::clamp(p_.ttl_one_shot_fraction * hi, lo, hi);
}

double CostAwareTtlPolicy::TtlSlicesFor(Key k) const {
  const auto it = keys_.find(k);
  return it == keys_.end() ? -1.0 : TtlFor(it->second);
}

void CostAwareTtlPolicy::ForEachTracked(
    const std::function<void(Key, std::size_t, double)>& fn) const {
  for (const auto& [k, t] : keys_) fn(k, t.last_step, TtlFor(t));
}

std::vector<Key> CostAwareTtlPolicy::SelectEvictions(
    const std::vector<Key>& decay_candidates, const PolicyContext& ctx) {
  RefreshCostModel(ctx);
  std::vector<Key> out;
  // TTL sweep: age is boundaries since the slice the key was last seen in
  // closed; a key accessed during step s has age 0 at the boundary closing
  // step s.  The serve-past-TTL bound the conformance suite asserts is
  // ttl + 1: a key surviving at age == ttl can be served once more during
  // the following slice before the next sweep removes it.
  for (auto it = keys_.begin(); it != keys_.end();) {
    const double age =
        static_cast<double>(ctx.step) - static_cast<double>(it->second.last_step);
    if (age > TtlFor(it->second)) {
      out.push_back(it->first);
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
  // Pass through candidates we do not track (pre-attach inserts, keys the
  // sweep already dropped): the decay rule says they are cold, and this
  // policy has no reuse evidence to overrule it.
  for (const Key k : decay_candidates) {
    if (keys_.find(k) == keys_.end()) out.push_back(k);
  }
  // Tracking-table bound: shed the oldest-accessed entries past the cap.
  // Shedding also evicts — a key we stop tracking must not linger in the
  // cache with nobody enforcing its TTL.
  while (keys_.size() > p_.ttl_tracked_cap) {
    auto oldest = keys_.begin();
    for (auto it = std::next(keys_.begin()); it != keys_.end(); ++it) {
      if (it->second.last_step < oldest->second.last_step ||
          (it->second.last_step == oldest->second.last_step &&
           it->first < oldest->first)) {
        oldest = it;
      }
    }
    out.push_back(oldest->first);
    keys_.erase(oldest);
  }
  // Canonical order: the decision stream must not depend on hash-map
  // iteration order (the determinism property test).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ecc::policy
