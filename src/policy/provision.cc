#include "policy/provision.h"

#include <algorithm>
#include <cmath>

namespace ecc::policy {

PredictiveProvisionPolicy::PredictiveProvisionPolicy(
    const PolicyParams& params, const VolumeForecast* forecast)
    : p_(params), cadence_(params.contraction_epsilon), forecast_(forecast) {}

std::size_t PredictiveProvisionPolicy::PeakAhead(
    const PolicyContext& ctx) const {
  // The boundary closing (0-based) step `ctx.step` sits between 1-based
  // schedule steps ctx.step+1 and ctx.step+2; look at the next `horizon`
  // future steps.
  std::size_t peak = 0;
  for (std::size_t h = 1; h <= p_.provision_horizon; ++h) {
    peak = std::max(peak, forecast_->VolumeAt(ctx.step + 1 + h));
  }
  return peak;
}

bool PredictiveProvisionPolicy::ShouldContract(const PolicyContext& ctx) {
  const bool due = cadence_.Due(ctx.expired_slices);
  if (!due || forecast_ == nullptr) return due;
  const std::size_t cur = std::max<std::size_t>(ctx.step_queries, 1);
  if (static_cast<double>(PeakAhead(ctx)) >
      p_.provision_grow_ratio * static_cast<double>(cur)) {
    ++vetoes_;  // merging right before a known ramp is wasted churn
    return false;
  }
  return true;
}

std::size_t PredictiveProvisionPolicy::PrewarmTarget(
    const PolicyContext& ctx) {
  if (forecast_ == nullptr || ctx.node_count == 0) return 0;
  const std::size_t cur = std::max<std::size_t>(ctx.step_queries, 1);
  const std::size_t peak = PeakAhead(ctx);
  if (static_cast<double>(peak) <=
      p_.provision_grow_ratio * static_cast<double>(cur)) {
    return 0;
  }
  // Scale the fleet linearly with the volume ratio: distinct-key arrivals
  // (and hence occupied capacity) grow roughly with the request rate under
  // the paper's near-uniform draws.
  const double scale = static_cast<double>(peak) / static_cast<double>(cur);
  const auto target_nodes = static_cast<std::size_t>(
      std::ceil(static_cast<double>(ctx.node_count) * scale));
  const std::size_t have = ctx.live_instances + ctx.warm_pool;
  std::size_t want = target_nodes > have ? target_nodes - have : 0;
  // Quota invariant: never provision past it, whatever the forecast says.
  const std::size_t room = p_.provision_quota > have
                               ? p_.provision_quota - have
                               : 0;
  return std::min(want, room);
}

}  // namespace ecc::policy
