// Cost-aware per-key TTL controller (DESIGN.md §13.2).
//
// Following the cost-aware TTL approach (*Elastic Provisioning of Cloud
// Caches: a Cost-aware TTL Approach*, PAPERS.md), a cached record is worth
// keeping only while the expected memory-hour spend of holding it stays
// below the recompute cost it saves.  The break-even lifetime, in slices:
//
//   usd_per_record_slice = usd_per_node_hour * slice_hours / records_per_node
//   break_even = recompute_usd / usd_per_record_slice
//              = recompute_hours * records_per_node / slice_hours
//
// (the fleet price cancels when the service and the cache run on the same
// instance type, which is why the controller still works with no provider
// attached).  Per key, the controller tracks the last-access step and an
// EMA of the observed reuse gap, then grants
//
//   ttl(k) = clamp(ttl_alpha * reuse_gap_ema(k), min, break_even)   reused
//   ttl(k) = clamp(one_shot_fraction * break_even, min, break_even) seen once
//
// At each boundary every tracked key whose age exceeds its TTL is evicted —
// typically far sooner than the paper's fixed window would get to it, which
// is where the $cost win over PaperBaselinePolicy comes from
// (bench/ablation_policy.cc).  Decay candidates the controller does not
// track (inserted before attach, or already expired here) pass through.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "policy/policy.h"

namespace ecc::policy {

class CostAwareTtlPolicy final : public ElasticityPolicy {
 public:
  explicit CostAwareTtlPolicy(const PolicyParams& params);

  [[nodiscard]] std::string Name() const override { return "cost-ttl"; }

  void OnQuery(Key k, bool hit, std::size_t step) override;

  [[nodiscard]] std::vector<Key> SelectEvictions(
      const std::vector<Key>& decay_candidates,
      const PolicyContext& ctx) override;

  [[nodiscard]] bool ShouldContract(const PolicyContext& ctx) override {
    return cadence_.Due(ctx.expired_slices);
  }

  // --- Introspection (tests + conformance harness) -------------------------

  /// Break-even lifetime in slices from the latest context (0 until the
  /// first boundary).
  [[nodiscard]] double BreakEvenSlices() const { return break_even_; }
  /// TTL currently granted to `k`; negative when untracked.
  [[nodiscard]] double TtlSlicesFor(Key k) const;
  /// Visit every tracked key as (key, last_access_step, ttl_slices).
  void ForEachTracked(
      const std::function<void(Key, std::size_t, double)>& fn) const;
  [[nodiscard]] std::size_t tracked() const { return keys_.size(); }

 private:
  struct Tracked {
    std::uint32_t last_step = 0;
    /// EMA of the gap between accesses, in slices; < 0 until 2nd access.
    float gap_ema = -1.0f;
  };

  [[nodiscard]] double TtlFor(const Tracked& t) const;
  void RefreshCostModel(const PolicyContext& ctx);

  PolicyParams p_;
  EpsilonCadence cadence_;
  std::unordered_map<Key, Tracked> keys_;
  double break_even_ = 0.0;
  double slice_hours_ema_ = -1.0;
};

}  // namespace ecc::policy
