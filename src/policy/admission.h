// Cache-on-Mth-request admission (DESIGN.md §13.3).
//
// Under a near-uniform key draw most keys are one-hit wonders: caching
// their 1000-byte result spends memory (and eventually a node-hour) on a
// record that will never be read.  Following the Mth-request insertion
// policies (*Worst-case Bounds ... Mth Request Insertion Policies*,
// PAPERS.md), a missed key is only admitted on its Mth requested miss; the
// first M-1 are remembered in a bounded FIFO ghost table that holds keys
// and counts, never payloads.  M = 1 degenerates to admit-everything.
//
// Invariant (conformance suite): the Mth AdmitOnMiss call for a key whose
// ghost entry survived returns true — admission delays a key, it never
// starves one.  Eviction and contraction follow the paper baseline.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "policy/policy.h"

namespace ecc::policy {

class MthRequestAdmissionPolicy final : public ElasticityPolicy {
 public:
  explicit MthRequestAdmissionPolicy(const PolicyParams& params);

  [[nodiscard]] std::string Name() const override { return "mth-admission"; }

  [[nodiscard]] bool AdmitOnMiss(Key k) override;

  [[nodiscard]] std::vector<Key> SelectEvictions(
      const std::vector<Key>& decay_candidates,
      const PolicyContext& ctx) override {
    (void)ctx;
    return decay_candidates;
  }

  [[nodiscard]] bool ShouldContract(const PolicyContext& ctx) override {
    return cadence_.Due(ctx.expired_slices);
  }

  [[nodiscard]] std::size_t ghost_size() const { return ghost_.size(); }
  /// Misses refused so far (first M-1 requests of each key).
  [[nodiscard]] std::uint64_t denied() const { return denied_; }

 private:
  struct Ghost {
    std::size_t count = 0;
    std::list<Key>::iterator order_it;
  };

  PolicyParams p_;
  EpsilonCadence cadence_;
  std::unordered_map<Key, Ghost> ghost_;
  std::list<Key> order_;  ///< FIFO, front = oldest (evicted first)
  std::uint64_t denied_ = 0;
};

}  // namespace ecc::policy
