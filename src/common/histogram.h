// Log-bucketed histogram for latency/size distributions.
//
// Used by the benches to summarize node-split overheads and migration costs
// (Fig. 4) without retaining every sample.  Buckets grow geometrically so the
// structure covers microseconds to hours in ~100 buckets with bounded
// relative error on reported percentiles.
//
// Robustness guarantees: non-finite samples (NaN, ±inf) are rejected and
// counted in rejected() rather than corrupting the moments; finite samples
// beyond the geometric range collapse into a capped final bucket (at most
// kMaxBuckets buckets ever exist, so a single 1e308 sample cannot force a
// multi-terabyte resize or overflow the index cast); and Reset() restores
// the min/max sentinels so a reused histogram never clamps percentiles into
// a stale [0, 0] range.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ecc {

class Histogram {
 public:
  /// Hard cap on bucket count: index ~4096 at the default growth covers
  /// ~10^247 / min_value, far past any meaningful sample.
  static constexpr std::size_t kMaxBuckets = 4096;

  /// `growth` is the geometric bucket ratio (> 1).  Default gives ~7%
  /// relative resolution.
  explicit Histogram(double min_value = 1.0, double growth = 1.15);

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Samples dropped for being non-finite.
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Percentile in [0, 100].  Returns the representative value (geometric
  /// midpoint) of the bucket containing the requested rank.
  [[nodiscard]] double Percentile(double pct) const;

  /// Short single-line summary, e.g. "n=42 mean=1.2 p50=0.9 p99=4.1 max=5".
  [[nodiscard]] std::string Summary() const;

 private:
  [[nodiscard]] std::size_t BucketFor(double value) const;
  [[nodiscard]] double BucketMid(std::size_t idx) const;

  double min_value_;
  double log_growth_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t rejected_ = 0;
  double sum_ = 0.0;
  // Sentinels: any finite sample replaces them via min/max; accessors guard
  // on count_ == 0 so the sentinels never leak out.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ecc
