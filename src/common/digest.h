// Commutative set digest shared across layers.
//
// DigestTerm(key, value) is the per-record term of a commutative fold (u64
// addition): equal key/value *sets* — in any order, on any node, split any
// way across shards — fold to equal sums, and a single flipped byte moves
// the sum with overwhelming probability.  The anti-entropy scrub
// (src/recovery/), the chaos convergence check, a node's DIGEST RPC
// (src/core/cache_node.h), and the warm-rejoin delta sync all compare this
// same quantity, so it lives below all of them.
#pragma once

#include <cstdint>
#include <string_view>

namespace ecc::common {

/// Splitmix64-style finalizer of the key mixed with an FNV-1a hash of the
/// value.  Must stay bit-stable: persisted digests and cross-process RPC
/// replies both embed it.
[[nodiscard]] constexpr std::uint64_t DigestTerm(std::uint64_t key,
                                                 std::string_view value) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : value) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull + h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace ecc::common
