// Lightweight error-handling vocabulary (Status / StatusOr).
//
// The cache's public API reports recoverable conditions (key absent, node
// overflow, malformed wire messages) as values rather than exceptions, in
// line with the hot-path discipline of the surrounding code: the query loop
// calls Lookup millions of times per experiment.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ecc {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kCapacityExceeded,
  kInvalidArgument,
  kFailedPrecondition,
  kUnavailable,
  kDeadlineExceeded,
  kInternal,
};

[[nodiscard]] constexpr const char* StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kCapacityExceeded: return "CAPACITY_EXCEEDED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return {}; }
  [[nodiscard]] static Status NotFound(std::string m = {}) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status AlreadyExists(std::string m = {}) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  [[nodiscard]] static Status CapacityExceeded(std::string m = {}) {
    return {StatusCode::kCapacityExceeded, std::move(m)};
  }
  [[nodiscard]] static Status InvalidArgument(std::string m = {}) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status FailedPrecondition(std::string m = {}) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  [[nodiscard]] static Status Unavailable(std::string m = {}) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string m = {}) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  [[nodiscard]] static Status Internal(std::string m = {}) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or an error Status.  `value()` asserts on error in debug
/// builds; callers on hot paths check `ok()` first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : rep_(std::move(s)) {  // NOLINT(google-explicit-*)
    assert(!std::get<Status>(rep_).ok() && "OK status carries no value");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-*)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace ecc
