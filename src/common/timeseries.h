// Named time-series recorder.
//
// The experiment driver records one sample per observation interval for each
// metric the paper plots (speedup, node count, hits, evictions, ...).  A
// SeriesSet groups aligned series and renders them as a CSV block or an
// aligned text table — the form the bench binaries print so EXPERIMENTS.md
// can quote them directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ecc {

class Series {
 public:
  void Add(double x, double y) {
    xs_.push_back(x);
    ys_.push_back(y);
  }

  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const { return ys_; }

  [[nodiscard]] double MaxY() const;
  [[nodiscard]] double MinY() const;
  [[nodiscard]] double MeanY() const;
  [[nodiscard]] double LastY() const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// A set of series sharing the same x axis (e.g. "queries elapsed" or
/// "time step").  Insertion order of series names is preserved for output.
class SeriesSet {
 public:
  explicit SeriesSet(std::string x_label) : x_label_(std::move(x_label)) {}

  Series& Get(const std::string& name);
  [[nodiscard]] const Series* Find(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& names() const {
    return order_;
  }
  [[nodiscard]] const std::string& x_label() const { return x_label_; }

  /// Render as CSV: header "x_label,name1,name2,..." then one row per x of
  /// the longest series; missing samples are blank.
  [[nodiscard]] std::string ToCsv() const;

  /// Render as an aligned text table with the same layout as ToCsv.
  [[nodiscard]] std::string ToTable() const;

  [[nodiscard]] Status WriteCsvFile(const std::string& path) const;

 private:
  std::string x_label_;
  std::vector<std::string> order_;
  std::map<std::string, Series> series_;
};

}  // namespace ecc
