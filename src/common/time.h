// Virtual time primitives for the cloud simulation.
//
// All simulated costs in this project (service execution, node provisioning,
// per-record network transfer, cache-hit latency) are charged against a
// VirtualClock rather than the wall clock.  This keeps experiment runs
// deterministic given a seed and lets a bench simulate days of EC2 time in
// seconds of real time, while preserving the *ratios* between costs that the
// paper's observable results depend on.
//
// Representation: signed 64-bit microsecond counts.  A Duration is a span,
// a TimePoint is an offset from the simulation epoch (t = 0).
#pragma once

#include <atomic>
#include <cstdint>
#include <compare>
#include <string>

namespace ecc {

/// A span of virtual time, microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration Micros(std::int64_t us) {
    return Duration(us);
  }
  [[nodiscard]] static constexpr Duration Millis(std::int64_t ms) {
    return Duration(ms * 1000);
  }
  [[nodiscard]] static constexpr Duration Seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }
  [[nodiscard]] static constexpr Duration Minutes(double m) {
    return Seconds(m * 60.0);
  }
  [[nodiscard]] static constexpr Duration Hours(double h) {
    return Seconds(h * 3600.0);
  }
  [[nodiscard]] static constexpr Duration Zero() { return Duration(0); }
  [[nodiscard]] static constexpr Duration Max() {
    return Duration(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(us_) / 1e3;
  }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }

  constexpr Duration operator+(Duration o) const {
    return Duration(us_ + o.us_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(us_ - o.us_);
  }
  constexpr Duration operator*(double f) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(us_) * f));
  }
  constexpr Duration operator/(std::int64_t d) const {
    return Duration(us_ / d);
  }
  [[nodiscard]] constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  constexpr Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering, e.g. "23.000s", "1.500ms", "2.1h".
  [[nodiscard]] std::string ToString() const;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An instant of virtual time, measured from the simulation epoch.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint FromMicros(std::int64_t us) {
    return TimePoint(us);
  }
  [[nodiscard]] static constexpr TimePoint Epoch() { return TimePoint(0); }

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(us_ + d.micros());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(us_ - d.micros());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Micros(us_ - o.us_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    us_ += d.micros();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  [[nodiscard]] std::string ToString() const;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

class VirtualClock;

/// A point on a specific virtual clock past which work should not start.
///
/// Overload protection threads one of these through a query: the
/// coordinator stamps `at` on the clock that carries the query's latency,
/// and every layer below (service invocation, RPC retry loop) consults
/// Expired()/Remaining() before committing to more work.  A deadline is
/// always evaluated against the clock it was defined on, so it stays
/// meaningful even when the consulting layer charges a *different* clock
/// (the parallel front-end's per-worker clocks vs. the backend's shared
/// clock).  A default-constructed Deadline is inactive: never expired,
/// infinite budget.
struct Deadline {
  const VirtualClock* clock = nullptr;  ///< clock the deadline is measured on
  TimePoint at;

  [[nodiscard]] bool active() const { return clock != nullptr; }
  [[nodiscard]] inline bool Expired() const;
  /// Budget left before expiry; Duration::Max() when inactive.
  [[nodiscard]] inline Duration Remaining() const;
};

/// Monotonic virtual clock.  The experiment driver advances it explicitly;
/// substrates (cloud allocator, network model, services) charge durations to
/// it.  Never moves backwards.
///
/// Thread-safe: now/Advance/AdvanceTo are lock-free atomics, so a clock
/// shared by a backend can absorb charges from concurrent workers without
/// tearing.  Note that under concurrency the *meaning* of a shared clock
/// changes — interleaved charges sum rather than overlap — so per-query
/// latency accounting in the parallel front-end uses one private clock per
/// worker instead (see DESIGN.md, "Concurrency model").
class VirtualClock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  [[nodiscard]] TimePoint now() const {
    return TimePoint::FromMicros(now_us_.load(std::memory_order_relaxed));
  }

  /// Advance by a span.  Negative spans are clamped to zero.
  void Advance(Duration d) {
    if (d > Duration::Zero()) {
      now_us_.fetch_add(d.micros(), std::memory_order_relaxed);
    }
  }

  /// Jump forward to `t` if it is in the future; no-op otherwise.
  void AdvanceTo(TimePoint t) {
    std::int64_t cur = now_us_.load(std::memory_order_relaxed);
    while (cur < t.micros() &&
           !now_us_.compare_exchange_weak(cur, t.micros(),
                                          std::memory_order_relaxed)) {
    }
  }

  void Reset() { now_us_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> now_us_{0};
};

inline bool Deadline::Expired() const {
  return active() && clock->now() >= at;
}

inline Duration Deadline::Remaining() const {
  if (!active()) return Duration::Max();
  const TimePoint now = clock->now();
  return now >= at ? Duration::Zero() : at - now;
}

}  // namespace ecc
