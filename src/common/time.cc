#include "common/time.h"

#include <cmath>
#include <cstdio>

namespace ecc {

namespace {
std::string FormatSpan(double us) {
  char buf[64];
  const double abs = std::fabs(us);
  if (abs >= 3600e6) {
    std::snprintf(buf, sizeof(buf), "%.2fh", us / 3600e6);
  } else if (abs >= 60e6) {
    std::snprintf(buf, sizeof(buf), "%.2fmin", us / 60e6);
  } else if (abs >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fs", us / 1e6);
  } else if (abs >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}
}  // namespace

std::string Duration::ToString() const {
  return FormatSpan(static_cast<double>(us_));
}

std::string TimePoint::ToString() const {
  return "t+" + FormatSpan(static_cast<double>(us_));
}

}  // namespace ecc
