#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace ecc {

double Rng::Exponential(double mean) {
  // Guard against log(0): UniformDouble() is in [0,1), so 1-u is in (0,1].
  const double u = UniformDouble();
  return -mean * std::log(1.0 - u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  const double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  const double norm = 1.0 / acc;
  for (auto& c : cdf_) c *= norm;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace ecc
