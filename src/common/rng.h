// Deterministic pseudo-random number generation for experiments.
//
// Every stochastic element in the reproduction (query key draws, provisioning
// delay jitter, synthetic terrain) pulls from an explicitly seeded Rng so
// that benches and tests are bit-reproducible.  We implement xoshiro256**
// seeded via splitmix64 (the reference seeding procedure) rather than relying
// on std::mt19937, whose distributions are not portable across standard
// library implementations.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace ecc {

/// splitmix64: used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = SplitMix64(x);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).  `bound` must be nonzero.  Uses Lemire's
  /// multiply-shift rejection method for an unbiased draw.
  std::uint64_t Uniform(std::uint64_t bound) {
    assert(bound != 0);
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(Uniform(span));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Exponential with the given mean (inverse-CDF method).
  double Exponential(double mean);

  /// Standard normal via Box–Muller (no cached second value, to keep the
  /// draw sequence position-independent).
  double Normal(double mean, double stddev);

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

/// Zipf(s) sampler over ranks {0, ..., n-1} using a precomputed CDF and
/// binary search.  s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double s() const { return s_; }

  std::uint64_t Sample(Rng& rng) const;

 private:
  std::uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace ecc
