#include "common/threadpool.h"

#include <cassert>
#include <utility>

namespace ecc {

ThreadPool::ThreadPool(std::size_t threads) {
  assert(threads >= 1);
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    assert(!stopping_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ecc
