#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ecc {

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), log_growth_(std::log(growth)) {
  assert(min_value > 0.0 && growth > 1.0);
}

std::size_t Histogram::BucketFor(double value) const {
  // `!(value > min_value_)` also routes NaN to bucket 0 — Add() rejects
  // non-finite input, but BucketFor itself must never compute a NaN index.
  if (!(value > min_value_)) return 0;
  const double idx = std::log(value / min_value_) / log_growth_;
  // Cap before the size_t cast: a huge (or infinite) idx would otherwise
  // truncate implementation-defined and resize the bucket vector without
  // bound.
  if (!(idx < static_cast<double>(kMaxBuckets - 1))) return kMaxBuckets - 1;
  return static_cast<std::size_t>(idx) + 1;
}

double Histogram::BucketMid(std::size_t idx) const {
  if (idx == 0) return min_value_ * 0.5;
  // Bucket idx covers [min * g^(idx-1), min * g^idx); report the geometric
  // midpoint.
  const double lo = min_value_ * std::exp(log_growth_ * (double)(idx - 1));
  const double hi = min_value_ * std::exp(log_growth_ * (double)idx);
  return std::sqrt(lo * hi);
}

void Histogram::Add(double value) {
  if (!std::isfinite(value)) {
    ++rejected_;
    return;
  }
  const std::size_t idx = BucketFor(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  assert(min_value_ == other.min_value_ && log_growth_ == other.log_growth_);
  rejected_ += other.rejected_;
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  rejected_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Histogram::Percentile(double pct) const {
  if (count_ == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      pct / 100.0 * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Clamp the representative value into the observed range so p0/p100
      // match min/max exactly at the extremes.
      return std::clamp(BucketMid(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g",
                static_cast<unsigned long long>(count_), mean(),
                Percentile(50), Percentile(90), Percentile(99), max());
  return buf;
}

}  // namespace ecc
