#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace ecc {

std::string FormatG(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

void Table::AddRow(std::initializer_list<double> row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(FormatG(v));
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < std::min(row.size(), widths.size()); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c > 0) out += "  ";
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out.append(widths[c] - std::min(widths[c], cell.size()), ' ');
      out += cell;
    }
    out += '\n';
  };
  emit_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace ecc
