#include "common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ecc {

namespace {
std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}
}  // namespace

Status Config::ParseString(std::string_view body) {
  std::size_t line_no = 0;
  while (!body.empty()) {
    const std::size_t eol = body.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? body : body.substr(0, eol);
    body = eol == std::string_view::npos ? std::string_view{}
                                         : body.substr(eol + 1);
    ++line_no;
    line = Trim(line);
    if (line.empty() || line.front() == '#') continue;
    if (Status s = ParseToken(line); !s.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     s.message());
    }
  }
  return Status::Ok();
}

Status Config::ParseToken(std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("expected key=value, got '" +
                                   std::string(token) + "'");
  }
  const std::string_view key = Trim(token.substr(0, eq));
  const std::string_view value = Trim(token.substr(eq + 1));
  if (key.empty()) return Status::InvalidArgument("empty key");
  entries_[std::string(key)] = std::string(value);
  return Status::Ok();
}

Status Config::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return ParseString(body.str());
}

void Config::Set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::Has(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::string Config::GetString(const std::string& key,
                              std::string fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

std::int64_t Config::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace ecc
