// Minimal leveled logger.
//
// Experiments print their results through the table/timeseries writers; the
// logger is for diagnostics (node allocation events, migrations, merges).
// Benches set the level to kWarn so figure output stays clean.
#pragma once

#include <cstdarg>
#include <string>

namespace ecc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Log {
 public:
  static void SetLevel(LogLevel level);
  [[nodiscard]] static LogLevel level();

  static void Printf(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));

 private:
  static LogLevel level_;
};

#define ECC_LOG_DEBUG(...) ::ecc::Log::Printf(::ecc::LogLevel::kDebug, __VA_ARGS__)
#define ECC_LOG_INFO(...) ::ecc::Log::Printf(::ecc::LogLevel::kInfo, __VA_ARGS__)
#define ECC_LOG_WARN(...) ::ecc::Log::Printf(::ecc::LogLevel::kWarn, __VA_ARGS__)
#define ECC_LOG_ERROR(...) ::ecc::Log::Printf(::ecc::LogLevel::kError, __VA_ARGS__)

}  // namespace ecc
