// Fixed-size worker pool for the concurrent query front-end.
//
// The pool is deliberately minimal: a bounded set of long-lived threads
// draining one FIFO of closures.  The parallel coordinator submits one
// long-running drain task per logical worker and blocks on WaitIdle(), so
// the queue never grows past the worker count in practice; Submit never
// blocks and tasks are never dropped (the destructor drains the queue
// before joining).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecc {

class ThreadPool {
 public:
  /// Spawns `threads` (>= 1) workers immediately.
  explicit ThreadPool(std::size_t threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Enqueue one task; never blocks.  Must not be called after the
  /// destructor has begun.
  void Submit(std::function<void()> task);

  /// Block until the queue is empty and no worker is mid-task.
  void WaitIdle();

 private:
  void WorkerMain();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers sleep here
  std::condition_variable idle_cv_;  ///< WaitIdle sleeps here
  std::size_t active_ = 0;           ///< workers currently running a task
  bool stopping_ = false;
};

}  // namespace ecc
