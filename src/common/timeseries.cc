#include "common/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

namespace ecc {

double Series::MaxY() const {
  return ys_.empty() ? 0.0 : *std::max_element(ys_.begin(), ys_.end());
}

double Series::MinY() const {
  return ys_.empty() ? 0.0 : *std::min_element(ys_.begin(), ys_.end());
}

double Series::MeanY() const {
  if (ys_.empty()) return 0.0;
  return std::accumulate(ys_.begin(), ys_.end(), 0.0) /
         static_cast<double>(ys_.size());
}

double Series::LastY() const { return ys_.empty() ? 0.0 : ys_.back(); }

Series& SeriesSet::Get(const std::string& name) {
  auto [it, inserted] = series_.try_emplace(name);
  if (inserted) order_.push_back(name);
  return it->second;
}

const Series* SeriesSet::Find(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

namespace {
std::string FormatNumber(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}
}  // namespace

std::string SeriesSet::ToCsv() const {
  std::string out = x_label_;
  std::size_t rows = 0;
  for (const auto& name : order_) {
    out += ',';
    out += name;
    rows = std::max(rows, series_.at(name).size());
  }
  out += '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    // Use the x from the first series that has this row.
    double x = 0.0;
    for (const auto& name : order_) {
      const Series& s = series_.at(name);
      if (r < s.size()) {
        x = s.xs()[r];
        break;
      }
    }
    out += FormatNumber(x);
    for (const auto& name : order_) {
      const Series& s = series_.at(name);
      out += ',';
      if (r < s.size()) out += FormatNumber(s.ys()[r]);
    }
    out += '\n';
  }
  return out;
}

std::string SeriesSet::ToTable() const {
  // Build all cells first, then pad columns.
  std::vector<std::vector<std::string>> cells;
  std::size_t rows = 0;
  for (const auto& name : order_) {
    rows = std::max(rows, series_.at(name).size());
  }
  std::vector<std::string> header{x_label_};
  header.insert(header.end(), order_.begin(), order_.end());
  cells.push_back(header);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    double x = 0.0;
    for (const auto& name : order_) {
      const Series& s = series_.at(name);
      if (r < s.size()) {
        x = s.xs()[r];
        break;
      }
    }
    row.push_back(FormatNumber(x));
    for (const auto& name : order_) {
      const Series& s = series_.at(name);
      row.push_back(r < s.size() ? FormatNumber(s.ys()[r]) : std::string("-"));
    }
    cells.push_back(std::move(row));
  }
  std::vector<std::size_t> widths(cells[0].size(), 0);
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out.append(widths[c] - row[c].size(), ' ');
      out += row[c];
    }
    out += '\n';
  }
  return out;
}

Status SeriesSet::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Unavailable("cannot open " + path);
  out << ToCsv();
  return out.good() ? Status::Ok() : Status::Internal("write failed");
}

}  // namespace ecc
