// Aligned text-table builder for bench/experiment output.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace ecc {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; must match header arity (extra cells are dropped,
  /// missing cells rendered blank).
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: formats each double with %.4g.
  void AddRow(std::initializer_list<double> row);

  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// %.4g formatting shared by table producers.
[[nodiscard]] std::string FormatG(double v);

}  // namespace ecc
