#include "common/log.h"

#include <cstdio>

namespace ecc {

LogLevel Log::level_ = LogLevel::kWarn;

void Log::SetLevel(LogLevel level) { level_ = level; }

LogLevel Log::level() { return level_; }

void Log::Printf(LogLevel level, const char* fmt, ...) {
  if (level < level_) return;
  static constexpr const char* kTags[] = {"D", "I", "W", "E"};
  std::fprintf(stderr, "[%s] ", kTags[static_cast<int>(level)]);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ecc
