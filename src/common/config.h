// Tiny `key = value` configuration parser.
//
// Experiment binaries accept config overrides from files or command-line
// `key=value` tokens so sweeps can be scripted without recompiling.  Lines
// beginning with '#' are comments; whitespace around keys/values is trimmed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ecc {

class Config {
 public:
  Config() = default;

  /// Parse a whole config file body.  Returns an error naming the first
  /// malformed line.
  [[nodiscard]] Status ParseString(std::string_view body);

  /// Parse one `key=value` token (as passed on a command line).
  [[nodiscard]] Status ParseToken(std::string_view token);

  [[nodiscard]] Status LoadFile(const std::string& path);

  void Set(std::string key, std::string value);

  [[nodiscard]] bool Has(const std::string& key) const;

  [[nodiscard]] std::string GetString(const std::string& key,
                                      std::string fallback = {}) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& key,
                                    std::int64_t fallback = 0) const;
  [[nodiscard]] double GetDouble(const std::string& key,
                                 double fallback = 0.0) const;
  [[nodiscard]] bool GetBool(const std::string& key,
                             bool fallback = false) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace ecc
