#include "overload/admission.h"

#include <algorithm>

namespace ecc::overload {

const char* AdmissionPolicyName(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kRejectNew: return "reject_new";
    case AdmissionPolicy::kDropOldest: return "drop_oldest";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(AdmissionOptions opts) : opts_(opts) {}

AdmissionQueue::Ticket AdmissionQueue::Enter() {
  const std::lock_guard<std::mutex> g(mutex_);
  const std::size_t depth = waiting_.size() + in_service_;
  if (opts_.queue_limit > 0 && depth >= opts_.queue_limit) {
    if (opts_.policy == AdmissionPolicy::kRejectNew || waiting_.empty()) {
      // Under kDropOldest an empty waiting set means every slot is already
      // in service — nothing is revocable, so the newcomer sheds after all.
      ++stats_.rejected;
      return kRejected;
    }
    revoked_.insert(waiting_.front());
    waiting_.pop_front();
    ++stats_.dropped;
  }
  const Ticket t = next_++;
  waiting_.push_back(t);
  ++stats_.admitted;
  stats_.peak_depth =
      std::max<std::uint64_t>(stats_.peak_depth, waiting_.size() + in_service_);
  return t;
}

bool AdmissionQueue::StartService(Ticket t) {
  const std::lock_guard<std::mutex> g(mutex_);
  if (revoked_.erase(t) > 0) return false;
  const auto it = std::find(waiting_.begin(), waiting_.end(), t);
  if (it != waiting_.end()) waiting_.erase(it);
  ++in_service_;
  return true;
}

void AdmissionQueue::Exit(Ticket t) {
  (void)t;
  const std::lock_guard<std::mutex> g(mutex_);
  if (in_service_ > 0) --in_service_;
}

void AdmissionQueue::Cancel(Ticket t) {
  const std::lock_guard<std::mutex> g(mutex_);
  if (revoked_.erase(t) > 0) return;
  const auto it = std::find(waiting_.begin(), waiting_.end(), t);
  if (it != waiting_.end()) waiting_.erase(it);
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return waiting_.size() + in_service_;
}

AdmissionStats AdmissionQueue::stats() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return stats_;
}

}  // namespace ecc::overload
