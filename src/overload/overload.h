// Overload-protection options and per-query deadline context.
//
// One OverloadOptions rides in CoordinatorOptions / ParallelOptions and
// configures the whole subsystem: per-query deadlines, the bounded
// admission queue in front of the service, the circuit breaker around it,
// and degraded (stale) answers when the protected path refuses a miss.
// `enabled == false` is the default and must stay zero-cost: the query
// path tests one bool and touches nothing else (the same discipline as
// EccObsDisabled() for metrics).
//
// Deadline propagation: the coordinator stamps a Deadline on the clock
// that carries the query's latency and opens a ScopedDeadline around the
// query.  Layers below that cannot grow a deadline parameter without API
// churn (ElasticCache::CallNode, deep in the backend) read
// CurrentDeadline() — a thread-local, so concurrent front-end workers
// each see only their own query's budget.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "overload/admission.h"
#include "overload/breaker.h"

namespace ecc::overload {

struct OverloadOptions {
  /// Master switch; false = the whole subsystem costs one branch.
  bool enabled = false;

  /// Per-query budget measured on the query's latency clock.  Zero = no
  /// deadline.  A query may overshoot by at most one in-flight service
  /// call clamp or RPC attempt (see DESIGN.md §10).
  Duration query_deadline = Duration::Zero();

  /// Bounded pending-miss queue (queue_limit 0 = unbounded).
  AdmissionOptions admission;

  /// Circuit breaker around the backing service.
  bool breaker_enabled = false;
  BreakerOptions breaker;

  /// When a miss is shed (queue full, breaker open, deadline spent), probe
  /// the mirror replica and the spill tier for a stale copy before
  /// returning a hard shed.
  bool stale_serve = true;
  /// Maximum staleness, in time-step slices, a degraded answer may carry.
  std::uint64_t stale_bound_slices = 4;
  /// Virtual time one stale probe costs the querying worker (replica or
  /// spill lookup; roughly a spill-tier read).
  Duration stale_probe_cost = Duration::Millis(220);
};

/// Overlay `base` with ECC_* environment knobs (see README):
///   ECC_OVERLOAD=1            enable the subsystem
///   ECC_DEADLINE_MS=<n>       per-query deadline
///   ECC_QUEUE_LIMIT=<n>       admission queue bound
///   ECC_QUEUE_POLICY=reject_new|drop_oldest
///   ECC_BREAKER=1             enable the breaker
///   ECC_BREAKER_WINDOW_MS, ECC_BREAKER_THRESHOLD, ECC_BREAKER_MIN_SAMPLES,
///   ECC_BREAKER_COOLDOWN_MS   breaker tuning
///   ECC_STALE=0|1, ECC_STALE_BOUND=<slices>   degraded answers
[[nodiscard]] OverloadOptions OverloadOptionsFromEnv(
    OverloadOptions base = {});

/// The deadline governing work on this thread; inactive when no
/// ScopedDeadline is open.
[[nodiscard]] Deadline CurrentDeadline();

/// RAII thread-local deadline scope (nests; restores the outer deadline).
class ScopedDeadline {
 public:
  explicit ScopedDeadline(Deadline d);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  Deadline prev_;
};

}  // namespace ecc::overload
