// Bounded admission queue for pending misses.
//
// Without it, a miss storm piles unbounded leaders behind the service mutex
// at ~23 s apiece.  A leader takes a ticket *before* it queues for the
// service; when the pending count is at the limit the queue either refuses
// the newcomer (kRejectNew) or revokes the oldest still-waiting ticket to
// make room (kDropOldest — freshest work wins, the policy a flash crowd
// wants).  A revoked leader cannot be interrupted mid-block, so revocation
// is lazy: it discovers the verdict when it finally reaches the front and
// calls StartService(), and sheds instead of invoking the service.
//
// Thread-safe; every operation is a short mutex-guarded section.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>

#include "common/time.h"

namespace ecc::overload {

enum class AdmissionPolicy {
  kRejectNew,   ///< full queue refuses the arriving miss
  kDropOldest,  ///< full queue revokes the oldest waiting miss instead
};

[[nodiscard]] const char* AdmissionPolicyName(AdmissionPolicy p);

struct AdmissionOptions {
  /// Maximum pending misses (waiting + in service).  0 = unbounded.
  std::size_t queue_limit = 0;
  AdmissionPolicy policy = AdmissionPolicy::kRejectNew;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;    ///< newcomers refused (kRejectNew or no
                                 ///< droppable waiter under kDropOldest)
  std::uint64_t dropped = 0;     ///< waiting tickets revoked (kDropOldest)
  std::uint64_t peak_depth = 0;  ///< high-water pending count
};

class AdmissionQueue {
 public:
  using Ticket = std::uint64_t;
  static constexpr Ticket kRejected = 0;

  explicit AdmissionQueue(AdmissionOptions opts = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Ask to join the pending-miss queue.  Returns a ticket (> 0) on
  /// admission, kRejected when shed.  May revoke another waiter under
  /// kDropOldest.
  [[nodiscard]] Ticket Enter();

  /// The ticket holder is about to invoke the service (it holds the
  /// service serialization lock).  False means the ticket was revoked
  /// while waiting — the holder must shed, not call.
  [[nodiscard]] bool StartService(Ticket t);

  /// The service call finished (only after StartService returned true).
  void Exit(Ticket t);

  /// The holder no longer needs the slot (e.g. the double-checked cache
  /// lookup hit); valid for waiting or revoked tickets.
  void Cancel(Ticket t);

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] AdmissionStats stats() const;
  [[nodiscard]] const AdmissionOptions& options() const { return opts_; }

 private:
  const AdmissionOptions opts_;
  mutable std::mutex mutex_;
  Ticket next_ = 1;
  std::deque<Ticket> waiting_;         ///< admission order, front = oldest
  std::unordered_set<Ticket> revoked_;
  std::size_t in_service_ = 0;
  AdmissionStats stats_;
};

}  // namespace ecc::overload
