#include "overload/overload.h"

#include <cstdlib>
#include <cstring>

namespace ecc::overload {

namespace {

thread_local Deadline tls_deadline;  // inactive by default

const char* Env(const char* name) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? nullptr : v;
}

bool EnvFlag(const char* name, bool fallback) {
  const char* v = Env(name);
  if (v == nullptr) return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* v = Env(name);
  if (v == nullptr) return fallback;
  return std::strtoll(v, nullptr, 0);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = Env(name);
  if (v == nullptr) return fallback;
  return std::strtod(v, nullptr);
}

}  // namespace

OverloadOptions OverloadOptionsFromEnv(OverloadOptions base) {
  base.enabled = EnvFlag("ECC_OVERLOAD", base.enabled);
  base.query_deadline = Duration::Millis(
      EnvInt("ECC_DEADLINE_MS", base.query_deadline.micros() / 1000));
  base.admission.queue_limit = static_cast<std::size_t>(EnvInt(
      "ECC_QUEUE_LIMIT", static_cast<std::int64_t>(base.admission.queue_limit)));
  if (const char* p = Env("ECC_QUEUE_POLICY"); p != nullptr) {
    base.admission.policy = std::strcmp(p, "drop_oldest") == 0
                                ? AdmissionPolicy::kDropOldest
                                : AdmissionPolicy::kRejectNew;
  }
  base.breaker_enabled = EnvFlag("ECC_BREAKER", base.breaker_enabled);
  base.breaker.window = Duration::Millis(
      EnvInt("ECC_BREAKER_WINDOW_MS", base.breaker.window.micros() / 1000));
  base.breaker.failure_threshold =
      EnvDouble("ECC_BREAKER_THRESHOLD", base.breaker.failure_threshold);
  base.breaker.min_samples = static_cast<std::size_t>(
      EnvInt("ECC_BREAKER_MIN_SAMPLES",
             static_cast<std::int64_t>(base.breaker.min_samples)));
  base.breaker.open_cooldown = Duration::Millis(EnvInt(
      "ECC_BREAKER_COOLDOWN_MS", base.breaker.open_cooldown.micros() / 1000));
  base.stale_serve = EnvFlag("ECC_STALE", base.stale_serve);
  base.stale_bound_slices = static_cast<std::uint64_t>(
      EnvInt("ECC_STALE_BOUND",
             static_cast<std::int64_t>(base.stale_bound_slices)));
  return base;
}

Deadline CurrentDeadline() { return tls_deadline; }

ScopedDeadline::ScopedDeadline(Deadline d) : prev_(tls_deadline) {
  tls_deadline = d;
}

ScopedDeadline::~ScopedDeadline() { tls_deadline = prev_; }

}  // namespace ecc::overload
