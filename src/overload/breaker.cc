#include "overload/breaker.h"

#include <algorithm>

namespace ecc::overload {

namespace {

obs::BreakerStateCode Code(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return obs::BreakerStateCode::kClosed;
    case BreakerState::kOpen: return obs::BreakerStateCode::kOpen;
    case BreakerState::kHalfOpen: return obs::BreakerStateCode::kHalfOpen;
  }
  return obs::BreakerStateCode::kClosed;
}

}  // namespace

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions opts, obs::TraceLog* trace)
    : opts_(opts), trace_(trace) {}

void CircuitBreaker::BindMetrics(obs::Counter opens,
                                 obs::Counter rejections) {
  const std::lock_guard<std::mutex> g(mutex_);
  opens_counter_ = opens;
  rejections_counter_ = rejections;
}

BreakerState CircuitBreaker::state() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return stats_;
}

void CircuitBreaker::TransitionLocked(BreakerState to, TimePoint now) {
  if (to == state_) return;
  obs::Emit(trace_, obs::BreakerEvent(now, Code(state_), Code(to)));
  state_ = to;
  switch (to) {
    case BreakerState::kOpen:
      opened_at_ = high_water_;
      ++stats_.opens;
      opens_counter_.Inc();
      break;
    case BreakerState::kHalfOpen:
      probes_issued_ = 0;
      probe_successes_ = 0;
      break;
    case BreakerState::kClosed:
      // A fresh start: the window that justified opening is history.
      window_.clear();
      window_failures_ = 0;
      ++stats_.closes;
      break;
  }
}

void CircuitBreaker::PruneLocked() {
  const TimePoint cutoff = high_water_ - opts_.window;
  while (!window_.empty() && window_.front().t < cutoff) {
    if (window_.front().failure) --window_failures_;
    window_.pop_front();
  }
}

bool CircuitBreaker::OverThresholdLocked() const {
  if (window_.size() < std::max<std::size_t>(1, opts_.min_samples)) {
    return false;
  }
  const double rate = static_cast<double>(window_failures_) /
                      static_cast<double>(window_.size());
  return rate >= opts_.failure_threshold;
}

bool CircuitBreaker::Allow(TimePoint now) {
  const std::lock_guard<std::mutex> g(mutex_);
  high_water_ = std::max(high_water_, now);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (high_water_ - opened_at_ >= opts_.open_cooldown) {
        TransitionLocked(BreakerState::kHalfOpen, now);
        ++probes_issued_;
        ++stats_.probes;
        return true;
      }
      ++stats_.rejections;
      rejections_counter_.Inc();
      return false;
    case BreakerState::kHalfOpen:
      if (probes_issued_ < std::max<std::size_t>(1, opts_.half_open_probes)) {
        ++probes_issued_;
        ++stats_.probes;
        return true;
      }
      ++stats_.rejections;
      rejections_counter_.Inc();
      return false;
  }
  return true;
}

void CircuitBreaker::Record(TimePoint now, bool ok, Duration latency) {
  const std::lock_guard<std::mutex> g(mutex_);
  high_water_ = std::max(high_water_, now);
  const bool slow = ok && opts_.slow_call_threshold > Duration::Zero() &&
                    latency >= opts_.slow_call_threshold;
  const bool failure = !ok || slow;
  switch (state_) {
    case BreakerState::kClosed: {
      window_.push_back(Sample{high_water_, failure});
      if (failure) ++window_failures_;
      PruneLocked();
      if (OverThresholdLocked()) TransitionLocked(BreakerState::kOpen, now);
      break;
    }
    case BreakerState::kHalfOpen: {
      if (failure) {
        // The service is still sick; back to open for another cooldown.
        TransitionLocked(BreakerState::kOpen, now);
        break;
      }
      ++probe_successes_;
      if (probe_successes_ >=
          std::max<std::size_t>(1, opts_.half_open_successes)) {
        TransitionLocked(BreakerState::kClosed, now);
      }
      break;
    }
    case BreakerState::kOpen:
      // A straggler finishing after the trip; the verdict is already in.
      break;
  }
}

}  // namespace ecc::overload
