// Circuit breaker for the backing web service.
//
// A miss costs ~23 s of simulated service time, so a browned-out or crashed
// service must fail *fast*: the breaker watches a sliding failure-rate
// window over virtual time and, once the rate crosses a threshold, refuses
// calls outright (open) until a cooldown elapses, then lets a bounded
// number of probes through (half-open) before either closing again or
// re-opening.  Callers that are refused fall back to degraded answers
// (stale replica / spill copies) instead of queueing behind a dead service.
//
// Time discipline: every method takes an explicit TimePoint.  The parallel
// front-end charges per-worker private clocks that are mutually unordered,
// so the breaker tracks a high-water mark and evaluates windows and
// cooldowns against it — a stale `now` from a lagging worker can never
// rewind a transition.  This also makes the state machine table-testable
// with hand-picked instants and no clock object at all.
//
// Thread-safe: one mutex; Allow/Record are short critical sections.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecc::overload {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* BreakerStateName(BreakerState s);

struct BreakerOptions {
  /// Sliding window the failure rate is computed over.
  Duration window = Duration::Seconds(60);
  /// Minimum samples in the window before the rate is trusted at all.
  std::size_t min_samples = 8;
  /// Open when failures / samples >= this (with min_samples met).
  double failure_threshold = 0.5;
  /// Virtual time spent open before probing again.
  Duration open_cooldown = Duration::Seconds(120);
  /// Probe calls admitted while half-open.
  std::size_t half_open_probes = 3;
  /// Probe successes required to close (<= half_open_probes).
  std::size_t half_open_successes = 2;
  /// Successful calls at least this slow count as failures (a brownout
  /// serves answers, just ruinously late).  Zero disables slow-call
  /// accounting and only errors count.
  Duration slow_call_threshold = Duration::Zero();
};

struct BreakerStats {
  std::uint64_t opens = 0;       ///< transitions into kOpen (incl. re-opens)
  std::uint64_t closes = 0;      ///< recoveries into kClosed
  std::uint64_t rejections = 0;  ///< Allow() == false
  std::uint64_t probes = 0;      ///< calls admitted while half-open
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions opts = {},
                          obs::TraceLog* trace = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// May a service call start at `now`?  Open → false until the cooldown
  /// elapses (the elapse itself flips to half-open and admits a probe);
  /// half-open → true only while probe slots remain.
  [[nodiscard]] bool Allow(TimePoint now);

  /// Report the outcome of a call that Allow() admitted.  `latency` feeds
  /// slow-call accounting when the call succeeded.
  void Record(TimePoint now, bool ok, Duration latency = Duration::Zero());

  void RecordSuccess(TimePoint now, Duration latency = Duration::Zero()) {
    Record(now, true, latency);
  }
  void RecordFailure(TimePoint now) { Record(now, false); }

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] BreakerStats stats() const;

  /// Null-safe metric hookup; counters tick on open / rejection.
  void BindMetrics(obs::Counter opens, obs::Counter rejections);

 private:
  struct Sample {
    TimePoint t;
    bool failure = false;
  };

  void TransitionLocked(BreakerState to, TimePoint now);
  void PruneLocked();
  [[nodiscard]] bool OverThresholdLocked() const;

  const BreakerOptions opts_;
  obs::TraceLog* trace_;

  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<Sample> window_;
  std::size_t window_failures_ = 0;
  /// Latest instant seen across all callers; windows and cooldowns are
  /// evaluated against this so lagging per-worker clocks cannot rewind.
  TimePoint high_water_;
  TimePoint opened_at_;
  std::size_t probes_issued_ = 0;
  std::size_t probe_successes_ = 0;
  BreakerStats stats_;
  obs::Counter opens_counter_;
  obs::Counter rejections_counter_;
};

}  // namespace ecc::overload
