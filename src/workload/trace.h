// Workload traces: record a query stream once, replay it bit-exactly.
//
// The paper's experiments hinge on comparing systems "over the same
// workload"; a serialized trace makes that comparison portable across
// processes and machines (and lets a real service log be replayed against
// the simulator).  The format is a compact binary stream: a header, then
// per-step varint-delta-encoded key lists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "workload/generator.h"

namespace ecc::workload {

/// An ordered query stream grouped by time step.
class Trace {
 public:
  Trace() = default;

  /// Append one query to the given (1-based, non-decreasing) step.
  void Record(std::size_t step, core::Key key);

  [[nodiscard]] std::size_t steps() const { return per_step_.size(); }
  [[nodiscard]] std::size_t total_queries() const { return total_; }
  [[nodiscard]] const std::vector<core::Key>& QueriesAt(
      std::size_t step) const;

  /// Serialize to the compact binary format.
  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] static StatusOr<Trace> Deserialize(std::string_view bytes);

  [[nodiscard]] Status SaveFile(const std::string& path) const;
  [[nodiscard]] static StatusOr<Trace> LoadFile(const std::string& path);

  /// Capture a generator + schedule into a trace of `steps` steps.
  [[nodiscard]] static Trace Capture(KeyGenerator& keys,
                                     const RateSchedule& rate,
                                     std::size_t steps);

  friend bool operator==(const Trace& a, const Trace& b) {
    return a.per_step_ == b.per_step_;
  }

 private:
  std::vector<std::vector<core::Key>> per_step_;
  std::size_t total_ = 0;
};

/// Replays a trace through the KeyGenerator/RateSchedule interfaces, so the
/// standard ExperimentDriver can consume recorded workloads unchanged.
/// RateAt(step) must be called before the step's keys are drawn (which is
/// exactly the driver's loop order).
class TraceReplay final : public KeyGenerator, public RateSchedule {
 public:
  explicit TraceReplay(const Trace* trace);

  [[nodiscard]] std::size_t RateAt(std::size_t step) const override;
  [[nodiscard]] core::Key Next() override;
  [[nodiscard]] std::uint64_t keyspace() const override;

  /// Restart from the beginning.
  void Reset();

 private:
  const Trace* trace_;
  std::size_t cursor_step_ = 0;  // 0-based step currently being replayed
  std::size_t cursor_query_ = 0;
};

}  // namespace ecc::workload
