// Storm-track workload: a moving spatiotemporal hotspot.
//
// Real query-intensive episodes (the paper's hurricane/earthquake
// scenarios) are not uniform: interest follows the event across the map
// and forward in time.  This generator samples queries from a Gaussian
// around a center that advances along a track, producing keys whose
// spatial clustering exercises the SFC-locality properties of the B²-Tree
// keying (and the sweep ranges of migration).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/types.h"
#include "sfc/linearizer.h"
#include "workload/generator.h"

namespace ecc::workload {

struct StormTrackOptions {
  sfc::LinearizerOptions grid;
  double start_lon = -75.0;
  double start_lat = 15.0;
  /// Track velocity, degrees per step.
  double d_lon = 0.25;
  double d_lat = 0.10;
  /// Gaussian spread of queries around the eye, degrees.
  double radius_deg = 3.0;
  double start_day = 100.0;
  /// Forward motion of the time-of-interest per step.
  double days_per_step = 0.05;
  /// Queries per step; the eye advances after this many draws.
  std::size_t queries_per_step = 50;
  std::uint64_t seed = 0x5706;
};

class StormTrackGenerator final : public KeyGenerator {
 public:
  explicit StormTrackGenerator(StormTrackOptions opts);

  [[nodiscard]] core::Key Next() override;
  [[nodiscard]] std::uint64_t keyspace() const override {
    return lin_.KeySpace();
  }

  /// Current eye position (for narration/tests).
  [[nodiscard]] double eye_lon() const { return lon_; }
  [[nodiscard]] double eye_lat() const { return lat_; }
  [[nodiscard]] double eye_day() const { return day_; }

 private:
  void AdvanceEye();

  StormTrackOptions opts_;
  sfc::Linearizer lin_;
  Rng rng_;
  double lon_;
  double lat_;
  double day_;
  double d_lon_;
  double d_lat_;
  std::size_t draws_this_step_ = 0;
};

}  // namespace ecc::workload
