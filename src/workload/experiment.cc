#include "workload/experiment.h"

#include <algorithm>
#include <cassert>

namespace ecc::workload {

ExperimentDriver::ExperimentDriver(ExperimentOptions opts,
                                   core::Coordinator* coordinator,
                                   KeyGenerator* keys, RateSchedule* rate,
                                   cloudsim::CloudProvider* provider,
                                   VirtualClock* clock)
    : opts_(opts),
      coordinator_(coordinator),
      keys_(keys),
      rate_(rate),
      provider_(provider),
      clock_(clock) {
  assert(coordinator != nullptr && keys != nullptr && rate != nullptr &&
         clock != nullptr);
  assert(opts_.observe_every >= 1);
}

ExperimentResult ExperimentDriver::Run() {
  ExperimentResult result;
  ExperimentSummary& summary = result.summary;
  summary.label = opts_.label;

  const TimePoint run_start = clock_->now();
  core::CacheBackend& cache = coordinator_->cache();

  // Interval accumulators.
  std::uint64_t interval_queries = 0;
  std::uint64_t interval_hits = 0;
  std::uint64_t interval_evictions = 0;
  Duration interval_query_time;
  double node_step_sum = 0.0;

  Series& speedup_s = result.series.Get("speedup");
  Series& nodes_s = result.series.Get("nodes");
  Series& hits_s = result.series.Get("hits");
  Series& misses_s = result.series.Get("misses");
  Series& evict_s = result.series.Get("evictions");
  Series& hit_rate_s = result.series.Get("hit_rate");
  Series& queries_s = result.series.Get("queries_total");
  Series* cost_s =
      provider_ != nullptr ? &result.series.Get("cost_usd") : nullptr;

  std::uint64_t queries_total = 0;
  for (std::size_t step = 1; step <= opts_.time_steps; ++step) {
    const std::size_t r = rate_->RateAt(step);
    for (std::size_t j = 0; j < r; ++j) {
      coordinator_->ProcessKey(keys_->Next());
    }
    const core::TimeStepReport report = coordinator_->EndTimeStep();
    queries_total += report.step_queries;
    interval_queries += report.step_queries;
    interval_hits += report.step_hits;
    interval_evictions += report.evicted;
    interval_query_time += report.step_query_time;
    node_step_sum += static_cast<double>(cache.NodeCount());
    summary.max_nodes = std::max(summary.max_nodes, cache.NodeCount());

    // The final step always observes, so the series are never empty (and
    // the summary fields are filled) even when observe_every > time_steps.
    if (step % opts_.observe_every != 0 && step != opts_.time_steps) {
      continue;
    }

    const auto x = static_cast<double>(step);
    double speedup = 0.0;
    if (interval_queries > 0 && interval_query_time > Duration::Zero()) {
      const double mean_query_secs =
          interval_query_time.seconds() /
          static_cast<double>(interval_queries);
      speedup = opts_.baseline_exec.seconds() / mean_query_secs;
    }
    speedup_s.Add(x, speedup);
    nodes_s.Add(x, static_cast<double>(cache.NodeCount()));
    hits_s.Add(x, static_cast<double>(interval_hits));
    misses_s.Add(x, static_cast<double>(interval_queries - interval_hits));
    evict_s.Add(x, static_cast<double>(interval_evictions));
    hit_rate_s.Add(x, interval_queries == 0
                          ? 0.0
                          : static_cast<double>(interval_hits) /
                                static_cast<double>(interval_queries));
    queries_s.Add(x, static_cast<double>(queries_total));
    if (cost_s != nullptr) {
      cost_s->Add(x, provider_->AccruedCostDollars());
    }

    summary.max_speedup = std::max(summary.max_speedup, speedup);
    summary.final_speedup = speedup;
    interval_queries = 0;
    interval_hits = 0;
    interval_evictions = 0;
    interval_query_time = Duration::Zero();
  }

  summary.total_queries = coordinator_->total_queries();
  summary.total_hits = coordinator_->total_hits();
  summary.hit_rate =
      summary.total_queries == 0
          ? 0.0
          : static_cast<double>(summary.total_hits) /
                static_cast<double>(summary.total_queries);
  summary.mean_nodes =
      node_step_sum / static_cast<double>(opts_.time_steps);
  summary.final_nodes = cache.NodeCount();
  const core::CacheStats& stats = cache.stats();
  summary.evictions = stats.evictions;
  summary.splits = stats.splits;
  summary.node_allocations = stats.node_allocations;
  summary.node_removals = stats.node_removals;
  if (provider_ != nullptr) {
    summary.cost_usd = provider_->AccruedCostDollars();
  }
  summary.virtual_time = clock_->now() - run_start;
  return result;
}

}  // namespace ecc::workload
