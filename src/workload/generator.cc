#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <cassert>

namespace ecc::workload {

namespace {
std::vector<core::Key> RandomPermutation(std::uint64_t n,
                                         std::uint64_t seed) {
  std::vector<core::Key> perm(n);
  for (std::uint64_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed);
  // Fisher–Yates.
  for (std::uint64_t i = n - 1; i > 0; --i) {
    const std::uint64_t j = rng.Uniform(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}
}  // namespace

UniformKeyGenerator::UniformKeyGenerator(std::uint64_t n, std::uint64_t seed)
    : n_(n), rng_(seed) {
  assert(n > 0);
}

core::Key UniformKeyGenerator::Next() { return rng_.Uniform(n_); }

ZipfKeyGenerator::ZipfKeyGenerator(std::uint64_t n, double s,
                                   std::uint64_t seed)
    : n_(n),
      rng_(seed),
      zipf_(n, s),
      permutation_(RandomPermutation(n, SplitMix64(seed ^ 0xfeedULL))) {
  assert(n > 0);
}

core::Key ZipfKeyGenerator::Next() {
  return permutation_[zipf_.Sample(rng_)];
}

HotspotKeyGenerator::HotspotKeyGenerator(std::uint64_t n, double hot_fraction,
                                         double hot_prob, std::uint64_t seed)
    : n_(n),
      hot_count_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(hot_fraction *
                                        static_cast<double>(n)))),
      hot_prob_(hot_prob),
      rng_(seed),
      permutation_(RandomPermutation(n, SplitMix64(seed ^ 0x407ULL))) {
  assert(n > 0);
  assert(hot_fraction > 0.0 && hot_fraction <= 1.0);
  assert(hot_prob >= 0.0 && hot_prob <= 1.0);
}

core::Key HotspotKeyGenerator::Next() {
  if (rng_.Chance(hot_prob_) || hot_count_ == n_) {
    return permutation_[rng_.Uniform(hot_count_)];
  }
  return permutation_[hot_count_ + rng_.Uniform(n_ - hot_count_)];
}

PiecewiseRate::PiecewiseRate(std::vector<Point> points, bool interpolate)
    : points_(std::move(points)), interpolate_(interpolate) {
  assert(!points_.empty());
  assert(std::is_sorted(points_.begin(), points_.end(),
                        [](const Point& a, const Point& b) {
                          return a.step < b.step;
                        }));
}

std::size_t PiecewiseRate::RateAt(std::size_t step) const {
  if (step <= points_.front().step) return points_.front().rate;
  if (step >= points_.back().step) return points_.back().rate;
  // Find the segment [points_[i], points_[i+1]) containing `step`.
  std::size_t i = 0;
  while (i + 1 < points_.size() && points_[i + 1].step <= step) ++i;
  if (i + 1 == points_.size()) return points_.back().rate;
  const Point& a = points_[i];
  const Point& b = points_[i + 1];
  if (!interpolate_ || a.step == b.step) return a.rate;
  const double frac = static_cast<double>(step - a.step) /
                      static_cast<double>(b.step - a.step);
  const double rate = static_cast<double>(a.rate) +
                      frac * (static_cast<double>(b.rate) -
                              static_cast<double>(a.rate));
  return static_cast<std::size_t>(rate + 0.5);
}

PoissonRate::PoissonRate(double mean, std::uint64_t seed)
    : mean_(mean), seed_(seed) {
  assert(mean >= 0.0);
}

std::size_t PoissonRate::RateAt(std::size_t step) const {
  // Stateless per-step draw: seed the generator from (seed, step) so the
  // schedule is a pure function of the step (safe to call repeatedly and
  // from any order).
  Rng rng(SplitMix64(seed_ ^ (0x9e3779b97f4a7c15ULL * (step + 1))));
  // Knuth's product method; fine for the means experiments use (< ~1e3).
  const double limit = std::exp(-mean_);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.UniformDouble();
  } while (p > limit);
  return k - 1;
}

std::unique_ptr<RateSchedule> PaperPhasedSchedule() {
  // Steps 1-100 normal, 101-300 intensive, 300-400 relaxation ramp,
  // 400+ normal.
  return std::make_unique<PiecewiseRate>(
      std::vector<PiecewiseRate::Point>{
          {1, 50}, {100, 50}, {101, 250}, {300, 250}, {400, 50}},
      /*interpolate=*/true);
}

}  // namespace ecc::workload
