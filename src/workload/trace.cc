#include "workload/trace.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

#include "net/wire.h"

namespace ecc::workload {

namespace {
constexpr std::uint32_t kTraceMagic = 0x45435452;  // "ECTR"
const std::vector<core::Key> kEmptyStep;
}  // namespace

void Trace::Record(std::size_t step, core::Key key) {
  assert(step >= 1);
  assert(step >= per_step_.size());  // non-decreasing steps
  if (per_step_.size() < step) per_step_.resize(step);
  per_step_[step - 1].push_back(key);
  ++total_;
}

const std::vector<core::Key>& Trace::QueriesAt(std::size_t step) const {
  if (step < 1 || step > per_step_.size()) return kEmptyStep;
  return per_step_[step - 1];
}

std::string Trace::Serialize() const {
  net::WireWriter w;
  w.PutU32(kTraceMagic);
  w.PutVarint(per_step_.size());
  for (const auto& step : per_step_) {
    w.PutVarint(step.size());
    // Keys within a step are order-significant; encode raw varints (keys
    // are typically small linearized values, so varints stay compact).
    for (core::Key k : step) w.PutVarint(k);
  }
  return w.TakeBuffer();
}

StatusOr<Trace> Trace::Deserialize(std::string_view bytes) {
  net::WireReader r(bytes);
  std::uint32_t magic = 0;
  if (Status s = r.GetU32(magic); !s.ok()) return s;
  if (magic != kTraceMagic) {
    return Status::InvalidArgument("not a trace file");
  }
  std::uint64_t steps = 0;
  if (Status s = r.GetVarint(steps); !s.ok()) return s;
  Trace trace;
  for (std::uint64_t i = 0; i < steps; ++i) {
    std::uint64_t count = 0;
    if (Status s = r.GetVarint(count); !s.ok()) return s;
    for (std::uint64_t j = 0; j < count; ++j) {
      std::uint64_t key = 0;
      if (Status s = r.GetVarint(key); !s.ok()) return s;
      trace.Record(i + 1, key);
    }
    if (count == 0 && trace.per_step_.size() < i + 1) {
      trace.per_step_.resize(i + 1);  // preserve empty steps
    }
  }
  if (!r.exhausted()) return Status::InvalidArgument("trailing bytes");
  return trace;
}

Status Trace::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Unavailable("cannot open " + path);
  const std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good() ? Status::Ok() : Status::Internal("write failed");
}

StatusOr<Trace> Trace::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return Deserialize(body.str());
}

Trace Trace::Capture(KeyGenerator& keys, const RateSchedule& rate,
                     std::size_t steps) {
  Trace trace;
  for (std::size_t step = 1; step <= steps; ++step) {
    const std::size_t r = rate.RateAt(step);
    for (std::size_t j = 0; j < r; ++j) trace.Record(step, keys.Next());
    if (r == 0 && trace.per_step_.size() < step) {
      trace.per_step_.resize(step);
    }
  }
  return trace;
}

TraceReplay::TraceReplay(const Trace* trace) : trace_(trace) {
  assert(trace != nullptr);
}

std::size_t TraceReplay::RateAt(std::size_t step) const {
  return trace_->QueriesAt(step).size();
}

core::Key TraceReplay::Next() {
  // Advance past exhausted steps.
  while (cursor_step_ < trace_->steps() &&
         cursor_query_ >= trace_->QueriesAt(cursor_step_ + 1).size()) {
    ++cursor_step_;
    cursor_query_ = 0;
  }
  assert(cursor_step_ < trace_->steps() && "replay past end of trace");
  return trace_->QueriesAt(cursor_step_ + 1)[cursor_query_++];
}

std::uint64_t TraceReplay::keyspace() const {
  std::uint64_t max_key = 0;
  for (std::size_t s = 1; s <= trace_->steps(); ++s) {
    for (core::Key k : trace_->QueriesAt(s)) {
      max_key = std::max(max_key, k);
    }
  }
  return max_key + 1;
}

void TraceReplay::Reset() {
  cursor_step_ = 0;
  cursor_query_ = 0;
}

}  // namespace ecc::workload
