// Workload generation: key draws and query-rate schedules.
//
// The paper randomizes inputs uniformly over a 64K (Fig. 3) or 32K
// (Figs. 5-7) key population — "the worst case for possible reuse" — and
// drives the system with the loop
//
//   for time step i:  R <- rate(i);  submit R random queries
//
// Zipfian and hotspot generators are provided as robustness extensions
// (real query-intensive episodes are usually skewed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/types.h"

namespace ecc::workload {

class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  [[nodiscard]] virtual core::Key Next() = 0;
  [[nodiscard]] virtual std::uint64_t keyspace() const = 0;
};

/// Uniform over [0, n): the paper's workload.
class UniformKeyGenerator final : public KeyGenerator {
 public:
  UniformKeyGenerator(std::uint64_t n, std::uint64_t seed);
  [[nodiscard]] core::Key Next() override;
  [[nodiscard]] std::uint64_t keyspace() const override { return n_; }

 private:
  std::uint64_t n_;
  Rng rng_;
};

/// Zipf(s)-distributed ranks mapped through a fixed random permutation so
/// popular keys are scattered across the key space (and hence the ring).
class ZipfKeyGenerator final : public KeyGenerator {
 public:
  ZipfKeyGenerator(std::uint64_t n, double s, std::uint64_t seed);
  [[nodiscard]] core::Key Next() override;
  [[nodiscard]] std::uint64_t keyspace() const override { return n_; }

 private:
  std::uint64_t n_;
  Rng rng_;
  ZipfSampler zipf_;
  std::vector<core::Key> permutation_;
};

/// With probability `hot_prob`, draw from the first `hot_fraction` of a
/// permuted key space; otherwise uniform over the rest.
class HotspotKeyGenerator final : public KeyGenerator {
 public:
  HotspotKeyGenerator(std::uint64_t n, double hot_fraction, double hot_prob,
                      std::uint64_t seed);
  [[nodiscard]] core::Key Next() override;
  [[nodiscard]] std::uint64_t keyspace() const override { return n_; }

 private:
  std::uint64_t n_;
  std::uint64_t hot_count_;
  double hot_prob_;
  Rng rng_;
  std::vector<core::Key> permutation_;
};

// --- Rate schedules ---------------------------------------------------------

class RateSchedule {
 public:
  virtual ~RateSchedule() = default;
  /// Queries to submit in (1-based) time step `step`.
  [[nodiscard]] virtual std::size_t RateAt(std::size_t step) const = 0;
};

class ConstantRate final : public RateSchedule {
 public:
  explicit ConstantRate(std::size_t rate) : rate_(rate) {}
  [[nodiscard]] std::size_t RateAt(std::size_t) const override {
    return rate_;
  }

 private:
  std::size_t rate_;
};

/// Piecewise schedule over breakpoints (step, rate); between breakpoints
/// the rate either holds (step function) or interpolates linearly.
class PiecewiseRate final : public RateSchedule {
 public:
  struct Point {
    std::size_t step;
    std::size_t rate;
  };

  PiecewiseRate(std::vector<Point> points, bool interpolate);

  [[nodiscard]] std::size_t RateAt(std::size_t step) const override;

 private:
  std::vector<Point> points_;  // sorted by step
  bool interpolate_;
};

/// Poisson arrivals: the per-step rate is drawn from Poisson(mean) — a
/// stochastic refinement of the paper's fixed-R loop (real query traffic
/// is bursty even at a constant average intensity).  Deterministic given
/// the seed; RateAt is memoized per step so repeated calls agree.
class PoissonRate final : public RateSchedule {
 public:
  PoissonRate(double mean, std::uint64_t seed);
  [[nodiscard]] std::size_t RateAt(std::size_t step) const override;
  [[nodiscard]] double mean() const { return mean_; }

 private:
  double mean_;
  std::uint64_t seed_;
};

/// The paper's query-intensive scenario (§IV.C): R = 50 for steps 1-100,
/// R = 250 for 101-300, ramping back down to R = 50 by step 400 and
/// holding thereafter.
[[nodiscard]] std::unique_ptr<RateSchedule> PaperPhasedSchedule();

}  // namespace ecc::workload
