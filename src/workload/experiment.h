// Experiment driver: reproduces the paper's measurement loop and produces
// the per-figure series.
//
// Per observation interval it records:
//   speedup    — (uncached baseline time) / (mean observed query time),
//                the paper's "relative speedup over the query's actual
//                execution time"
//   nodes      — allocated cooperative cache nodes
//   hits/misses/evictions — interval counts (Fig. 6's reuse & eviction)
//   hit_rate   — interval hit fraction
//   cost_usd   — accrued cloud bill (when a provider is attached)
#pragma once

#include <cstdint>
#include <string>

#include "cloudsim/provider.h"
#include "common/time.h"
#include "common/timeseries.h"
#include "core/backend.h"
#include "core/coordinator.h"
#include "workload/generator.h"

namespace ecc::workload {

struct ExperimentOptions {
  std::size_t time_steps = 1000;
  /// Record one sample every this many steps.
  std::size_t observe_every = 10;
  /// Uncached service execution time (speedup denominator's numerator).
  Duration baseline_exec = Duration::Seconds(23);
  std::string label = "experiment";
};

/// Aggregate outcome of a run.
struct ExperimentSummary {
  std::string label;
  std::uint64_t total_queries = 0;
  std::uint64_t total_hits = 0;
  double hit_rate = 0.0;
  double final_speedup = 0.0;   ///< last observed interval speedup
  double max_speedup = 0.0;
  double mean_nodes = 0.0;      ///< averaged over steps
  std::size_t max_nodes = 0;
  std::size_t final_nodes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t splits = 0;
  std::uint64_t node_allocations = 0;
  std::uint64_t node_removals = 0;
  double cost_usd = 0.0;        ///< 0 when no provider attached
  Duration virtual_time;        ///< clock advance during the run
};

struct ExperimentResult {
  SeriesSet series{"step"};
  ExperimentSummary summary;
};

class ExperimentDriver {
 public:
  /// `provider` may be null (static baselines have no cloud bill).
  ExperimentDriver(ExperimentOptions opts, core::Coordinator* coordinator,
                   KeyGenerator* keys, RateSchedule* rate,
                   cloudsim::CloudProvider* provider, VirtualClock* clock);

  /// Run the full loop and collect series + summary.
  [[nodiscard]] ExperimentResult Run();

 private:
  ExperimentOptions opts_;
  core::Coordinator* coordinator_;
  KeyGenerator* keys_;
  RateSchedule* rate_;
  cloudsim::CloudProvider* provider_;
  VirtualClock* clock_;
};

}  // namespace ecc::workload
