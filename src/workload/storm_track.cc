#include "workload/storm_track.h"

#include <algorithm>

namespace ecc::workload {

StormTrackGenerator::StormTrackGenerator(StormTrackOptions opts)
    : opts_(opts),
      lin_(opts.grid),
      rng_(opts.seed),
      lon_(opts.start_lon),
      lat_(opts.start_lat),
      day_(opts.start_day),
      d_lon_(opts.d_lon),
      d_lat_(opts.d_lat) {}

void StormTrackGenerator::AdvanceEye() {
  const auto& g = lin_.options();
  lon_ += d_lon_;
  lat_ += d_lat_;
  day_ = std::min(day_ + opts_.days_per_step, g.time_horizon_days);
  // Bounce off the map edges so long runs stay in range.
  if (lon_ < g.lon_min || lon_ > g.lon_max) {
    d_lon_ = -d_lon_;
    lon_ = std::clamp(lon_, g.lon_min, g.lon_max);
  }
  if (lat_ < g.lat_min || lat_ > g.lat_max) {
    d_lat_ = -d_lat_;
    lat_ = std::clamp(lat_, g.lat_min, g.lat_max);
  }
}

core::Key StormTrackGenerator::Next() {
  if (draws_this_step_ >= opts_.queries_per_step) {
    draws_this_step_ = 0;
    AdvanceEye();
  }
  ++draws_this_step_;

  const auto& g = lin_.options();
  sfc::GeoTemporalQuery q;
  q.longitude = std::clamp(rng_.Normal(lon_, opts_.radius_deg), g.lon_min,
                           g.lon_max);
  q.latitude = std::clamp(rng_.Normal(lat_, opts_.radius_deg), g.lat_min,
                          g.lat_max);
  q.epoch_days = std::clamp(day_, 0.0, g.time_horizon_days);
  auto key = lin_.EncodeQuery(q);
  // Clamped coordinates are always in range.
  return key.ok() ? *key : 0;
}

}  // namespace ecc::workload
