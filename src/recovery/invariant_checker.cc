#include "recovery/invariant_checker.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace ecc::recovery {

std::string InvariantReport::ToString() const {
  std::ostringstream os;
  os << "issued=" << writes_issued << " acked=" << writes_acked
     << " unrecoverable=" << keys_unrecoverable
     << " durable_pending=" << keys_durable_pending
     << " reads=" << reads_checked
     << " lost_acks=" << lost_acks << " mismatches=" << value_mismatches
     << " stale=" << stale_serves << " divergences=" << divergences
     << (ok() ? " OK" : " VIOLATED");
  return os.str();
}

std::uint64_t InvariantChecker::RecordIssued(std::uint64_t key,
                                             const std::string& value) {
  const std::uint64_t seq = next_seq_++;
  keys_[key].live.push_back({seq, DigestTerm(key, value)});
  ++report_.writes_issued;
  return seq;
}

void InvariantChecker::RecordAcked(std::uint64_t key, std::uint64_t seq) {
  KeyHistory& h = keys_[key];
  ++report_.writes_acked;
  if (h.acked && seq <= h.last_acked_seq) return;
  h.acked = true;
  h.last_acked_seq = seq;
  // Older issued writes can no longer legally be served; remember only
  // their digests, to classify a stale serve as stale rather than corrupt.
  for (const IssuedWrite& w : h.live) {
    if (w.seq < seq) h.superseded.insert(w.digest);
  }
  std::erase_if(h.live, [&](const IssuedWrite& w) { return w.seq < seq; });
}

void InvariantChecker::RecordUnrecoverable(std::uint64_t key) {
  if (durable_restarts_) {
    // The crashed holders persist state a restart can replay: keep the
    // obligation alive.  A later missing read of this key is a lost ack.
    if (durable_pending_.insert(key).second) ++report_.keys_durable_pending;
    return;
  }
  if (unrecoverable_.insert(key).second) ++report_.keys_unrecoverable;
}

ReadVerdict InvariantChecker::Observe(std::uint64_t key, bool found,
                                      const std::string& value) {
  ++report_.reads_checked;
  const auto it = keys_.find(key);
  const bool acked = it != keys_.end() && it->second.acked;

  if (!found) {
    if (acked && unrecoverable_.count(key) == 0) {
      Tally(key, ReadVerdict::kLostAck);
      return ReadVerdict::kLostAck;
    }
    return ReadVerdict::kOk;
  }

  // A value came back: it must be an issued one, and — for acked keys —
  // no older than the last acknowledged write.  "Unrecoverable" excuses
  // absence, never a wrong value.
  const std::uint64_t digest = DigestTerm(key, value);
  if (it != keys_.end()) {
    const KeyHistory& h = it->second;
    for (const IssuedWrite& w : h.live) {
      if (w.digest == digest) {
        return ReadVerdict::kOk;  // pruning guarantees w.seq >= last ack
      }
    }
    if (h.superseded.count(digest) != 0) {
      Tally(key, ReadVerdict::kStaleServe);
      return ReadVerdict::kStaleServe;
    }
  }
  Tally(key, ReadVerdict::kValueMismatch);
  return ReadVerdict::kValueMismatch;
}

void InvariantChecker::ObserveConvergence(std::uint64_t primary_digest,
                                          std::uint64_t mirror_digest) {
  if (primary_digest == mirror_digest) return;
  ++report_.divergences;
  if (trace_ != nullptr) {
    trace_->Append(obs::InvariantViolationEvent(
        Now(), obs::kNoKey, obs::InvariantViolationKind::kDivergence));
  }
}

bool InvariantChecker::Acked(std::uint64_t key) const {
  const auto it = keys_.find(key);
  return it != keys_.end() && it->second.acked;
}

void InvariantChecker::BindTrace(obs::TraceLog* trace,
                                 std::function<TimePoint()> now) {
  trace_ = trace;
  now_ = std::move(now);
}

void InvariantChecker::EmitSummary() {
  if (trace_ == nullptr) return;
  trace_->Append(obs::InvariantCheckEvent(Now(), report_.reads_checked,
                                          report_.violations(),
                                          report_.keys_unrecoverable));
}

void InvariantChecker::Tally(std::uint64_t key, ReadVerdict v) {
  obs::InvariantViolationKind kind = obs::InvariantViolationKind::kLostAck;
  switch (v) {
    case ReadVerdict::kLostAck:
      ++report_.lost_acks;
      kind = obs::InvariantViolationKind::kLostAck;
      break;
    case ReadVerdict::kValueMismatch:
      ++report_.value_mismatches;
      kind = obs::InvariantViolationKind::kValueMismatch;
      break;
    case ReadVerdict::kStaleServe:
      ++report_.stale_serves;
      kind = obs::InvariantViolationKind::kStaleServe;
      break;
    case ReadVerdict::kOk:
      return;
  }
  if (trace_ != nullptr) {
    trace_->Append(obs::InvariantViolationEvent(Now(), key, kind));
  }
}

}  // namespace ecc::recovery
