// Self-healing layer: failure detection, re-replication, anti-entropy.
//
// Before this layer the cache *survived* node loss (mirror copies answer
// failover Gets; KillNode repoints the dead node's buckets) but never
// *repaired* it: detection happened only when a Put tripped over a down
// endpoint, and lost copies stayed lost, so a second crash could drop keys
// whose only remaining copy sat on the second victim.  This module closes
// the detect -> repair -> re-protect loop:
//
//   * FailureDetector — periodic liveness probes (one STATS round trip per
//     node on the charge-free background channel) driven by the virtual
//     clock.  A node that misses `suspect_threshold` consecutive probe
//     rounds is confirmed dead and crashed through the same ring-repair
//     path CrashNodeInternal uses — proactively, with zero Put-path
//     involvement.  Probes ride the fault injector like any other RPC, so
//     injected drops and delays exercise the suspicion counter; a single
//     lost heartbeat only *suspects* a node, never kills it.
//
//   * RecoveryManager — after any confirmed death (detector-driven or any
//     other crash path; it scans ElasticCache::kill_history), walks the
//     surviving copies of the dead node's keys — live primary, live mirror,
//     then the spill tier — and re-inserts them through the normal GBA Put
//     machinery, restoring the `replicas` copy invariant.  Work proceeds in
//     interruptible batches; each batch stages its reads and records
//     per-key pre-state first, so a failure mid-batch rolls back cleanly
//     (copies that existed before the batch are never erased) and the
//     batch retries on the next tick.
//
//   * Anti-entropy scrub — every `scrub_every_ticks` maintenance ticks
//     (replicated fleets only), fold a commutative per-bucket digest over
//     the primary half of each arc and its mirror image, diff divergent
//     buckets key-by-key, and repair: a missing mirror is re-written, a
//     conflicting mirror is overwritten (the primary copy is
//     authoritative).  Orphan mirrors — a mirror with no live primary —
//     are deliberately left alone: that is exactly the stale redundancy
//     GetStale serves, and recovery may still salvage from it.
//
// RecoveryManager implements core::MaintenanceTask, so either coordinator
// drives the whole loop from its quiesced time-step boundary
// (AttachMaintenance); nothing here is thread-safe on its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/time.h"
#include "core/elastic_cache.h"
#include "core/maintenance.h"
#include "obs/obs.h"

namespace ecc::durability {
class FleetDurability;
}  // namespace ecc::durability

namespace ecc::recovery {

struct RecoveryOptions {
  /// Master switch; false = Tick() costs one branch.
  bool enabled = false;

  /// Virtual-time spacing of heartbeat rounds.  Elapsed virtual time since
  /// the last poll is converted to rounds (capped at `suspect_threshold` —
  /// a long quiet slice cannot over-confirm), with a floor of one round per
  /// poll so detection also progresses on idle ticks.  Zero disables the
  /// detector (recovery/scrub still run for crashes from other paths).
  Duration heartbeat_every = Duration::Millis(250);

  /// Consecutive missed probe rounds before a node is confirmed dead.
  std::size_t suspect_threshold = 3;

  /// Probes per node per round; the round fails only if all are lost.
  /// Softens probabilistic heartbeat drops without lengthening detection.
  std::size_t probe_attempts = 2;

  /// Run the anti-entropy scrub every this many ticks (0 = never).
  std::uint64_t scrub_every_ticks = 0;

  /// Keys re-replicated per two-phase batch.
  std::size_t rereplicate_batch = 32;

  /// Fleet durability manager (not owned; nullptr = none).  When set, a key
  /// whose every in-memory copy died is salvaged from the retired nodes'
  /// WAL + snapshot state before being declared unrecoverable.
  durability::FleetDurability* durable = nullptr;

  /// Metric / trace sinks (none owned).
  obs::Observability obs;
};

/// Overlay `base` with ECC_* environment knobs (see README):
///   ECC_RECOVERY=1          enable the subsystem
///   ECC_HEARTBEAT_MS=<n>    heartbeat round spacing (0 = detector off)
///   ECC_SUSPECT_N=<n>       missed rounds before confirmation
///   ECC_SCRUB_EVERY=<n>     scrub period in ticks (0 = never)
[[nodiscard]] RecoveryOptions RecoveryOptionsFromEnv(RecoveryOptions base = {});

/// Heartbeat prober with a per-node suspicion counter.  Poll() is cheap on
/// a healthy fleet: NodeCount probes, no virtual-time charge.
class FailureDetector {
 public:
  /// Neither pointer is owned.
  FailureDetector(const RecoveryOptions& opts, core::ElasticCache* cache,
                  VirtualClock* clock);

  /// Run the probe rounds owed since the last poll.  Confirmed-dead nodes
  /// are crashed via ElasticCache::KillNode (never the last node of the
  /// fleet) and reported through kill_history like any other crash.
  /// Returns the number of nodes confirmed dead this poll.
  std::size_t Poll();

  /// Current suspicion count for `id` (0 = healthy or unknown).
  [[nodiscard]] std::size_t SuspicionOf(core::NodeId id) const;

 private:
  RecoveryOptions opts_;
  core::ElasticCache* cache_;
  VirtualClock* clock_;
  obs::TraceLog* trace_ = nullptr;
  std::map<core::NodeId, std::size_t> suspicion_;
  TimePoint last_poll_;
  bool polled_once_ = false;

  obs::Counter m_heartbeats_, m_probe_failures_;
  obs::Counter m_suspected_, m_confirmed_;
};

/// The maintenance task either coordinator drives: detector poll, then
/// re-replication of any newly crashed node's keys, then (periodically)
/// the anti-entropy scrub.
class RecoveryManager final : public core::MaintenanceTask {
 public:
  /// Neither pointer is owned; `cache` must outlive the manager.
  RecoveryManager(RecoveryOptions opts, core::ElasticCache* cache,
                  VirtualClock* clock);

  void Tick() override;

  /// Force one scrub pass now (tests / operator tooling); returns the
  /// number of divergent buckets found (0 = fleet coherent).
  std::size_t ScrubNow();

  [[nodiscard]] const RecoveryOptions& options() const { return opts_; }
  [[nodiscard]] const FailureDetector& detector() const { return detector_; }
  /// Keys awaiting re-replication (non-empty after a rolled-back batch).
  [[nodiscard]] std::size_t pending_keys() const { return pending_.size(); }
  /// Maintenance ticks received while enabled (coordinator wiring tests).
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  /// Pull keys_dropped from kill reports not yet seen into pending_,
  /// normalized to logical (primary-half) keys and deduplicated.
  void IngestNewCrashes();

  /// Re-replicate pending_ in two-phase batches.  Stops early (keeping the
  /// failed batch queued) if a batch rolls back.
  void ProcessPending();

  /// One batch: stage salvage reads + pre-state, apply, roll back on
  /// failure.  Returns false if the batch rolled back.
  bool ProcessBatch(const std::vector<core::Key>& batch);

  /// Anti-entropy pass over every ring bucket; returns divergent buckets.
  std::size_t Scrub();

  RecoveryOptions opts_;
  core::ElasticCache* cache_;
  VirtualClock* clock_;
  FailureDetector detector_;
  obs::TraceLog* trace_ = nullptr;

  /// kill_history() entries already ingested.
  std::size_t kills_seen_ = 0;
  /// Logical keys still owed a repair, in discovery order (dedup via set).
  std::deque<core::Key> pending_;
  std::set<core::Key> pending_set_;
  std::uint64_t ticks_ = 0;

  obs::Counter m_rereplicated_, m_from_spill_, m_from_wal_, m_unrecoverable_;
  obs::Counter m_batches_, m_batch_rollbacks_;
  obs::Counter m_scrub_passes_, m_scrub_repairs_, m_scrub_divergent_;
};

}  // namespace ecc::recovery
