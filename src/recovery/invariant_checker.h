// Consistency oracle for chaos runs: a history log of every issued and
// acknowledged write, checked against what the fleet actually serves.
//
// The contract under test is the one a client can hold the cache to from
// outside, with no knowledge of partitions, retries, or failovers:
//
//   1. No lost acknowledged writes.  Once a Put is acknowledged, a read of
//      that key must return the acknowledged value or a *newer* issued one
//      — never "not found", never an older value — unless the run recorded
//      the key as unrecoverable (every holder of an acked copy died, which
//      the accounting must say out loud, not discover at read time).
//   2. Reads serve issued values only.  A value that matches no issued
//      write for its key is corruption that leaked through the transport.
//   3. Bounded staleness on degraded serves.  With W=2 replication every
//      acked write reached both copies, so the bound is zero: even a
//      failover read from the mirror must reflect the last acked write.
//      A value that *was* issued but is older than the last ack is a
//      stale serve, tracked separately from corruption.
//   4. Convergence after heal.  Once partitions heal and the scrub pass
//      runs, the primary and mirror copy sets must fold to the same
//      commutative digest (the anti-entropy digest from the recovery
//      layer) over every acknowledged key.
//
// Ghost writes are legal by rule 1's "or newer" clause: a Put the client
// timed out on (never acked) can still land when a healed partition
// flushes proxy-buffered bytes, so a read may return a value *newer* than
// the last ack.  It must still be a value some client actually issued.
//
// The checker is transport-agnostic bookkeeping: the runner feeds it
// issue/ack/read observations and it renders verdicts (and emits
// invariant_violation / invariant_check trace events when bound).
// Single-threaded, like the runner's driver loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/digest.h"
#include "common/time.h"
#include "obs/trace.h"

namespace ecc::recovery {

/// Commutative-fold digest term for one record: a splitmix64-style mix of
/// the key with an FNV-1a hash of the value.  Equal key/value *sets* — in
/// any order, on any node — fold (by u64 addition) to equal digests, and a
/// single flipped byte moves the sum with overwhelming probability.
/// Shared by the anti-entropy scrub, the chaos convergence check, and the
/// warm-rejoin delta sync, so all compare the same quantity (the
/// implementation lives in common/digest.h; this alias keeps existing
/// recovery-layer callers spelled the same).
[[nodiscard]] inline std::uint64_t DigestTerm(std::uint64_t key,
                                              const std::string& value) {
  return common::DigestTerm(key, value);
}

/// One read verdict from InvariantChecker::Observe.
enum class ReadVerdict : std::uint8_t {
  kOk = 0,
  kLostAck,        ///< acked key read back missing
  kValueMismatch,  ///< value matches no issued write for the key
  kStaleServe,     ///< issued value, but older than the last ack
};

struct InvariantReport {
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_acked = 0;
  std::uint64_t keys_unrecoverable = 0;
  /// Keys whose every live holder died while durable restarts were
  /// declared (SetDurableRestarts): the acked write survives in a WAL, so
  /// the obligation stays alive instead of being excused.  Informational —
  /// a restart that fails to honor one of these shows up as a lost ack.
  std::uint64_t keys_durable_pending = 0;
  std::uint64_t reads_checked = 0;
  std::uint64_t lost_acks = 0;
  std::uint64_t value_mismatches = 0;
  std::uint64_t stale_serves = 0;
  std::uint64_t divergences = 0;

  [[nodiscard]] std::uint64_t violations() const {
    return lost_acks + value_mismatches + stale_serves + divergences;
  }
  [[nodiscard]] bool ok() const { return violations() == 0; }
  [[nodiscard]] std::string ToString() const;
};

class InvariantChecker {
 public:
  /// A write is leaving the client: remember its value digest.  Returns the
  /// write's sequence number, to be passed to RecordAcked if and only if
  /// the fleet acknowledges it.
  std::uint64_t RecordIssued(std::uint64_t key, const std::string& value);

  /// The fleet acknowledged write `seq` on `key`.  From here on, reads of
  /// `key` must reflect this write or a newer issued one.
  void RecordAcked(std::uint64_t key, std::uint64_t seq);

  /// Every holder of `key`'s acked copies died; a missing read is excused
  /// (but a *wrong value* never is).  With durable restarts declared
  /// (SetDurableRestarts) the excuse is refused: the acked write still
  /// exists in a crashed holder's WAL, so the key is tallied in
  /// keys_durable_pending and a missing read remains a lost ack.
  void RecordUnrecoverable(std::uint64_t key);

  /// Restart-aware loss accounting.  Declare (before the faults fire) that
  /// crashed nodes persist their shard to a WAL+snapshot a restart can
  /// replay.  While set, RecordUnrecoverable never excuses absence — an
  /// acked write surviving only in a WAL is still an invariant obligation
  /// that the restarted node must serve.
  void SetDurableRestarts(bool on) { durable_restarts_ = on; }
  [[nodiscard]] bool durable_restarts() const { return durable_restarts_; }

  /// Judge one read.  `found`/`value` are what the fleet returned.  The
  /// verdict is also tallied into the report and traced when bound.
  ReadVerdict Observe(std::uint64_t key, bool found, const std::string& value);

  /// Judge the post-heal scrub: commutative digests folded over the same
  /// acked key set on primary and mirror must match.
  void ObserveConvergence(std::uint64_t primary_digest,
                          std::uint64_t mirror_digest);

  [[nodiscard]] const InvariantReport& report() const { return report_; }

  /// True iff `key` has at least one acknowledged write.
  [[nodiscard]] bool Acked(std::uint64_t key) const;

  /// Emit per-violation events and the final summary to `trace` (not
  /// owned; nullptr detaches).  `now` supplies event timestamps (defaults
  /// to the epoch when empty).
  void BindTrace(obs::TraceLog* trace, std::function<TimePoint()> now = {});

  /// Emit the invariant_check summary event for the run so far.
  void EmitSummary();

 private:
  struct IssuedWrite {
    std::uint64_t seq = 0;
    std::uint64_t digest = 0;  ///< DigestTerm(key, value)
  };
  struct KeyHistory {
    /// Issued writes still eligible to be read back: everything with
    /// seq >= last acked (older entries move to `superseded` on ack).
    std::vector<IssuedWrite> live;
    /// Digests of issued-but-outdated writes, kept to tell a stale serve
    /// (old but real value) apart from corruption (value never issued).
    std::unordered_set<std::uint64_t> superseded;
    std::uint64_t last_acked_seq = 0;
    bool acked = false;
  };

  void Tally(std::uint64_t key, ReadVerdict v);
  [[nodiscard]] TimePoint Now() const {
    return now_ ? now_() : TimePoint::Epoch();
  }

  std::unordered_map<std::uint64_t, KeyHistory> keys_;
  std::unordered_set<std::uint64_t> unrecoverable_;
  std::unordered_set<std::uint64_t> durable_pending_;
  bool durable_restarts_ = false;
  std::uint64_t next_seq_ = 1;
  InvariantReport report_;
  obs::TraceLog* trace_ = nullptr;
  std::function<TimePoint()> now_;
};

}  // namespace ecc::recovery
