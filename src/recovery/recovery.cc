#include "recovery/recovery.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string>
#include <utility>

#include "cloudsim/persistent_store.h"
#include "durability/durability.h"
#include "recovery/invariant_checker.h"

namespace ecc::recovery {

namespace {

const char* Env(const char* name) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? nullptr : v;
}

bool EnvFlag(const char* name, bool fallback) {
  const char* v = Env(name);
  if (v == nullptr) return fallback;
  return !(v[0] == '0' && v[1] == '\0');
}

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* v = Env(name);
  return v == nullptr ? fallback : std::strtoll(v, nullptr, 10);
}

}  // namespace

RecoveryOptions RecoveryOptionsFromEnv(RecoveryOptions base) {
  base.enabled = EnvFlag("ECC_RECOVERY", base.enabled);
  base.heartbeat_every = Duration::Millis(
      EnvInt("ECC_HEARTBEAT_MS", base.heartbeat_every.micros() / 1000));
  base.suspect_threshold = static_cast<std::size_t>(EnvInt(
      "ECC_SUSPECT_N", static_cast<std::int64_t>(base.suspect_threshold)));
  base.scrub_every_ticks = static_cast<std::uint64_t>(EnvInt(
      "ECC_SCRUB_EVERY", static_cast<std::int64_t>(base.scrub_every_ticks)));
  return base;
}

// --- FailureDetector -------------------------------------------------------

FailureDetector::FailureDetector(const RecoveryOptions& opts,
                                 core::ElasticCache* cache,
                                 VirtualClock* clock)
    : opts_(opts), cache_(cache), clock_(clock), trace_(opts.obs.trace) {
  assert(cache != nullptr && clock != nullptr);
  m_heartbeats_ = opts_.obs.MakeCounter("recovery.heartbeats");
  m_probe_failures_ = opts_.obs.MakeCounter("recovery.probe_failures");
  m_suspected_ = opts_.obs.MakeCounter("recovery.nodes_suspected");
  m_confirmed_ = opts_.obs.MakeCounter("recovery.nodes_confirmed_dead");
}

std::size_t FailureDetector::Poll() {
  if (opts_.heartbeat_every <= Duration::Zero()) return 0;
  const std::size_t threshold = std::max<std::size_t>(1, opts_.suspect_threshold);
  const TimePoint now = clock_->now();

  // Rounds owed since the last poll, by virtual time.  Capped at the
  // suspicion threshold: however long the quiet slice was, confirming a
  // death still takes `threshold` *distinct* failed probes this poll.
  // Floor of one so idle ticks (no virtual time passing) still probe.
  std::size_t rounds = 1;
  if (polled_once_) {
    const std::int64_t owed =
        (now - last_poll_).micros() / opts_.heartbeat_every.micros();
    rounds = static_cast<std::size_t>(
        std::clamp<std::int64_t>(owed, 1, static_cast<std::int64_t>(threshold)));
  }
  last_poll_ = now;
  polled_once_ = true;

  const std::size_t attempts = std::max<std::size_t>(1, opts_.probe_attempts);
  std::size_t confirmed = 0;
  std::vector<core::NodeId> ids;
  for (std::size_t round = 0; round < rounds; ++round) {
    ids = cache_->NodeIds();
    for (const core::NodeId id : ids) {
      bool alive = false;
      for (std::size_t a = 0; a < attempts && !alive; ++a) {
        m_heartbeats_.Inc();
        alive = cache_->ProbeNode(id);
        if (!alive) m_probe_failures_.Inc();
      }
      if (alive) {
        suspicion_.erase(id);
        continue;
      }
      std::size_t& s = suspicion_[id];
      if (s < threshold) ++s;
      if (s < threshold) {
        m_suspected_.Inc();
        obs::Emit(trace_, obs::NodeSuspectedEvent(now, id, s));
        continue;
      }
      // Confirmed dead — unless it is the last node standing, which the
      // ring cannot repair around (keep it suspected; a later Put will
      // surface the failure to the caller instead).
      if (cache_->NodeCount() <= 1) continue;
      m_confirmed_.Inc();
      obs::Emit(trace_, obs::NodeConfirmedDeadEvent(now, id, s));
      suspicion_.erase(id);
      auto report = cache_->KillNode(id);
      (void)report;  // keys land in kill_history for the RecoveryManager
      ++confirmed;
    }
  }
  // Forget suspicions of nodes that left the fleet through other paths.
  for (auto it = suspicion_.begin(); it != suspicion_.end();) {
    if (std::find(ids.begin(), ids.end(), it->first) == ids.end()) {
      it = suspicion_.erase(it);
    } else {
      ++it;
    }
  }
  return confirmed;
}

std::size_t FailureDetector::SuspicionOf(core::NodeId id) const {
  const auto it = suspicion_.find(id);
  return it == suspicion_.end() ? 0 : it->second;
}

// --- RecoveryManager -------------------------------------------------------

RecoveryManager::RecoveryManager(RecoveryOptions opts,
                                 core::ElasticCache* cache,
                                 VirtualClock* clock)
    : opts_(std::move(opts)),
      cache_(cache),
      clock_(clock),
      detector_(opts_, cache, clock),
      trace_(opts_.obs.trace) {
  assert(cache != nullptr && clock != nullptr);
  m_rereplicated_ = opts_.obs.MakeCounter("recovery.keys_rereplicated");
  m_from_spill_ = opts_.obs.MakeCounter("recovery.keys_from_spill");
  m_from_wal_ = opts_.obs.MakeCounter("recovery.keys_from_wal");
  m_unrecoverable_ = opts_.obs.MakeCounter("recovery.keys_unrecoverable");
  m_batches_ = opts_.obs.MakeCounter("recovery.batches");
  m_batch_rollbacks_ = opts_.obs.MakeCounter("recovery.batch_rollbacks");
  m_scrub_passes_ = opts_.obs.MakeCounter("recovery.scrub_passes");
  m_scrub_repairs_ = opts_.obs.MakeCounter("recovery.scrub_repairs");
  m_scrub_divergent_ =
      opts_.obs.MakeCounter("recovery.scrub_divergent_buckets");
}

void RecoveryManager::Tick() {
  if (!opts_.enabled) return;
  ++ticks_;
  detector_.Poll();
  IngestNewCrashes();
  ProcessPending();
  if (opts_.scrub_every_ticks > 0 && ticks_ % opts_.scrub_every_ticks == 0) {
    Scrub();
  }
}

std::size_t RecoveryManager::ScrubNow() { return Scrub(); }

void RecoveryManager::IngestNewCrashes() {
  const auto& kills = cache_->kill_history();
  const core::ElasticCacheOptions& o = cache_->options();
  const std::uint64_t half = o.ring.range / 2;
  for (; kills_seen_ < kills.size(); ++kills_seen_) {
    for (const core::Key k : kills[kills_seen_].keys_dropped) {
      // Normalize the dead node's physical keys to logical primaries: a
      // mirror-half position maps back to the primary it shadows.
      const core::Key logical =
          (o.replicas >= 2 && k >= half) ? cache_->MirrorKey(k) : k;
      if (pending_set_.insert(logical).second) pending_.push_back(logical);
    }
  }
}

void RecoveryManager::ProcessPending() {
  const std::size_t batch_size = std::max<std::size_t>(1, opts_.rereplicate_batch);
  while (!pending_.empty()) {
    const std::size_t n = std::min(batch_size, pending_.size());
    const std::vector<core::Key> batch(pending_.begin(),
                                       pending_.begin() + n);
    if (!ProcessBatch(batch)) return;  // rolled back; retry next tick
    for (std::size_t i = 0; i < n; ++i) {
      pending_set_.erase(pending_.front());
      pending_.pop_front();
    }
  }
}

bool RecoveryManager::ProcessBatch(const std::vector<core::Key>& batch) {
  const bool mirrored = cache_->options().replicas >= 2;

  // Phase 1 — stage: salvage a value for every key still missing a copy and
  // record its pre-batch state, so a failed apply knows exactly which
  // copies the batch itself created.
  struct Plan {
    core::Key key = 0;
    std::string value;
    bool from_spill = false;
    bool from_wal = false;
    bool pre_primary = false;
    bool pre_mirror = false;
  };
  std::vector<Plan> plans;
  std::uint64_t unrecoverable = 0;
  for (const core::Key p : batch) {
    Plan plan;
    plan.key = p;
    const std::string* primary = nullptr;
    if (auto owner = cache_->OwnerOf(p); owner.ok()) {
      if (const core::CacheNode* n = cache_->GetNode(*owner); n != nullptr) {
        primary = n->Find(p);
      }
    }
    plan.pre_primary = primary != nullptr;
    const std::string* mirror = nullptr;
    if (mirrored) {
      if (auto owner = cache_->ReplicaOwnerOf(p); owner.ok()) {
        if (const core::CacheNode* n = cache_->GetNode(*owner);
            n != nullptr) {
          mirror = n->Find(cache_->MirrorKey(p));
        }
      }
    }
    plan.pre_mirror = mirror != nullptr;
    if (plan.pre_primary && (!mirrored || plan.pre_mirror)) continue;  // whole

    if (primary != nullptr) {
      plan.value = *primary;
    } else if (mirror != nullptr) {
      plan.value = *mirror;
    } else {
      // Every in-memory copy is gone: fall through the persistent tiers —
      // the spill store, then the retired nodes' WAL + snapshot state.
      bool salvaged = false;
      if (cache_->spill_store() != nullptr) {
        auto spilled = cache_->spill_store()->Get(p);
        if (spilled.ok()) {
          plan.value = std::move(*spilled);
          plan.from_spill = true;
          salvaged = true;
        }
      }
      if (!salvaged && opts_.durable != nullptr) {
        auto durable = opts_.durable->SalvageValue(p);
        if (!durable.ok() && mirrored) {
          durable = opts_.durable->SalvageValue(cache_->MirrorKey(p));
        }
        if (durable.ok()) {
          plan.value = std::move(*durable);
          plan.from_wal = true;
          salvaged = true;
        }
      }
      if (!salvaged) {
        ++unrecoverable;
        continue;
      }
    }
    plans.push_back(std::move(plan));
  }
  m_unrecoverable_.Inc(unrecoverable);

  // Phase 2 — apply through the normal GBA machinery.  A missing primary
  // goes through Put (which also re-mirrors); a present primary with a
  // missing or divergent-by-absence mirror needs WriteMirror, because
  // plain puts are idempotent and would no-op on the existing primary.
  std::size_t applied = 0;
  std::uint64_t recovered = 0;
  std::uint64_t from_spill = 0;
  std::uint64_t from_wal = 0;
  bool failed = false;
  for (const Plan& plan : plans) {
    if (!plan.pre_primary) {
      if (const Status s = cache_->Put(plan.key, plan.value); !s.ok()) {
        failed = true;
        ++applied;  // the failed Put may have partially landed; roll it too
        break;
      }
    } else {
      cache_->WriteMirror(plan.key, plan.value);
    }
    ++applied;
    ++recovered;
    if (plan.from_spill) ++from_spill;
    if (plan.from_wal) ++from_wal;
  }

  if (failed) {
    // Roll back: erase only the copies this batch created — anything
    // present before the batch is real data and must survive the abort.
    for (std::size_t i = 0; i < applied && i < plans.size(); ++i) {
      const Plan& plan = plans[i];
      if (!plan.pre_primary) cache_->ErasePhysicalRecord(plan.key);
      if (mirrored && !plan.pre_mirror) {
        cache_->ErasePhysicalRecord(cache_->MirrorKey(plan.key));
      }
    }
    m_batch_rollbacks_.Inc();
    return false;
  }

  if (recovered > 0 || unrecoverable > 0) {
    m_batches_.Inc();
    m_rereplicated_.Inc(recovered);
    m_from_spill_.Inc(from_spill);
    m_from_wal_.Inc(from_wal);
    obs::Emit(trace_, obs::RereplicateEvent(clock_->now(), recovered,
                                            from_spill, unrecoverable));
  }
  return true;
}

std::size_t RecoveryManager::Scrub() {
  const core::ElasticCacheOptions& o = cache_->options();
  if (o.replicas < 2) return 0;  // nothing to cross-check
  const std::uint64_t half = o.ring.range / 2;

  struct Repair {
    core::Key key = 0;
    std::string value;
    obs::ScrubRepairKind kind = obs::ScrubRepairKind::kMissingMirror;
  };
  std::vector<Repair> repairs;
  std::size_t divergent = 0;

  // Read-only pass first: repairs can split nodes and move buckets, so no
  // ring mutation may happen while we walk buckets_ by index.
  const auto& ring = cache_->ring();
  const std::vector<core::NodeId> ids = cache_->NodeIds();
  for (std::size_t idx = 0; idx < ring.bucket_count(); ++idx) {
    // The bucket's key interval(s), clipped to the primary half of the
    // line; the mirror image of [lo, hi] is [lo + r/2, hi + r/2].
    std::vector<std::pair<core::Key, core::Key>> ranges;
    for (const auto& [lo, hi] : cache_->ArcKeyRanges(ring.ArcOf(idx))) {
      if (lo >= half) continue;
      ranges.emplace_back(lo, std::min(hi, half - 1));
    }
    if (ranges.empty()) continue;

    // Cheap pass: commutative digests of the primary set and the
    // (key-normalized) mirror set, across every node — identical sets
    // fold to identical sums regardless of placement.
    std::uint64_t digest_primary = 0;
    std::uint64_t digest_mirror = 0;
    for (const core::NodeId id : ids) {
      const core::CacheNode* n = cache_->GetNode(id);
      if (n == nullptr) continue;
      for (const auto& [lo, hi] : ranges) {
        for (const auto& [k, v] : n->SweepRange(lo, hi)) {
          digest_primary += DigestTerm(k, v);
        }
        for (const auto& [k, v] : n->SweepRange(lo + half, hi + half)) {
          digest_mirror += DigestTerm(k - half, v);
        }
      }
    }
    if (digest_primary == digest_mirror) continue;

    // Divergent bucket: key-level diff, the routed primary copy wins.
    std::map<core::Key, std::string> primaries;
    std::map<core::Key, std::string> mirrors;
    for (const core::NodeId id : ids) {
      const core::CacheNode* n = cache_->GetNode(id);
      if (n == nullptr) continue;
      for (const auto& [lo, hi] : ranges) {
        for (auto& [k, v] : n->SweepRange(lo, hi)) {
          auto owner = cache_->OwnerOf(k);
          if (!primaries.count(k) || (owner.ok() && *owner == id)) {
            primaries[k] = std::move(v);
          }
        }
        for (auto& [k, v] : n->SweepRange(lo + half, hi + half)) {
          const core::Key logical = k - half;
          auto owner = cache_->ReplicaOwnerOf(logical);
          if (!mirrors.count(logical) || (owner.ok() && *owner == id)) {
            mirrors[logical] = std::move(v);
          }
        }
      }
    }
    std::size_t bucket_repairs = 0;
    for (const auto& [k, v] : primaries) {
      const auto it = mirrors.find(k);
      if (it == mirrors.end()) {
        repairs.push_back({k, v, obs::ScrubRepairKind::kMissingMirror});
        ++bucket_repairs;
      } else if (it->second != v) {
        repairs.push_back({k, v, obs::ScrubRepairKind::kConflict});
        ++bucket_repairs;
      }
    }
    // Mirrors with no live primary are left alone on purpose: that stale
    // redundancy is what GetStale serves and what recovery salvages from.
    if (bucket_repairs > 0) ++divergent;
  }

  // Apply pass: now the ring may mutate freely.
  for (const Repair& r : repairs) {
    cache_->WriteMirror(r.key, r.value);
    m_scrub_repairs_.Inc();
    obs::Emit(trace_, obs::ScrubRepairEvent(clock_->now(), r.key, r.kind));
  }
  m_scrub_passes_.Inc();
  m_scrub_divergent_.Inc(divergent);
  return divergent;
}

}  // namespace ecc::recovery
