// Administrative/inspection surface for the cooperative cache.
//
// Operators (and our benches/examples) want to *see* the fleet: per-node
// fill, bucket layout, an ASCII ring map, and a one-screen stats dump.
// Everything here is read-only over the cache's public introspection API.
#pragma once

#include <string>

#include "core/elastic_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecc::core {

/// One-row-per-node fleet table: id, records, fill %, buckets, ownership
/// share of the hash line.
[[nodiscard]] std::string FleetTable(const ElasticCache& cache);

/// ASCII rendering of the hash line: `width` character cells, each showing
/// the node (A, B, C, ... by id order) owning that stretch of the line.
/// Example: "AAAABBBBBBCCAA" — wrap-around arcs show at both ends.
[[nodiscard]] std::string RingMap(const ElasticCache& cache,
                                  std::size_t width = 64);

/// Single-screen textual stats dump (hits/misses/splits/migrations/...).
[[nodiscard]] std::string StatsSummary(const CacheStats& stats);

/// Imbalance measure: coefficient of variation of per-node used bytes
/// (0 = perfectly even; meaningless for < 2 nodes, returns 0).
[[nodiscard]] double FleetFillCv(const ElasticCache& cache);

/// Full registry dump: one table per metric kind (counters, gauges), plus
/// a one-line summary per histogram.  Render a snapshot, not a registry,
/// so the dump is a consistent point in time.
[[nodiscard]] std::string DumpMetrics(const obs::MetricsSnapshot& snapshot);

/// The trace ring as JSON lines (one event per line), oldest first, with a
/// trailing `# dropped=N` comment line when the ring overwrote events.
[[nodiscard]] std::string DumpTrace(const obs::TraceLog& trace);

}  // namespace ecc::core
