#include "core/static_cache.h"

#include <cassert>

#include "fronttier/front_cache.h"

namespace ecc::core {

void StaticCache::FrontBumpKey(Key k) {
  if (hub_ != nullptr) hub_->BumpKey(k);
}

StaticCache::StaticCache(StaticCacheOptions opts, VirtualClock* clock)
    : opts_(opts),
      clock_(clock),
      net_model_(opts.net),
      ring_(opts.ring),
      rng_(opts.seed) {
  assert(clock_ != nullptr);
  assert(opts_.nodes >= 1 && opts_.buckets_per_node >= 1);
  for (std::size_t i = 0; i < opts_.nodes; ++i) {
    NodeEntry entry;
    entry.node = std::make_unique<CacheNode>(
        static_cast<NodeId>(i), /*instance=*/0, opts_.node_capacity_bytes);
    entry.tracker = MakeVictimTracker(opts_.policy);
    nodes_.emplace(static_cast<NodeId>(i), std::move(entry));
  }
  const std::size_t total_buckets = opts_.nodes * opts_.buckets_per_node;
  const std::uint64_t stride = opts_.ring.range / total_buckets;
  for (std::size_t i = 0; i < total_buckets; ++i) {
    const auto takeover =
        ring_.AddBucket((i + 1) * stride - 1,
                        static_cast<NodeId>(i % opts_.nodes));
    assert(takeover.ok());
    (void)takeover;
  }
}

std::string StaticCache::Name() const {
  return "static-" + std::to_string(opts_.nodes) + "-" +
         VictimPolicyName(opts_.policy);
}

StatusOr<std::string> StaticCache::Get(Key k) {
  ++stats_.gets;
  auto owner = OwnerOf(k);
  if (!owner.ok()) return owner.status();
  NodeEntry& entry = nodes_.at(*owner);
  clock_->Advance(opts_.local_op_time);

  const std::string* v = entry.node->Find(k);
  if (v == nullptr) {
    ++stats_.misses;
    // Request + tiny "not found" response on the wire.
    clock_->Advance(net_model_.RoundTripTime(sizeof(Key) + 8, 16));
    return Status::NotFound();
  }
  ++stats_.hits;
  entry.tracker->OnAccess(k);
  clock_->Advance(net_model_.RoundTripTime(sizeof(Key) + 8, v->size() + 16));
  return *v;
}

Status StaticCache::Put(Key k, std::string v) {
  ++stats_.puts;
  auto owner = OwnerOf(k);
  if (!owner.ok()) return owner.status();
  NodeEntry& entry = nodes_.at(*owner);
  const std::size_t rec = RecordSize(k, v);
  if (rec > opts_.node_capacity_bytes) {
    ++stats_.put_failures;
    return Status::InvalidArgument("record exceeds node capacity");
  }

  // Duplicate PUT is an idempotent refresh: no victimization, just a
  // recency touch (otherwise a full node would evict an innocent record
  // only to find the key already cached).
  if (entry.node->Contains(k)) {
    entry.tracker->OnAccess(k);
    clock_->Advance(net_model_.RoundTripTime(rec, 16));
    clock_->Advance(opts_.local_op_time);
    return Status::Ok();
  }

  // Victimize until the record fits (the LRU policy of the paper's static
  // configurations).
  while (!entry.node->CanFit(rec)) {
    auto victim = entry.tracker->PickVictim(rng_);
    if (!victim.ok()) {
      ++stats_.put_failures;
      return Status::Internal("overflowing node has no victims");
    }
    const bool erased = entry.node->Erase(*victim);
    assert(erased);
    (void)erased;
    entry.tracker->OnErase(*victim);
    FrontBumpKey(*victim);
    ++stats_.evictions;
    clock_->Advance(opts_.local_op_time);
  }

  clock_->Advance(net_model_.RoundTripTime(rec, 16));
  const Status s = entry.node->Insert(k, std::move(v));
  if (!s.ok()) {
    ++stats_.put_failures;
    return s;
  }
  entry.tracker->OnInsert(k);
  FrontBumpKey(k);
  clock_->Advance(opts_.local_op_time);
  return Status::Ok();
}

std::size_t StaticCache::EvictKeys(const std::vector<Key>& keys) {
  std::size_t erased = 0;
  for (Key k : keys) {
    auto owner = OwnerOf(k);
    if (!owner.ok()) continue;
    NodeEntry& entry = nodes_.at(*owner);
    if (entry.node->Erase(k)) {
      entry.tracker->OnErase(k);
      ++erased;
    }
    FrontBumpKey(k);
  }
  stats_.evictions += erased;
  return erased;
}

std::vector<std::pair<Key, std::string>> StaticCache::ExtractKeys(
    const std::vector<Key>& keys) {
  std::vector<std::pair<Key, std::string>> extracted;
  for (Key k : keys) {
    auto owner = OwnerOf(k);
    if (!owner.ok()) continue;
    const std::string* v = nodes_.at(*owner).node->Find(k);
    if (v != nullptr) extracted.emplace_back(k, *v);
  }
  (void)EvictKeys(keys);
  return extracted;
}

std::uint64_t StaticCache::TotalUsedBytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, entry] : nodes_) total += entry.node->used_bytes();
  return total;
}

std::uint64_t StaticCache::TotalCapacityBytes() const {
  return static_cast<std::uint64_t>(nodes_.size()) *
         opts_.node_capacity_bytes;
}

std::size_t StaticCache::TotalRecords() const {
  std::size_t total = 0;
  for (const auto& [id, entry] : nodes_) total += entry.node->record_count();
  return total;
}

std::vector<obs::NodeLoad> StaticCache::NodeLoads() const {
  std::vector<obs::NodeLoad> loads;
  loads.reserve(nodes_.size());
  for (const auto& [id, entry] : nodes_) {
    loads.push_back(obs::NodeLoad{
        .node = id,
        .records = entry.node->record_count(),
        .used_bytes = entry.node->used_bytes(),
        .capacity_bytes = entry.node->capacity_bytes(),
        .buckets = ring_.BucketsOwnedBy(id).size(),
    });
  }
  return loads;
}

const CacheNode* StaticCache::GetNode(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.node.get();
}

}  // namespace ecc::core
