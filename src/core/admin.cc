#include "core/admin.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/table.h"

namespace ecc::core {

std::string FleetTable(const ElasticCache& cache) {
  Table table({"node", "records", "used", "capacity", "fill%", "buckets",
               "ring_share%"});
  for (const NodeSnapshot& snap : cache.Snapshot()) {
    const double fill = snap.capacity_bytes == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(snap.used_bytes) /
                                  static_cast<double>(snap.capacity_bytes);
    table.AddRow({std::to_string(snap.id), std::to_string(snap.records),
                  FormatG(static_cast<double>(snap.used_bytes)),
                  FormatG(static_cast<double>(snap.capacity_bytes)),
                  FormatG(fill), std::to_string(snap.buckets),
                  FormatG(100.0 * cache.ring().OwnerFraction(snap.id))});
  }
  return table.ToString();
}

std::string RingMap(const ElasticCache& cache, std::size_t width) {
  if (width == 0) return {};
  // Stable letter per node id (A.. by ascending id; '#' past 26).
  std::map<NodeId, char> letters;
  for (const NodeSnapshot& snap : cache.Snapshot()) {
    const char c = letters.size() < 26
                       ? static_cast<char>('A' + letters.size())
                       : '#';
    letters.emplace(snap.id, c);
  }
  std::string out(width, '?');
  const std::uint64_t range = cache.options().ring.range;
  for (std::size_t i = 0; i < width; ++i) {
    // Sample the owner at the cell's midpoint position on the hash line.
    const std::uint64_t pos = static_cast<std::uint64_t>(
        (static_cast<double>(i) + 0.5) / static_cast<double>(width) *
        static_cast<double>(range));
    auto owner = cache.ring().Lookup(pos % range);
    if (owner.ok()) {
      const auto it = letters.find(*owner);
      out[i] = it == letters.end() ? '?' : it->second;
    }
  }
  return out;
}

std::string StatsSummary(const CacheStats& stats) {
  char buf[896];
  std::snprintf(
      buf, sizeof(buf),
      "gets=%llu (hits=%llu misses=%llu, rate=%.3f)  puts=%llu (failed=%llu)\n"
      "evictions=%llu  splits=%llu (proactive=%llu)  allocs=%llu  "
      "merges=%llu  failures=%llu\n"
      "migrated=%llu records / %llu bytes  split_overhead=%s "
      "(alloc=%s move=%s)\n"
      "replicas: writes=%llu drops=%llu failover_reads=%llu\n"
      "faults: rpc_retries=%llu rpc_failures=%llu degraded_gets=%llu "
      "degraded_puts=%llu mig_aborts=%llu mig_recoveries=%llu\n",
      static_cast<unsigned long long>(stats.gets),
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses), stats.HitRate(),
      static_cast<unsigned long long>(stats.puts),
      static_cast<unsigned long long>(stats.put_failures),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.splits),
      static_cast<unsigned long long>(stats.proactive_splits),
      static_cast<unsigned long long>(stats.node_allocations),
      static_cast<unsigned long long>(stats.node_removals),
      static_cast<unsigned long long>(stats.node_failures),
      static_cast<unsigned long long>(stats.records_migrated),
      static_cast<unsigned long long>(stats.bytes_migrated),
      stats.total_split_overhead.ToString().c_str(),
      stats.total_alloc_time.ToString().c_str(),
      stats.total_migration_time.ToString().c_str(),
      static_cast<unsigned long long>(stats.replica_writes),
      static_cast<unsigned long long>(stats.replica_drops),
      static_cast<unsigned long long>(stats.failover_reads),
      static_cast<unsigned long long>(stats.rpc_retries),
      static_cast<unsigned long long>(stats.rpc_failures),
      static_cast<unsigned long long>(stats.degraded_gets),
      static_cast<unsigned long long>(stats.degraded_puts),
      static_cast<unsigned long long>(stats.migration_aborts),
      static_cast<unsigned long long>(stats.migration_recoveries));
  return buf;
}

std::string DumpMetrics(const obs::MetricsSnapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    Table counters({"counter", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      counters.AddRow({name, std::to_string(value)});
    }
    out += counters.ToString();
  }
  if (!snapshot.gauges.empty()) {
    Table gauges({"gauge", "value"});
    for (const auto& [name, value] : snapshot.gauges) {
      gauges.AddRow({name, std::to_string(value)});
    }
    out += gauges.ToString();
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    out += name;
    out += ": ";
    out += histogram.Summary();
    out += '\n';
  }
  return out;
}

std::string DumpTrace(const obs::TraceLog& trace) {
  std::string out = trace.ToJsonLines();
  if (trace.dropped() > 0) {
    out += "# dropped=";
    out += std::to_string(trace.dropped());
    out += '\n';
  }
  return out;
}

double FleetFillCv(const ElasticCache& cache) {
  const auto snapshot = cache.Snapshot();
  if (snapshot.size() < 2) return 0.0;
  double mean = 0.0;
  for (const NodeSnapshot& snap : snapshot) {
    mean += static_cast<double>(snap.used_bytes);
  }
  mean /= static_cast<double>(snapshot.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const NodeSnapshot& snap : snapshot) {
    const double d = static_cast<double>(snap.used_bytes) - mean;
    var += d * d;
  }
  var /= static_cast<double>(snapshot.size());
  return std::sqrt(var) / mean;
}

}  // namespace ecc::core
