// Fixed-node cooperative cache baseline (paper §IV.B: static-2/4/8).
//
// Same consistent-hash placement and per-node B+-Tree shards as the elastic
// cache, but the fleet never grows or shrinks: on node overflow, records
// are victimized by the configured policy (LRU in the paper) until the new
// record fits.  This models "current cluster/grid environments, where the
// amounts of nodes one can allocate is typically fixed".
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "core/backend.h"
#include "core/cache_node.h"
#include "core/types.h"
#include "core/victim.h"
#include "hashring/consistent_hash.h"
#include "net/netmodel.h"

namespace ecc::core {

struct StaticCacheOptions {
  std::size_t nodes = 2;
  std::uint64_t node_capacity_bytes = 4ull << 20;
  std::size_t buckets_per_node = 4;
  hashring::RingOptions ring{.range = 1ull << 48, .mix_keys = false};
  net::NetworkModelOptions net;
  VictimPolicy policy = VictimPolicy::kLru;
  Duration local_op_time = Duration::Micros(20);
  std::uint64_t seed = 0x57a71cULL;  ///< for the Random policy
};

class StaticCache final : public CacheBackend {
 public:
  StaticCache(StaticCacheOptions opts, VirtualClock* clock);

  [[nodiscard]] std::string Name() const override;

  [[nodiscard]] StatusOr<std::string> Get(Key k) override;
  Status Put(Key k, std::string v) override;
  std::size_t EvictKeys(const std::vector<Key>& keys) override;
  std::vector<std::pair<Key, std::string>> ExtractKeys(
      const std::vector<Key>& keys) override;
  bool TryContract() override { return false; }

  /// Front-tier support: value-level bumps on Put (including victim
  /// evictions) and EvictKeys.  The topology is fixed, so the epoch never
  /// moves here.
  void AttachInvalidationHub(fronttier::InvalidationHub* hub) override {
    hub_ = hub;
  }

  [[nodiscard]] std::size_t NodeCount() const override {
    return nodes_.size();
  }
  [[nodiscard]] std::uint64_t TotalUsedBytes() const override;
  [[nodiscard]] std::uint64_t TotalCapacityBytes() const override;
  [[nodiscard]] std::size_t TotalRecords() const override;
  // Single-threaded baseline, so a plain copy is already a consistent
  // snapshot.
  [[nodiscard]] CacheStats stats() const override { return stats_; }
  [[nodiscard]] std::vector<obs::NodeLoad> NodeLoads() const override;

  [[nodiscard]] const hashring::ConsistentHashRing& ring() const {
    return ring_;
  }
  [[nodiscard]] const CacheNode* GetNode(NodeId id) const;

 private:
  struct NodeEntry {
    std::unique_ptr<CacheNode> node;
    std::unique_ptr<VictimTracker> tracker;
  };

  [[nodiscard]] StatusOr<NodeId> OwnerOf(Key k) const {
    return ring_.Lookup(k);
  }

  void FrontBumpKey(Key k);

  StaticCacheOptions opts_;
  VirtualClock* clock_;
  net::NetworkModel net_model_;
  hashring::ConsistentHashRing ring_;
  std::map<NodeId, NodeEntry> nodes_;
  Rng rng_;
  CacheStats stats_;
  fronttier::InvalidationHub* hub_ = nullptr;
};

}  // namespace ecc::core
