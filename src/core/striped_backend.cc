#include "core/striped_backend.h"

#include <cassert>
#include <utility>

namespace ecc::core {

StripedBackend::StripedBackend(ElasticCache* inner, std::size_t stripes)
    : inner_(inner), stripes_(stripes == 0 ? 1 : stripes) {
  assert(inner_ != nullptr);
  assert(inner_->options().replicas == 1 &&
         "striped fast paths touch only the owner node; replication needs "
         "LockedBackend");
}

StatusOr<std::string> StripedBackend::Get(Key k) {
  std::shared_lock<std::shared_mutex> topo(topology_mutex_);
  auto owner = inner_->OwnerOf(k);
  if (!owner.ok()) return owner.status();
  // Ownership cannot change while the topology lock is held shared, so the
  // stripe we pick stays the right one for the duration of the call.
  const std::lock_guard<std::mutex> stripe(StripeFor(*owner));
  return inner_->Get(k);
}

StatusOr<std::string> StripedBackend::GetStale(Key k) {
  // The striped fast paths require replicas == 1 (asserted at
  // construction), so the inner cache has no mirror tier and answers
  // NotFound without touching any node; the lock discipline still mirrors
  // Get in case that invariant is ever relaxed.
  std::shared_lock<std::shared_mutex> topo(topology_mutex_);
  auto owner = inner_->OwnerOf(k);
  if (!owner.ok()) return owner.status();
  const std::lock_guard<std::mutex> stripe(StripeFor(*owner));
  return inner_->GetStale(k);
}

Status StripedBackend::Put(Key k, std::string v) {
  {
    std::shared_lock<std::shared_mutex> topo(topology_mutex_);
    auto owner = inner_->OwnerOf(k);
    if (!owner.ok()) return owner.status();
    const std::lock_guard<std::mutex> stripe(StripeFor(*owner));
    const Status fast = inner_->PutNoSplit(k, v);
    if (fast.code() != StatusCode::kCapacityExceeded &&
        fast.code() != StatusCode::kUnavailable) {
      return fast;
    }
  }
  // Owner full (split required) or unreachable (ring repair required):
  // retry through the GBA insert, which may split buckets, allocate nodes,
  // crash dead nodes out of the ring, and rewrite it — exclusive access
  // required.
  std::unique_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->Put(k, std::move(v));
}

std::size_t StripedBackend::EvictKeys(const std::vector<Key>& keys) {
  std::unique_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->EvictKeys(keys);
}

std::vector<std::pair<Key, std::string>> StripedBackend::ExtractKeys(
    const std::vector<Key>& keys) {
  std::unique_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->ExtractKeys(keys);
}

bool StripedBackend::TryContract() {
  std::unique_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->TryContract();
}

std::size_t StripedBackend::NodeCount() const {
  std::shared_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->NodeCount();
}

std::uint64_t StripedBackend::TotalUsedBytes() const {
  // Aggregates read every node's byte counter, which concurrent stripe
  // holders mutate; take the writer lock to quiesce them.
  std::unique_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->TotalUsedBytes();
}

std::uint64_t StripedBackend::TotalCapacityBytes() const {
  std::shared_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->TotalCapacityBytes();
}

std::size_t StripedBackend::TotalRecords() const {
  std::unique_lock<std::shared_mutex> topo(topology_mutex_);
  return inner_->TotalRecords();
}

}  // namespace ecc::core
