// Thread-safe decorator over any CacheBackend.
//
// The elastic cache and the simulation substrate are single-threaded by
// design (the virtual clock is a shared, unsynchronized resource, matching
// the paper's sequential coordinator).  When multiple client threads front
// one cache — e.g. a pool of request handlers — wrap the backend in a
// LockedBackend: one mutex serializes every operation, so the clock, ring,
// and shards see a linearized history.
//
// Coarse-grained by intent: the virtual-time costs dominate simulated
// latency anyway, and a single lock keeps the decorated backend's
// invariants exactly those of the sequential one.  When read concurrency
// matters — the multi-worker front-end in parallel_coordinator.h — use
// StripedBackend (striped_backend.h) instead: it lets Gets to different
// nodes proceed in parallel and reserves exclusive locking for topology
// changes.  LockedBackend remains the right wrapper for configurations the
// striped fast paths exclude (replication, arbitrary CacheBackends).
#pragma once

#include <mutex>

#include "core/backend.h"

namespace ecc::core {

class LockedBackend final : public CacheBackend {
 public:
  /// `inner` is not owned and must outlive the wrapper.
  explicit LockedBackend(CacheBackend* inner) : inner_(inner) {}

  [[nodiscard]] std::string Name() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->Name() + "+locked";
  }

  [[nodiscard]] StatusOr<std::string> Get(Key k) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->Get(k);
  }

  [[nodiscard]] StatusOr<std::string> GetStale(Key k) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->GetStale(k);
  }

  void AttachSpillStore(cloudsim::PersistentStore* store) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->AttachSpillStore(store);
  }

  void AttachInvalidationHub(fronttier::InvalidationHub* hub) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->AttachInvalidationHub(hub);
  }

  Status Put(Key k, std::string v) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->Put(k, std::move(v));
  }

  std::size_t EvictKeys(const std::vector<Key>& keys) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->EvictKeys(keys);
  }

  std::vector<std::pair<Key, std::string>> ExtractKeys(
      const std::vector<Key>& keys) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->ExtractKeys(keys);
  }

  bool TryContract() override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->TryContract();
  }

  [[nodiscard]] std::size_t NodeCount() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->NodeCount();
  }

  [[nodiscard]] std::uint64_t TotalUsedBytes() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->TotalUsedBytes();
  }

  [[nodiscard]] std::uint64_t TotalCapacityBytes() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->TotalCapacityBytes();
  }

  [[nodiscard]] std::size_t TotalRecords() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->TotalRecords();
  }

  /// By-value snapshot taken under the big lock, so it is consistent with
  /// a linearization point of the operation history.
  [[nodiscard]] CacheStats stats() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->stats();
  }

  [[nodiscard]] std::vector<obs::NodeLoad> NodeLoads() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_->NodeLoads();
  }

  /// Atomically perform a miss-check-then-fill: returns the cached value,
  /// or invokes `compute` under the lock and caches its result.  This is
  /// the thundering-herd-safe variant of the coordinator's miss path.
  template <typename ComputeFn>
  StatusOr<std::string> GetOrCompute(Key k, ComputeFn&& compute) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto hit = inner_->Get(k);
    if (hit.ok()) return hit;
    StatusOr<std::string> value = compute();
    if (!value.ok()) return value.status();
    if (Status s = inner_->Put(k, *value); !s.ok()) return s;
    return value;
  }

 private:
  CacheBackend* inner_;
  mutable std::mutex mutex_;
};

}  // namespace ecc::core
