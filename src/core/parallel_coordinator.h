// ParallelCoordinator: the multi-threaded query front-end.
//
// The paper's coordinator (coordinator.h) serializes every query; its whole
// premise, though, is hiding a ~23 s service call behind the cache — so
// under concurrent load the first scaling cliff is N identical misses each
// paying the full service cost.  This front-end drives queries from an
// N-worker thread pool and closes that cliff with *single-flight miss
// coalescing*: concurrent misses on the same key elect one leader, which
// invokes the service exactly once, while followers block on a
// shared_future of the result and are accounted as coalesced hits-in-flight.
//
// Virtual time under real threads: one shared clock cannot express "eight
// workers each spent 23 s concurrently" — interleaved charges would sum to
// 184 s.  Each worker therefore owns a private VirtualClock that accumulates
// only the costs of the queries it served; a batch's virtual makespan is the
// *maximum* per-worker busy time, exactly as wall time would behave on
// dedicated cores.  The shared backend keeps its own (atomic) clock for
// infrastructure costs (boots, migrations); that timeline is not used for
// query latency.  See DESIGN.md, "Concurrency model".
//
// Lock order (outer to inner): flights/window/service mutexes are leaves
// and never nest with each other; backend locks (StripedBackend: topology
// -> stripe) are acquired only while holding none of ours.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cloudsim/persistent_store.h"
#include "cloudsim/provider.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/time.h"
#include "core/backend.h"
#include "core/coordinator.h"  // TimeStepReport
#include "core/sliding_window.h"
#include "core/types.h"
#include "fronttier/front_cache.h"
#include "obs/obs.h"
#include "overload/admission.h"
#include "overload/breaker.h"
#include "overload/overload.h"
#include "policy/policy.h"
#include "service/service.h"
#include "sfc/linearizer.h"

namespace ecc::core {

struct ParallelCoordinatorOptions {
  /// Worker threads in the pool (and per-worker accounting contexts).
  std::size_t workers = 4;
  /// Virtual cost a worker charges itself per cache probe or insert
  /// (dispatch + B+-Tree op; mirrors 2x ElasticCacheOptions::local_op_time).
  Duration lookup_cost = Duration::Micros(40);
  /// Sliding window (same semantics as CoordinatorOptions::window).
  SlidingWindowOptions window;
  /// Attempt contraction every this many slice expirations; 0 disables.
  std::size_t contraction_epsilon = 5;
  /// Observability sinks (none owned, all optional).  obs.metrics receives
  /// pc.{queries,hits,coalesced,misses}; obs.trace gets a query start/end
  /// event pair per ProcessKeyAs stamped from the serving worker's private
  /// clock (coalesced waiters end with outcome "coalesced"); obs.telemetry
  /// is fed one fleet sample per EndTimeStep (quiesced) from the backend's
  /// NodeLoads().
  obs::Observability obs;
  /// Overload protection (deadlines, admission control, breaker, stale
  /// serving); disabled by default and zero-cost when off (DESIGN.md §10).
  overload::OverloadOptions overload;
  /// Front-tier hot-key cache (DESIGN.md §12): one private FrontCache per
  /// worker thread — no shared hot-path lock — all validating against one
  /// shared, atomics-only InvalidationHub.  front.hub may name an external
  /// hub (several coordinators over one backend); otherwise this
  /// coordinator owns one and attaches it to the backend.
  fronttier::FrontTierOptions front;
  /// Elasticity policy (not owned; nullptr = owned PaperBaselinePolicy
  /// from contraction_epsilon).  Policies are not thread-safe, so this
  /// front-end consults only the boundary-time decisions (SelectEvictions/
  /// ShouldContract/PrewarmTarget) at the quiesced EndTimeStep; the
  /// per-query hooks (OnQuery/AdmitOnMiss) are never called — reuse-based
  /// policies degrade gracefully to the decay rule (DESIGN.md §13.6).
  policy::ElasticityPolicy* policy = nullptr;
  /// Cloud provider for the policy cost context + prewarm application
  /// (not owned, optional; touched only at the quiesced boundary).
  cloudsim::CloudProvider* provider = nullptr;
};

/// How one query was answered.
enum class QueryPath {
  kHit,        ///< found in the cache
  kCoalesced,  ///< joined another worker's in-flight miss (no service call)
  kMiss,       ///< led a service invocation
  kShed,       ///< refused under overload, no answer (queue full / breaker)
  kStale,      ///< shed, but answered from a degraded source within bound
};

struct ParallelQueryResult {
  QueryPath path = QueryPath::kMiss;
  /// The service answered past this query's deadline (charge clamped).
  bool deadline_exceeded = false;
  Duration latency;  ///< virtual time on the serving worker's clock
};

/// Per-worker slice of a batch, for throughput-vs-workers reporting.
struct WorkerReport {
  std::size_t worker = 0;
  std::uint64_t queries = 0;
  Duration busy;      ///< virtual time this worker spent in the batch
  double p50_us = 0;  ///< cumulative latency percentiles (all batches)
  double p99_us = 0;
};

struct ParallelBatchReport {
  std::size_t queries = 0;
  std::size_t hits = 0;
  std::size_t coalesced = 0;  ///< misses absorbed by single-flight
  std::size_t misses = 0;     ///< leader misses (service invocations led)
  std::size_t shed = 0;       ///< refused under overload, unanswered
  std::size_t stale = 0;      ///< answered from a degraded source
  std::uint64_t service_invocations = 0;  ///< backend delta over the batch
  /// Max per-worker busy time: the batch's virtual wall time given one
  /// core per worker.
  Duration makespan;
  Duration total_query_time;  ///< sum of per-worker busy times
  std::vector<WorkerReport> workers;

  [[nodiscard]] double QueriesPerSecond() const {
    const double s = makespan.seconds();
    return s <= 0.0 ? 0.0 : static_cast<double>(queries) / s;
  }
};

class ParallelCoordinator {
 public:
  /// `cache` must already be thread-safe (StripedBackend or LockedBackend).
  /// None of the pointers are owned.
  ParallelCoordinator(ParallelCoordinatorOptions opts, CacheBackend* cache,
                      service::Service* service,
                      const sfc::Linearizer* linearizer);

  /// Process one query on worker `worker` (< workers()).  Thread-safe, but
  /// each worker index must be driven by at most one thread at a time —
  /// the index names the private clock/histogram context.
  ParallelQueryResult ProcessKeyAs(std::size_t worker, Key k);

  /// Continuous-coordinate entry point (parity with Coordinator).
  StatusOr<ParallelQueryResult> ProcessQueryAs(std::size_t worker,
                                               const sfc::GeoTemporalQuery& q);

  /// Fan `keys` out across the worker pool in a strided round-robin
  /// partition (worker i serves keys i, i+N, ...) and block until every
  /// query is answered.  Striding keeps per-worker virtual accounting
  /// deterministic regardless of OS scheduling.
  ParallelBatchReport RunKeys(const std::vector<Key>& keys);

  /// Close the current time step: advance the sliding window, apply decay
  /// eviction, and every epsilon expirations attempt contraction.  Must be
  /// called with no queries in flight (asserted); step_hits includes
  /// coalesced hits-in-flight.
  TimeStepReport EndTimeStep();

  /// Attach an S3-like spill tier: decay-evicted records are written there
  /// by EndTimeStep, and the overload stale-serve path probes it for a
  /// bounded-staleness copy when the service is protected.  (Unlike the
  /// sequential Coordinator, the normal miss path does NOT reheat from
  /// spill — leaders go straight to the service.)  Not owned; the store is
  /// not thread-safe, so all access is serialized on an internal mutex.
  void AttachSpillStore(cloudsim::PersistentStore* store) {
    // Deliberately NOT forwarded to the backend: this front-end's ShedPath
    // already probes the spill under spill_mutex_, and the unsynchronized
    // store must never be reachable from concurrent backend calls.
    const std::lock_guard<std::mutex> g(spill_mutex_);
    spill_ = store;
  }

  /// Attach a background maintenance task (failure detection, recovery,
  /// anti-entropy scrub — see src/recovery/).  Ticked once per EndTimeStep,
  /// at the quiesced step boundary (no queries in flight), so the task may
  /// drive the backend's exclusive-topology API.  Not owned.
  void AttachMaintenance(MaintenanceTask* task) { maintenance_ = task; }

  [[nodiscard]] std::size_t workers() const { return worker_states_.size(); }
  [[nodiscard]] CacheBackend& cache() { return *cache_; }
  /// The active elasticity policy (owned baseline when none was supplied).
  /// Safe to inspect only while quiesced.
  [[nodiscard]] policy::ElasticityPolicy& policy() { return *policy_; }
  /// Warm-pool instances launched on the policy's PrewarmTarget (quiesced
  /// reads).
  [[nodiscard]] std::uint64_t prewarm_launches() const {
    return prewarm_launches_;
  }
  /// The window is safe to inspect only while no queries are in flight.
  [[nodiscard]] const SlidingWindow& window() const { return window_; }

  // Cumulative counters; safe to read any time.
  [[nodiscard]] std::uint64_t total_queries() const {
    return total_queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_hits() const {
    return total_hits_.load(std::memory_order_relaxed);
  }
  /// Misses that joined an in-flight computation instead of invoking the
  /// service (counted at registration, before the wait completes).
  [[nodiscard]] std::uint64_t coalesced_hits() const {
    return total_coalesced_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_misses() const {
    return total_misses_.load(std::memory_order_relaxed);
  }
  /// Queries answered by the front tier (a subset of total_hits()).
  [[nodiscard]] std::uint64_t front_hits() const {
    return total_front_hits_.load(std::memory_order_relaxed);
  }
  /// Worker `i`'s front cache; nullptr unless opts.front.enabled.  Inspect
  /// only while quiesced (the owning worker mutates it per query).
  [[nodiscard]] const fronttier::FrontCache* front(std::size_t i) const {
    return worker_states_[i].front.get();
  }
  /// Leader service invocations that failed (fault injection).  Followers
  /// of a failed flight stay kCoalesced — they are not charged the failed
  /// call's cost and do not re-invoke — and nothing is cached, so the next
  /// query for the key elects a fresh leader.
  [[nodiscard]] std::uint64_t service_failures() const {
    return total_service_failures_.load(std::memory_order_relaxed);
  }

  // --- Overload protection ------------------------------------------------

  [[nodiscard]] std::uint64_t total_shed() const {
    return total_shed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_stale() const {
    return total_stale_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_deadline_exceeded() const {
    return total_deadline_exceeded_.load(std::memory_order_relaxed);
  }
  /// nullptr unless overload.enabled && overload.breaker_enabled.
  [[nodiscard]] overload::CircuitBreaker* breaker() { return breaker_.get(); }
  /// nullptr unless overload.enabled && admission.queue_limit > 0.
  [[nodiscard]] overload::AdmissionQueue* admission() {
    return admission_.get();
  }
  /// Records written to the spill tier by decay eviction (quiesced reads).
  [[nodiscard]] std::uint64_t spill_puts() const { return spill_puts_; }

  /// Worker `i`'s private clock (its cumulative virtual busy time).
  [[nodiscard]] TimePoint WorkerTime(std::size_t i) const {
    return worker_states_[i].clock.now();
  }
  /// Latency distribution merged across workers; quiesce before calling.
  [[nodiscard]] Histogram MergedLatency() const;

 private:
  struct WorkerState {
    VirtualClock clock;
    Histogram latency_us{1.0, 1.15};
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t misses = 0;
    std::uint64_t shed = 0;
    std::uint64_t stale = 0;
    /// This worker's private front cache (null when the tier is off).
    /// Touched only by the worker's own thread mid-batch and by
    /// EndTimeStep at the quiesced boundary — never shared, never locked.
    std::unique_ptr<fronttier::FrontCache> front;
  };

  /// What a flight leader publishes to its followers.  `ok == false` means
  /// the service invocation failed: followers must not treat the empty
  /// payload as an answer (and must not be charged latency for it).
  struct FlightResult {
    bool ok = false;
    std::string payload;
  };

  /// The miss path: single-flight election, service invocation (leader) or
  /// shared_future wait (follower).  Returns the path taken; sets
  /// `deadline_exceeded` when the leader's service call outran the budget.
  QueryPath MissPath(WorkerState& w, Key k, const Deadline& deadline,
                     bool& deadline_exceeded);

  /// A leader refused service: emit the shed, then (when configured) probe
  /// the mirror replica and the spill tier for a bounded-staleness copy.
  /// Returns kStale on a degraded answer, kShed otherwise.
  QueryPath ShedPath(WorkerState& w, Key k, obs::ShedCode reason,
                     const Deadline& deadline);

  ParallelCoordinatorOptions opts_;
  CacheBackend* cache_;
  service::Service* service_;
  const sfc::Linearizer* linearizer_;
  /// Fixed at construction; WorkerState is neither copied nor moved.
  std::vector<WorkerState> worker_states_;
  ThreadPool pool_;

  std::mutex window_mutex_;  ///< guards window_ recording
  SlidingWindow window_;

  // Elasticity policy, consulted only at the quiesced boundary.
  std::unique_ptr<policy::ElasticityPolicy> own_policy_;
  policy::ElasticityPolicy* policy_ = nullptr;
  std::uint64_t prewarm_launches_ = 0;  ///< written quiesced

  std::mutex flights_mutex_;  ///< guards flights_
  std::unordered_map<Key, std::shared_future<FlightResult>> flights_;

  // Null-safe observability handles (unregistered when no registry wired).
  // Trace events are stamped from each worker's private clock, so the log's
  // timestamps are per-worker monotone, not globally ordered.
  obs::Counter m_queries_, m_hits_, m_coalesced_, m_misses_;
  obs::Counter m_shed_, m_stale_, m_deadline_;
  obs::Counter m_policy_evictions_, m_policy_contracts_, m_policy_prewarms_;
  obs::Gauge g_queue_peak_;
  obs::TraceLog* trace_ = nullptr;
  obs::FleetTelemetry* telemetry_ = nullptr;
  std::size_t steps_ended_ = 0;  ///< guarded by quiescence (EndTimeStep)

  /// Serializes service invocations: Service implementations are
  /// single-threaded (rng, counters).  Held only by flight leaders, so
  /// coalesced traffic never queues here.
  std::mutex service_mutex_;

  // Overload protection (all null/inert when opts_.overload.enabled is
  // false — the query path tests one bool).
  std::unique_ptr<overload::CircuitBreaker> breaker_;
  std::unique_ptr<overload::AdmissionQueue> admission_;
  /// Guards spill_ (PersistentStore is not thread-safe) and evicted_at_.
  std::mutex spill_mutex_;
  cloudsim::PersistentStore* spill_ = nullptr;
  std::uint64_t spill_puts_ = 0;  ///< written by EndTimeStep (quiesced)
  MaintenanceTask* maintenance_ = nullptr;  ///< ticked quiesced (EndTimeStep)
  /// Key -> steps_ended_ at decay eviction (staleness bound accounting).
  std::unordered_map<Key, std::size_t> evicted_at_;

  /// Shared invalidation hub when the front tier is on (owned unless
  /// opts_.front.hub supplied an external one).
  std::unique_ptr<fronttier::InvalidationHub> own_hub_;

  std::atomic<std::uint64_t> total_queries_{0};
  std::atomic<std::uint64_t> total_front_hits_{0};
  std::atomic<std::uint64_t> total_hits_{0};
  std::atomic<std::uint64_t> total_coalesced_{0};
  std::atomic<std::uint64_t> total_misses_{0};
  std::atomic<std::uint64_t> total_shed_{0};
  std::atomic<std::uint64_t> total_stale_{0};
  std::atomic<std::uint64_t> total_deadline_exceeded_{0};
  std::atomic<std::uint64_t> total_service_failures_{0};
  std::atomic<std::int64_t> step_query_time_us_{0};
  std::atomic<std::uint64_t> step_queries_{0};
  std::atomic<std::uint64_t> step_hits_{0};
  std::atomic<std::int64_t> in_flight_{0};
};

}  // namespace ecc::core
