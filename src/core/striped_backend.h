// Striped thread-safe front over the elastic cache.
//
// LockedBackend serializes everything behind one mutex; that is correct but
// collapses a multi-worker front-end back to the paper's sequential
// coordinator.  StripedBackend instead splits the locking by what an
// operation can touch:
//
//   * a topology lock (shared_mutex) — held *shared* by every Get/Put fast
//     path, and *exclusively* by anything that can change the ring, the
//     fleet, or cross-node state (splits, contraction, eviction, aggregate
//     inspection);
//   * per-node stripe mutexes — a Get or no-split Put locks only the stripe
//     of the key's owning node, so requests to different nodes proceed in
//     parallel.
//
// Put runs two-phase: first PutNoSplit under shared-topology + stripe (the
// common case once the fleet is warm); if the owner is full it retries
// through the full GBA insert under the exclusive topology lock, where
// splitting and allocation are safe.
//
// Lock order (outer to inner): topology -> node stripe.  (The wrapped
// cache's counters are lock-free registry cells, so there is no inner
// stats lock anymore.)  Never acquire a stripe before the topology lock.
//
// Requirements on the wrapped cache: replicas == 1 (fast paths touch only
// the owner node) — asserted at construction.  Proactive splits are fine:
// they only trigger inside the full Put, which runs exclusively.
#pragma once

#include <cstddef>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/backend.h"
#include "core/elastic_cache.h"

namespace ecc::core {

class StripedBackend final : public CacheBackend {
 public:
  /// `inner` is not owned and must outlive the wrapper.  `stripes` bounds
  /// the number of nodes that can be served concurrently.
  explicit StripedBackend(ElasticCache* inner, std::size_t stripes = 16);

  [[nodiscard]] std::string Name() const override {
    return inner_->Name() + "+striped";
  }

  [[nodiscard]] StatusOr<std::string> Get(Key k) override;
  [[nodiscard]] StatusOr<std::string> GetStale(Key k) override;

  /// Forwarded to the inner cache under the exclusive topology lock.  Note
  /// the store itself is unsynchronized: attach it here only when the inner
  /// cache's spill probes (GetStale under replicas == 1, crash accounting)
  /// are externally serialized against every other user of the store.
  void AttachSpillStore(cloudsim::PersistentStore* store) override {
    const std::unique_lock<std::shared_mutex> topo(topology_mutex_);
    inner_->AttachSpillStore(store);
  }

  /// Forwarded under the exclusive topology lock (wiring-time operation;
  /// the hub itself is atomics-only, so the inner cache's bumps need no
  /// further synchronization).
  void AttachInvalidationHub(fronttier::InvalidationHub* hub) override {
    const std::unique_lock<std::shared_mutex> topo(topology_mutex_);
    inner_->AttachInvalidationHub(hub);
  }

  Status Put(Key k, std::string v) override;
  std::size_t EvictKeys(const std::vector<Key>& keys) override;
  std::vector<std::pair<Key, std::string>> ExtractKeys(
      const std::vector<Key>& keys) override;
  bool TryContract() override;

  [[nodiscard]] std::size_t NodeCount() const override;
  [[nodiscard]] std::uint64_t TotalUsedBytes() const override;
  [[nodiscard]] std::uint64_t TotalCapacityBytes() const override;
  [[nodiscard]] std::size_t TotalRecords() const override;

  /// By-value snapshot from the inner cache; safe to poll concurrently
  /// with in-flight workers (see ElasticCache::stats for the consistency
  /// guarantees).
  [[nodiscard]] CacheStats stats() const override { return inner_->stats(); }

  /// Per-node loads, taken under the shared topology lock so the fleet
  /// cannot change mid-walk.
  [[nodiscard]] std::vector<obs::NodeLoad> NodeLoads() const override {
    const std::shared_lock<std::shared_mutex> topo(topology_mutex_);
    return inner_->NodeLoads();
  }

  [[nodiscard]] ElasticCache& inner() { return *inner_; }
  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }

 private:
  [[nodiscard]] std::mutex& StripeFor(NodeId owner) const {
    return stripes_[static_cast<std::size_t>(owner) % stripes_.size()];
  }

  ElasticCache* inner_;
  mutable std::shared_mutex topology_mutex_;
  mutable std::vector<std::mutex> stripes_;
};

}  // namespace ecc::core
