// Dynamic window sizing (the paper's §IV.D / §VI future work).
//
// The evaluation shows window length m dominates both peak speedup and node
// cost, and suggests "a dynamically changing m can be very useful in
// driving down cost."  The sliding window exists to "capture user interest
// over time", so the controller keys off traffic:
//
//   * per-slice query volume is tracked against an exponential moving
//     average;
//   * a surge (period traffic >> EMA) widens the window to capture the
//     heightened interest;
//   * waning traffic (period traffic << EMA) narrows it, letting decay
//     eviction and contraction release nodes;
//   * independently, a very high hit rate signals over-provisioning and
//     also narrows the window.
//
// Adjustments are multiplicative every `period` slices, clamped to
// [min_slices, max_slices].  The ablation_dynamic_window bench compares the
// controller against fixed windows on the paper's phased workload.
#pragma once

#include <cstdint>

#include "core/sliding_window.h"

namespace ecc::core {

struct DynamicWindowOptions {
  std::size_t min_slices = 25;
  std::size_t max_slices = 800;
  /// Grow when period traffic exceeds this multiple of the EMA.
  double grow_ratio = 1.3;
  /// Shrink when period traffic falls below this multiple of the EMA.
  double shrink_ratio = 0.75;
  /// Also shrink when the period hit rate exceeds this (diminishing
  /// returns: the window already covers the working set).
  double shrink_above = 0.9;
  double grow_factor = 1.25;
  double shrink_factor = 0.8;
  /// Slices between adjustments.
  std::size_t period = 20;
  /// EMA blend weight for the new period's traffic, in (0, 1].
  double ema_weight = 0.3;
};

class DynamicWindowPolicy {
 public:
  explicit DynamicWindowPolicy(DynamicWindowOptions opts);

  /// Feed per-slice observations; call once per time slice.
  void ObserveSlice(std::uint64_t hits, std::uint64_t misses);

  /// Apply the policy to `window` if an adjustment period elapsed.
  /// Returns true when the window length changed.
  bool MaybeAdjust(SlidingWindow& window);

  [[nodiscard]] std::size_t adjustments() const { return adjustments_; }
  [[nodiscard]] double traffic_ema() const { return traffic_ema_; }
  [[nodiscard]] const DynamicWindowOptions& options() const { return opts_; }

 private:
  DynamicWindowOptions opts_;
  std::uint64_t period_hits_ = 0;
  std::uint64_t period_misses_ = 0;
  std::size_t slices_seen_ = 0;
  double traffic_ema_ = -1.0;  ///< per-slice; <0 until first period
  std::size_t adjustments_ = 0;
};

}  // namespace ecc::core
