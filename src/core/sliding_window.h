// Temporal sliding window with exponential-decay eviction scoring
// (paper §III.B, Fig. 2).
//
// The window T = (t_1, ..., t_m) holds the keys queried in each of the m
// most recent time slices (t_1 = the slice currently filling).  When a
// slice expires past t_m, every key recorded in the expired slice gets an
// eviction score over the still-in-window slices,
//
//   lambda(k) = sum_{i=1..m} alpha^{i-1} * |{k in t_i}|
//
// and keys with lambda(k) < T_lambda are designated for global eviction.
// The baseline threshold alpha^{m-1} keeps any key queried at least once
// anywhere in the window.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace ecc::core {

struct SlidingWindowOptions {
  /// Window length m in time slices.  0 means infinite: nothing ever
  /// expires (the Fig. 3 configuration).
  std::size_t slices = 0;
  /// Decay alpha in (0, 1).
  double alpha = 0.99;
  /// Eviction threshold T_lambda; negative selects the baseline
  /// alpha^(m-1).
  double threshold = -1.0;
};

/// Result of one slice expiry.
struct SliceExpiry {
  /// Keys whose score fell below threshold (candidates for eviction).
  std::vector<Key> evicted;
  /// Distinct keys in the expired slice (scored population).
  std::size_t scored = 0;
  /// Number of slices that fell out of the window (usually 0 while the
  /// window is filling, then 1; more only right after a Resize shrink).
  std::size_t expired_slices = 0;
};

class SlidingWindow {
 public:
  explicit SlidingWindow(SlidingWindowOptions opts);

  [[nodiscard]] const SlidingWindowOptions& options() const { return opts_; }
  [[nodiscard]] bool infinite() const { return opts_.slices == 0; }
  [[nodiscard]] double EffectiveThreshold() const { return threshold_; }

  /// Record one query for `k` in the current slice t_1.
  void RecordQuery(Key k);

  /// Close the current slice and open a new one.  If a slice fell out of
  /// the window, score its keys and report eviction candidates.
  SliceExpiry AdvanceSlice();

  /// Current eviction score of `k` over the in-window slices.
  [[nodiscard]] double Lambda(Key k) const;

  /// Occurrences of `k` in slice i (1-based, 1 = newest); 0 if absent.
  [[nodiscard]] std::uint32_t CountInSlice(Key k, std::size_t i) const;

  /// Number of slices currently held (completed + the filling one).
  [[nodiscard]] std::size_t ActiveSlices() const { return window_.size(); }

  /// Distinct keys across the whole window.
  [[nodiscard]] std::size_t DistinctKeys() const;

  /// Change the window length in-flight (dynamic window extension).
  /// Shrinking expires surplus old slices on the next AdvanceSlice calls;
  /// growing simply allows the deque to lengthen.  No-op for infinite.
  void Resize(std::size_t new_slices);

 private:
  using Slice = std::unordered_map<Key, std::uint32_t>;

  SlidingWindowOptions opts_;
  double threshold_;
  /// front() = the filling slice, then t_1 (newest completed) ... t_m
  /// (oldest retained) toward back().
  std::deque<Slice> window_;
};

}  // namespace ecc::core
