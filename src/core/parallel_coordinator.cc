#include "core/parallel_coordinator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.h"

namespace ecc::core {

ParallelCoordinator::ParallelCoordinator(ParallelCoordinatorOptions opts,
                                         CacheBackend* cache,
                                         service::Service* service,
                                         const sfc::Linearizer* linearizer)
    : opts_(opts),
      cache_(cache),
      service_(service),
      linearizer_(linearizer),
      worker_states_(opts.workers == 0 ? 1 : opts.workers),
      pool_(opts.workers == 0 ? 1 : opts.workers),
      window_(opts.window) {
  assert(cache != nullptr && service != nullptr && linearizer != nullptr);
  policy_ = opts_.policy;
  if (policy_ == nullptr) {
    own_policy_ =
        std::make_unique<policy::PaperBaselinePolicy>(opts_.contraction_epsilon);
    policy_ = own_policy_.get();
  }
  m_policy_evictions_ = opts_.obs.MakeCounter("policy.evictions");
  m_policy_contracts_ = opts_.obs.MakeCounter("policy.contract_signals");
  m_policy_prewarms_ = opts_.obs.MakeCounter("policy.prewarm_launches");
  m_queries_ = opts_.obs.MakeCounter("pc.queries");
  m_hits_ = opts_.obs.MakeCounter("pc.hits");
  m_coalesced_ = opts_.obs.MakeCounter("pc.coalesced");
  m_misses_ = opts_.obs.MakeCounter("pc.misses");
  trace_ = opts_.obs.trace;
  telemetry_ = opts_.obs.telemetry;
  if (opts_.overload.enabled) {
    m_shed_ = opts_.obs.MakeCounter("overload.shed");
    m_stale_ = opts_.obs.MakeCounter("overload.stale_serves");
    m_deadline_ = opts_.obs.MakeCounter("overload.deadline_exceeded");
    if (opts_.obs.metrics != nullptr) {
      g_queue_peak_ = opts_.obs.metrics->GetGauge("overload.queue_peak");
    }
    if (opts_.overload.breaker_enabled) {
      breaker_ = std::make_unique<overload::CircuitBreaker>(
          opts_.overload.breaker, trace_);
      breaker_->BindMetrics(
          opts_.obs.MakeCounter("overload.breaker_opens"),
          opts_.obs.MakeCounter("overload.breaker_rejections"));
    }
    if (opts_.overload.admission.queue_limit > 0) {
      admission_ =
          std::make_unique<overload::AdmissionQueue>(opts_.overload.admission);
    }
  }
  if (opts_.front.enabled) {
    fronttier::InvalidationHub* hub = opts_.front.hub;
    if (hub == nullptr) {
      own_hub_ = std::make_unique<fronttier::InvalidationHub>();
      hub = own_hub_.get();
    }
    cache_->AttachInvalidationHub(hub);
    // One private front cache per worker: the hot path takes no shared
    // lock, only atomic loads from the hub.  All workers' caches register
    // the same fronttier.* counter names, so the registry cells aggregate
    // across workers for free.
    for (WorkerState& w : worker_states_) {
      w.front =
          std::make_unique<fronttier::FrontCache>(opts_.front, hub, opts_.obs);
    }
  }
}

ParallelQueryResult ParallelCoordinator::ProcessKeyAs(std::size_t worker,
                                                      Key k) {
  assert(worker < worker_states_.size());
  WorkerState& w = worker_states_[worker];
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  const TimePoint start = w.clock.now();

  {
    const std::lock_guard<std::mutex> g(window_mutex_);
    window_.RecordQuery(k);
  }
  ++w.queries;
  total_queries_.fetch_add(1, std::memory_order_relaxed);
  step_queries_.fetch_add(1, std::memory_order_relaxed);
  m_queries_.Inc();
  obs::Emit(trace_, obs::QueryStartEvent(start, k));

  const overload::OverloadOptions& ov = opts_.overload;
  Deadline deadline;
  if (ov.enabled && ov.query_deadline > Duration::Zero()) {
    deadline = Deadline{&w.clock, start + ov.query_deadline};
  }
  // Layers below (RPC retry inside the backend) read the thread-local.
  const overload::ScopedDeadline scope(deadline);

  ParallelQueryResult result;
  // Front tier: the hottest keys answer from this worker's private cache,
  // skipping the backend probe — and, crucially, the backend's stripe
  // mutex, which is what saturates under a hot-key storm.  On a front miss
  // the freshness stamp is captured BEFORE the backend read; Offer()
  // re-validates it at admission (DESIGN.md §12).
  fronttier::Stamp pre_read{};
  bool front_hit = false;
  if (w.front != nullptr) {
    if (w.front->Find(k, w.clock.now()).value != nullptr) {
      w.clock.Advance(opts_.front.hit_cost);
      front_hit = true;
      result.path = QueryPath::kHit;
      ++w.hits;
      total_hits_.fetch_add(1, std::memory_order_relaxed);
      total_front_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      pre_read = w.front->PreReadStamp(k);
    }
  }
  if (!front_hit) {
    w.clock.Advance(opts_.lookup_cost);  // the probe every path pays
    auto cached = cache_->Get(k);
    if (cached.ok()) {
      result.path = QueryPath::kHit;
      ++w.hits;
      total_hits_.fetch_add(1, std::memory_order_relaxed);
      // Hit-path admission only: the value just read is provably
      // consistent with the stamp taken above (miss-path values are not —
      // their own Put moves the version).
      if (w.front != nullptr) {
        (void)w.front->Offer(k, *cached, pre_read, w.clock.now());
      }
    } else {
      result.path = MissPath(w, k, deadline, result.deadline_exceeded);
    }
  }
  if (result.path == QueryPath::kHit || result.path == QueryPath::kCoalesced ||
      result.path == QueryPath::kStale) {
    // Coalesced and stale count toward the step hit ratio: no service work
    // was done.  Shed answers nothing, so it counts as a (refused) miss.
    step_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  result.latency = w.clock.now() - start;
  w.latency_us.Add(static_cast<double>(result.latency.micros()));
  step_query_time_us_.fetch_add(result.latency.micros(),
                                std::memory_order_relaxed);
  obs::QueryOutcomeKind outcome = obs::QueryOutcomeKind::kMiss;
  switch (result.path) {
    case QueryPath::kHit:
      m_hits_.Inc();
      outcome = obs::QueryOutcomeKind::kHit;
      break;
    case QueryPath::kCoalesced:
      m_coalesced_.Inc();
      outcome = obs::QueryOutcomeKind::kCoalesced;
      break;
    case QueryPath::kMiss:
      m_misses_.Inc();
      outcome = obs::QueryOutcomeKind::kMiss;
      break;
    case QueryPath::kShed:
      m_shed_.Inc();
      outcome = obs::QueryOutcomeKind::kShed;
      break;
    case QueryPath::kStale:
      m_stale_.Inc();
      outcome = obs::QueryOutcomeKind::kStale;
      break;
  }
  if (trace_ != nullptr) {
    trace_->Append(
        obs::QueryEndEvent(w.clock.now(), k, outcome, result.latency));
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

QueryPath ParallelCoordinator::MissPath(WorkerState& w, Key k,
                                        const Deadline& deadline,
                                        bool& deadline_exceeded) {
  // Single-flight election: exactly one leader per key at a time.
  std::promise<FlightResult> promise;
  std::shared_future<FlightResult> follow;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> g(flights_mutex_);
    auto it = flights_.find(k);
    if (it != flights_.end()) {
      follow = it->second;
    } else {
      leader = true;
      flights_.emplace(k, promise.get_future().share());
    }
  }

  if (!leader) {
    ++w.coalesced;
    total_coalesced_.fetch_add(1, std::memory_order_relaxed);
    // Block (in real time) until the leader lands the result.  In virtual
    // time the follower is a hit-in-flight: it already paid its probe, and
    // the service work it would have duplicated is charged to the leader.
    // A failed flight (result.ok == false) stays coalesced: the follower
    // was not charged the failed call either, and with nothing cached the
    // key's next query elects a fresh leader and retries the service.  A
    // *shed* flight is published the same way — nothing cached, followers
    // uncharged — so a storm refused at the gate costs one shed, not N.
    (void)follow.get();
    return QueryPath::kCoalesced;
  }

  // Leader.  Double-check the cache: the previous flight for this key may
  // have landed between our miss and our registration; without this
  // re-probe that interleaving would invoke the service a second time.
  const overload::OverloadOptions& ov = opts_.overload;
  FlightResult flight;
  bool from_cache = false;
  bool shed = false;
  obs::ShedCode shed_reason = obs::ShedCode::kQueueFull;
  w.clock.Advance(opts_.lookup_cost);
  auto again = cache_->Get(k);
  if (again.ok()) {
    flight.ok = true;
    flight.payload = std::move(*again);
    from_cache = true;
  } else {
    // Overload gates, cheapest first: a spent deadline or an open breaker
    // refuses before touching admission; the queue bounds how many leaders
    // may wait for the (serialized) service at once.
    overload::AdmissionQueue::Ticket ticket = overload::AdmissionQueue::kRejected;
    if (ov.enabled) {
      if (deadline.Expired()) {
        shed = true;
        shed_reason = obs::ShedCode::kDeadline;
      } else if (breaker_ != nullptr && !breaker_->Allow(w.clock.now())) {
        shed = true;
        shed_reason = obs::ShedCode::kBreakerOpen;
      } else if (admission_ != nullptr) {
        ticket = admission_->Enter();
        if (ticket == overload::AdmissionQueue::kRejected) {
          shed = true;
          shed_reason = obs::ShedCode::kQueueFull;
        }
      }
    }
    if (!shed) {
      const sfc::GeoTemporalQuery q = linearizer_->CellCenter(k);
      bool started = false;
      {
        // Service implementations are single-threaded; leaders of *different*
        // keys serialize here (real time only — each charges its own clock).
        const std::lock_guard<std::mutex> g(service_mutex_);
        if (admission_ != nullptr &&
            ticket != overload::AdmissionQueue::kRejected) {
          started = admission_->StartService(ticket);
          if (!started) {
            // Our ticket was revoked (drop-oldest) while we queued for the
            // service mutex; a newer query took our slot.
            shed = true;
            shed_reason = obs::ShedCode::kDropped;
          }
        }
        if (!shed && ov.enabled) {
          // Invoke on a scratch clock and charge at most the remaining
          // deadline budget: the caller stops waiting when the budget is
          // gone, even though the (late) answer still warms the cache.  The
          // breaker sees the *full* cost so browned-out slow calls trip it.
          VirtualClock scratch;
          auto invoked = service_->Invoke(q, &scratch);
          const Duration cost = scratch.now() - TimePoint::Epoch();
          const Duration remaining = deadline.Remaining();
          w.clock.Advance(std::min(cost, remaining));
          if (cost > remaining) {
            deadline_exceeded = true;
            total_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
            m_deadline_.Inc();
            obs::Emit(trace_, obs::DeadlineExceededEvent(w.clock.now(), k,
                                                         cost - remaining));
          }
          if (breaker_ != nullptr) {
            breaker_->Record(w.clock.now(), invoked.ok(), cost);
          }
          if (invoked.ok()) {
            flight.ok = true;
            flight.payload = std::move(invoked->payload);
          } else {
            total_service_failures_.fetch_add(1, std::memory_order_relaxed);
            ECC_LOG_WARN(
                "parallel-coordinator: service failed for key %llu: %s",
                static_cast<unsigned long long>(k),
                invoked.status().ToString().c_str());
          }
        } else if (!shed) {
          auto invoked = service_->Invoke(q, &w.clock);
          if (invoked.ok()) {
            flight.ok = true;
            flight.payload = std::move(invoked->payload);
          } else {
            // Injected (or real) service failure: publish the failure to the
            // followers instead of caching an empty payload as if it were an
            // answer.  Only the leader's clock carries the failed call's cost.
            total_service_failures_.fetch_add(1, std::memory_order_relaxed);
            ECC_LOG_WARN(
                "parallel-coordinator: service failed for key %llu: %s",
                static_cast<unsigned long long>(k),
                invoked.status().ToString().c_str());
          }
        }
      }
      if (admission_ != nullptr &&
          ticket != overload::AdmissionQueue::kRejected) {
        if (started) {
          admission_->Exit(ticket);
        }
        // A revoked ticket needs no Exit/Cancel: revocation already removed
        // it from the waiting set.
      }
    }
    if (flight.ok) {
      w.clock.Advance(opts_.lookup_cost);  // the insert below
      // The insert is cache maintenance, not caller-visible wait: suspend
      // the query's (possibly already-expired) deadline so the late answer
      // still warms the cache instead of having its Put RPC clipped.
      const overload::ScopedDeadline unclipped{Deadline{}};
      if (const Status s = cache_->Put(k, flight.payload); !s.ok()) {
        ECC_LOG_WARN("parallel-coordinator: put failed for key %llu: %s",
                     static_cast<unsigned long long>(k), s.ToString().c_str());
      }
      // Re-caching makes the key fresh again for staleness accounting.
      const std::lock_guard<std::mutex> g(spill_mutex_);
      if (!evicted_at_.empty()) evicted_at_.erase(k);
    }
  }

  QueryPath path = QueryPath::kMiss;
  if (shed) {
    path = ShedPath(w, k, shed_reason, deadline);
  }

  // Publish order matters: the value must be in the cache before the
  // flight is erased, so a thread that misses the table afterwards is
  // guaranteed to hit the cache.
  {
    const std::lock_guard<std::mutex> g(flights_mutex_);
    flights_.erase(k);
  }
  promise.set_value(std::move(flight));

  if (from_cache) {
    ++w.hits;
    total_hits_.fetch_add(1, std::memory_order_relaxed);
    return QueryPath::kHit;
  }
  if (path == QueryPath::kShed) {
    ++w.shed;
    total_shed_.fetch_add(1, std::memory_order_relaxed);
    return path;
  }
  if (path == QueryPath::kStale) {
    ++w.stale;
    total_stale_.fetch_add(1, std::memory_order_relaxed);
    return path;
  }
  ++w.misses;
  total_misses_.fetch_add(1, std::memory_order_relaxed);
  return QueryPath::kMiss;
}

QueryPath ParallelCoordinator::ShedPath(WorkerState& w, Key k,
                                        obs::ShedCode reason,
                                        const Deadline& deadline) {
  obs::Emit(trace_, obs::LoadShedEvent(w.clock.now(), k, reason));
  const overload::OverloadOptions& ov = opts_.overload;
  if (!ov.stale_serve) return QueryPath::kShed;

  // Degraded answer, two sources: a mirror replica whose eviction ERASE was
  // lost, then the spill tier.  Either is acceptable only within the
  // staleness bound.  The probe cost is itself deadline-clamped so a shed
  // query still lands within budget (+ at most one RPC timeout).
  w.clock.Advance(std::min(ov.stale_probe_cost, deadline.Remaining()));
  obs::StaleSource source = obs::StaleSource::kReplica;
  bool found = cache_->GetStale(k).ok();
  std::uint64_t age = 0;
  bool age_known = false;
  {
    const std::lock_guard<std::mutex> g(spill_mutex_);
    if (!found && spill_ != nullptr && spill_->Get(k).ok()) {
      source = obs::StaleSource::kSpill;
      found = true;
    }
    if (const auto it = evicted_at_.find(k); it != evicted_at_.end()) {
      age = steps_ended_ - it->second;
      age_known = true;
    }
  }
  // A copy with no eviction record is refused: the record was pruned as
  // past the bound (or never existed) — staleness must be provable.
  if (found && age_known && age <= ov.stale_bound_slices) {
    obs::Emit(trace_,
              obs::StaleServeEvent(w.clock.now(), k, source, age));
    return QueryPath::kStale;
  }
  return QueryPath::kShed;
}

StatusOr<ParallelQueryResult> ParallelCoordinator::ProcessQueryAs(
    std::size_t worker, const sfc::GeoTemporalQuery& q) {
  auto key = linearizer_->EncodeQuery(q);
  if (!key.ok()) return key.status();
  return ProcessKeyAs(worker, *key);
}

ParallelBatchReport ParallelCoordinator::RunKeys(
    const std::vector<Key>& keys) {
  const std::size_t n = worker_states_.size();
  ParallelBatchReport report;
  report.queries = keys.size();

  struct Before {
    TimePoint clock;
    std::uint64_t queries, hits, coalesced, misses, shed, stale;
  };
  std::vector<Before> before(n);
  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = worker_states_[i];
    before[i] = {w.clock.now(), w.queries, w.hits,
                 w.coalesced,   w.misses,  w.shed, w.stale};
  }
  const std::uint64_t invocations_before = service_->invocations();

  // Strided round-robin partition: worker i serves keys i, i+n, i+2n, ...
  // Unlike a shared work cursor, this keeps each worker's virtual-time
  // accounting deterministic — independent of how the OS happens to
  // schedule the real threads — while still interleaving hot bursts
  // across workers so coalescing is exercised.
  for (std::size_t i = 0; i < n; ++i) {
    pool_.Submit([this, i, n, &keys] {
      for (std::size_t at = i; at < keys.size(); at += n) {
        (void)ProcessKeyAs(i, keys[at]);
      }
    });
  }
  pool_.WaitIdle();

  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = worker_states_[i];
    WorkerReport wr;
    wr.worker = i;
    wr.queries = w.queries - before[i].queries;
    wr.busy = w.clock.now() - before[i].clock;
    wr.p50_us = w.latency_us.Percentile(50);
    wr.p99_us = w.latency_us.Percentile(99);
    report.hits += w.hits - before[i].hits;
    report.coalesced += w.coalesced - before[i].coalesced;
    report.misses += w.misses - before[i].misses;
    report.shed += w.shed - before[i].shed;
    report.stale += w.stale - before[i].stale;
    report.total_query_time += wr.busy;
    if (wr.busy > report.makespan) report.makespan = wr.busy;
    report.workers.push_back(wr);
  }
  report.service_invocations = service_->invocations() - invocations_before;
  return report;
}

TimeStepReport ParallelCoordinator::EndTimeStep() {
  assert(in_flight_.load(std::memory_order_relaxed) == 0 &&
         "EndTimeStep requires a quiesced front-end");
  TimeStepReport report;
  report.step_queries =
      static_cast<std::size_t>(step_queries_.exchange(0));
  report.step_hits = static_cast<std::size_t>(step_hits_.exchange(0));
  report.step_misses = report.step_queries - report.step_hits;
  report.step_query_time = Duration::Micros(step_query_time_us_.exchange(0));

  const SliceExpiry expiry = window_.AdvanceSlice();

  // Boundary timestamp for policy context and trace events: the batch's
  // virtual "now" is the furthest worker clock (quiesced, so stable).
  TimePoint boundary_now;
  for (const WorkerState& w : worker_states_) {
    boundary_now = std::max(boundary_now, w.clock.now());
  }
  // Policy context + boundary decisions.  This front-end is quiesced here
  // (asserted above), so consulting the single-threaded policy is safe;
  // the per-query hooks (OnQuery/AdmitOnMiss) are deliberately never
  // called from the worker threads.
  policy::PolicyContext ctx;
  ctx.step = steps_ended_;
  ctx.expired_slices = expiry.expired_slices;
  ctx.step_queries = report.step_queries;
  ctx.step_hits = report.step_hits;
  ctx.node_count = cache_->NodeCount();
  ctx.total_records = cache_->TotalRecords();
  ctx.used_bytes = cache_->TotalUsedBytes();
  ctx.capacity_bytes = cache_->TotalCapacityBytes();
  if (opts_.provider != nullptr) {
    ctx.live_instances = opts_.provider->LiveCount();
    ctx.warm_pool = opts_.provider->WarmPoolCount();
  }
  const std::vector<Key> evict = policy_->SelectEvictions(expiry.evicted, ctx);
  if (evict.size() != expiry.evicted.size()) {
    obs::Emit(trace_,
              obs::PolicyDecisionEvent(
                  boundary_now, obs::PolicyDecisionCode::kEvictOverride,
                  obs::kNoKey, static_cast<std::int64_t>(evict.size()),
                  static_cast<std::int64_t>(expiry.evicted.size())));
  }
  if (!evict.empty() && opts_.overload.enabled &&
      opts_.overload.stale_serve) {
    // Stamp eviction time: any copy that survives past this point (a
    // mirror whose ERASE was lost, a spill record) is stale from here on.
    const std::lock_guard<std::mutex> g(spill_mutex_);
    for (const Key k : evict) evicted_at_[k] = steps_ended_;
  }
  if (!evict.empty()) {
    m_policy_evictions_.Inc(evict.size());
    const std::lock_guard<std::mutex> g(spill_mutex_);
    if (spill_ != nullptr) {
      auto extracted = cache_->ExtractKeys(evict);
      report.evicted = extracted.size();
      for (auto& [k, v] : extracted) {
        spill_->Put(k, std::move(v));
        ++spill_puts_;
      }
      report.spilled = extracted.size();
    } else {
      report.evicted = cache_->EvictKeys(evict);
    }
  }
  if (policy_->ShouldContract(ctx)) {
    m_policy_contracts_.Inc();
    obs::Emit(trace_, obs::PolicyDecisionEvent(
                          boundary_now, obs::PolicyDecisionCode::kContract,
                          obs::kNoKey, 0, 0));
    report.contracted = cache_->TryContract();
  }
  if (opts_.provider != nullptr) {
    const std::size_t n = policy_->PrewarmTarget(ctx);
    if (n > 0) {
      opts_.provider->PrewarmAsync(n);
      prewarm_launches_ += n;
      m_policy_prewarms_.Inc(n);
      obs::Emit(trace_, obs::PolicyDecisionEvent(
                            boundary_now, obs::PolicyDecisionCode::kPrewarm,
                            obs::kNoKey, static_cast<std::int64_t>(n), 0));
    }
  }
  report.window_slices = window_.options().slices;

  // Age each worker's front-tier tracker in step with the sliding window.
  // Safe here: the quiesced assert above means no worker thread is
  // touching its cache.
  for (WorkerState& w : worker_states_) {
    if (w.front != nullptr) w.front->OnWindowBoundary(w.clock.now());
  }

  // Sample fleet load at the (quiesced) step boundary; x is the 0-based
  // step index.
  if (telemetry_ != nullptr) {
    telemetry_->Sample(static_cast<double>(steps_ended_),
                       cache_->NodeLoads());
  }
  // Background maintenance (failure detection / recovery / scrub) runs at
  // the same quiesced boundary: no query in flight, so the task may drive
  // the backend's exclusive-topology API without racing the workers.
  if (maintenance_ != nullptr) maintenance_->Tick();
  ++steps_ended_;

  // Entries past the stale bound can never be served again; drop them.
  // Publish the admission high-water mark at the same (quiesced) boundary.
  {
    const std::lock_guard<std::mutex> g(spill_mutex_);
    if (!evicted_at_.empty()) {
      const std::uint64_t bound = opts_.overload.stale_bound_slices;
      for (auto it = evicted_at_.begin(); it != evicted_at_.end();) {
        if (steps_ended_ - it->second > bound) {
          it = evicted_at_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (admission_ != nullptr) {
    g_queue_peak_.Set(
        static_cast<std::int64_t>(admission_->stats().peak_depth));
  }
  return report;
}

Histogram ParallelCoordinator::MergedLatency() const {
  Histogram merged{1.0, 1.15};
  for (const WorkerState& w : worker_states_) merged.Merge(w.latency_us);
  return merged;
}

}  // namespace ecc::core
