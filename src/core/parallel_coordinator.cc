#include "core/parallel_coordinator.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace ecc::core {

ParallelCoordinator::ParallelCoordinator(ParallelCoordinatorOptions opts,
                                         CacheBackend* cache,
                                         service::Service* service,
                                         const sfc::Linearizer* linearizer)
    : opts_(opts),
      cache_(cache),
      service_(service),
      linearizer_(linearizer),
      worker_states_(opts.workers == 0 ? 1 : opts.workers),
      pool_(opts.workers == 0 ? 1 : opts.workers),
      window_(opts.window) {
  assert(cache != nullptr && service != nullptr && linearizer != nullptr);
  m_queries_ = opts_.obs.MakeCounter("pc.queries");
  m_hits_ = opts_.obs.MakeCounter("pc.hits");
  m_coalesced_ = opts_.obs.MakeCounter("pc.coalesced");
  m_misses_ = opts_.obs.MakeCounter("pc.misses");
  trace_ = opts_.obs.trace;
  telemetry_ = opts_.obs.telemetry;
}

ParallelQueryResult ParallelCoordinator::ProcessKeyAs(std::size_t worker,
                                                      Key k) {
  assert(worker < worker_states_.size());
  WorkerState& w = worker_states_[worker];
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  const TimePoint start = w.clock.now();

  {
    const std::lock_guard<std::mutex> g(window_mutex_);
    window_.RecordQuery(k);
  }
  ++w.queries;
  total_queries_.fetch_add(1, std::memory_order_relaxed);
  step_queries_.fetch_add(1, std::memory_order_relaxed);
  m_queries_.Inc();
  obs::Emit(trace_, obs::QueryStartEvent(start, k));

  ParallelQueryResult result;
  w.clock.Advance(opts_.lookup_cost);  // the probe every path pays
  auto cached = cache_->Get(k);
  if (cached.ok()) {
    result.path = QueryPath::kHit;
    ++w.hits;
    total_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    result.path = MissPath(w, k);
  }
  if (result.path != QueryPath::kMiss) {
    // Coalesced counts toward the step hit ratio: no service work was done.
    step_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  result.latency = w.clock.now() - start;
  w.latency_us.Add(static_cast<double>(result.latency.micros()));
  step_query_time_us_.fetch_add(result.latency.micros(),
                                std::memory_order_relaxed);
  switch (result.path) {
    case QueryPath::kHit:
      m_hits_.Inc();
      break;
    case QueryPath::kCoalesced:
      m_coalesced_.Inc();
      break;
    case QueryPath::kMiss:
      m_misses_.Inc();
      break;
  }
  if (trace_ != nullptr) {
    const obs::QueryOutcomeKind outcome =
        result.path == QueryPath::kHit ? obs::QueryOutcomeKind::kHit
        : result.path == QueryPath::kCoalesced
            ? obs::QueryOutcomeKind::kCoalesced
            : obs::QueryOutcomeKind::kMiss;
    trace_->Append(
        obs::QueryEndEvent(w.clock.now(), k, outcome, result.latency));
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

QueryPath ParallelCoordinator::MissPath(WorkerState& w, Key k) {
  // Single-flight election: exactly one leader per key at a time.
  std::promise<FlightResult> promise;
  std::shared_future<FlightResult> follow;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> g(flights_mutex_);
    auto it = flights_.find(k);
    if (it != flights_.end()) {
      follow = it->second;
    } else {
      leader = true;
      flights_.emplace(k, promise.get_future().share());
    }
  }

  if (!leader) {
    ++w.coalesced;
    total_coalesced_.fetch_add(1, std::memory_order_relaxed);
    // Block (in real time) until the leader lands the result.  In virtual
    // time the follower is a hit-in-flight: it already paid its probe, and
    // the service work it would have duplicated is charged to the leader.
    // A failed flight (result.ok == false) stays coalesced: the follower
    // was not charged the failed call either, and with nothing cached the
    // key's next query elects a fresh leader and retries the service.
    (void)follow.get();
    return QueryPath::kCoalesced;
  }

  // Leader.  Double-check the cache: the previous flight for this key may
  // have landed between our miss and our registration; without this
  // re-probe that interleaving would invoke the service a second time.
  FlightResult flight;
  bool from_cache = false;
  w.clock.Advance(opts_.lookup_cost);
  auto again = cache_->Get(k);
  if (again.ok()) {
    flight.ok = true;
    flight.payload = std::move(*again);
    from_cache = true;
  } else {
    const sfc::GeoTemporalQuery q = linearizer_->CellCenter(k);
    {
      // Service implementations are single-threaded; leaders of *different*
      // keys serialize here (real time only — each charges its own clock).
      const std::lock_guard<std::mutex> g(service_mutex_);
      auto invoked = service_->Invoke(q, &w.clock);
      if (invoked.ok()) {
        flight.ok = true;
        flight.payload = std::move(invoked->payload);
      } else {
        // Injected (or real) service failure: publish the failure to the
        // followers instead of caching an empty payload as if it were an
        // answer.  Only the leader's clock carries the failed call's cost.
        total_service_failures_.fetch_add(1, std::memory_order_relaxed);
        ECC_LOG_WARN("parallel-coordinator: service failed for key %llu: %s",
                     static_cast<unsigned long long>(k),
                     invoked.status().ToString().c_str());
      }
    }
    if (flight.ok) {
      w.clock.Advance(opts_.lookup_cost);  // the insert below
      if (const Status s = cache_->Put(k, flight.payload); !s.ok()) {
        ECC_LOG_WARN("parallel-coordinator: put failed for key %llu: %s",
                     static_cast<unsigned long long>(k), s.ToString().c_str());
      }
    }
  }

  // Publish order matters: the value must be in the cache before the
  // flight is erased, so a thread that misses the table afterwards is
  // guaranteed to hit the cache.
  {
    const std::lock_guard<std::mutex> g(flights_mutex_);
    flights_.erase(k);
  }
  promise.set_value(std::move(flight));

  if (from_cache) {
    ++w.hits;
    total_hits_.fetch_add(1, std::memory_order_relaxed);
    return QueryPath::kHit;
  }
  ++w.misses;
  total_misses_.fetch_add(1, std::memory_order_relaxed);
  return QueryPath::kMiss;
}

StatusOr<ParallelQueryResult> ParallelCoordinator::ProcessQueryAs(
    std::size_t worker, const sfc::GeoTemporalQuery& q) {
  auto key = linearizer_->EncodeQuery(q);
  if (!key.ok()) return key.status();
  return ProcessKeyAs(worker, *key);
}

ParallelBatchReport ParallelCoordinator::RunKeys(
    const std::vector<Key>& keys) {
  const std::size_t n = worker_states_.size();
  ParallelBatchReport report;
  report.queries = keys.size();

  struct Before {
    TimePoint clock;
    std::uint64_t queries, hits, coalesced, misses;
  };
  std::vector<Before> before(n);
  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = worker_states_[i];
    before[i] = {w.clock.now(), w.queries, w.hits, w.coalesced, w.misses};
  }
  const std::uint64_t invocations_before = service_->invocations();

  // Strided round-robin partition: worker i serves keys i, i+n, i+2n, ...
  // Unlike a shared work cursor, this keeps each worker's virtual-time
  // accounting deterministic — independent of how the OS happens to
  // schedule the real threads — while still interleaving hot bursts
  // across workers so coalescing is exercised.
  for (std::size_t i = 0; i < n; ++i) {
    pool_.Submit([this, i, n, &keys] {
      for (std::size_t at = i; at < keys.size(); at += n) {
        (void)ProcessKeyAs(i, keys[at]);
      }
    });
  }
  pool_.WaitIdle();

  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = worker_states_[i];
    WorkerReport wr;
    wr.worker = i;
    wr.queries = w.queries - before[i].queries;
    wr.busy = w.clock.now() - before[i].clock;
    wr.p50_us = w.latency_us.Percentile(50);
    wr.p99_us = w.latency_us.Percentile(99);
    report.hits += w.hits - before[i].hits;
    report.coalesced += w.coalesced - before[i].coalesced;
    report.misses += w.misses - before[i].misses;
    report.total_query_time += wr.busy;
    if (wr.busy > report.makespan) report.makespan = wr.busy;
    report.workers.push_back(wr);
  }
  report.service_invocations = service_->invocations() - invocations_before;
  return report;
}

TimeStepReport ParallelCoordinator::EndTimeStep() {
  assert(in_flight_.load(std::memory_order_relaxed) == 0 &&
         "EndTimeStep requires a quiesced front-end");
  TimeStepReport report;
  report.step_queries =
      static_cast<std::size_t>(step_queries_.exchange(0));
  report.step_hits = static_cast<std::size_t>(step_hits_.exchange(0));
  report.step_misses = report.step_queries - report.step_hits;
  report.step_query_time = Duration::Micros(step_query_time_us_.exchange(0));

  const SliceExpiry expiry = window_.AdvanceSlice();
  if (!expiry.evicted.empty()) {
    report.evicted = cache_->EvictKeys(expiry.evicted);
  }
  if (expiry.expired_slices > 0 && opts_.contraction_epsilon > 0) {
    expirations_since_contract_ += expiry.expired_slices;
    if (expirations_since_contract_ >= opts_.contraction_epsilon) {
      expirations_since_contract_ = 0;
      report.contracted = cache_->TryContract();
    }
  }
  report.window_slices = window_.options().slices;

  // Sample fleet load at the (quiesced) step boundary; x is the 0-based
  // step index.
  if (telemetry_ != nullptr) {
    telemetry_->Sample(static_cast<double>(steps_ended_),
                       cache_->NodeLoads());
  }
  ++steps_ended_;
  return report;
}

Histogram ParallelCoordinator::MergedLatency() const {
  Histogram merged{1.0, 1.15};
  for (const WorkerState& w : worker_states_) merged.Merge(w.latency_us);
  return merged;
}

}  // namespace ecc::core
