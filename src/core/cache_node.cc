#include "core/cache_node.h"

#include <cassert>

#include "common/digest.h"
#include "net/message.h"
#include "net/wire.h"

namespace ecc::core {

CacheNode::CacheNode(NodeId id, cloudsim::InstanceId instance,
                     std::uint64_t capacity_bytes)
    : id_(id), instance_(instance), capacity_bytes_(capacity_bytes) {
  InstallHandlers();
}

Status CacheNode::Insert(Key k, std::string v) {
  // Duplicate check precedes the capacity check: re-inserting a cached key
  // is AlreadyExists even on a full node (PUT stays idempotent).
  if (tree_.Contains(k)) {
    return Status::AlreadyExists("key " + std::to_string(k));
  }
  const std::size_t bytes = RecordSize(k, v);
  if (!CanFit(bytes)) {
    return Status::CapacityExceeded("node " + std::to_string(id_));
  }
  const bool inserted = tree_.Insert(k, std::move(v));
  assert(inserted);
  (void)inserted;
  used_bytes_ += bytes;
  if (mutations_ != nullptr) mutations_->OnInsert(k, *tree_.Find(k));
  return Status::Ok();
}

bool CacheNode::Erase(Key k) {
  const std::string* v = tree_.Find(k);
  if (v == nullptr) return false;
  const std::size_t bytes = RecordSize(k, *v);
  const bool erased = tree_.Erase(k);
  assert(erased);
  used_bytes_ -= bytes;
  if (mutations_ != nullptr) mutations_->OnErase(k);
  return erased;
}

RangeStats CacheNode::StatsInRange(Key lo, Key hi) const {
  RangeStats stats;
  tree_.ForEachInRange(lo, hi, [&stats](Key k, const std::string& v) {
    ++stats.records;
    stats.bytes += RecordSize(k, v);
  });
  return stats;
}

Key CacheNode::KeyAtRankInRange(Key lo, Key hi, std::size_t rank) const {
  Key found = 0;
  bool ok = false;
  std::size_t i = 0;
  tree_.ForEachInRange(lo, hi, [&](Key k, const std::string&) {
    if (i == rank) {
      found = k;
      ok = true;
    }
    ++i;
  });
  assert(ok && "rank out of range");
  (void)ok;
  return found;
}

std::size_t CacheNode::EraseRange(Key lo, Key hi) {
  // Recompute byte usage for the doomed range before deleting.
  const RangeStats stats = StatsInRange(lo, hi);
  const std::size_t removed = tree_.EraseRange(lo, hi);
  assert(removed == stats.records);
  used_bytes_ -= stats.bytes;
  if (removed > 0 && mutations_ != nullptr) mutations_->OnEraseRange(lo, hi);
  return removed;
}

RangeDigest CacheNode::DigestInRange(Key lo, Key hi) const {
  RangeDigest out;
  tree_.ForEachInRange(lo, hi, [&out](Key k, const std::string& v) {
    out.digest += common::DigestTerm(k, v);
    ++out.records;
  });
  return out;
}

namespace {
constexpr std::uint32_t kShardMagic = 0x45534844;  // "ESHD"
}  // namespace

std::string CacheNode::SerializeShard() const {
  net::WireWriter w;
  w.PutU32(kShardMagic);
  w.PutVarint(tree_.size());
  for (auto it = tree_.Begin(); it.valid(); it.Next()) {
    w.PutU64(it.key());
    w.PutBytes(it.value());
  }
  return w.TakeBuffer();
}

Status CacheNode::RestoreShard(std::string_view bytes) {
  net::WireReader r(bytes);
  std::uint32_t magic = 0;
  if (Status s = r.GetU32(magic); !s.ok()) return s;
  if (magic != kShardMagic) {
    return Status::InvalidArgument("not a shard snapshot");
  }
  std::uint64_t count = 0;
  if (Status s = r.GetVarint(count); !s.ok()) return s;
  if (count > r.remaining() / 9) {  // >= 9 wire bytes per record
    return Status::InvalidArgument("record count exceeds payload");
  }
  std::vector<std::pair<Key, std::string>> records;
  records.reserve(count);
  std::uint64_t bytes_needed = 0;
  Key prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Key k = 0;
    std::string v;
    if (Status s = r.GetU64(k); !s.ok()) return s;
    if (Status s = r.GetBytes(v); !s.ok()) return s;
    if (i > 0 && k <= prev) {
      return Status::InvalidArgument("snapshot keys not strictly sorted");
    }
    prev = k;
    bytes_needed += RecordSize(k, v);
    records.emplace_back(k, std::move(v));
  }
  if (!r.exhausted()) return Status::InvalidArgument("trailing bytes");
  if (bytes_needed > capacity_bytes_) {
    return Status::CapacityExceeded("snapshot larger than node capacity");
  }
  tree_.BulkLoad(std::move(records));
  used_bytes_ = bytes_needed;
  if (mutations_ != nullptr) mutations_->OnRestore();
  return Status::Ok();
}

void CacheNode::InstallHandlers() {
  rpc_.Handle(net::MsgType::kGetRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::GetRequest::Decode(m);
                if (!req.ok()) return req.status();
                net::GetResponse resp;
                if (const std::string* v = Find(req->key)) {
                  resp.found = true;
                  resp.value = *v;
                }
                return resp.Encode();
              });
  rpc_.Handle(net::MsgType::kPutRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::PutRequest::Decode(m);
                if (!req.ok()) return req.status();
                const Status s = Insert(req->key, std::move(req->value));
                net::PutResponse resp;
                resp.accepted = s.ok();
                resp.used_bytes = used_bytes_;
                // Duplicate keys count as accepted (idempotent PUT).
                if (s.code() == StatusCode::kAlreadyExists) {
                  resp.accepted = true;
                }
                return resp.Encode();
              });
  rpc_.Handle(net::MsgType::kMigrateRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::MigrateRequest::Decode(m);
                if (!req.ok()) return req.status();
                net::MigrateResponse resp;
                for (auto& [key, value] : req->records) {
                  if (Insert(key, std::move(value)).ok()) ++resp.accepted;
                }
                return resp.Encode();
              });
  rpc_.Handle(net::MsgType::kEraseRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::EraseRequest::Decode(m);
                if (!req.ok()) return req.status();
                net::EraseResponse resp;
                for (Key k : req->keys) {
                  if (Erase(k)) ++resp.erased;
                }
                return resp.Encode();
              });
  rpc_.Handle(net::MsgType::kStatsRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::StatsRequest::Decode(m);
                if (!req.ok()) return req.status();
                net::StatsResponse resp;
                resp.records = record_count();
                resp.used_bytes = used_bytes_;
                resp.capacity_bytes = capacity_bytes_;
                return resp.Encode();
              });
  rpc_.Handle(net::MsgType::kRangeStatsRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::RangeStatsRequest::Decode(m);
                if (!req.ok()) return req.status();
                const RangeStats stats = StatsInRange(req->lo, req->hi);
                net::RangeStatsResponse resp;
                resp.records = stats.records;
                resp.bytes = stats.bytes;
                return resp.Encode();
              });
  rpc_.Handle(net::MsgType::kEraseRangeRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::EraseRangeRequest::Decode(m);
                if (!req.ok()) return req.status();
                net::EraseRangeResponse resp;
                resp.erased = EraseRange(req->lo, req->hi);
                return resp.Encode();
              });
  rpc_.Handle(net::MsgType::kDigestRequest,
              [this](const net::Message& m) -> StatusOr<net::Message> {
                rpc_ops_.Inc();
                auto req = net::DigestRequest::Decode(m);
                if (!req.ok()) return req.status();
                const RangeDigest d = DigestInRange(req->lo, req->hi);
                net::DigestResponse resp;
                resp.digest = d.digest;
                resp.records = d.records;
                return resp.Encode();
              });
}

}  // namespace ecc::core
