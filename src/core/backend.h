// CacheBackend: the interface the coordinator programs against, so the
// elastic GBA cache and the fixed-node baselines are interchangeable in
// experiments (Fig. 3 juxtaposes them directly).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/types.h"
#include "obs/telemetry.h"

namespace ecc::cloudsim {
class PersistentStore;
}  // namespace ecc::cloudsim

namespace ecc::fronttier {
class InvalidationHub;
}  // namespace ecc::fronttier

namespace ecc::core {

/// Counters every backend maintains.  Durations are virtual time.
struct CacheStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t put_failures = 0;
  std::uint64_t evictions = 0;       ///< records removed by eviction policy
  std::uint64_t splits = 0;          ///< bucket splits (overflow migrations)
  std::uint64_t proactive_splits = 0;  ///< of those, background (async ext.)
  std::uint64_t node_allocations = 0;
  std::uint64_t node_removals = 0;   ///< contraction merges
  std::uint64_t records_migrated = 0;
  std::uint64_t bytes_migrated = 0;
  // Replication extension (paper §VI future work):
  std::uint64_t replica_writes = 0;   ///< secondary copies stored
  std::uint64_t replica_drops = 0;    ///< replicas skipped (no room/peer)
  std::uint64_t failover_reads = 0;   ///< gets served by a replica
  std::uint64_t node_failures = 0;    ///< abrupt KillNode events absorbed
  // Fault-tolerance layer (fault injection + recovery):
  std::uint64_t rpc_retries = 0;      ///< RPC attempts beyond the first
  std::uint64_t rpc_failures = 0;     ///< calls that exhausted their retries
  std::uint64_t degraded_gets = 0;    ///< gets downgraded to a miss (node down)
  std::uint64_t degraded_puts = 0;    ///< puts refused because the owner is down
  std::uint64_t migration_aborts = 0;     ///< two-phase migrations rolled back
  std::uint64_t migration_recoveries = 0; ///< rolled forward after commit
  Duration total_split_overhead;     ///< alloc + data movement (Fig. 4)
  Duration last_split_overhead;
  Duration total_alloc_time;         ///< the allocation share of the above
  Duration total_migration_time;     ///< the data-movement share

  [[nodiscard]] double HitRate() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(gets);
  }
};

class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Lookup `k`; NotFound on miss.  Charges lookup cost to the clock.
  [[nodiscard]] virtual StatusOr<std::string> Get(Key k) = 0;

  /// Degraded lookup: a possibly-stale copy from redundancy the backend
  /// keeps anyway (e.g. the mirror replica whose eviction ERASE was lost).
  /// Used by overload protection when the primary path is shed — never on
  /// the normal hit path.  Backends without such redundancy keep the
  /// default NotFound.
  [[nodiscard]] virtual StatusOr<std::string> GetStale(Key k) {
    (void)k;
    return Status::NotFound("no stale source");
  }

  /// Attach the coordinator's spill tier (not owned; nullptr detaches).
  /// Backends that know about it widen GetStale to probe the spilled copy
  /// when no in-cache redundancy exists, and count spill-salvageable
  /// records in crash reports.  The default ignores it.
  virtual void AttachSpillStore(cloudsim::PersistentStore* store) {
    (void)store;
  }

  /// Attach the coordinator front tier's invalidation hub (not owned;
  /// nullptr detaches).  Backends that support a front tier bump the key's
  /// version on every value-level change (Put, erase, eviction, mirror
  /// write) and bump the global epoch on every topology-level change
  /// (migration commit, contraction, crash, recovery re-replication), so
  /// front entries are dropped or re-validated whenever their backing
  /// record moves or dies.  The default ignores it: a backend without hub
  /// support simply never confirms a front entry's freshness, and the
  /// coordinator must not enable the front tier over it.
  virtual void AttachInvalidationHub(fronttier::InvalidationHub* hub) {
    (void)hub;
  }

  /// Store (k, v), triggering whatever elasticity/eviction the backend
  /// implements.  Charges the full insert path cost to the clock.
  virtual Status Put(Key k, std::string v) = 0;

  /// Remove the given keys wherever they live (global eviction support).
  /// Returns the number actually removed.
  virtual std::size_t EvictKeys(const std::vector<Key>& keys) = 0;

  /// Remove the given keys and hand back the removed records, so a caller
  /// can spill them to a slower storage tier before they vanish.  The
  /// default discards the values (plain eviction).
  virtual std::vector<std::pair<Key, std::string>> ExtractKeys(
      const std::vector<Key>& keys) {
    (void)EvictKeys(keys);
    return {};
  }

  /// Attempt one cost-driven contraction step; returns true if the topology
  /// changed.  Fixed baselines return false.
  virtual bool TryContract() = 0;

  [[nodiscard]] virtual std::size_t NodeCount() const = 0;
  [[nodiscard]] virtual std::uint64_t TotalUsedBytes() const = 0;
  [[nodiscard]] virtual std::uint64_t TotalCapacityBytes() const = 0;
  [[nodiscard]] virtual std::size_t TotalRecords() const = 0;

  /// Point-in-time counter snapshot, safe to call concurrently with
  /// operations.  Returned BY VALUE: an earlier revision handed out a
  /// reference to live (mutating, unsynchronized) state, which raced with
  /// every writer the moment a second thread polled it.
  [[nodiscard]] virtual CacheStats stats() const = 0;

  /// Per-node load sample for fleet telemetry.  Backends that don't model
  /// individual nodes may return empty.
  [[nodiscard]] virtual std::vector<obs::NodeLoad> NodeLoads() const {
    return {};
  }
};

}  // namespace ecc::core
