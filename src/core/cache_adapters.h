// Adapters binding the cache core to the service-layer interfaces.
#pragma once

#include <string>

#include "core/backend.h"
#include "service/composite.h"

namespace ecc::core {

/// Presents any CacheBackend as a composition-stage ResultCache.
class BackendResultCache final : public service::ResultCache {
 public:
  /// `backend` is not owned.
  explicit BackendResultCache(CacheBackend* backend) : backend_(backend) {}

  [[nodiscard]] StatusOr<std::string> Lookup(std::uint64_t key) override {
    return backend_->Get(key);
  }

  void Store(std::uint64_t key, const std::string& value) override {
    (void)backend_->Put(key, value);
  }

 private:
  CacheBackend* backend_;
};

}  // namespace ecc::core
