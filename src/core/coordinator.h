// Coordinator: the query front-end of the system (paper §IV.A).
//
// "Queries are first sent to a coordinating compute node, and the
// underlying cooperating cache is then searched on the input key to find a
// replica of the precomputed results.  Upon a hit, the results are
// transmitted directly back to the caller, whereas a miss would prompt the
// coordinator to invoke the shoreline extraction service."
//
// The coordinator also hosts the *global* elasticity machinery: the sliding
// window records every queried key; when a time slice ends it expires old
// keys (decay eviction), and every epsilon expirations it asks the backend
// to attempt a contraction merge.  Both decisions — plus miss admission and
// warm-pool pre-provisioning — are delegated to a pluggable
// policy::ElasticityPolicy (DESIGN.md §13); the default reproduces the
// paper rule exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cloudsim/persistent_store.h"
#include "cloudsim/provider.h"
#include "common/status.h"
#include "common/time.h"
#include "core/backend.h"
#include "core/dynamic_window.h"
#include "core/maintenance.h"
#include "core/sliding_window.h"
#include "core/types.h"
#include "fronttier/front_cache.h"
#include "obs/obs.h"
#include "overload/breaker.h"
#include "overload/overload.h"
#include "policy/policy.h"
#include "service/service.h"
#include "sfc/linearizer.h"

namespace ecc::core {

struct CoordinatorOptions {
  SlidingWindowOptions window;
  /// Attempt contraction every this many slice expirations (paper's
  /// epsilon).  0 disables contraction.
  std::size_t contraction_epsilon = 5;
  /// Enable the dynamic-window extension.
  bool dynamic_window = false;
  DynamicWindowOptions dynamic;
  /// Observability sinks (none owned, all optional).  obs.metrics receives
  /// coordinator.{queries,hits,misses}; obs.trace gets a query start/end
  /// event pair per ProcessKey; obs.telemetry is fed one fleet sample per
  /// EndTimeStep from the backend's NodeLoads().
  obs::Observability obs;
  /// Overload protection (deadlines, breaker, stale serving); disabled by
  /// default and zero-cost when off (see DESIGN.md §10).
  overload::OverloadOptions overload;
  /// Front-tier hot-key cache (DESIGN.md §12); disabled by default.  When
  /// enabled the backend must support AttachInvalidationHub (ElasticCache,
  /// StaticCache, or a wrapper over one) — the hub is what bounds front
  /// staleness.  front.hub may name a shared external hub; otherwise the
  /// coordinator owns a private one and attaches it to the backend.
  fronttier::FrontTierOptions front;
  /// Elasticity policy consulted per query (OnQuery/AdmitOnMiss) and per
  /// EndTimeStep (SelectEvictions/ShouldContract/PrewarmTarget).  Not
  /// owned; nullptr means the coordinator owns a PaperBaselinePolicy built
  /// from contraction_epsilon — exactly the seed behavior.
  policy::ElasticityPolicy* policy = nullptr;
  /// Cloud provider backing the fleet (not owned, optional).  Feeds the
  /// policy's cost context (billing snapshot per boundary) and receives
  /// PrewarmTarget() launches; without it the context's cost fields stay
  /// zero and prewarm decisions are dropped.
  cloudsim::CloudProvider* provider = nullptr;
};

/// End-to-end result of one query.
struct QueryOutcome {
  bool hit = false;
  /// Refused under overload with no answer at all (breaker open or
  /// deadline spent before the service call could start).
  bool shed = false;
  /// Answered from a degraded source (mirror replica) while the service
  /// was protected; `hit` stays false.
  bool stale = false;
  /// The service answered, but past this query's deadline (the charge to
  /// the clock was clamped to the deadline; see DESIGN.md §10).
  bool deadline_exceeded = false;
  Duration latency;  ///< virtual time from submission to answer
};

/// What happened when a time step closed.
struct TimeStepReport {
  std::size_t step_queries = 0;
  std::size_t step_hits = 0;
  std::size_t step_misses = 0;
  Duration step_query_time;
  std::size_t evicted = 0;       ///< records evicted by the expired slice
  std::size_t spilled = 0;       ///< of those, written to the spill tier
  bool contracted = false;       ///< a node merge happened
  std::size_t window_slices = 0; ///< current window length (dynamic mode)
};

class Coordinator {
 public:
  /// None of the pointers are owned.  `linearizer` maps keys back to cell
  /// representatives for service invocation.
  Coordinator(CoordinatorOptions opts, CacheBackend* cache,
              service::Service* service, const sfc::Linearizer* linearizer,
              VirtualClock* clock);

  /// Process one query by key: cache lookup, on miss invoke the service and
  /// insert the derived result.
  QueryOutcome ProcessKey(Key k);

  /// Process by continuous coordinates (the public-facing entry point).
  StatusOr<QueryOutcome> ProcessQuery(const sfc::GeoTemporalQuery& q);

  /// Close the current time step: advance the sliding window, apply decay
  /// eviction (spilling evicted records if a spill tier is attached), and
  /// (every epsilon expirations) attempt contraction.
  TimeStepReport EndTimeStep();

  /// Attach an S3-like second tier (paper §IV.D): decay-evicted records
  /// spill there instead of vanishing, and misses probe it before falling
  /// back to the 23 s service.  Pass nullptr to detach.  Not owned.  Also
  /// forwarded to the backend, so single-copy fleets can answer shed
  /// queries from the spilled copy and crash reports can count
  /// spill-salvageable records (this front-end is single-threaded, so the
  /// shared store needs no extra locking).
  void AttachSpillStore(cloudsim::PersistentStore* store) {
    spill_ = store;
    cache_->AttachSpillStore(store);
  }

  /// Attach a background maintenance task (failure detection, recovery,
  /// anti-entropy scrub — see src/recovery/).  Ticked once per EndTimeStep,
  /// at the quiesced slice boundary.  Not owned; nullptr detaches.
  void AttachMaintenance(MaintenanceTask* task) { maintenance_ = task; }

  /// Misses answered from the spill tier (no service invocation).
  [[nodiscard]] std::uint64_t spill_hits() const { return spill_hits_; }
  /// Records written to the spill tier by decay eviction.
  [[nodiscard]] std::uint64_t spill_puts() const { return spill_puts_; }

  // --- Overload protection ------------------------------------------------

  /// The breaker guarding the backing service; nullptr unless
  /// overload.enabled && overload.breaker_enabled.
  [[nodiscard]] overload::CircuitBreaker* breaker() { return breaker_.get(); }
  [[nodiscard]] std::uint64_t shed_count() const { return shed_count_; }
  [[nodiscard]] std::uint64_t stale_serves() const { return stale_serves_; }
  [[nodiscard]] std::uint64_t deadline_exceeded_count() const {
    return deadline_exceeded_;
  }

  [[nodiscard]] const SlidingWindow& window() const { return window_; }
  [[nodiscard]] CacheBackend& cache() { return *cache_; }
  /// The active elasticity policy (the owned baseline when none was
  /// supplied).
  [[nodiscard]] policy::ElasticityPolicy& policy() { return *policy_; }
  /// Miss results the policy refused to cache.
  [[nodiscard]] std::uint64_t admit_denials() const { return admit_denials_; }
  /// Warm-pool instances launched on the policy's PrewarmTarget.
  [[nodiscard]] std::uint64_t prewarm_launches() const {
    return prewarm_launches_;
  }
  /// The front-tier cache; nullptr unless opts.front.enabled.
  [[nodiscard]] const fronttier::FrontCache* front() const {
    return front_.get();
  }
  /// Queries answered by the front tier (a subset of total_hits()).
  [[nodiscard]] std::uint64_t front_hits() const { return front_hits_; }
  [[nodiscard]] std::uint64_t total_queries() const { return total_queries_; }
  [[nodiscard]] std::uint64_t total_hits() const { return total_hits_; }
  [[nodiscard]] Duration total_query_time() const {
    return total_query_time_;
  }

 private:
  CoordinatorOptions opts_;
  CacheBackend* cache_;
  cloudsim::PersistentStore* spill_ = nullptr;
  MaintenanceTask* maintenance_ = nullptr;
  std::uint64_t spill_hits_ = 0;
  std::uint64_t spill_puts_ = 0;
  service::Service* service_;
  const sfc::Linearizer* linearizer_;
  VirtualClock* clock_;
  SlidingWindow window_;
  DynamicWindowPolicy dynamic_;

  /// True when `k` carries an eviction record within the staleness bound;
  /// writes the age in slices.  A stale copy with no record is refused —
  /// the record was pruned as too old (or never existed).
  [[nodiscard]] bool StaleWithinBound(Key k, std::uint64_t* age) const;

  /// Fleet/cost snapshot for the boundary-time policy decisions.
  [[nodiscard]] policy::PolicyContext BuildPolicyContext(
      std::size_t expired_slices, const TimeStepReport& report);

  // Null-safe observability handles (unregistered when no registry wired).
  obs::Counter m_queries_, m_hits_, m_misses_;
  obs::Counter m_shed_, m_stale_, m_deadline_;
  obs::Counter m_policy_evictions_, m_policy_denials_;
  obs::Counter m_policy_contracts_, m_policy_prewarms_;
  obs::TraceLog* trace_ = nullptr;
  obs::FleetTelemetry* telemetry_ = nullptr;
  std::size_t steps_ended_ = 0;

  // Overload protection (all inert when opts_.overload.enabled is false).
  std::unique_ptr<overload::CircuitBreaker> breaker_;
  /// Key -> steps_ended_ at decay eviction; bounds the staleness of
  /// degraded answers.  Pruned past the stale bound each EndTimeStep.
  std::unordered_map<Key, std::size_t> evicted_at_;
  std::uint64_t shed_count_ = 0;
  std::uint64_t stale_serves_ = 0;
  std::uint64_t deadline_exceeded_ = 0;

  // Front tier (both null when opts_.front.enabled is false).
  std::unique_ptr<fronttier::InvalidationHub> own_hub_;
  std::unique_ptr<fronttier::FrontCache> front_;
  std::uint64_t front_hits_ = 0;

  // Elasticity policy (owned baseline unless opts_.policy was supplied).
  std::unique_ptr<policy::ElasticityPolicy> own_policy_;
  policy::ElasticityPolicy* policy_ = nullptr;
  /// Clock stamp of the previous EndTimeStep (slice duration for the
  /// policy's cost context).
  TimePoint last_boundary_;
  std::uint64_t admit_denials_ = 0;
  std::uint64_t prewarm_launches_ = 0;

  // Per-step counters (reset by EndTimeStep).
  std::size_t step_queries_ = 0;
  std::size_t step_hits_ = 0;
  Duration step_query_time_;
  // Cumulative.
  std::uint64_t total_queries_ = 0;
  std::uint64_t total_hits_ = 0;
  Duration total_query_time_;
};

}  // namespace ecc::core
