// One cooperative cache node: a B+-Tree shard plus capacity accounting and
// the node-resident halves of the wire protocol.
//
// In the paper each cache server runs "the indexing logic" and the
// sweep-and-migrate routine locally; the coordinator talks to it over the
// network.  Accordingly CacheNode exposes:
//   * direct shard operations (used by node-local logic: sweeps, medians,
//     per-bucket accounting), and
//   * an RpcServer handling GET/PUT/MIGRATE/ERASE/STATS, which is what
//     remote parties call through a channel.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "btree/bplus_tree.h"
#include "cloudsim/instance.h"
#include "common/status.h"
#include "core/types.h"
#include "net/rpc.h"
#include "obs/metrics.h"

namespace ecc::core {

/// Aggregate of one key range on a node (the paper's "aggregation test"
/// input: can a range fit elsewhere?).
struct RangeStats {
  std::size_t records = 0;
  std::uint64_t bytes = 0;
};

/// Commutative digest of one key range (DigestInRange / the DIGEST RPC).
struct RangeDigest {
  std::uint64_t digest = 0;  ///< sum of common::DigestTerm over the range
  std::uint64_t records = 0;
};

/// Observer of every successful shard mutation, in apply order.  The
/// durability subsystem (src/durability/) implements this to mirror the
/// shard into a write-ahead log; the indirection keeps the dependency
/// arrow pointing the right way (core never depends on durability), same
/// as core::MaintenanceTask.  Callbacks fire *after* the mutation applied
/// and may not reenter the node.
class ShardMutationListener {
 public:
  virtual ~ShardMutationListener() = default;

  virtual void OnInsert(Key k, std::string_view v) = 0;
  virtual void OnErase(Key k) = 0;
  virtual void OnEraseRange(Key lo, Key hi) = 0;
  /// The whole shard was replaced (RestoreShard): prior log state no
  /// longer describes the shard and must be recompacted from scratch.
  virtual void OnRestore() = 0;
};

class CacheNode {
 public:
  CacheNode(NodeId id, cloudsim::InstanceId instance,
            std::uint64_t capacity_bytes);

  CacheNode(const CacheNode&) = delete;
  CacheNode& operator=(const CacheNode&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] cloudsim::InstanceId instance() const { return instance_; }

  /// ||n|| — bytes currently used.
  [[nodiscard]] std::uint64_t used_bytes() const { return used_bytes_; }
  /// ⌈n⌉ — byte capacity.
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return capacity_bytes_;
  }
  [[nodiscard]] std::size_t record_count() const { return tree_.size(); }

  /// Would a record of `bytes` fit right now?
  [[nodiscard]] bool CanFit(std::size_t bytes) const {
    return used_bytes_ + bytes <= capacity_bytes_;
  }

  // --- Direct shard operations -------------------------------------------

  /// Insert; CapacityExceeded on overflow, AlreadyExists on duplicate.
  Status Insert(Key k, std::string v);

  [[nodiscard]] const std::string* Find(Key k) const {
    return tree_.Find(k);
  }
  [[nodiscard]] bool Contains(Key k) const { return tree_.Contains(k); }

  /// Erase; returns true if present.
  bool Erase(Key k);

  /// Record count and bytes in [lo, hi].
  [[nodiscard]] RangeStats StatsInRange(Key lo, Key hi) const;

  /// Commutative digest (sum of common::DigestTerm) and record count over
  /// [lo, hi] — the per-bucket quantity the warm-rejoin anti-entropy diff
  /// compares, also served remotely via the DIGEST RPC.
  [[nodiscard]] RangeDigest DigestInRange(Key lo, Key hi) const;

  /// Key at `rank` (0-based, in key order) within [lo, hi]; rank must be
  /// < StatsInRange(lo, hi).records.
  [[nodiscard]] Key KeyAtRankInRange(Key lo, Key hi, std::size_t rank) const;

  /// Copy out records in [lo, hi] (the sweep of Algorithm 2).
  [[nodiscard]] std::vector<std::pair<Key, std::string>> SweepRange(
      Key lo, Key hi) const {
    return tree_.SweepRange(lo, hi);
  }

  /// Remove records in [lo, hi]; returns removed count.
  std::size_t EraseRange(Key lo, Key hi);

  [[nodiscard]] const btree::BPlusTree<std::string>& tree() const {
    return tree_;
  }

  // --- Shard persistence ---------------------------------------------------
  // The paper's §IV.D weighs persistent Cloud storage (S3/EBS) for cache
  // state; these serialize a shard to a compact blob an instance can write
  // at shutdown and bulk-load at boot (O(n), bottom-up tree build).

  /// Serialize every record (sorted) to a self-describing blob.
  [[nodiscard]] std::string SerializeShard() const;

  /// Replace this shard's contents from a SerializeShard blob.  Fails
  /// (leaving the shard untouched) on malformed bytes or if the records
  /// exceed this node's capacity.
  Status RestoreShard(std::string_view bytes);

  // --- Wire protocol -------------------------------------------------------

  /// The node's RPC endpoint (GET/PUT/MIGRATE/ERASE/STATS handlers bound to
  /// this shard).
  [[nodiscard]] net::RpcServer& rpc() { return rpc_; }

  /// Attach a metrics counter incremented once per handled RPC.  The default
  /// (unattached) handle makes every increment a no-op.
  void BindOpsCounter(obs::Counter c) { rpc_ops_ = c; }

  /// Attach a mutation observer (not owned; nullptr detaches).  Every
  /// successful Insert/Erase/EraseRange/RestoreShard notifies it after the
  /// fact; the unbound default costs one branch per mutation.
  void BindMutationListener(ShardMutationListener* l) { mutations_ = l; }

 private:
  void InstallHandlers();

  NodeId id_;
  cloudsim::InstanceId instance_;
  std::uint64_t capacity_bytes_;
  std::uint64_t used_bytes_ = 0;
  btree::BPlusTree<std::string> tree_;
  net::RpcServer rpc_;
  obs::Counter rpc_ops_;
  ShardMutationListener* mutations_ = nullptr;
};

}  // namespace ecc::core
