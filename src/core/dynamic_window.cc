#include "core/dynamic_window.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecc::core {

DynamicWindowPolicy::DynamicWindowPolicy(DynamicWindowOptions opts)
    : opts_(opts) {
  assert(opts_.min_slices >= 1 && opts_.min_slices <= opts_.max_slices);
  assert(opts_.grow_ratio > 1.0 && opts_.shrink_ratio < 1.0);
  assert(opts_.grow_factor > 1.0 && opts_.shrink_factor < 1.0);
  assert(opts_.period >= 1);
  assert(opts_.ema_weight > 0.0 && opts_.ema_weight <= 1.0);
}

void DynamicWindowPolicy::ObserveSlice(std::uint64_t hits,
                                       std::uint64_t misses) {
  period_hits_ += hits;
  period_misses_ += misses;
  ++slices_seen_;
}

bool DynamicWindowPolicy::MaybeAdjust(SlidingWindow& window) {
  if (slices_seen_ < opts_.period) return false;
  const std::uint64_t total = period_hits_ + period_misses_;
  const double traffic =
      static_cast<double>(total) / static_cast<double>(slices_seen_);
  const double hit_rate =
      total == 0 ? 0.0
                 : static_cast<double>(period_hits_) /
                       static_cast<double>(total);
  period_hits_ = period_misses_ = 0;
  slices_seen_ = 0;

  if (traffic_ema_ < 0.0) {
    // First period establishes the baseline; no adjustment yet.
    traffic_ema_ = traffic;
    return false;
  }
  const double ratio = traffic / std::max(1e-9, traffic_ema_);
  traffic_ema_ = (1.0 - opts_.ema_weight) * traffic_ema_ +
                 opts_.ema_weight * traffic;
  if (window.infinite()) return false;

  const std::size_t current = window.options().slices;
  std::size_t target = current;
  if (ratio < opts_.shrink_ratio) {
    // Interest is waning: narrow the window, release capacity.
    target = static_cast<std::size_t>(
        std::floor(static_cast<double>(current) * opts_.shrink_factor));
  } else if (ratio > opts_.grow_ratio) {
    // Query-intensive episode: widen to capture the reuse.
    target = static_cast<std::size_t>(
        std::ceil(static_cast<double>(current) * opts_.grow_factor));
  } else if (hit_rate > opts_.shrink_above) {
    // Steady traffic but the window already covers the working set.
    target = static_cast<std::size_t>(
        std::floor(static_cast<double>(current) * opts_.shrink_factor));
  }
  target = std::clamp(target, opts_.min_slices, opts_.max_slices);
  if (target == current) return false;
  window.Resize(target);
  ++adjustments_;
  return true;
}

}  // namespace ecc::core
