// Victim-selection policies for the fixed-node baseline caches.
//
// The paper's static configurations "subscribe to the simple LRU eviction
// policy"; FIFO, LFU and Random are provided as robustness ablations.
// Trackers hold only keys/metadata — record storage stays in the node's
// B+-Tree shard.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/types.h"

namespace ecc::core {

enum class VictimPolicy { kLru, kFifo, kLfu, kRandom };

[[nodiscard]] const char* VictimPolicyName(VictimPolicy p);
[[nodiscard]] StatusOr<VictimPolicy> ParseVictimPolicy(
    const std::string& name);

class VictimTracker {
 public:
  virtual ~VictimTracker() = default;

  virtual void OnInsert(Key k) = 0;
  virtual void OnAccess(Key k) = 0;
  virtual void OnErase(Key k) = 0;

  /// Choose (without removing) the next victim; NotFound when empty.
  /// Callers erase the victim from the shard and then call OnErase.
  [[nodiscard]] virtual StatusOr<Key> PickVictim(Rng& rng) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
};

[[nodiscard]] std::unique_ptr<VictimTracker> MakeVictimTracker(
    VictimPolicy policy);

/// Least-recently-used: O(1) all operations.
class LruTracker final : public VictimTracker {
 public:
  void OnInsert(Key k) override;
  void OnAccess(Key k) override;
  void OnErase(Key k) override;
  [[nodiscard]] StatusOr<Key> PickVictim(Rng& rng) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }

 private:
  std::list<Key> order_;  // front = most recent
  std::unordered_map<Key, std::list<Key>::iterator> index_;
};

class FifoTracker final : public VictimTracker {
 public:
  void OnInsert(Key k) override;
  void OnAccess(Key /*k*/) override {}
  void OnErase(Key k) override;
  [[nodiscard]] StatusOr<Key> PickVictim(Rng& rng) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }

 private:
  std::list<Key> order_;
  std::unordered_map<Key, std::list<Key>::iterator> index_;
};

/// Least-frequently-used with LRU tie-break; lazy-deletion min-heap keeps
/// PickVictim O(log n) amortized.
class LfuTracker final : public VictimTracker {
 public:
  void OnInsert(Key k) override;
  void OnAccess(Key k) override;
  void OnErase(Key k) override;
  [[nodiscard]] StatusOr<Key> PickVictim(Rng& rng) override;
  [[nodiscard]] std::size_t size() const override { return freq_.size(); }

 private:
  struct HeapItem {
    std::uint64_t freq;
    std::uint64_t seq;  ///< stamp of last touch, for LRU tie-break
    Key key;
    friend bool operator>(const HeapItem& a, const HeapItem& b) {
      if (a.freq != b.freq) return a.freq > b.freq;
      return a.seq > b.seq;
    }
  };
  struct Meta {
    std::uint64_t freq = 0;
    std::uint64_t seq = 0;
  };

  void Push(Key k);

  std::unordered_map<Key, Meta> freq_;
  std::priority_queue<HeapItem, std::vector<HeapItem>,
                      std::greater<HeapItem>>
      heap_;
  std::uint64_t next_seq_ = 0;
};

/// Uniform-random victim: O(1) via swap-remove vector.
class RandomTracker final : public VictimTracker {
 public:
  void OnInsert(Key k) override;
  void OnAccess(Key /*k*/) override {}
  void OnErase(Key k) override;
  [[nodiscard]] StatusOr<Key> PickVictim(Rng& rng) override;
  [[nodiscard]] std::size_t size() const override { return keys_.size(); }

 private:
  std::vector<Key> keys_;
  std::unordered_map<Key, std::size_t> index_;
};

}  // namespace ecc::core
