#include "core/victim.h"

#include <cassert>

namespace ecc::core {

const char* VictimPolicyName(VictimPolicy p) {
  switch (p) {
    case VictimPolicy::kLru: return "lru";
    case VictimPolicy::kFifo: return "fifo";
    case VictimPolicy::kLfu: return "lfu";
    case VictimPolicy::kRandom: return "random";
  }
  return "unknown";
}

StatusOr<VictimPolicy> ParseVictimPolicy(const std::string& name) {
  if (name == "lru") return VictimPolicy::kLru;
  if (name == "fifo") return VictimPolicy::kFifo;
  if (name == "lfu") return VictimPolicy::kLfu;
  if (name == "random") return VictimPolicy::kRandom;
  return Status::InvalidArgument("unknown victim policy '" + name + "'");
}

std::unique_ptr<VictimTracker> MakeVictimTracker(VictimPolicy policy) {
  switch (policy) {
    case VictimPolicy::kLru: return std::make_unique<LruTracker>();
    case VictimPolicy::kFifo: return std::make_unique<FifoTracker>();
    case VictimPolicy::kLfu: return std::make_unique<LfuTracker>();
    case VictimPolicy::kRandom: return std::make_unique<RandomTracker>();
  }
  return nullptr;
}

// --- LRU --------------------------------------------------------------------

void LruTracker::OnInsert(Key k) {
  assert(index_.find(k) == index_.end());
  order_.push_front(k);
  index_[k] = order_.begin();
}

void LruTracker::OnAccess(Key k) {
  const auto it = index_.find(k);
  if (it == index_.end()) return;
  order_.splice(order_.begin(), order_, it->second);
}

void LruTracker::OnErase(Key k) {
  const auto it = index_.find(k);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

StatusOr<Key> LruTracker::PickVictim(Rng& /*rng*/) {
  if (order_.empty()) return Status::NotFound("tracker empty");
  return order_.back();
}

// --- FIFO -------------------------------------------------------------------

void FifoTracker::OnInsert(Key k) {
  assert(index_.find(k) == index_.end());
  order_.push_front(k);
  index_[k] = order_.begin();
}

void FifoTracker::OnErase(Key k) {
  const auto it = index_.find(k);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

StatusOr<Key> FifoTracker::PickVictim(Rng& /*rng*/) {
  if (order_.empty()) return Status::NotFound("tracker empty");
  return order_.back();
}

// --- LFU --------------------------------------------------------------------

void LfuTracker::Push(Key k) {
  const Meta& m = freq_.at(k);
  heap_.push(HeapItem{m.freq, m.seq, k});
}

void LfuTracker::OnInsert(Key k) {
  assert(freq_.find(k) == freq_.end());
  freq_[k] = Meta{1, next_seq_++};
  Push(k);
}

void LfuTracker::OnAccess(Key k) {
  const auto it = freq_.find(k);
  if (it == freq_.end()) return;
  ++it->second.freq;
  it->second.seq = next_seq_++;
  Push(k);  // stale heap entries are skipped lazily
}

void LfuTracker::OnErase(Key k) { freq_.erase(k); }

StatusOr<Key> LfuTracker::PickVictim(Rng& /*rng*/) {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    const auto it = freq_.find(top.key);
    if (it == freq_.end() || it->second.freq != top.freq ||
        it->second.seq != top.seq) {
      heap_.pop();  // stale
      continue;
    }
    return top.key;
  }
  return Status::NotFound("tracker empty");
}

// --- Random -----------------------------------------------------------------

void RandomTracker::OnInsert(Key k) {
  assert(index_.find(k) == index_.end());
  index_[k] = keys_.size();
  keys_.push_back(k);
}

void RandomTracker::OnErase(Key k) {
  const auto it = index_.find(k);
  if (it == index_.end()) return;
  const std::size_t pos = it->second;
  const Key last = keys_.back();
  keys_[pos] = last;
  index_[last] = pos;
  keys_.pop_back();
  index_.erase(it);
}

StatusOr<Key> RandomTracker::PickVictim(Rng& rng) {
  if (keys_.empty()) return Status::NotFound("tracker empty");
  return keys_[rng.Uniform(keys_.size())];
}

}  // namespace ecc::core
