#include "core/coordinator.h"

#include <cassert>

#include "common/log.h"

namespace ecc::core {

Coordinator::Coordinator(CoordinatorOptions opts, CacheBackend* cache,
                         service::Service* service,
                         const sfc::Linearizer* linearizer,
                         VirtualClock* clock)
    : opts_(opts),
      cache_(cache),
      service_(service),
      linearizer_(linearizer),
      clock_(clock),
      window_(opts.window),
      dynamic_(opts.dynamic) {
  assert(cache != nullptr && service != nullptr && linearizer != nullptr &&
         clock != nullptr);
  m_queries_ = opts_.obs.MakeCounter("coordinator.queries");
  m_hits_ = opts_.obs.MakeCounter("coordinator.hits");
  m_misses_ = opts_.obs.MakeCounter("coordinator.misses");
  trace_ = opts_.obs.trace;
  telemetry_ = opts_.obs.telemetry;
}

QueryOutcome Coordinator::ProcessKey(Key k) {
  const TimePoint start = clock_->now();
  window_.RecordQuery(k);
  ++step_queries_;
  ++total_queries_;
  m_queries_.Inc();
  obs::Emit(trace_, obs::QueryStartEvent(start, k));

  QueryOutcome outcome;
  auto cached = cache_->Get(k);
  if (cached.ok()) {
    outcome.hit = true;
    ++step_hits_;
    ++total_hits_;
  } else {
    // Miss.  With a spill tier attached, reheating from persistent storage
    // (hundreds of ms) beats recomputation (tens of s) by two orders.
    std::string payload;
    bool have_payload = false;
    if (spill_ != nullptr) {
      auto spilled = spill_->Get(k);
      if (spilled.ok()) {
        payload = std::move(*spilled);
        have_payload = true;
        ++spill_hits_;
      }
    }
    if (!have_payload) {
      const sfc::GeoTemporalQuery q = linearizer_->CellCenter(k);
      auto result = service_->Invoke(q, clock_);
      // The synthetic substrate cannot fail on in-range cells.
      assert(result.ok());
      if (result.ok()) {
        payload = std::move(result->payload);
        have_payload = true;
      }
    }
    if (have_payload) {
      const Status s = cache_->Put(k, std::move(payload));
      if (!s.ok()) {
        ECC_LOG_WARN("coordinator: put failed for key %llu: %s",
                     static_cast<unsigned long long>(k),
                     s.ToString().c_str());
      }
    }
  }
  outcome.latency = clock_->now() - start;
  step_query_time_ += outcome.latency;
  total_query_time_ += outcome.latency;
  if (outcome.hit) {
    m_hits_.Inc();
  } else {
    m_misses_.Inc();
  }
  obs::Emit(trace_, obs::QueryEndEvent(clock_->now(), k,
                                       outcome.hit
                                           ? obs::QueryOutcomeKind::kHit
                                           : obs::QueryOutcomeKind::kMiss,
                                       outcome.latency));
  return outcome;
}

StatusOr<QueryOutcome> Coordinator::ProcessQuery(
    const sfc::GeoTemporalQuery& q) {
  auto key = linearizer_->EncodeQuery(q);
  if (!key.ok()) return key.status();
  return ProcessKey(*key);
}

TimeStepReport Coordinator::EndTimeStep() {
  TimeStepReport report;
  report.step_queries = step_queries_;
  report.step_hits = step_hits_;
  report.step_misses = step_queries_ - step_hits_;
  report.step_query_time = step_query_time_;

  // Dynamic-window extension: observe before the slice closes.
  if (opts_.dynamic_window) {
    dynamic_.ObserveSlice(step_hits_, report.step_misses);
    dynamic_.MaybeAdjust(window_);
  }

  const SliceExpiry expiry = window_.AdvanceSlice();
  if (!expiry.evicted.empty()) {
    if (spill_ != nullptr) {
      auto extracted = cache_->ExtractKeys(expiry.evicted);
      report.evicted = extracted.size();
      for (auto& [k, v] : extracted) {
        spill_->Put(k, std::move(v));
        ++spill_puts_;
      }
      report.spilled = extracted.size();
    } else {
      report.evicted = cache_->EvictKeys(expiry.evicted);
    }
  }
  if (expiry.expired_slices > 0 && opts_.contraction_epsilon > 0) {
    expirations_since_contract_ += expiry.expired_slices;
    if (expirations_since_contract_ >= opts_.contraction_epsilon) {
      expirations_since_contract_ = 0;
      report.contracted = cache_->TryContract();
    }
  }
  report.window_slices = window_.options().slices;

  // Sample fleet load at the (quiesced) step boundary; x is the 0-based
  // step index.
  if (telemetry_ != nullptr) {
    telemetry_->Sample(static_cast<double>(steps_ended_),
                       cache_->NodeLoads());
  }
  ++steps_ended_;

  step_queries_ = 0;
  step_hits_ = 0;
  step_query_time_ = Duration::Zero();
  return report;
}

}  // namespace ecc::core
