#include "core/coordinator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "cloudsim/billing.h"
#include "common/log.h"

namespace ecc::core {

Coordinator::Coordinator(CoordinatorOptions opts, CacheBackend* cache,
                         service::Service* service,
                         const sfc::Linearizer* linearizer,
                         VirtualClock* clock)
    : opts_(opts),
      cache_(cache),
      service_(service),
      linearizer_(linearizer),
      clock_(clock),
      window_(opts.window),
      dynamic_(opts.dynamic) {
  assert(cache != nullptr && service != nullptr && linearizer != nullptr &&
         clock != nullptr);
  policy_ = opts_.policy;
  if (policy_ == nullptr) {
    own_policy_ =
        std::make_unique<policy::PaperBaselinePolicy>(opts_.contraction_epsilon);
    policy_ = own_policy_.get();
  }
  last_boundary_ = clock_->now();
  m_queries_ = opts_.obs.MakeCounter("coordinator.queries");
  m_hits_ = opts_.obs.MakeCounter("coordinator.hits");
  m_misses_ = opts_.obs.MakeCounter("coordinator.misses");
  m_policy_evictions_ = opts_.obs.MakeCounter("policy.evictions");
  m_policy_denials_ = opts_.obs.MakeCounter("policy.admit_denials");
  m_policy_contracts_ = opts_.obs.MakeCounter("policy.contract_signals");
  m_policy_prewarms_ = opts_.obs.MakeCounter("policy.prewarm_launches");
  trace_ = opts_.obs.trace;
  telemetry_ = opts_.obs.telemetry;
  if (opts_.overload.enabled) {
    m_shed_ = opts_.obs.MakeCounter("overload.shed");
    m_stale_ = opts_.obs.MakeCounter("overload.stale_serves");
    m_deadline_ = opts_.obs.MakeCounter("overload.deadline_exceeded");
    if (opts_.overload.breaker_enabled) {
      breaker_ = std::make_unique<overload::CircuitBreaker>(
          opts_.overload.breaker, trace_);
      breaker_->BindMetrics(
          opts_.obs.MakeCounter("overload.breaker_opens"),
          opts_.obs.MakeCounter("overload.breaker_rejections"));
    }
  }
  if (opts_.front.enabled) {
    fronttier::InvalidationHub* hub = opts_.front.hub;
    if (hub == nullptr) {
      own_hub_ = std::make_unique<fronttier::InvalidationHub>();
      hub = own_hub_.get();
    }
    // Several coordinators sharing one backend must share one hub (pass it
    // via opts.front.hub); attaching here is then idempotent.
    cache_->AttachInvalidationHub(hub);
    front_ =
        std::make_unique<fronttier::FrontCache>(opts_.front, hub, opts_.obs);
  }
}

bool Coordinator::StaleWithinBound(Key k, std::uint64_t* age) const {
  // No eviction record means the staleness is unknowable: either the key
  // was never decay-evicted (then no stale copy should exist at all) or
  // the record was pruned as past the bound.  Refuse both — a degraded
  // answer is only safe with a provable age.
  const auto it = evicted_at_.find(k);
  if (it == evicted_at_.end()) return false;
  *age = steps_ended_ - it->second;
  return *age <= opts_.overload.stale_bound_slices;
}

QueryOutcome Coordinator::ProcessKey(Key k) {
  const TimePoint start = clock_->now();
  window_.RecordQuery(k);
  ++step_queries_;
  ++total_queries_;
  m_queries_.Inc();
  obs::Emit(trace_, obs::QueryStartEvent(start, k));

  const overload::OverloadOptions& ov = opts_.overload;
  Deadline deadline;
  if (ov.enabled && ov.query_deadline > Duration::Zero()) {
    deadline = Deadline{clock_, start + ov.query_deadline};
  }
  // Layers below (RPC retry inside the backend) read the thread-local.
  const overload::ScopedDeadline scope(deadline);

  QueryOutcome outcome;

  // Front tier: answer the hottest keys from coordinator-local memory,
  // skipping the backend RPC entirely.  On a front miss, capture the
  // freshness stamp BEFORE the backend read — Offer() re-validates it at
  // admission, which is what bounds front staleness (DESIGN.md §12).
  fronttier::Stamp pre_read{};
  if (front_ != nullptr) {
    if (front_->Find(k, clock_->now()).value != nullptr) {
      clock_->Advance(opts_.front.hit_cost);
      outcome.hit = true;
      ++step_hits_;
      ++total_hits_;
      ++front_hits_;
      outcome.latency = clock_->now() - start;
      step_query_time_ += outcome.latency;
      total_query_time_ += outcome.latency;
      m_hits_.Inc();
      policy_->OnQuery(k, true, steps_ended_);
      obs::Emit(trace_,
                obs::QueryEndEvent(clock_->now(), k,
                                   obs::QueryOutcomeKind::kHit,
                                   outcome.latency));
      return outcome;
    }
    pre_read = front_->PreReadStamp(k);
  }

  auto cached = cache_->Get(k);
  if (cached.ok()) {
    outcome.hit = true;
    ++step_hits_;
    ++total_hits_;
    // Hit-path admission only: the value just read is provably consistent
    // with the stamp taken above (miss-path values are not — their own Put
    // moves the version).
    if (front_ != nullptr) {
      (void)front_->Offer(k, *cached, pre_read, clock_->now());
    }
  } else {
    // Miss.  With a spill tier attached, reheating from persistent storage
    // (hundreds of ms) beats recomputation (tens of s) by two orders.
    std::string payload;
    bool have_payload = false;
    if (spill_ != nullptr) {
      auto spilled = spill_->Get(k);
      if (spilled.ok()) {
        payload = std::move(*spilled);
        have_payload = true;
        ++spill_hits_;
      }
    }
    if (!have_payload) {
      // Overload gate on the service call: the spill probe above is cheap
      // and unguarded; the ~23 s invocation is what needs protecting.
      bool shed = false;
      obs::ShedCode reason = obs::ShedCode::kBreakerOpen;
      if (ov.enabled) {
        if (deadline.Expired()) {
          shed = true;
          reason = obs::ShedCode::kDeadline;
        } else if (breaker_ != nullptr && !breaker_->Allow(clock_->now())) {
          shed = true;
          reason = obs::ShedCode::kBreakerOpen;
        }
      }
      if (shed) {
        outcome.shed = true;
        ++shed_count_;
        m_shed_.Inc();
        obs::Emit(trace_, obs::LoadShedEvent(clock_->now(), k, reason));
        if (ov.stale_serve) {
          // Degraded answer: a mirror copy whose eviction ERASE was lost
          // may still be addressable, bounded by the staleness budget.
          auto stale = cache_->GetStale(k);
          std::uint64_t age = 0;
          if (stale.ok() && StaleWithinBound(k, &age)) {
            outcome.shed = false;
            outcome.stale = true;
            ++stale_serves_;
            m_stale_.Inc();
            obs::Emit(trace_, obs::StaleServeEvent(
                                  clock_->now(), k,
                                  obs::StaleSource::kReplica, age));
          }
        }
      } else if (ov.enabled) {
        // Invoke on a scratch clock and charge at most the remaining
        // deadline budget: the caller stops waiting when the budget is
        // gone, even though the (late) answer still warms the cache.
        const sfc::GeoTemporalQuery q = linearizer_->CellCenter(k);
        VirtualClock scratch;
        auto result = service_->Invoke(q, &scratch);
        const Duration cost = scratch.now() - TimePoint::Epoch();
        const Duration remaining = deadline.Remaining();
        clock_->Advance(std::min(cost, remaining));
        if (cost > remaining) {
          outcome.deadline_exceeded = true;
          ++deadline_exceeded_;
          m_deadline_.Inc();
          obs::Emit(trace_, obs::DeadlineExceededEvent(clock_->now(), k,
                                                       cost - remaining));
        }
        if (breaker_ != nullptr) {
          breaker_->Record(clock_->now(), result.ok(), cost);
        }
        if (result.ok()) {
          payload = std::move(result->payload);
          have_payload = true;
        }
      } else {
        const sfc::GeoTemporalQuery q = linearizer_->CellCenter(k);
        auto result = service_->Invoke(q, clock_);
        // The synthetic substrate cannot fail on in-range cells.
        assert(result.ok());
        if (result.ok()) {
          payload = std::move(result->payload);
          have_payload = true;
        }
      }
    }
    if (have_payload) {
      // Admission gate: the caller already has the answer; the policy only
      // decides whether caching it is worth the memory (Mth-request
      // admission keeps one-hit wonders out, DESIGN.md §13.3).
      if (policy_->AdmitOnMiss(k)) {
        // The insert is cache maintenance, not caller-visible wait: suspend
        // the query's (possibly already-expired) deadline so the late
        // answer still warms the cache instead of having its Put RPC
        // clipped.
        const overload::ScopedDeadline unclipped{Deadline{}};
        const Status s = cache_->Put(k, std::move(payload));
        if (!s.ok()) {
          ECC_LOG_WARN("coordinator: put failed for key %llu: %s",
                       static_cast<unsigned long long>(k),
                       s.ToString().c_str());
        }
        // Re-caching makes the key fresh again for staleness accounting.
        if (!evicted_at_.empty()) evicted_at_.erase(k);
      } else {
        ++admit_denials_;
        m_policy_denials_.Inc();
        obs::Emit(trace_, obs::PolicyDecisionEvent(
                              clock_->now(),
                              obs::PolicyDecisionCode::kAdmitDeny, k, 0, 0));
      }
    }
  }
  policy_->OnQuery(k, outcome.hit, steps_ended_);
  outcome.latency = clock_->now() - start;
  step_query_time_ += outcome.latency;
  total_query_time_ += outcome.latency;
  obs::QueryOutcomeKind kind = obs::QueryOutcomeKind::kMiss;
  if (outcome.hit) {
    m_hits_.Inc();
    kind = obs::QueryOutcomeKind::kHit;
  } else if (outcome.stale) {
    kind = obs::QueryOutcomeKind::kStale;
  } else if (outcome.shed) {
    kind = obs::QueryOutcomeKind::kShed;
  } else {
    m_misses_.Inc();
  }
  obs::Emit(trace_,
            obs::QueryEndEvent(clock_->now(), k, kind, outcome.latency));
  return outcome;
}

StatusOr<QueryOutcome> Coordinator::ProcessQuery(
    const sfc::GeoTemporalQuery& q) {
  auto key = linearizer_->EncodeQuery(q);
  if (!key.ok()) return key.status();
  return ProcessKey(*key);
}

policy::PolicyContext Coordinator::BuildPolicyContext(
    std::size_t expired_slices, const TimeStepReport& report) {
  policy::PolicyContext ctx;
  ctx.step = steps_ended_;
  ctx.expired_slices = expired_slices;
  ctx.step_queries = report.step_queries;
  ctx.step_hits = report.step_hits;
  ctx.node_count = cache_->NodeCount();
  ctx.total_records = cache_->TotalRecords();
  ctx.used_bytes = cache_->TotalUsedBytes();
  ctx.capacity_bytes = cache_->TotalCapacityBytes();
  const TimePoint now = clock_->now();
  ctx.slice_hours = (now - last_boundary_).seconds() / 3600.0;
  last_boundary_ = now;
  if (opts_.provider != nullptr) {
    ctx.live_instances = opts_.provider->LiveCount();
    ctx.warm_pool = opts_.provider->WarmPoolCount();
    const cloudsim::BillingReport bill =
        cloudsim::MakeBillingReport(*opts_.provider, now);
    ctx.accrued_usd = bill.total_usd;
    if (bill.node_hours > 0) {
      ctx.usd_per_node_hour = bill.total_usd / bill.node_hours;
    }
  }
  return ctx;
}

TimeStepReport Coordinator::EndTimeStep() {
  TimeStepReport report;
  report.step_queries = step_queries_;
  report.step_hits = step_hits_;
  report.step_misses = step_queries_ - step_hits_;
  report.step_query_time = step_query_time_;

  // Dynamic-window extension: observe before the slice closes.
  if (opts_.dynamic_window) {
    dynamic_.ObserveSlice(step_hits_, report.step_misses);
    dynamic_.MaybeAdjust(window_);
  }

  const SliceExpiry expiry = window_.AdvanceSlice();
  const policy::PolicyContext ctx =
      BuildPolicyContext(expiry.expired_slices, report);
  const std::vector<Key> evict = policy_->SelectEvictions(expiry.evicted, ctx);
  if (evict.size() != expiry.evicted.size()) {
    obs::Emit(trace_,
              obs::PolicyDecisionEvent(
                  clock_->now(), obs::PolicyDecisionCode::kEvictOverride,
                  obs::kNoKey, static_cast<std::int64_t>(evict.size()),
                  static_cast<std::int64_t>(expiry.evicted.size())));
  }
  if (!evict.empty() && opts_.overload.enabled && opts_.overload.stale_serve) {
    // Stamp eviction time: any copy that survives past this point (a
    // mirror whose ERASE was lost, a spill record) is stale from here on.
    for (const Key k : evict) evicted_at_[k] = steps_ended_;
  }
  if (!evict.empty()) {
    m_policy_evictions_.Inc(evict.size());
    if (spill_ != nullptr) {
      auto extracted = cache_->ExtractKeys(evict);
      report.evicted = extracted.size();
      for (auto& [k, v] : extracted) {
        spill_->Put(k, std::move(v));
        ++spill_puts_;
      }
      report.spilled = extracted.size();
    } else {
      report.evicted = cache_->EvictKeys(evict);
    }
  }
  if (policy_->ShouldContract(ctx)) {
    m_policy_contracts_.Inc();
    obs::Emit(trace_, obs::PolicyDecisionEvent(
                          clock_->now(), obs::PolicyDecisionCode::kContract,
                          obs::kNoKey, 0, 0));
    report.contracted = cache_->TryContract();
  }
  if (opts_.provider != nullptr) {
    const std::size_t n = policy_->PrewarmTarget(ctx);
    if (n > 0) {
      opts_.provider->PrewarmAsync(n);
      prewarm_launches_ += n;
      m_policy_prewarms_.Inc(n);
      obs::Emit(trace_, obs::PolicyDecisionEvent(
                            clock_->now(), obs::PolicyDecisionCode::kPrewarm,
                            obs::kNoKey, static_cast<std::int64_t>(n), 0));
    }
  }
  report.window_slices = window_.options().slices;

  // Age the front tier's hot-set tracker in step with the sliding window.
  if (front_ != nullptr) front_->OnWindowBoundary(clock_->now());

  // Sample fleet load at the (quiesced) step boundary; x is the 0-based
  // step index.
  if (telemetry_ != nullptr) {
    telemetry_->Sample(static_cast<double>(steps_ended_),
                       cache_->NodeLoads());
  }
  // Background maintenance (failure detection / recovery / scrub) runs at
  // the same quiesced boundary, with the topology safe to mutate.
  if (maintenance_ != nullptr) maintenance_->Tick();
  ++steps_ended_;

  // Entries past the stale bound can never be served again; drop them.
  if (!evicted_at_.empty()) {
    const std::uint64_t bound = opts_.overload.stale_bound_slices;
    for (auto it = evicted_at_.begin(); it != evicted_at_.end();) {
      if (steps_ended_ - it->second > bound) {
        it = evicted_at_.erase(it);
      } else {
        ++it;
      }
    }
  }

  step_queries_ = 0;
  step_hits_ = 0;
  step_query_time_ = Duration::Zero();
  return report;
}

}  // namespace ecc::core
