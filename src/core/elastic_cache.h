// ElasticCache: the paper's cooperative elastic cloud cache.
//
// Placement is a consistent-hash ring whose bucket arcs are key intervals
// (the auxiliary hash h'(k) = k mod r is order-preserving for k < r, the
// configuration the paper's sweep semantics require: a bucket's keys form a
// contiguous B+-Tree range on its node).
//
// GBA-insert (Algorithm 1): on node overflow, find the fullest bucket
// referencing the node, take the median key k^mu of that bucket's records,
// sweep-and-migrate the lower half to the least-loaded cooperating node —
// allocating a fresh cloud node only if nothing can absorb the range — and
// register a new bucket at h'(k^mu) pointing at the destination.
//
// Sweep-and-migrate (Algorithm 2): one root-to-leaf search plus a linked-
// leaf sweep on the source shard; records ship in batched MIGRATE messages
// whose transfer time (T_net per record) dominates, as in the paper's
// analysis.
//
// Contraction: merge the two least-loaded nodes when their combined data
// fits under the churn-avoidance threshold (65% of a node), then release
// the freed instance.
// Threading: ElasticCache itself is single-threaded except for the pieces
// the striped front-end (striped_backend.h) relies on — the virtual clock
// is atomic, and every counter lives in a MetricsRegistry cell whose
// increments are single atomic RMWs (obs/metrics.h), so the hot path
// (Get / PutNoSplit) and stats() polls need no lock at all.  Everything
// that can mutate topology (Put-with-split, contraction, eviction, failure
// injection) must be externally serialized; StripedBackend does so with an
// exclusive topology lock.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cloudsim/provider.h"
#include "common/time.h"
#include "core/backend.h"
#include "core/cache_node.h"
#include "core/types.h"
#include "fault/fault.h"
#include "hashring/consistent_hash.h"
#include "net/netmodel.h"
#include "net/rpc.h"
#include "obs/obs.h"

namespace ecc::core {

struct ElasticCacheOptions {
  /// Usable cache bytes per node.  The default is scaled for laptop-size
  /// experiments (see DESIGN.md: shapes depend on capacity/keyspace ratio,
  /// not absolute bytes).
  std::uint64_t node_capacity_bytes = 4ull << 20;
  std::size_t initial_nodes = 1;
  std::size_t initial_buckets_per_node = 4;
  hashring::RingOptions ring{.range = 1ull << 48, .mix_keys = false};
  net::NetworkModelOptions net;
  /// Records per MIGRATE message.
  std::size_t migrate_batch_records = 64;
  /// CPU charge per B+-Tree operation on the virtual clock.
  Duration local_op_time = Duration::Micros(20);
  /// Contraction floor and churn-avoidance fill threshold (paper: 65%).
  std::size_t min_nodes = 1;
  double merge_fill_threshold = 0.65;
  /// Safety bound on consecutive splits for one insert.
  std::size_t max_split_iterations = 64;
  /// Copies of each record (extension; paper §VI suggests replication to
  /// survive node loss).  1 = primary only; 2 = primary + a mirror copy
  /// stored at the diametrically opposite ring position (k + r/2), so the
  /// replica rides the normal split/migration machinery and stays
  /// addressable through any topology change.  Requires primary keys to
  /// occupy the lower half of the hash line.
  std::size_t replicas = 1;
  /// Asynchronous allocation + prefetch extension (paper §VI): when a
  /// node's fill fraction reaches this threshold, split it *proactively in
  /// the background* — boot capacity via the warm pool and migrate the
  /// half-bucket off the query path, so later inserts never block on a
  /// cold boot or a synchronous sweep.  0 disables (the paper's reactive
  /// last-resort behaviour).
  double proactive_split_fill = 0.0;
  /// Retry/timeout policy for every coordinator -> node RPC.  The defaults
  /// never fire on a healthy loopback channel (the only retryable status is
  /// Unavailable, which the channel emits solely under fault injection), so
  /// the happy path is byte-identical with or without this layer.
  net::RetryPolicy rpc_retry;
  /// Transport factory: how the coordinator reaches a node it allocated.
  /// Called twice per node — once with the query clock (foreground), once
  /// with `clock == nullptr` (charge-free background migrations) — and may
  /// return any net::Channel (a SocketTransport puts every node behind a
  /// real kernel boundary; see DESIGN.md §14).  nullptr = the default
  /// LoopbackChannel under the cache's NetworkModel.
  std::function<std::unique_ptr<net::Channel>(
      NodeId id, net::RpcServer* rpc, VirtualClock* clock)>
      channel_factory;
  /// Fault injector (not owned; nullptr = no faults).  When set, every node
  /// channel is bound to it and the two-phase migration protocol consults
  /// it between phases.
  fault::FaultInjector* fault = nullptr;
  /// Durability hook (opt-in): called once per allocated node, after the
  /// node exists but before it serves traffic.  The factory may recover the
  /// shard from disk, bind a mutation listener, and return an owning handle
  /// the cache keeps for the node's lifetime (destroyed at deallocation —
  /// durability::FleetDurability retires the on-disk state then).  nullptr
  /// (factory or returned handle) = no durability for that node.
  std::function<std::unique_ptr<ShardMutationListener>(NodeId, CacheNode*)>
      durability_factory;
  /// Observability sinks (none owned).  With obs.metrics == nullptr the
  /// cache creates a private registry, because its stats() accounting lives
  /// in registry cells; pass &obs::EccObsDisabled() to compile the whole
  /// accounting path down to no-ops (stats() then reads all-zero).  A
  /// non-null obs.trace receives split / migration / eviction / node
  /// lifecycle / RPC-retry events, and is forwarded to the fault injector.
  obs::Observability obs;
};

/// Outcome of one overflow-triggered split, for Fig. 4 accounting.
struct SplitReport {
  NodeId source = 0;
  NodeId destination = 0;
  bool allocated_new_node = false;
  std::size_t records_moved = 0;
  std::uint64_t bytes_moved = 0;
  Duration alloc_time;
  Duration move_time;

  [[nodiscard]] Duration TotalOverhead() const {
    return alloc_time + move_time;
  }
};

/// Outcome of an injected node failure.
struct KillReport {
  NodeId node = 0;
  std::size_t records_dropped = 0;      ///< records the dead node held
  std::size_t records_recoverable = 0;  ///< of those, replicated elsewhere
  std::size_t buckets_reassigned = 0;
  /// Every key the dead node held, for crash accounting: a key may vanish
  /// from the fleet only by appearing here.  (Keys that also survive
  /// elsewhere — mirrors, or source copies salvaged by a two-phase abort —
  /// legitimately overlap with the live set.)
  std::vector<Key> keys_dropped;
};

/// Point-in-time description of one node, for reporting/tests.
struct NodeSnapshot {
  NodeId id = 0;
  std::size_t records = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t capacity_bytes = 0;
  std::size_t buckets = 0;
};

class ElasticCache final : public CacheBackend {
 public:
  /// `provider` supplies/retires instances; `clock` is the shared virtual
  /// clock.  Neither is owned.
  ElasticCache(ElasticCacheOptions opts, cloudsim::CloudProvider* provider,
               VirtualClock* clock);

  [[nodiscard]] std::string Name() const override { return "gba-elastic"; }

  [[nodiscard]] StatusOr<std::string> Get(Key k) override;

  /// Degraded read for overload protection: probe only the mirror copy at
  /// MirrorKey(k).  A mirror can outlive the primary when the eviction
  /// ERASE that should have removed it was lost (its response is ignored —
  /// fault-droppable), which is exactly the stale redundancy this serves.
  /// Under `replicas == 1` there is no mirror tier; with a spill store
  /// attached (AttachSpillStore) the spilled copy is probed instead, so
  /// single-copy fleets can still answer degraded — NotFound otherwise.
  [[nodiscard]] StatusOr<std::string> GetStale(Key k) override;

  /// Bind the coordinator's spill tier so GetStale (replicas == 1) and
  /// KillNode recoverability accounting can consult it.  Not owned;
  /// nullptr detaches.  Callers sharing the store across threads must
  /// serialize externally (PersistentStore is not thread-safe).
  void AttachSpillStore(cloudsim::PersistentStore* store) override {
    spill_ = store;
  }

  /// Bind the coordinator front tier's invalidation hub.  Value-level
  /// mutations (Put, erase, eviction, mirror write) bump the key's version;
  /// topology-level changes (two-phase migration commit, contraction,
  /// node crash — and hence recovery re-replication, which rides Put /
  /// WriteMirror / ErasePhysicalRecord) bump the global epoch.  Not owned;
  /// nullptr detaches.
  void AttachInvalidationHub(fronttier::InvalidationHub* hub) override {
    hub_ = hub;
  }

  Status Put(Key k, std::string v) override;

  /// Single-attempt insert that never mutates topology: stores (k, v) on
  /// k's current owner if it fits, and returns CapacityExceeded when a
  /// split would be required (the caller then retries through Put under an
  /// exclusive lock).  Primary copy only — the striped front-end requires
  /// `replicas == 1`.  Duplicate puts are idempotent successes.
  Status PutNoSplit(Key k, const std::string& v);
  std::size_t EvictKeys(const std::vector<Key>& keys) override;
  std::vector<std::pair<Key, std::string>> ExtractKeys(
      const std::vector<Key>& keys) override;
  bool TryContract() override;

  [[nodiscard]] std::size_t NodeCount() const override {
    return nodes_.size();
  }
  [[nodiscard]] std::uint64_t TotalUsedBytes() const override;
  [[nodiscard]] std::uint64_t TotalCapacityBytes() const override;
  [[nodiscard]] std::size_t TotalRecords() const override;
  /// Consistent by-value snapshot assembled from the metrics registry;
  /// outcome counters are read before their attempt counters, so derived
  /// invariants (hits + misses <= gets, put_failures <= puts) hold even
  /// while front-end workers are mid-flight.
  [[nodiscard]] CacheStats stats() const override;
  [[nodiscard]] std::vector<obs::NodeLoad> NodeLoads() const override;

  /// The registry the cache accounts into (the wired one, or the internal
  /// private registry when none was supplied).
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] obs::TraceLog* trace() const { return trace_; }

  // --- Introspection (tests, benches) -------------------------------------

  /// Abrupt node loss (failure injection): the node's shard vanishes
  /// without migration; its buckets repoint to each arc's successor owner;
  /// the backing instance is terminated.  With replication enabled the
  /// lost records' mirror copies survive on other nodes and subsequent
  /// Gets fail over to them.
  StatusOr<KillReport> KillNode(NodeId id);

  /// Hash-line position of k's mirror copy: (k + r/2) mod r.
  [[nodiscard]] Key MirrorKey(Key k) const {
    return (k + opts_.ring.range / 2) % opts_.ring.range;
  }

  /// Node currently owning k's mirror copy.
  [[nodiscard]] StatusOr<NodeId> ReplicaOwnerOf(Key k) const;

  [[nodiscard]] const hashring::ConsistentHashRing& ring() const {
    return ring_;
  }
  [[nodiscard]] const ElasticCacheOptions& options() const { return opts_; }
  [[nodiscard]] StatusOr<NodeId> OwnerOf(Key k) const;
  [[nodiscard]] std::vector<NodeSnapshot> Snapshot() const;
  [[nodiscard]] const CacheNode* GetNode(NodeId id) const;
  [[nodiscard]] const std::vector<SplitReport>& split_history() const {
    return split_history_;
  }

  /// Every abrupt node loss this cache absorbed (KillNode plus crashes
  /// injected mid-migration), in order.  Crash accounting for tests: the
  /// union of live keys and kill_history keys_dropped never shrinks.
  [[nodiscard]] const std::vector<KillReport>& kill_history() const {
    return kill_history_;
  }

  /// Key interval(s) covered by a ring arc, as inclusive key ranges
  /// ([lo, hi] pairs; two when the arc wraps the ring origin).  Exposed for
  /// tests of sweep coverage.
  [[nodiscard]] std::vector<std::pair<Key, Key>> ArcKeyRanges(
      const hashring::Arc& arc) const;

  // --- Recovery hooks (src/recovery/) -------------------------------------

  /// Live node ids, ring order not guaranteed.
  [[nodiscard]] std::vector<NodeId> NodeIds() const;

  /// One liveness probe: a single STATS round trip on `id`'s background
  /// channel (no virtual-time charge, single attempt — the failure
  /// detector's suspicion counter is the retry policy).  False when the
  /// node is unknown or the probe was lost/refused.
  [[nodiscard]] bool ProbeNode(NodeId id);

  /// Remove the physical record at hash-line position `k` wherever it
  /// routes, with no eviction accounting — a repair primitive, not an
  /// eviction (scrub conflict repair, recovery rollback).
  void ErasePhysicalRecord(Key k);

  /// Overwrite k's mirror copy with `v` (erase-then-store: plain puts are
  /// idempotent and would never replace a divergent value).  Primary key
  /// expected (lower half of the hash line); requires replicas >= 2.
  void WriteMirror(Key k, const std::string& v);

  /// The attached spill tier, if any (recovery salvages from it when no
  /// live copy survives a crash).
  [[nodiscard]] cloudsim::PersistentStore* spill_store() const {
    return spill_;
  }

 private:
  struct NodeEntry {
    std::unique_ptr<CacheNode> node;
    std::unique_ptr<net::Channel> channel;
    /// Same endpoint without clock charging: background migrations ride
    /// this one (the work happens concurrently with query service).
    std::unique_ptr<net::Channel> bg_channel;
    /// Durable-mirror handle from durability_factory (maybe null).  Last
    /// member so it is destroyed first, while `node` is still alive.
    std::unique_ptr<ShardMutationListener> durability;
  };

  /// Allocate a cloud instance + cache node (no buckets yet).  Advances the
  /// clock by the boot wait.
  StatusOr<NodeId> AllocateNode();

  /// The GBA insert loop (Algorithm 1) for one physical record.
  Status PutInternal(Key k, const std::string& v);

  /// Store the mirror copy of (k, v); drops (with accounting) when the
  /// mirror currently lands on k's own primary node.
  void StoreReplica(Key k, const std::string& v);

  /// Stats (records/bytes) of `node`'s records inside `arc`.
  [[nodiscard]] RangeStats ArcStats(const CacheNode& node,
                                    const hashring::Arc& arc) const;

  /// Key at `rank` in ring order within `arc` on `node`.
  [[nodiscard]] Key KeyAtRankInArc(const CacheNode& node,
                                   const hashring::Arc& arc,
                                   std::size_t rank) const;

  /// Split the fullest bucket of `node_id` (Algorithm 1 lines 8-15).
  Status SplitNode(NodeId node_id);

  /// Fire a background split when `node_id` crosses the proactive fill
  /// threshold (no-op unless the extension is enabled and spare capacity
  /// is ready).
  void MaybeProactiveSplit(NodeId node_id);

  /// One coordinator -> node RPC (any transport) with timeout/retry per
  /// opts_.rpc_retry; rides the background channel during proactive splits
  /// and folds retry counters into stats().
  StatusOr<net::Message> CallNode(NodeEntry& entry,
                                  const net::Message& request);

  /// The crash-safe sweep-and-migrate protocol: copy `ranges` from `src` to
  /// `dest` (source copies retained), verify the destination holds them,
  /// run `commit` (the caller's atomic ring mutation), then delete at the
  /// source.  Consults the fault injector between phases; on a fault it
  /// rolls back (pre-commit: un-copy at dest, `uncommit` unused) or forward
  /// (post-commit: finish the delete / `uncommit` if the destination died),
  /// so a crash at ANY step conserves the key set.  Either node may be gone
  /// on return — callers must re-check nodes_.  `moved` gets the totals
  /// actually shipped.
  Status TwoPhaseMigrate(NodeId src_id, NodeId dest_id,
                         const std::vector<std::pair<Key, Key>>& ranges,
                         const std::function<Status()>& commit,
                         const std::function<void()>& uncommit,
                         RangeStats* moved);

  /// Injector hook between migration phases (kNone when no injector); also
  /// traces the phase transition with the migration id and endpoints.
  [[nodiscard]] fault::MigrationFault FireStep(std::size_t migration,
                                               fault::MigrationStep step,
                                               NodeId src, NodeId dest);

  /// Erase `keys` on `entry`'s node, RPC first, falling back to direct
  /// shard access if the wire path is faulted — recovery must never itself
  /// be lost to the fault it is recovering from.
  void EraseKeysReliable(NodeEntry& entry, const std::vector<Key>& keys);

  /// Abrupt node loss, shared by KillNode and injected migration crashes:
  /// record every dropped key, repoint the dead node's buckets at arc
  /// successors, fail the backing instance, append to kill_history_.
  KillReport CrashNodeInternal(NodeId id);

  [[nodiscard]] NodeEntry& Entry(NodeId id) { return nodes_.at(id); }

  /// Null-safe hub notifications (defined in the .cc: the header only sees
  /// the InvalidationHub forward declaration).
  void FrontBumpKey(Key k);
  void FrontBumpAll();

  ElasticCacheOptions opts_;
  cloudsim::CloudProvider* provider_;
  VirtualClock* clock_;
  net::NetworkModel net_model_;
  hashring::ConsistentHashRing ring_;
  std::map<NodeId, NodeEntry> nodes_;
  NodeId next_node_id_ = 0;
  /// Registry handles for every CacheStats field (Durations as _us
  /// counters).  Registration order matters: an attempt counter (gets,
  /// puts) registers before its outcome counters so the reverse-order
  /// snapshot preserves `outcomes <= attempts`; the hot paths write in
  /// matching order (attempt first).
  struct Handles {
    obs::Counter gets, hits, misses, failover_reads, degraded_gets;
    obs::Counter puts, put_failures, degraded_puts;
    obs::Counter evictions, splits, proactive_splits;
    obs::Counter node_allocations, node_removals, node_failures;
    obs::Counter records_migrated, bytes_migrated;
    obs::Counter replica_writes, replica_drops;
    obs::Counter rpc_retries, rpc_failures;
    obs::Counter migration_aborts, migration_recoveries;
    obs::Counter total_split_overhead_us, total_alloc_time_us;
    obs::Counter total_migration_time_us;
    obs::Gauge last_split_overhead_us;
    obs::HistogramHandle split_overhead_s;
    obs::Counter node_rpc_ops;
  };
  Handles m_;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  /// Coordinator's spill tier, when attached (not owned).
  cloudsim::PersistentStore* spill_ = nullptr;
  /// Front-tier invalidation fan-out, when attached (not owned).
  fronttier::InvalidationHub* hub_ = nullptr;
  /// Plain mirror of total_alloc_time, kept because SplitReport needs the
  /// per-split allocation delta even when the registry is the disabled one
  /// (all cells null, reads zero).  Only touched on the exclusively locked
  /// topology path.
  Duration alloc_time_accum_;
  std::vector<SplitReport> split_history_;
  std::vector<KillReport> kill_history_;
  /// True while a proactive split runs: transfers use bg channels and
  /// charge nothing to the virtual clock.
  bool background_mode_ = false;
  /// Per-node high-water mark of used_bytes at the last proactive attempt;
  /// a node must grow ~5% of capacity past it before the next attempt
  /// (prevents re-split thrash on nodes hovering at the threshold).
  std::map<NodeId, std::uint64_t> proactive_marker_;
};

}  // namespace ecc::core
