// Shared vocabulary of the cache core.
#pragma once

#include <cstdint>
#include <string>

namespace ecc::core {

/// Linearized spatiotemporal cache key (see src/sfc).
using Key = std::uint64_t;

/// Cooperative cache node identifier (dense index, not the cloud instance
/// id — a node keeps its identity across the hash ring even though the
/// backing instance is provider-assigned).
using NodeId = std::uint64_t;

/// In-memory footprint of one cached record: key + value + index overhead
/// (tree slot, size bookkeeping).  The paper's analysis normalizes
/// sizeof(k, v) = 1; we keep real bytes and normalize in reporting.
constexpr std::size_t kRecordOverheadBytes = 48;

[[nodiscard]] inline std::size_t RecordSize(Key /*k*/,
                                            const std::string& value) {
  return sizeof(Key) + value.size() + kRecordOverheadBytes;
}

[[nodiscard]] inline std::size_t RecordSize(Key k, std::size_t value_bytes) {
  (void)k;
  return sizeof(Key) + value_bytes + kRecordOverheadBytes;
}

}  // namespace ecc::core
