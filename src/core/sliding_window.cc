#include "core/sliding_window.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace ecc::core {

namespace {
// alpha^(m-1) computed by repeated multiplication — the exact operation
// sequence Lambda() uses for its weights, so a key queried once in the
// oldest in-window slice scores *exactly* the baseline threshold and is
// kept ("will not evict any key queried even just once in the span of the
// sliding window").  std::pow can differ in the last ulp and break that.
double BaselineThreshold(double alpha, std::size_t m) {
  double t = 1.0;
  for (std::size_t i = 1; i < m; ++i) t *= alpha;
  return t;
}
}  // namespace

SlidingWindow::SlidingWindow(SlidingWindowOptions opts) : opts_(opts) {
  assert(opts_.alpha > 0.0 && opts_.alpha < 1.0);
  if (opts_.threshold >= 0.0) {
    threshold_ = opts_.threshold;
  } else if (opts_.slices > 0) {
    threshold_ = BaselineThreshold(opts_.alpha, opts_.slices);
  } else {
    threshold_ = 0.0;  // infinite window: nothing is ever scored
  }
  window_.emplace_front();  // the filling slice
}

void SlidingWindow::RecordQuery(Key k) { ++window_.front()[k]; }

SliceExpiry SlidingWindow::AdvanceSlice() {
  // The filling slice closes and becomes t_1; a fresh filling slice opens.
  // window_ = [filling, t_1, t_2, ..., t_m]; everything beyond t_m is
  // "t_{m+1}": expired, scored against the retained window.
  SliceExpiry result;
  window_.emplace_front();
  if (infinite()) return result;

  while (window_.size() > opts_.slices + 1) {
    Slice expired = std::move(window_.back());
    window_.pop_back();
    ++result.expired_slices;
    for (const auto& [k, count] : expired) {
      ++result.scored;
      if (Lambda(k) < threshold_) result.evicted.push_back(k);
    }
    // Only one slice expires per advance in steady state; the loop also
    // drains surplus slices after a Resize shrink, scoring each.
  }
  return result;
}

double SlidingWindow::Lambda(Key k) const {
  // The filling slice shares t_1's weight (recent queries are rewarded
  // immediately); completed slice i gets alpha^(i-1).
  double score = 0.0;
  double weight = 1.0;
  bool filling = true;
  for (const Slice& slice : window_) {
    const auto it = slice.find(k);
    if (it != slice.end()) score += weight * it->second;
    if (filling) {
      filling = false;  // t_1 keeps weight 1; decay starts after it
    } else {
      weight *= opts_.alpha;
    }
  }
  return score;
}

std::uint32_t SlidingWindow::CountInSlice(Key k, std::size_t i) const {
  assert(i >= 1);
  if (i > window_.size()) return 0;
  const Slice& slice = window_[i - 1];
  const auto it = slice.find(k);
  return it == slice.end() ? 0 : it->second;
}

std::size_t SlidingWindow::DistinctKeys() const {
  std::unordered_set<Key> keys;
  for (const Slice& slice : window_) {
    for (const auto& [k, count] : slice) keys.insert(k);
  }
  return keys.size();
}

void SlidingWindow::Resize(std::size_t new_slices) {
  opts_.slices = new_slices;
  if (opts_.slices > 0 && opts_.threshold < 0.0) {
    threshold_ = BaselineThreshold(opts_.alpha, opts_.slices);
  }
}

}  // namespace ecc::core
