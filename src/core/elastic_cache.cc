#include "core/elastic_cache.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "cloudsim/persistent_store.h"
#include "common/log.h"
#include "fronttier/front_cache.h"
#include "net/message.h"
#include "overload/overload.h"

namespace ecc::core {

void ElasticCache::FrontBumpKey(Key k) {
  if (hub_ != nullptr) hub_->BumpKey(k);
}

void ElasticCache::FrontBumpAll() {
  if (hub_ != nullptr) hub_->BumpAll();
}

ElasticCache::ElasticCache(ElasticCacheOptions opts,
                           cloudsim::CloudProvider* provider,
                           VirtualClock* clock)
    : opts_(opts),
      provider_(provider),
      clock_(clock),
      net_model_(opts.net),
      ring_(opts.ring) {
  assert(provider_ != nullptr && clock_ != nullptr);
  assert(!opts_.ring.mix_keys &&
         "GBA sweep semantics require an order-preserving auxiliary hash");
  assert(opts_.initial_nodes >= 1);
  assert(opts_.initial_buckets_per_node >= 1);

  // Wire observability before any node exists: AllocateNode already
  // accounts through the handles.  Without an external registry the cache
  // owns a private one (stats() reads these cells).
  if (opts_.obs.metrics != nullptr) {
    metrics_ = opts_.obs.metrics;
  } else {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  trace_ = opts_.obs.trace;
  if (trace_ != nullptr && opts_.fault != nullptr) {
    opts_.fault->BindTrace(trace_, clock_);
  }
  // Attempt counters first, their outcomes after (snapshot-consistency
  // contract, see obs/metrics.h).
  m_.gets = metrics_->GetCounter("cache.gets");
  m_.hits = metrics_->GetCounter("cache.hits");
  m_.misses = metrics_->GetCounter("cache.misses");
  m_.failover_reads = metrics_->GetCounter("cache.failover_reads");
  m_.degraded_gets = metrics_->GetCounter("cache.degraded_gets");
  m_.puts = metrics_->GetCounter("cache.puts");
  m_.put_failures = metrics_->GetCounter("cache.put_failures");
  m_.degraded_puts = metrics_->GetCounter("cache.degraded_puts");
  m_.evictions = metrics_->GetCounter("cache.evictions");
  m_.splits = metrics_->GetCounter("cache.splits");
  m_.proactive_splits = metrics_->GetCounter("cache.proactive_splits");
  m_.node_allocations = metrics_->GetCounter("cache.node_allocations");
  m_.node_removals = metrics_->GetCounter("cache.node_removals");
  m_.node_failures = metrics_->GetCounter("cache.node_failures");
  m_.records_migrated = metrics_->GetCounter("cache.records_migrated");
  m_.bytes_migrated = metrics_->GetCounter("cache.bytes_migrated");
  m_.replica_writes = metrics_->GetCounter("cache.replica_writes");
  m_.replica_drops = metrics_->GetCounter("cache.replica_drops");
  m_.rpc_retries = metrics_->GetCounter("cache.rpc_retries");
  m_.rpc_failures = metrics_->GetCounter("cache.rpc_failures");
  m_.migration_aborts = metrics_->GetCounter("cache.migration_aborts");
  m_.migration_recoveries =
      metrics_->GetCounter("cache.migration_recoveries");
  m_.total_split_overhead_us =
      metrics_->GetCounter("cache.total_split_overhead_us");
  m_.total_alloc_time_us = metrics_->GetCounter("cache.total_alloc_time_us");
  m_.total_migration_time_us =
      metrics_->GetCounter("cache.total_migration_time_us");
  m_.last_split_overhead_us =
      metrics_->GetGauge("cache.last_split_overhead_us");
  m_.split_overhead_s =
      metrics_->GetHistogram("cache.split_overhead_s", 0.001);
  m_.node_rpc_ops = metrics_->GetCounter("cache.node_rpc_ops");

  // Bring up the initial fleet and lay evenly spaced buckets round-robin
  // across it (paper Fig. 1: p buckets over n nodes).
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < opts_.initial_nodes; ++i) {
    auto id = AllocateNode();
    assert(id.ok() && "initial allocation cannot fail");
    ids.push_back(*id);
  }
  const std::size_t total_buckets =
      opts_.initial_nodes * opts_.initial_buckets_per_node;
  const std::uint64_t stride = opts_.ring.range / total_buckets;
  for (std::size_t i = 0; i < total_buckets; ++i) {
    const std::uint64_t point = (i + 1) * stride - 1;
    // Contiguous blocks (not round-robin): diametrically opposite arcs then
    // belong to different nodes, which the mirror-replica extension needs.
    const auto takeover =
        ring_.AddBucket(point, ids[i * ids.size() / total_buckets]);
    assert(takeover.ok());
    (void)takeover;
  }
  // Initial boots are infrastructure setup, not split overhead: reset the
  // figures-facing allocation counters but keep the instances.  (Nothing
  // else has counted yet.)
  m_.node_allocations.Reset();
  m_.total_alloc_time_us.Reset();
  alloc_time_accum_ = Duration::Zero();
}

StatusOr<NodeId> ElasticCache::AllocateNode() {
  const TimePoint before = clock_->now();
  auto instance = provider_->Allocate();
  if (!instance.ok()) return instance.status();
  const Duration boot_wait = clock_->now() - before;

  const NodeId id = next_node_id_++;
  NodeEntry entry;
  entry.node =
      std::make_unique<CacheNode>(id, *instance, opts_.node_capacity_bytes);
  if (opts_.channel_factory != nullptr) {
    entry.channel = opts_.channel_factory(id, &entry.node->rpc(), clock_);
    entry.bg_channel =
        opts_.channel_factory(id, &entry.node->rpc(), /*clock=*/nullptr);
  } else {
    entry.channel = std::make_unique<net::LoopbackChannel>(
        &entry.node->rpc(), net_model_, clock_);
    entry.bg_channel = std::make_unique<net::LoopbackChannel>(
        &entry.node->rpc(), net_model_, /*clock=*/nullptr);
  }
  if (opts_.fault != nullptr) {
    entry.channel->BindInterceptor(opts_.fault, id);
    entry.bg_channel->BindInterceptor(opts_.fault, id);
  }
  entry.node->BindOpsCounter(m_.node_rpc_ops);
  if (opts_.durability_factory != nullptr) {
    entry.durability = opts_.durability_factory(id, entry.node.get());
  }
  nodes_.emplace(id, std::move(entry));
  m_.node_allocations.Inc();
  m_.total_alloc_time_us.Inc(static_cast<std::uint64_t>(boot_wait.micros()));
  alloc_time_accum_ += boot_wait;
  obs::Emit(trace_, obs::NodeAllocEvent(clock_->now(), id, boot_wait));
  ECC_LOG_INFO("cache: node %llu allocated (fleet=%zu)",
               static_cast<unsigned long long>(id), nodes_.size());
  return id;
}

StatusOr<std::string> ElasticCache::Get(Key k) {
  m_.gets.Inc();
  auto owner = ring_.Lookup(k);
  if (!owner.ok()) return owner.status();
  clock_->Advance(opts_.local_op_time);  // h(k) + dispatch

  NodeEntry& entry = Entry(*owner);
  net::GetRequest req{k};
  bool owner_unreachable = false;
  auto resp_msg = CallNode(entry, req.Encode());
  if (resp_msg.ok()) {
    auto resp = net::GetResponse::Decode(*resp_msg);
    if (!resp.ok()) return resp.status();
    clock_->Advance(opts_.local_op_time);  // B+-Tree search on the node
    if (resp->found) {
      m_.hits.Inc();
      return std::move(resp->value);
    }
  } else if (resp_msg.status().code() == StatusCode::kUnavailable) {
    // Graceful degradation: the owner is unreachable even after retries.
    // This is a cache, not a store of record — fall through to the replica,
    // and failing that report a miss so the coordinator re-invokes the
    // backing service instead of erroring the query.  Topology repair
    // happens on the (exclusively locked) put path, never here.
    owner_unreachable = true;
  } else {
    return resp_msg.status();
  }

  // Failover read: the mirror copy at (k + r/2) survives a primary loss
  // and is addressed through normal routing, so it never goes stale.
  if (opts_.replicas >= 2) {
    auto replica_owner = ReplicaOwnerOf(k);
    if (replica_owner.ok() && *replica_owner != *owner) {
      net::GetRequest mirror_req{MirrorKey(k)};
      auto replica_msg = CallNode(Entry(*replica_owner), mirror_req.Encode());
      if (replica_msg.ok()) {
        auto replica_resp = net::GetResponse::Decode(*replica_msg);
        if (replica_resp.ok() && replica_resp->found) {
          m_.hits.Inc();
          m_.failover_reads.Inc();
          return std::move(replica_resp->value);
        }
      }
    }
  }
  m_.misses.Inc();
  if (owner_unreachable) m_.degraded_gets.Inc();
  return Status::NotFound();
}

StatusOr<std::string> ElasticCache::GetStale(Key k) {
  if (opts_.replicas < 2) {
    // Single-copy fleet: the spill tier is the only redundancy.  The
    // object-store Get charges its own (considerable) latency — the honest
    // price of a degraded answer without a mirror.
    if (spill_ != nullptr) {
      auto spilled = spill_->Get(k);
      if (spilled.ok()) return spilled;
    }
    return Status::NotFound("no replica tier");
  }
  auto replica_owner = ReplicaOwnerOf(k);
  if (!replica_owner.ok()) return replica_owner.status();
  clock_->Advance(opts_.local_op_time);  // h(k) + dispatch
  net::GetRequest req{MirrorKey(k)};
  auto resp_msg = CallNode(Entry(*replica_owner), req.Encode());
  if (!resp_msg.ok()) return resp_msg.status();
  auto resp = net::GetResponse::Decode(*resp_msg);
  if (!resp.ok()) return resp.status();
  clock_->Advance(opts_.local_op_time);  // B+-Tree search on the node
  if (!resp->found) return Status::NotFound();
  return std::move(resp->value);
}

StatusOr<net::Message> ElasticCache::CallNode(NodeEntry& entry,
                                              const net::Message& request) {
  net::Channel& channel =
      background_mode_ ? *entry.bg_channel : *entry.channel;
  net::RetryStats rs;
  auto result =
      net::CallWithRetry(channel, request, opts_.rpc_retry, &rs, trace_,
                         overload::CurrentDeadline());
  if (rs.retries > 0 || rs.exhausted > 0) {
    m_.rpc_retries.Inc(rs.retries);
    m_.rpc_failures.Inc(rs.exhausted);
  }
  return result;
}

StatusOr<NodeId> ElasticCache::ReplicaOwnerOf(Key k) const {
  return ring_.Lookup(MirrorKey(k));
}

Status ElasticCache::PutNoSplit(Key k, const std::string& v) {
  assert(opts_.replicas == 1 &&
         "the no-split fast path stores primaries only");
  const std::size_t rec = RecordSize(k, v);
  if (rec > opts_.node_capacity_bytes) {
    return Status::InvalidArgument("record exceeds node capacity");
  }
  auto owner = ring_.Lookup(k);
  if (!owner.ok()) return owner.status();
  NodeEntry& entry = Entry(*owner);

  if (entry.node->Contains(k)) {  // idempotent duplicate
    clock_->Advance(opts_.local_op_time);
    m_.puts.Inc();
    return Status::Ok();
  }
  if (!entry.node->CanFit(rec)) {
    // Not counted as a put: the caller retries through the split path,
    // which does the counting.
    return Status::CapacityExceeded("owner node full; split required");
  }
  net::PutRequest req{k, v};
  // On Unavailable (owner down / wire loss beyond the retry budget) the
  // status propagates: the striped front-end escalates to the exclusive
  // Put path, whose GBA loop repairs the ring before retrying.
  auto resp_msg = CallNode(entry, req.Encode());
  if (!resp_msg.ok()) return resp_msg.status();
  auto resp = net::PutResponse::Decode(*resp_msg);
  if (!resp.ok()) return resp.status();
  clock_->Advance(opts_.local_op_time);
  if (!resp->accepted) {
    return Status::CapacityExceeded("owner node refused insert");
  }
  m_.puts.Inc();
  FrontBumpKey(k);
  return Status::Ok();
}

Status ElasticCache::Put(Key k, std::string v) {
  m_.puts.Inc();
  if (opts_.replicas >= 2 && k >= opts_.ring.range / 2) {
    m_.put_failures.Inc();
    return Status::InvalidArgument(
        "with replication, primary keys must lie in the lower half of the "
        "hash line");
  }
  if (Status s = PutInternal(k, v); !s.ok()) {
    m_.put_failures.Inc();
    return s;
  }
  FrontBumpKey(k);
  if (opts_.replicas >= 2) StoreReplica(k, v);
  if (opts_.proactive_split_fill > 0.0) {
    auto owner = ring_.Lookup(k);
    if (owner.ok()) MaybeProactiveSplit(*owner);
  }
  return Status::Ok();
}

void ElasticCache::MaybeProactiveSplit(NodeId node_id) {
  const CacheNode& node = *Entry(node_id).node;
  const double fill = static_cast<double>(node.used_bytes()) /
                      static_cast<double>(node.capacity_bytes());
  if (fill < opts_.proactive_split_fill) return;

  // Rate limit: one attempt per ~5% of capacity of growth.  A node parked
  // just above the threshold (tiny buckets, nothing worth moving) must not
  // re-split on every insert.
  auto [marker_it, fresh] = proactive_marker_.try_emplace(node_id, 0);
  if (!fresh &&
      node.used_bytes() < marker_it->second + node.capacity_bytes() / 20) {
    return;
  }
  marker_it->second = node.used_bytes();

  // Will the split need a fresh instance?  (Same test Algorithm 2 runs:
  // can the least-loaded peer absorb roughly half this node?)
  std::uint64_t least_used = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [id, entry] : nodes_) {
    if (id == node_id) continue;
    least_used = std::min(least_used, entry.node->used_bytes());
  }
  const bool needs_alloc =
      nodes_.size() < 2 ||
      least_used + node.used_bytes() / 2 > opts_.node_capacity_bytes;
  if (needs_alloc && provider_->WarmReadyCount() == 0) {
    // Boot capacity in the background; a later insert retries the split
    // once the instance is ready.  Never block the query path.
    if (provider_->WarmPoolCount() == 0) provider_->PrewarmAsync(1);
    return;
  }

  background_mode_ = true;
  const Status s = SplitNode(node_id);
  background_mode_ = false;
  if (s.ok()) {
    m_.proactive_splits.Inc();
    ECC_LOG_INFO("cache: proactive background split of node %llu",
                 static_cast<unsigned long long>(node_id));
  }
}

Status ElasticCache::PutInternal(Key k, const std::string& v) {
  const std::size_t rec = RecordSize(k, v);
  if (rec > opts_.node_capacity_bytes) {
    return Status::InvalidArgument("record exceeds node capacity");
  }
  for (std::size_t iter = 0; iter < opts_.max_split_iterations; ++iter) {
    auto owner = ring_.Lookup(k);
    if (!owner.ok()) return owner.status();
    NodeEntry& entry = Entry(*owner);

    // Duplicate PUT is idempotent: never let it trigger a split.
    if (entry.node->Contains(k)) {
      clock_->Advance(opts_.local_op_time);
      return Status::Ok();
    }

    if (entry.node->CanFit(rec)) {
      net::PutRequest req{k, v};
      auto resp_msg = CallNode(entry, req.Encode());
      if (!resp_msg.ok()) {
        // Owner unreachable: if the injector confirms the node is down
        // (not mere wire loss), repair the ring — crash the dead node so
        // its arcs repoint at survivors — and re-route this insert.  The
        // GBA loop retries against the new owner.
        if (resp_msg.status().code() == StatusCode::kUnavailable &&
            opts_.fault != nullptr && opts_.fault->IsDown(*owner) &&
            nodes_.size() >= 2) {
          m_.degraded_puts.Inc();
          (void)CrashNodeInternal(*owner);
          continue;
        }
        return resp_msg.status();
      }
      auto resp = net::PutResponse::Decode(*resp_msg);
      if (!resp.ok()) return resp.status();
      clock_->Advance(opts_.local_op_time);
      if (!resp->accepted) {
        // Raced against concurrent growth; retry through the split path.
        continue;
      }
      return Status::Ok();
    }

    // Overflow: split (Algorithm 1, lines 8-15), then retry the insert.
    if (Status s = SplitNode(*owner); !s.ok()) {
      return s;
    }
  }
  return Status::Internal("split loop did not converge");
}

std::vector<std::pair<Key, Key>> ElasticCache::ArcKeyRanges(
    const hashring::Arc& arc) const {
  // Keys equal their aux-hash here (order-preserving h'), so the arc
  // (lo, hi] is the key interval [lo+1, hi] — or two intervals when the
  // arc wraps through the ring origin.
  std::vector<std::pair<Key, Key>> out;
  const Key max_key = opts_.ring.range - 1;
  if (!arc.wraps) {
    out.emplace_back(arc.lo_exclusive + 1, arc.hi_inclusive);
    return out;
  }
  if (arc.lo_exclusive < max_key) {
    out.emplace_back(arc.lo_exclusive + 1, max_key);
  }
  out.emplace_back(0, arc.hi_inclusive);
  return out;
}

RangeStats ElasticCache::ArcStats(const CacheNode& node,
                                  const hashring::Arc& arc) const {
  RangeStats total;
  for (const auto& [lo, hi] : ArcKeyRanges(arc)) {
    const RangeStats part = node.StatsInRange(lo, hi);
    total.records += part.records;
    total.bytes += part.bytes;
  }
  return total;
}

Key ElasticCache::KeyAtRankInArc(const CacheNode& node,
                                 const hashring::Arc& arc,
                                 std::size_t rank) const {
  for (const auto& [lo, hi] : ArcKeyRanges(arc)) {
    const RangeStats part = node.StatsInRange(lo, hi);
    if (rank < part.records) return node.KeyAtRankInRange(lo, hi, rank);
    rank -= part.records;
  }
  assert(false && "rank beyond arc population");
  return 0;
}

Status ElasticCache::SplitNode(NodeId node_id) {
  CacheNode& src = *Entry(node_id).node;

  // Fullest bucket referencing this node (by bytes, the quantity that
  // overflows).
  const auto& buckets = ring_.buckets();
  std::size_t best_idx = buckets.size();
  RangeStats best_stats;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].owner != node_id) continue;
    const RangeStats s = ArcStats(src, ring_.ArcOf(i));
    if (best_idx == buckets.size() || s.bytes > best_stats.bytes) {
      best_idx = i;
      best_stats = s;
    }
  }
  if (best_idx == buckets.size()) {
    return Status::Internal("overflowing node owns no bucket");
  }
  if (best_stats.records < 2) {
    // Nothing to split: a single huge record (or empty arc) cannot be
    // halved.  The insert cannot make progress.
    return Status::CapacityExceeded("fullest bucket not splittable");
  }

  const hashring::Arc arc = ring_.ArcOf(best_idx);
  // Median key in ring order: migrate [min(b_max), k^mu], roughly half the
  // bucket's records (lower half).
  const std::size_t median_rank = (best_stats.records - 1) / 2;
  const Key k_mu = KeyAtRankInArc(src, arc, median_rank);

  const TimePoint split_start = clock_->now();
  const Duration alloc_before = alloc_time_accum_;

  // --- Algorithm 2: pick destination (least-loaded, last resort alloc). --
  const std::uint64_t moving_bytes = [&] {
    // Bytes of the sub-arc (arc.lo, k_mu]; compute from ranges.
    std::uint64_t bytes = 0;
    hashring::Arc sub{arc.lo_exclusive, k_mu,
                      /*wraps=*/arc.wraps && k_mu <= arc.hi_inclusive};
    for (const auto& [lo, hi] : ArcKeyRanges(sub)) {
      bytes += src.StatsInRange(lo, hi).bytes;
    }
    return bytes;
  }();

  NodeId dest_id = node_id;
  std::uint64_t least_used = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [id, entry] : nodes_) {
    if (id == node_id) continue;
    if (entry.node->used_bytes() < least_used) {
      least_used = entry.node->used_bytes();
      dest_id = id;
    }
  }
  bool allocated_new = false;
  if (dest_id == node_id ||
      nodes_.at(dest_id).node->used_bytes() + moving_bytes >
          opts_.node_capacity_bytes) {
    auto fresh = AllocateNode();
    if (!fresh.ok()) return fresh.status();
    dest_id = *fresh;
    allocated_new = true;
  }

  // --- Two-phase transfer of the sub-arc (arc.lo, k_mu]. ------------------
  // Copy -> verify -> commit (AddBucket, Algorithm 1 lines 13-15) ->
  // delete-at-source; crash-safe at every step.
  const TimePoint move_start = clock_->now();
  const hashring::Arc sub{arc.lo_exclusive, k_mu,
                          /*wraps=*/arc.wraps && k_mu <= arc.hi_inclusive};
  const std::uint64_t point = k_mu % opts_.ring.range;
  RangeStats moved;
  const Status migrated = TwoPhaseMigrate(
      node_id, dest_id, ArcKeyRanges(sub),
      /*commit=*/
      [&]() -> Status {
        auto takeover = ring_.AddBucket(point, dest_id);
        return takeover.ok() ? Status::Ok() : takeover.status();
      },
      /*uncommit=*/[&] { (void)ring_.RemoveBucket(point); }, &moved);
  if (!migrated.ok()) return migrated;

  SplitReport report;
  report.source = node_id;
  report.destination = dest_id;
  report.allocated_new_node = allocated_new;
  report.records_moved = moved.records;
  report.bytes_moved = moved.bytes;
  report.alloc_time = alloc_time_accum_ - alloc_before;
  report.move_time = clock_->now() - move_start;
  split_history_.push_back(report);

  const Duration overhead = clock_->now() - split_start;
  m_.splits.Inc();
  m_.records_migrated.Inc(moved.records);
  m_.bytes_migrated.Inc(moved.bytes);
  m_.total_migration_time_us.Inc(
      static_cast<std::uint64_t>(report.move_time.micros()));
  m_.total_split_overhead_us.Inc(
      static_cast<std::uint64_t>(overhead.micros()));
  m_.last_split_overhead_us.Set(overhead.micros());
  m_.split_overhead_s.Observe(overhead.seconds());
  obs::Emit(trace_, obs::SplitEvent(clock_->now(), node_id, dest_id,
                                    moved.records, moved.bytes));
  ECC_LOG_INFO(
      "cache: split node %llu -> %llu (%zu records, %s, new_node=%d)",
      static_cast<unsigned long long>(node_id),
      static_cast<unsigned long long>(dest_id), moved.records,
      overhead.ToString().c_str(), allocated_new ? 1 : 0);
  return Status::Ok();
}

fault::MigrationFault ElasticCache::FireStep(std::size_t migration,
                                             fault::MigrationStep step,
                                             NodeId src, NodeId dest) {
  obs::Emit(trace_,
            obs::MigrationPhaseEvent(clock_->now(), src, dest,
                                     static_cast<int>(step), migration));
  if (opts_.fault == nullptr) return fault::MigrationFault::kNone;
  return opts_.fault->OnMigrationStep(migration, step);
}

void ElasticCache::EraseKeysReliable(NodeEntry& entry,
                                     const std::vector<Key>& keys) {
  if (keys.empty()) return;
  net::EraseRequest req;
  req.keys = keys;
  auto resp_msg = CallNode(entry, req.Encode());
  if (resp_msg.ok()) return;
  // The wire path is faulted; recovery repairs the shard directly (the
  // coordinator and node share a process — only the simulated network can
  // fail).  Without this, rollback itself could be lost to the very fault
  // schedule it is cleaning up after.
  for (const Key k : keys) (void)entry.node->Erase(k);
}

Status ElasticCache::TwoPhaseMigrate(
    NodeId src_id, NodeId dest_id,
    const std::vector<std::pair<Key, Key>>& ranges,
    const std::function<Status()>& commit,
    const std::function<void()>& uncommit, RangeStats* moved) {
  using fault::MigrationFault;
  using fault::MigrationStep;
  CacheNode& src = *Entry(src_id).node;
  NodeEntry& dest = Entry(dest_id);
  const std::size_t mig =
      opts_.fault != nullptr ? opts_.fault->BeginMigration() : 0;

  // Keys shipped so far; rollback = erase exactly these at the destination
  // (never a range erase — in a contraction merge the destination already
  // holds its own records inside `ranges`).
  std::vector<Key> shipped;
  const auto abort_with = [&](const char* why, bool crash_src,
                              bool crash_dest) -> Status {
    m_.migration_aborts.Inc();
    if (!crash_dest) EraseKeysReliable(dest, shipped);
    // Crash after rollback: the victim's kill report then charges only
    // records it legitimately owned.
    if (crash_src) (void)CrashNodeInternal(src_id);
    if (crash_dest) (void)CrashNodeInternal(dest_id);
    return Status::Unavailable(why);
  };
  // Pre-commit steps share one fault reaction: the protocol stops, the
  // destination's partial copy is undone, and the source (or its kill
  // report) still accounts for every key.
  const auto guard_precommit = [&](MigrationStep step) -> Status {
    switch (FireStep(mig, step, src_id, dest_id)) {
      case MigrationFault::kNone:
        return Status::Ok();
      case MigrationFault::kAbort:
        return abort_with("migration aborted", false, false);
      case MigrationFault::kCrashSource:
        return abort_with("migration source crashed", true, false);
      case MigrationFault::kCrashDest:
        return abort_with("migration destination crashed", false, true);
    }
    return Status::Ok();
  };

  if (Status s = guard_precommit(MigrationStep::kBeforeCopy); !s.ok()) {
    return s;
  }

  // Baseline for verification: what the destination already holds in the
  // moving ranges (non-zero when merging into a populated absorber).
  std::uint64_t before_records = 0;
  for (const auto& [lo, hi] : ranges) {
    net::RangeStatsRequest stat_req{lo, hi};
    auto stat_msg = CallNode(dest, stat_req.Encode());
    if (!stat_msg.ok()) return abort_with("destination unreachable", false, false);
    auto stat = net::RangeStatsResponse::Decode(*stat_msg);
    if (!stat.ok()) return abort_with("bad range-stats response", false, false);
    before_records += stat->records;
  }

  // --- Phase 1: COPY.  Sweep the linked leaves once per range, ship in
  // batched MIGRATE messages, and crucially do NOT erase at the source —
  // until commit, the source copy is the authoritative one.
  RangeStats copied;
  bool mid_copy_fired = false;
  for (const auto& [lo, hi] : ranges) {
    const std::vector<std::pair<Key, std::string>> records =
        src.SweepRange(lo, hi);
    std::size_t offset = 0;
    while (offset < records.size()) {
      const std::size_t n =
          std::min(opts_.migrate_batch_records, records.size() - offset);
      net::MigrateRequest req;
      req.records.assign(records.begin() + offset,
                         records.begin() + offset + n);
      auto resp_msg = CallNode(dest, req.Encode());
      if (!resp_msg.ok()) {
        return abort_with("migration batch lost", false, false);
      }
      for (std::size_t i = offset; i < offset + n; ++i) {
        shipped.push_back(records[i].first);
        copied.bytes += RecordSize(records[i].first, records[i].second);
        ++copied.records;
      }
      offset += n;
      if (!mid_copy_fired) {
        mid_copy_fired = true;
        if (Status s = guard_precommit(MigrationStep::kMidCopy); !s.ok()) {
          return s;
        }
      }
    }
  }
  if (Status s = guard_precommit(MigrationStep::kAfterCopy); !s.ok()) {
    return s;
  }

  // --- Phase 2: VERIFY.  The destination must now hold its baseline plus
  // every distinct key we shipped (re-sent batches after a lost response
  // are idempotent and do not inflate the count).
  std::uint64_t after_records = 0;
  for (const auto& [lo, hi] : ranges) {
    net::RangeStatsRequest stat_req{lo, hi};
    auto stat_msg = CallNode(dest, stat_req.Encode());
    if (!stat_msg.ok()) return abort_with("verify unreachable", false, false);
    auto stat = net::RangeStatsResponse::Decode(*stat_msg);
    if (!stat.ok()) return abort_with("bad verify response", false, false);
    after_records += stat->records;
  }
  if (after_records != before_records + copied.records) {
    (void)abort_with("verification mismatch", false, false);
    return Status::Internal("migration verification mismatch");
  }
  if (Status s = guard_precommit(MigrationStep::kAfterVerify); !s.ok()) {
    return s;
  }

  // --- Phase 3: COMMIT.  The caller's ring mutation is coordinator-local
  // and atomic; from here on the destination copy is authoritative.
  if (Status s = commit(); !s.ok()) {
    (void)abort_with("commit rejected", false, false);
    return s;
  }
  // Ownership of the moved range just flipped: every front entry must
  // re-validate before serving again (split commits and contraction merges
  // both land here).
  FrontBumpAll();
  if (moved != nullptr) *moved = copied;

  // Post-commit faults roll FORWARD: the data is live at the destination,
  // so recovery finishes the delete instead of undoing the copy.  The one
  // exception is losing the destination itself, which forces un-commit so
  // the ring routes back to the still-intact source copy.
  switch (FireStep(mig, MigrationStep::kAfterCommit, src_id, dest_id)) {
    case MigrationFault::kNone:
      break;
    case MigrationFault::kAbort: {
      // Coordinator "crashed" between commit and delete; the recovery
      // sweep completes the cleanup.
      m_.migration_recoveries.Inc();
      break;  // fall through to the delete phase below
    }
    case MigrationFault::kCrashSource:
      // Source died with its stale copies; they vanish with its kill
      // report and the committed destination serves the range.  Delete is
      // moot.
      (void)CrashNodeInternal(src_id);
      return Status::Ok();
    case MigrationFault::kCrashDest: {
      // Destination died holding the freshly committed range.  Un-commit
      // so the range routes to the source again (whose copies were not
      // yet deleted): the key set survives the crash.
      m_.migration_aborts.Inc();
      uncommit();
      (void)CrashNodeInternal(dest_id);
      return Status::Unavailable("destination crashed after commit");
    }
  }

  // --- Phase 4: DELETE at source (cleanup; idempotent).
  EraseKeysReliable(Entry(src_id), shipped);
  if (!background_mode_) {
    for (std::size_t i = 0; i < shipped.size(); ++i) {
      clock_->Advance(opts_.local_op_time);  // local delete
    }
  }

  switch (FireStep(mig, MigrationStep::kAfterDelete, src_id, dest_id)) {
    case MigrationFault::kNone:
    case MigrationFault::kAbort:  // protocol already complete; nothing to do
      break;
    case MigrationFault::kCrashSource:
      (void)CrashNodeInternal(src_id);
      break;
    case MigrationFault::kCrashDest:
      // The migrated records die with the destination — a plain node loss
      // now, fully charged to its kill report.
      (void)CrashNodeInternal(dest_id);
      break;
  }
  return Status::Ok();
}

void ElasticCache::StoreReplica(Key k, const std::string& v) {
  // The mirror record rides the normal insert machinery — it may split and
  // even allocate, which is the honest cost of 2x redundancy.  A mirror
  // that lands on its primary's node is stored anyway: it adds no safety
  // *yet*, but subsequent splits separate the two halves of the line and
  // the pair ends up on distinct nodes without any repair machinery.
  if (PutInternal(MirrorKey(k), v).ok()) {
    m_.replica_writes.Inc();
    FrontBumpKey(MirrorKey(k));
  } else {
    m_.replica_drops.Inc();
  }
}

std::size_t ElasticCache::EvictKeys(const std::vector<Key>& keys) {
  // Group per owning node, then one ERASE message per node.  With
  // replication the successor copy is erased too (uncounted: the eviction
  // statistic tracks primaries so record conservation stays meaningful).
  std::map<NodeId, std::vector<Key>> per_node;
  std::map<NodeId, std::vector<Key>> per_replica_node;
  for (Key k : keys) {
    auto owner = ring_.Lookup(k);
    if (owner.ok()) per_node[*owner].push_back(k);
    if (opts_.replicas >= 2) {
      const Key mirror = MirrorKey(k);
      auto replica_owner = ring_.Lookup(mirror);
      if (replica_owner.ok()) {
        per_replica_node[*replica_owner].push_back(mirror);
      }
    }
  }
  std::size_t erased_total = 0;
  for (auto& [id, node_keys] : per_node) {
    net::EraseRequest req;
    req.keys = std::move(node_keys);
    auto resp_msg = CallNode(Entry(id), req.Encode());
    if (!resp_msg.ok()) continue;
    auto resp = net::EraseResponse::Decode(*resp_msg);
    if (resp.ok()) erased_total += resp->erased;
  }
  for (auto& [id, node_keys] : per_replica_node) {
    net::EraseRequest req;
    req.keys = std::move(node_keys);
    (void)CallNode(Entry(id), req.Encode());
  }
  m_.evictions.Inc(erased_total);
  // Over-invalidate: bump every requested key (and mirror), hit or not — a
  // spurious bump only costs a front re-admission, never staleness.
  for (Key k : keys) {
    FrontBumpKey(k);
    if (opts_.replicas >= 2) FrontBumpKey(MirrorKey(k));
  }
  obs::Emit(trace_,
            obs::EvictionSweepEvent(clock_->now(), keys.size(), erased_total));
  return erased_total;
}

std::vector<std::pair<Key, std::string>> ElasticCache::ExtractKeys(
    const std::vector<Key>& keys) {
  // Copy the doomed records out node-locally (each server spills its own
  // shard entries; only the erase traffic rides the wire), then run the
  // ordinary eviction for the removal + accounting.
  std::vector<std::pair<Key, std::string>> extracted;
  for (Key k : keys) {
    auto owner = ring_.Lookup(k);
    if (!owner.ok()) continue;
    const std::string* v = Entry(*owner).node->Find(k);
    if (v != nullptr) extracted.emplace_back(k, *v);
  }
  (void)EvictKeys(keys);
  return extracted;
}

StatusOr<KillReport> ElasticCache::KillNode(NodeId id) {
  if (nodes_.find(id) == nodes_.end()) {
    return Status::NotFound("unknown node");
  }
  if (nodes_.size() < 2) {
    return Status::FailedPrecondition("cannot kill the last node");
  }
  return CrashNodeInternal(id);
}

KillReport ElasticCache::CrashNodeInternal(NodeId id) {
  const auto it = nodes_.find(id);
  assert(it != nodes_.end() && nodes_.size() >= 2);
  CacheNode& victim = *it->second.node;

  KillReport report;
  report.node = id;
  report.records_dropped = victim.record_count();
  report.keys_dropped.reserve(report.records_dropped);
  // Record every dropped key (crash accounting for the fault tests), and —
  // with replication — how many survive elsewhere: a record's other copy
  // sits at its mirror position and survives iff that position routes to a
  // different, living node that holds it.
  for (auto rec = victim.tree().Begin(); rec.valid(); rec.Next()) {
    report.keys_dropped.push_back(rec.key());
    bool recoverable = false;
    if (opts_.replicas >= 2) {
      const Key mirror = MirrorKey(rec.key());
      auto other = ring_.Lookup(mirror);
      if (other.ok() && *other != id &&
          Entry(*other).node->Contains(mirror)) {
        recoverable = true;
      }
    }
    if (!recoverable && spill_ != nullptr) {
      // No live mirror, but the spill tier may hold the record (under its
      // logical primary key — normalize a dropped mirror copy first).
      // Contains() is free: accounting must not charge object-store reads.
      const Key logical =
          (opts_.replicas >= 2 && rec.key() >= opts_.ring.range / 2)
              ? MirrorKey(rec.key())
              : rec.key();
      recoverable = spill_->Contains(logical);
    }
    if (recoverable) ++report.records_recoverable;
  }

  // Repoint every bucket of the dead node at its arc's successor owner
  // (computed against the surviving fleet).  When the victim owns EVERY
  // bucket — e.g. the source of a split crashing before commit, while the
  // fresh destination has no ring presence yet — successor scanning finds
  // nobody, so fall back to any surviving node.
  hashring::Owner fallback = id;
  for (const auto& [other_id, other_entry] : nodes_) {
    (void)other_entry;
    if (other_id != id) {
      fallback = other_id;
      break;
    }
  }
  const auto& buckets = ring_.buckets();
  std::vector<std::pair<std::uint64_t, hashring::Owner>> reassignments;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].owner != id) continue;
    hashring::Owner candidate = fallback;
    for (std::size_t step = 1; step < buckets.size(); ++step) {
      const hashring::Owner successor =
          buckets[(i + step) % buckets.size()].owner;
      if (successor != id) {
        candidate = successor;
        break;
      }
    }
    reassignments.emplace_back(buckets[i].point, candidate);
  }
  for (const auto& [point, new_owner] : reassignments) {
    const Status s = ring_.ReassignBucket(point, new_owner);
    assert(s.ok());
    (void)s;
  }
  report.buckets_reassigned = reassignments.size();

  // A crashed endpoint stays unreachable (node ids are never reused).
  if (opts_.fault != nullptr) opts_.fault->MarkDown(id);
  const cloudsim::InstanceId instance = victim.instance();
  nodes_.erase(it);
  (void)provider_->Fail(instance);
  m_.node_failures.Inc();
  obs::Emit(trace_, obs::NodeCrashEvent(clock_->now(), id,
                                        report.records_dropped,
                                        report.records_recoverable));
  ECC_LOG_WARN("cache: node %llu failed abruptly (%zu records dropped, "
               "%zu recoverable)",
               static_cast<unsigned long long>(id), report.records_dropped,
               report.records_recoverable);
  kill_history_.push_back(report);
  // Records died with the node: no front entry may keep serving them.
  FrontBumpAll();
  return report;
}

bool ElasticCache::TryContract() {
  if (nodes_.size() <= opts_.min_nodes || nodes_.size() < 2) return false;

  // Two least-loaded nodes: a (donor, smaller) and b (absorber).
  NodeId a_id = 0, b_id = 0;
  std::uint64_t a_used = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t b_used = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [id, entry] : nodes_) {
    const std::uint64_t used = entry.node->used_bytes();
    if (used < a_used) {
      b_used = a_used;
      b_id = a_id;
      a_used = used;
      a_id = id;
    } else if (used < b_used) {
      b_used = used;
      b_id = id;
    }
  }
  CacheNode& donor = *Entry(a_id).node;
  NodeEntry& absorber = Entry(b_id);
  // Churn avoidance: only merge when the coalesced cache fits within the
  // threshold fraction of the absorber.
  const double fill =
      static_cast<double>(donor.used_bytes() + absorber.node->used_bytes()) /
      static_cast<double>(opts_.node_capacity_bytes);
  if (fill > opts_.merge_fill_threshold) return false;

  // Move everything (a two-phase sweep-and-migrate over the donor's full
  // key range).  Commit repoints the donor's buckets at the absorber; on a
  // post-commit absorber crash, uncommit hands them back to the donor,
  // whose copies are still intact.
  std::vector<std::uint64_t> donor_points;
  for (const auto& bucket : ring_.BucketsOwnedBy(a_id)) {
    donor_points.push_back(bucket.point);
  }
  const TimePoint move_start = clock_->now();
  RangeStats moved;
  const Status migrated = TwoPhaseMigrate(
      a_id, b_id, {{0, std::numeric_limits<Key>::max()}},
      /*commit=*/
      [&]() -> Status {
        for (const std::uint64_t point : donor_points) {
          const Status s = ring_.ReassignBucket(point, b_id);
          assert(s.ok());
          (void)s;
        }
        return Status::Ok();
      },
      /*uncommit=*/
      [&] {
        for (const std::uint64_t point : donor_points) {
          (void)ring_.ReassignBucket(point, a_id);
        }
      },
      &moved);
  if (!migrated.ok()) return false;
  m_.records_migrated.Inc(moved.records);
  m_.bytes_migrated.Inc(moved.bytes);
  m_.total_migration_time_us.Inc(
      static_cast<std::uint64_t>((clock_->now() - move_start).micros()));
  obs::Emit(trace_, obs::ContractionMergeEvent(clock_->now(), a_id, b_id,
                                               moved.records));

  // Retire the donor's instance — unless the protocol's fault handling
  // already crashed it (its kill report then covers the loss), or crashed
  // the *absorber* post-delete, in which case every bucket was repointed
  // back at the donor and it must live on as the last node standing.
  const auto donor_it = nodes_.find(a_id);
  if (donor_it != nodes_.end() && nodes_.size() >= 2) {
    const cloudsim::InstanceId instance = donor_it->second.node->instance();
    nodes_.erase(donor_it);
    const Status term = provider_->Terminate(instance);
    assert(term.ok());
    (void)term;
    m_.node_removals.Inc();
    obs::Emit(trace_, obs::NodeDeallocEvent(clock_->now(), a_id));
  }
  ECC_LOG_INFO("cache: merged node %llu into %llu (%zu records)",
               static_cast<unsigned long long>(a_id),
               static_cast<unsigned long long>(b_id), moved.records);
  return true;
}

std::uint64_t ElasticCache::TotalUsedBytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, entry] : nodes_) total += entry.node->used_bytes();
  return total;
}

std::uint64_t ElasticCache::TotalCapacityBytes() const {
  return static_cast<std::uint64_t>(nodes_.size()) *
         opts_.node_capacity_bytes;
}

std::size_t ElasticCache::TotalRecords() const {
  std::size_t total = 0;
  for (const auto& [id, entry] : nodes_) total += entry.node->record_count();
  return total;
}

StatusOr<NodeId> ElasticCache::OwnerOf(Key k) const {
  return ring_.Lookup(k);
}

std::vector<NodeSnapshot> ElasticCache::Snapshot() const {
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  for (const auto& [id, entry] : nodes_) {
    NodeSnapshot snap;
    snap.id = id;
    snap.records = entry.node->record_count();
    snap.used_bytes = entry.node->used_bytes();
    snap.capacity_bytes = entry.node->capacity_bytes();
    snap.buckets = ring_.BucketsOwnedBy(id).size();
    out.push_back(snap);
  }
  return out;
}

const CacheNode* ElasticCache::GetNode(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.node.get();
}

std::vector<NodeId> ElasticCache::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, entry] : nodes_) {
    (void)entry;
    ids.push_back(id);
  }
  return ids;
}

bool ElasticCache::ProbeNode(NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  // One STATS round trip on the background channel: zero virtual-time
  // charge (heartbeats must not slow queries), single attempt (the
  // detector's suspicion counter absorbs transient loss, not a retry
  // loop that would mask a dead node for N x timeout).
  net::StatsRequest req;
  auto resp_msg = it->second.bg_channel->Call(req.Encode());
  if (!resp_msg.ok()) return false;
  return net::StatsResponse::Decode(*resp_msg).ok();
}

void ElasticCache::ErasePhysicalRecord(Key k) {
  auto owner = ring_.Lookup(k);
  if (!owner.ok()) return;
  // Repair primitive: RPC with direct-shard fallback, no eviction
  // accounting (the record is being replaced or rolled back, not evicted).
  EraseKeysReliable(Entry(*owner), {k});
  FrontBumpKey(k);
}

void ElasticCache::WriteMirror(Key k, const std::string& v) {
  assert(opts_.replicas >= 2 && k < opts_.ring.range / 2);
  // Plain puts are idempotent (an existing copy is never overwritten), so
  // a divergent mirror must be erased before the fresh copy is stored.
  ErasePhysicalRecord(MirrorKey(k));
  StoreReplica(k, v);
}

std::vector<obs::NodeLoad> ElasticCache::NodeLoads() const {
  std::vector<obs::NodeLoad> loads;
  loads.reserve(nodes_.size());
  for (const auto& [id, entry] : nodes_) {
    loads.push_back(obs::NodeLoad{
        .node = id,
        .records = entry.node->record_count(),
        .used_bytes = entry.node->used_bytes(),
        .capacity_bytes = entry.node->capacity_bytes(),
        .buckets = ring_.BucketsOwnedBy(id).size(),
    });
  }
  return loads;
}

CacheStats ElasticCache::stats() const {
  // Outcome counters are read before their attempt counters: an acquire
  // read of an outcome cell synchronizes with the release increment that
  // wrote it, which makes the attempt increment program-ordered before it
  // visible to the later attempt read.  Hence hits + misses <= gets,
  // degraded_gets <= misses, failover_reads <= hits, put_failures and
  // degraded_puts <= puts — even while workers are mid-query.
  CacheStats s;
  s.failover_reads = m_.failover_reads.Value();
  s.hits = m_.hits.Value();
  s.degraded_gets = m_.degraded_gets.Value();
  s.misses = m_.misses.Value();
  s.gets = m_.gets.Value();
  s.put_failures = m_.put_failures.Value();
  s.degraded_puts = m_.degraded_puts.Value();
  s.puts = m_.puts.Value();
  // The rest only move on the exclusively locked topology path.
  s.evictions = m_.evictions.Value();
  s.splits = m_.splits.Value();
  s.proactive_splits = m_.proactive_splits.Value();
  s.node_allocations = m_.node_allocations.Value();
  s.node_removals = m_.node_removals.Value();
  s.node_failures = m_.node_failures.Value();
  s.records_migrated = m_.records_migrated.Value();
  s.bytes_migrated = m_.bytes_migrated.Value();
  s.replica_writes = m_.replica_writes.Value();
  s.replica_drops = m_.replica_drops.Value();
  s.rpc_retries = m_.rpc_retries.Value();
  s.rpc_failures = m_.rpc_failures.Value();
  s.migration_aborts = m_.migration_aborts.Value();
  s.migration_recoveries = m_.migration_recoveries.Value();
  s.total_split_overhead = Duration::Micros(
      static_cast<std::int64_t>(m_.total_split_overhead_us.Value()));
  s.last_split_overhead =
      Duration::Micros(m_.last_split_overhead_us.Value());
  s.total_alloc_time = Duration::Micros(
      static_cast<std::int64_t>(m_.total_alloc_time_us.Value()));
  s.total_migration_time = Duration::Micros(
      static_cast<std::int64_t>(m_.total_migration_time_us.Value()));
  return s;
}

}  // namespace ecc::core
