// MaintenanceTask: a background job the coordinator drives at quiesced
// time-step boundaries (EndTimeStep), when no query is in flight and the
// topology may be mutated safely.
//
// The indirection keeps the dependency arrow pointing the right way: the
// recovery subsystem (src/recovery/) links against ecc_core and implements
// this interface; the coordinators only hold the abstract hook, so core
// never depends on recovery.
#pragma once

namespace ecc::core {

class MaintenanceTask {
 public:
  virtual ~MaintenanceTask() = default;

  /// Run one maintenance round.  Called with the system quiesced (the
  /// parallel front-end drains its workers first), so the task may use the
  /// full exclusive-topology API of the backend.
  virtual void Tick() = 0;
};

}  // namespace ecc::core
