// Structured event trace: a ring-buffered log of typed events, each stamped
// with virtual-clock time and a node id, exportable as JSON lines.
//
// The counters in metrics.h say *how much* happened; the trace says *when
// and in what order* — the record that lets a slow query be correlated with
// the split, eviction sweep, or retry storm that caused it.  Events are
// fixed-size POD (no allocation on the emit path beyond the ring slot), the
// ring overwrites oldest-first past capacity (dropped() counts the losses),
// and Append is mutex-guarded so concurrent front-end workers interleave
// cleanly.
//
// Emit(log, event) is the null-safe call sites use: a detached trace
// pointer costs one branch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace ecc::obs {

enum class EventKind : std::uint8_t {
  kQueryStart = 0,
  kQueryEnd,          ///< outcome + latency (a = QueryOutcomeKind, b = us)
  kSplit,             ///< GBA overflow split completed
  kMigrationPhase,    ///< sweep-and-migrate phase transition (b = step)
  kEvictionSweep,     ///< decay eviction pass (a = requested, b = erased)
  kContractionMerge,  ///< donor merged into absorber
  kNodeAlloc,         ///< instance booted into the fleet
  kNodeDealloc,       ///< instance retired by contraction
  kNodeCrash,         ///< abrupt node loss
  kRpcRetry,          ///< an RPC attempt beyond the first was issued
  kRpcFailure,        ///< an RPC exhausted its retry budget
  kFaultInjected,     ///< the injector perturbed a call or migration step
  kLoadShed,          ///< admission/breaker refused a miss (a = ShedCode)
  kBreaker,           ///< circuit-breaker transition (a = from, b = to)
  kStaleServe,        ///< degraded answer (a = source, b = age in slices)
  kDeadlineExceeded,  ///< a query/RPC ran past its deadline (a = over_us)
  kNodeSuspected,     ///< heartbeat probe missed (a = suspicion count)
  kNodeConfirmedDead,  ///< suspicion hit the threshold (a = missed probes)
  kRereplicate,       ///< recovery batch committed (a/b/c = counts)
  kScrubRepair,       ///< anti-entropy fixed a divergence (a = ScrubRepairKind)
  kFrontHit,          ///< answered from the coordinator front tier
  kFrontInvalidate,   ///< front entry dropped (a = FrontInvalidateReason code)
  kPolicyDecision,    ///< elasticity policy acted (a = PolicyDecisionCode)
  kChaosFault,        ///< the chaos proxy perturbed a link (a = ChaosFaultCode)
  kInvariantViolation,  ///< the checker caught a broken invariant (a = kind)
  kInvariantCheck,    ///< end-of-scenario verdict (a/b/c = counts)
  kWalAppend,         ///< WAL batch synced (a = records, b = bytes)
  kSnapshot,          ///< durable snapshot written (a = records, b = bytes)
  kRejoinDelta,       ///< warm rejoin delta-sync (a/b/c = counts)
};
inline constexpr int kEventKindCount = 29;

[[nodiscard]] const char* EventKindName(EventKind k);

/// Query outcome codes carried in kQueryEnd's `a` field.  kShed = refused
/// under overload with no answer; kStale = answered from a degraded source
/// (mirror replica or spill tier) while the service was protected.
enum class QueryOutcomeKind : int {
  kHit = 0,
  kMiss = 1,
  kCoalesced = 2,
  kShed = 3,
  kStale = 4,
};

/// Why a query was shed, carried in kLoadShed's `a` field.
enum class ShedCode : int {
  kQueueFull = 0,     ///< admission queue at capacity (reject-new)
  kBreakerOpen = 1,   ///< circuit breaker refused the service call
  kDropped = 2,       ///< evicted from the queue by a newer miss (drop-oldest)
  kDeadline = 3,      ///< deadline expired before the service call started
};

/// Degraded-answer source, carried in kStaleServe's `a` field.
enum class StaleSource : int { kReplica = 0, kSpill = 1 };

/// Circuit-breaker states, carried in kBreaker's `a`/`b` fields.
enum class BreakerStateCode : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// What the anti-entropy scrubber repaired, carried in kScrubRepair's `a`
/// field.  kMissingMirror = the primary had no surviving mirror copy;
/// kConflict = primary and mirror disagreed on the value (primary wins).
enum class ScrubRepairKind : int { kMissingMirror = 0, kConflict = 1 };

/// What the elasticity policy decided, carried in kPolicyDecision's `a`
/// field.  kAdmitDeny carries the refused key; kEvictOverride fires when a
/// policy's eviction set differs from the decay candidates (b = selected,
/// c = candidates); kPrewarm carries the instance count in b; kContract
/// fires when the policy signals a merge attempt.
enum class PolicyDecisionCode : int {
  kEvictOverride = 0,
  kAdmitDeny = 1,
  kContract = 2,
  kPrewarm = 3,
};

/// What a chaos proxy did to a link, carried in kChaosFault's `a` field.
/// `node` labels the proxied endpoint, `b` carries the fault argument
/// (bytes affected, delay micros, window index — per code).
enum class ChaosFaultCode : int {
  kPartition = 0,  ///< link black-holed (arg = 0 full, 1 to-upstream, 2 to-client)
  kHeal = 1,       ///< link restored (arg = micros spent partitioned)
  kCorrupt = 2,    ///< bytes bit-flipped in flight (arg = count)
  kTruncate = 3,   ///< frame forwarded as a strict prefix then reset (arg = bytes kept)
  kReset = 4,      ///< connection hard-closed mid-frame (arg = bytes kept)
  kDelay = 5,      ///< chunk held back (arg = micros)
  kThrottle = 6,   ///< forwarding rate-limited this tick (arg = bytes deferred)
};

/// What the invariant checker caught, carried in kInvariantViolation's `a`
/// field.  `key` names the offending record where applicable.
enum class InvariantViolationKind : int {
  kLostAck = 0,        ///< an acknowledged write is gone
  kValueMismatch = 1,  ///< a read returned bytes never issued for that key
  kStaleServe = 2,     ///< a degraded answer exceeded the staleness bound
  kDivergence = 3,     ///< primary/mirror digests differ after heal + scrub
};

/// Fault category codes carried in kFaultInjected's `a` field.
enum class FaultCode : int {
  kDropRequest = 0,
  kDropResponse = 1,
  kDelay = 2,
  kMigrationAbort = 3,
  kMigrationCrashSource = 4,
  kMigrationCrashDest = 5,
  kBrownout = 6,  ///< service latency inflated (arg = multiplier)
};

inline constexpr std::uint64_t kNoNode = ~0ull;
inline constexpr std::uint64_t kNoKey = ~0ull;

/// One fixed-size event.  Field meaning depends on `kind`; the builder
/// functions below (and the JSON export) document each layout.
struct TraceEvent {
  std::int64_t t_us = 0;  ///< virtual-clock stamp
  EventKind kind = EventKind::kQueryStart;
  std::uint64_t node = kNoNode;
  std::uint64_t key = kNoKey;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

// --- Typed builders (one per event kind) -----------------------------------

[[nodiscard]] TraceEvent QueryStartEvent(TimePoint t, std::uint64_t key);
[[nodiscard]] TraceEvent QueryEndEvent(TimePoint t, std::uint64_t key,
                                       QueryOutcomeKind outcome,
                                       Duration latency);
[[nodiscard]] TraceEvent SplitEvent(TimePoint t, std::uint64_t src,
                                    std::uint64_t dst, std::uint64_t records,
                                    std::uint64_t bytes);
[[nodiscard]] TraceEvent MigrationPhaseEvent(TimePoint t, std::uint64_t src,
                                             std::uint64_t dst, int step,
                                             std::uint64_t migration);
[[nodiscard]] TraceEvent EvictionSweepEvent(TimePoint t,
                                            std::uint64_t requested,
                                            std::uint64_t erased);
[[nodiscard]] TraceEvent ContractionMergeEvent(TimePoint t,
                                               std::uint64_t donor,
                                               std::uint64_t absorber,
                                               std::uint64_t records);
[[nodiscard]] TraceEvent NodeAllocEvent(TimePoint t, std::uint64_t node,
                                        Duration boot_wait);
[[nodiscard]] TraceEvent NodeDeallocEvent(TimePoint t, std::uint64_t node);
[[nodiscard]] TraceEvent NodeCrashEvent(TimePoint t, std::uint64_t node,
                                        std::uint64_t records_dropped,
                                        std::uint64_t records_recoverable);
[[nodiscard]] TraceEvent RpcRetryEvent(TimePoint t, std::uint64_t node,
                                       std::uint64_t attempt);
[[nodiscard]] TraceEvent RpcFailureEvent(TimePoint t, std::uint64_t node,
                                         std::uint64_t attempts);
[[nodiscard]] TraceEvent FaultInjectedEvent(TimePoint t, std::uint64_t node,
                                            FaultCode code, std::int64_t arg);
[[nodiscard]] TraceEvent LoadShedEvent(TimePoint t, std::uint64_t key,
                                       ShedCode reason);
[[nodiscard]] TraceEvent BreakerEvent(TimePoint t, BreakerStateCode from,
                                      BreakerStateCode to);
[[nodiscard]] TraceEvent StaleServeEvent(TimePoint t, std::uint64_t key,
                                         StaleSource source,
                                         std::uint64_t age_slices);
[[nodiscard]] TraceEvent DeadlineExceededEvent(TimePoint t, std::uint64_t key,
                                               Duration overshoot);
[[nodiscard]] TraceEvent NodeSuspectedEvent(TimePoint t, std::uint64_t node,
                                            std::uint64_t suspicion);
[[nodiscard]] TraceEvent NodeConfirmedDeadEvent(TimePoint t,
                                                std::uint64_t node,
                                                std::uint64_t missed);
[[nodiscard]] TraceEvent RereplicateEvent(TimePoint t, std::uint64_t recovered,
                                          std::uint64_t from_spill,
                                          std::uint64_t unrecoverable);
[[nodiscard]] TraceEvent ScrubRepairEvent(TimePoint t, std::uint64_t key,
                                          ScrubRepairKind kind);
[[nodiscard]] TraceEvent FrontHitEvent(TimePoint t, std::uint64_t key);
/// `reason` carries a fronttier::FrontInvalidateCode (as int: obs stays
/// below fronttier in the dependency order): 0 = version, 1 = epoch,
/// 2 = capacity, 3 = window.
[[nodiscard]] TraceEvent FrontInvalidateEvent(TimePoint t, std::uint64_t key,
                                              int reason);
/// `key` is meaningful for kAdmitDeny only (pass kNoKey otherwise); `b`/`c`
/// carry per-code counts (see PolicyDecisionCode).
[[nodiscard]] TraceEvent PolicyDecisionEvent(TimePoint t,
                                             PolicyDecisionCode code,
                                             std::uint64_t key, std::int64_t b,
                                             std::int64_t c);
[[nodiscard]] TraceEvent ChaosFaultEvent(TimePoint t, std::uint64_t node,
                                         ChaosFaultCode code,
                                         std::int64_t arg);
[[nodiscard]] TraceEvent InvariantViolationEvent(TimePoint t,
                                                 std::uint64_t key,
                                                 InvariantViolationKind kind);
[[nodiscard]] TraceEvent InvariantCheckEvent(TimePoint t,
                                             std::uint64_t checked,
                                             std::uint64_t violations,
                                             std::uint64_t unrecoverable);
/// One fsync batch hit the platter: `records` appends totalling `bytes`.
[[nodiscard]] TraceEvent WalAppendEvent(TimePoint t, std::uint64_t node,
                                        std::uint64_t records,
                                        std::uint64_t bytes);
[[nodiscard]] TraceEvent SnapshotEvent(TimePoint t, std::uint64_t node,
                                       std::uint64_t records,
                                       std::uint64_t bytes);
/// Warm rejoin finished: of `owned` keys the restarted node was expected to
/// serve, `transferred` were delta-synced from mirrors and `recovered` came
/// back from its own snapshot + WAL.
[[nodiscard]] TraceEvent RejoinDeltaEvent(TimePoint t, std::uint64_t node,
                                          std::uint64_t owned,
                                          std::uint64_t transferred,
                                          std::uint64_t recovered);

class TraceLog {
 public:
  /// `capacity` bounds retained events; older ones are overwritten.
  explicit TraceLog(std::size_t capacity = 1 << 16);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  void Append(const TraceEvent& e);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> Events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events ever appended (size() + dropped()).
  [[nodiscard]] std::uint64_t total_appended() const;
  /// Events overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const;
  void Clear();

  /// One JSON object per line; schema per kind (validated by
  /// scripts/validate_trace.py, documented in DESIGN.md §9).
  [[nodiscard]] std::string ToJsonLines() const;

  /// Append ToJsonLines() to `path` (concatenated dumps stay valid JSONL).
  Status AppendJsonLinesToFile(const std::string& path) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  ///< ring write cursor once full
  std::uint64_t appended_ = 0;
};

/// Null-safe emit: a component holding a maybe-null TraceLog* calls this
/// unconditionally.
inline void Emit(TraceLog* log, const TraceEvent& e) {
  if (log != nullptr) log->Append(e);
}

/// Render one event as its JSON-lines object (no trailing newline).
[[nodiscard]] std::string EventToJson(const TraceEvent& e);

/// CI hook: when the environment variable `env_var` names a file, append
/// the trace to it as JSON lines; returns true if a dump was written.
bool MaybeDumpTraceFromEnv(const TraceLog& log,
                           const char* env_var = "ECC_TRACE_DUMP");

}  // namespace ecc::obs
