#include "obs/telemetry.h"

#include <algorithm>
#include <string>

namespace ecc::obs {

FleetTelemetry::FleetTelemetry(FleetTelemetryOptions opts) : opts_(opts) {
  if (opts_.sample_every == 0) opts_.sample_every = 1;
  if (opts_.registry != nullptr) {
    g_nodes_ = opts_.registry->GetGauge("fleet.nodes");
    g_records_ = opts_.registry->GetGauge("fleet.records");
    g_bytes_ = opts_.registry->GetGauge("fleet.bytes");
    g_util_max_pct_ = opts_.registry->GetGauge("fleet.util_max_pct");
    g_over_ = opts_.registry->GetGauge("fleet.over_threshold");
  }
}

void FleetTelemetry::Sample(double x, const std::vector<NodeLoad>& loads) {
  std::uint64_t records = 0, bytes = 0, buckets = 0;
  double util_sum = 0.0, util_max = 0.0;
  std::size_t over = 0;
  for (const NodeLoad& load : loads) {
    records += load.records;
    bytes += load.used_bytes;
    buckets += load.buckets;
    const double util = load.Utilization();
    util_sum += util;
    util_max = std::max(util_max, util);
    if (util > opts_.churn_threshold) ++over;
  }
  const double util_mean =
      loads.empty() ? 0.0 : util_sum / static_cast<double>(loads.size());

  // Gauges always track the latest observation, decimated or not.
  g_nodes_.Set(static_cast<std::int64_t>(loads.size()));
  g_records_.Set(static_cast<std::int64_t>(records));
  g_bytes_.Set(static_cast<std::int64_t>(bytes));
  g_util_max_pct_.Set(static_cast<std::int64_t>(util_max * 100.0));
  g_over_.Set(static_cast<std::int64_t>(over));

  const std::lock_guard<std::mutex> g(mutex_);
  const std::size_t index = seen_++;
  if (index % opts_.sample_every != 0) return;
  ++recorded_;
  series_.Get("nodes").Add(x, static_cast<double>(loads.size()));
  series_.Get("records").Add(x, static_cast<double>(records));
  series_.Get("bytes").Add(x, static_cast<double>(bytes));
  series_.Get("buckets").Add(x, static_cast<double>(buckets));
  series_.Get("util_mean").Add(x, util_mean);
  series_.Get("util_max").Add(x, util_max);
  series_.Get("over_threshold").Add(x, static_cast<double>(over));
  if (opts_.per_node_series) {
    for (const NodeLoad& load : loads) {
      series_.Get("node" + std::to_string(load.node) + ".util")
          .Add(x, load.Utilization());
    }
  }
}

std::size_t FleetTelemetry::samples_seen() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return seen_;
}

std::size_t FleetTelemetry::samples_recorded() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return recorded_;
}

}  // namespace ecc::obs
