#include "obs/metrics.h"

namespace ecc::obs {

Counter MetricsRegistry::GetCounter(const std::string& name) {
  if (!enabled_) return Counter{};
  const std::lock_guard<std::mutex> g(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
    counter_order_.emplace_back(name, it->second.get());
  }
  return Counter{it->second.get()};
}

Gauge MetricsRegistry::GetGauge(const std::string& name) {
  if (!enabled_) return Gauge{};
  const std::lock_guard<std::mutex> g(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(name, std::make_unique<std::atomic<std::int64_t>>(0))
             .first;
  }
  return Gauge{it->second.get()};
}

HistogramHandle MetricsRegistry::GetHistogram(const std::string& name,
                                              double min_value,
                                              double growth) {
  if (!enabled_) return HistogramHandle{};
  const std::lock_guard<std::mutex> g(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<HistogramHandle::Cell>(
                                min_value, growth))
             .first;
  }
  return HistogramHandle{it->second.get()};
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> g(mutex_);
  // Reverse registration order: a counter registered (and written) after
  // its attempt counter is read *before* it, so `outcome <= attempt` holds
  // in the copy even while writers race the snapshot.
  for (auto it = counter_order_.rbegin(); it != counter_order_.rend(); ++it) {
    snap.counters.emplace(it->first,
                          it->second->load(std::memory_order_acquire));
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace(name, cell->load(std::memory_order_acquire));
  }
  for (const auto& [name, cell] : histograms_) {
    const std::lock_guard<std::mutex> cg(cell->mutex);
    snap.histograms.emplace(name, cell->histogram);
  }
  return snap;
}

MetricsRegistry& EccObsDisabled() {
  static MetricsRegistry disabled{/*enabled=*/false};
  return disabled;
}

}  // namespace ecc::obs
