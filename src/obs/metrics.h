// MetricsRegistry: named counters, gauges, and log-scale histograms behind
// cheap handles, the observability substrate every layer of the stack
// reports into (memcached's `stats` surface and Dynamo's per-operation
// instrumentation are the models).
//
// Design:
//   * Registration (GetCounter/GetGauge/GetHistogram) is mutex-guarded and
//     happens at wiring time; it hands back a small *handle* holding a raw
//     pointer to a heap-stable cell.
//   * The hot path — Counter::Inc on a query — is one relaxed-cost atomic
//     RMW, no lock, no lookup.  A default-constructed (or disabled-
//     registry) handle holds a null cell and the whole operation compiles
//     down to a tested branch: observability off means no-ops.
//   * Snapshot() is a point-in-time copy.  Counters are read in *reverse
//     registration order* with acquire loads, while Inc publishes with a
//     release store (same cost as relaxed on x86/ARM LSE).  Register an
//     attempt counter before its outcome counters and write them in that
//     order, and any snapshot observes `outcomes <= attempts` even under
//     concurrent writers — the snapshot-consistency contract the stats
//     shim and tests rely on.
//
// EccObsDisabled() is a process-wide registry whose handles are all null:
// pass it where an Observability is required to turn the instrumented hot
// path into no-ops (verified by bench/micro_obs).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace ecc::obs {

/// Monotonic event count.  Null-safe: a default handle ignores everything.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}

  void Inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t Value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_acquire);
  }
  /// Rewind to zero (constructor-time accounting resets only; the hot path
  /// never calls this).
  void Reset() {
    if (cell_ != nullptr) cell_->store(0, std::memory_order_release);
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Last-written level (fleet size, last split overhead, ...).
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}

  void Set(std::int64_t v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_release);
  }
  void Add(std::int64_t d) {
    if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_release);
  }
  [[nodiscard]] std::int64_t Value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_acquire);
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Log-bucketed distribution (reuses common/histogram under a cell mutex —
/// observation sites are off the per-query fast path: splits, sweeps).
class HistogramHandle {
 public:
  struct Cell {
    explicit Cell(double min_value, double growth)
        : histogram(min_value, growth) {}
    std::mutex mutex;
    Histogram histogram;
  };

  HistogramHandle() = default;
  explicit HistogramHandle(Cell* cell) : cell_(cell) {}

  void Observe(double value) {
    if (cell_ == nullptr) return;
    const std::lock_guard<std::mutex> g(cell_->mutex);
    cell_->histogram.Add(value);
  }
  [[nodiscard]] Histogram Snapshot() const {
    if (cell_ == nullptr) return Histogram{};
    const std::lock_guard<std::mutex> g(cell_->mutex);
    return cell_->histogram;
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  Cell* cell_ = nullptr;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  /// Ordered for stable rendering; values observed newest-first (reverse
  /// registration order) for cross-counter consistency.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  [[nodiscard]] std::uint64_t CounterValue(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  [[nodiscard]] std::int64_t GaugeValue(const std::string& name) const {
    const auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
  [[nodiscard]] const Histogram* FindHistogram(const std::string& name) const {
    const auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }
};

class MetricsRegistry {
 public:
  /// A disabled registry vends null handles: every instrumented site turns
  /// into a tested-pointer no-op (see EccObsDisabled()).
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent: the same name always resolves to the same cell, so two
  /// components naming one metric share it.  Distinct cache instances
  /// should therefore not share one registry unless aggregation is wanted.
  [[nodiscard]] Counter GetCounter(const std::string& name);
  [[nodiscard]] Gauge GetGauge(const std::string& name);
  [[nodiscard]] HistogramHandle GetHistogram(const std::string& name,
                                             double min_value = 1.0,
                                             double growth = 1.15);

  [[nodiscard]] MetricsSnapshot Snapshot() const;
  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  mutable std::mutex mutex_;
  // unique_ptr cells: handle pointers stay stable across map rehash/growth.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>>
      counters_;
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramHandle::Cell>> histograms_;
  /// Registration order (snapshots read counters newest-first).
  std::vector<std::pair<std::string, std::atomic<std::uint64_t>*>>
      counter_order_;
};

/// The process-wide null registry: attach it to opt *out* of observability
/// while keeping every call site unconditional.
[[nodiscard]] MetricsRegistry& EccObsDisabled();

}  // namespace ecc::obs
