// Per-node load telemetry, sampled at time-step boundaries.
//
// The paper's figures live on fleet-level series — node counts, per-node
// fill against the 65% churn-avoidance threshold, migration volume over
// time.  FleetTelemetry turns a vector of NodeLoad samples (one per node,
// produced by CacheBackend::NodeLoads) into aligned common/timeseries
// series, and optionally mirrors the latest aggregates into registry gauges
// so a metrics snapshot carries the current fleet shape.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/timeseries.h"
#include "obs/metrics.h"

namespace ecc::obs {

/// Point-in-time load of one cache node (the backend fills these; obs
/// depends only on common/, so this mirrors core::NodeSnapshot).
struct NodeLoad {
  std::uint64_t node = 0;
  std::uint64_t records = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t buckets = 0;

  [[nodiscard]] double Utilization() const {
    return capacity_bytes == 0 ? 0.0
                               : static_cast<double>(used_bytes) /
                                     static_cast<double>(capacity_bytes);
  }
};

struct FleetTelemetryOptions {
  /// The paper's churn-avoidance fill threshold: nodes above it are counted
  /// in the `over_threshold` series.
  double churn_threshold = 0.65;
  /// Record every Nth Sample() call (>= 1); coordinators sample once per
  /// time step, and long sweeps decimate to bound memory.
  std::size_t sample_every = 1;
  /// Also record one `node<N>.util` series per node id seen.
  bool per_node_series = true;
  /// When set, Sample() mirrors the aggregates into gauges
  /// (fleet.nodes, fleet.records, fleet.bytes, fleet.util_max_pct,
  /// fleet.over_threshold).
  MetricsRegistry* registry = nullptr;
};

class FleetTelemetry {
 public:
  explicit FleetTelemetry(FleetTelemetryOptions opts = {});

  /// Record one fleet observation at x (typically the time-step index).
  /// Thread-safe, though coordinators only call it from quiesced
  /// EndTimeStep boundaries.
  void Sample(double x, const std::vector<NodeLoad>& loads);

  /// Sample() calls seen (before decimation).
  [[nodiscard]] std::size_t samples_seen() const;
  /// Samples actually recorded into the series.
  [[nodiscard]] std::size_t samples_recorded() const;

  /// The recorded series: nodes, records, bytes, buckets, util_mean,
  /// util_max, over_threshold (+ per-node node<N>.util).  Quiesce writers
  /// before inspecting.
  [[nodiscard]] const SeriesSet& series() const { return series_; }

  [[nodiscard]] const FleetTelemetryOptions& options() const { return opts_; }

 private:
  FleetTelemetryOptions opts_;
  mutable std::mutex mutex_;
  SeriesSet series_{"step"};
  std::size_t seen_ = 0;
  std::size_t recorded_ = 0;
  Gauge g_nodes_, g_records_, g_bytes_, g_util_max_pct_, g_over_;
};

}  // namespace ecc::obs
