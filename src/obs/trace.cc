#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ecc::obs {

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kQueryStart: return "query_start";
    case EventKind::kQueryEnd: return "query_end";
    case EventKind::kSplit: return "split";
    case EventKind::kMigrationPhase: return "migration_phase";
    case EventKind::kEvictionSweep: return "eviction_sweep";
    case EventKind::kContractionMerge: return "contraction_merge";
    case EventKind::kNodeAlloc: return "node_alloc";
    case EventKind::kNodeDealloc: return "node_dealloc";
    case EventKind::kNodeCrash: return "node_crash";
    case EventKind::kRpcRetry: return "rpc_retry";
    case EventKind::kRpcFailure: return "rpc_failure";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kLoadShed: return "load_shed";
    case EventKind::kBreaker: return "breaker";
    case EventKind::kStaleServe: return "stale_serve";
    case EventKind::kDeadlineExceeded: return "deadline_exceeded";
    case EventKind::kNodeSuspected: return "node_suspected";
    case EventKind::kNodeConfirmedDead: return "node_confirmed_dead";
    case EventKind::kRereplicate: return "rereplicate";
    case EventKind::kScrubRepair: return "scrub_repair";
    case EventKind::kFrontHit: return "front_hit";
    case EventKind::kFrontInvalidate: return "front_invalidate";
    case EventKind::kPolicyDecision: return "policy_decision";
    case EventKind::kChaosFault: return "chaos_fault";
    case EventKind::kInvariantViolation: return "invariant_violation";
    case EventKind::kInvariantCheck: return "invariant_check";
    case EventKind::kWalAppend: return "wal_append";
    case EventKind::kSnapshot: return "snapshot";
    case EventKind::kRejoinDelta: return "rejoin_delta";
  }
  return "unknown";
}

namespace {

TraceEvent Make(TimePoint t, EventKind kind, std::uint64_t node,
                std::uint64_t key, std::int64_t a, std::int64_t b,
                std::int64_t c) {
  TraceEvent e;
  e.t_us = t.micros();
  e.kind = kind;
  e.node = node;
  e.key = key;
  e.a = a;
  e.b = b;
  e.c = c;
  return e;
}

const char* OutcomeName(std::int64_t code) {
  switch (static_cast<QueryOutcomeKind>(code)) {
    case QueryOutcomeKind::kHit: return "hit";
    case QueryOutcomeKind::kMiss: return "miss";
    case QueryOutcomeKind::kCoalesced: return "coalesced";
    case QueryOutcomeKind::kShed: return "shed";
    case QueryOutcomeKind::kStale: return "stale";
  }
  return "unknown";
}

const char* ShedCodeName(std::int64_t code) {
  switch (static_cast<ShedCode>(code)) {
    case ShedCode::kQueueFull: return "queue_full";
    case ShedCode::kBreakerOpen: return "breaker_open";
    case ShedCode::kDropped: return "dropped";
    case ShedCode::kDeadline: return "deadline";
  }
  return "unknown";
}

const char* StaleSourceName(std::int64_t code) {
  switch (static_cast<StaleSource>(code)) {
    case StaleSource::kReplica: return "replica";
    case StaleSource::kSpill: return "spill";
  }
  return "unknown";
}

const char* BreakerStateName(std::int64_t code) {
  switch (static_cast<BreakerStateCode>(code)) {
    case BreakerStateCode::kClosed: return "closed";
    case BreakerStateCode::kOpen: return "open";
    case BreakerStateCode::kHalfOpen: return "half_open";
  }
  return "unknown";
}

const char* ScrubRepairKindName(std::int64_t code) {
  switch (static_cast<ScrubRepairKind>(code)) {
    case ScrubRepairKind::kMissingMirror: return "missing_mirror";
    case ScrubRepairKind::kConflict: return "conflict";
  }
  return "unknown";
}

const char* PolicyDecisionCodeName(std::int64_t code) {
  switch (static_cast<PolicyDecisionCode>(code)) {
    case PolicyDecisionCode::kEvictOverride: return "evict_override";
    case PolicyDecisionCode::kAdmitDeny: return "admit_deny";
    case PolicyDecisionCode::kContract: return "contract";
    case PolicyDecisionCode::kPrewarm: return "prewarm";
  }
  return "unknown";
}

const char* FrontInvalidateReasonName(std::int64_t code) {
  switch (code) {
    case 0: return "version";
    case 1: return "epoch";
    case 2: return "capacity";
    case 3: return "window";
    default: return "unknown";
  }
}

const char* ChaosFaultCodeName(std::int64_t code) {
  switch (static_cast<ChaosFaultCode>(code)) {
    case ChaosFaultCode::kPartition: return "partition";
    case ChaosFaultCode::kHeal: return "heal";
    case ChaosFaultCode::kCorrupt: return "corrupt";
    case ChaosFaultCode::kTruncate: return "truncate";
    case ChaosFaultCode::kReset: return "reset";
    case ChaosFaultCode::kDelay: return "delay";
    case ChaosFaultCode::kThrottle: return "throttle";
  }
  return "unknown";
}

const char* InvariantViolationKindName(std::int64_t code) {
  switch (static_cast<InvariantViolationKind>(code)) {
    case InvariantViolationKind::kLostAck: return "lost_ack";
    case InvariantViolationKind::kValueMismatch: return "value_mismatch";
    case InvariantViolationKind::kStaleServe: return "stale_serve";
    case InvariantViolationKind::kDivergence: return "divergence";
  }
  return "unknown";
}

const char* FaultCodeName(std::int64_t code) {
  switch (static_cast<FaultCode>(code)) {
    case FaultCode::kDropRequest: return "drop_request";
    case FaultCode::kDropResponse: return "drop_response";
    case FaultCode::kDelay: return "delay";
    case FaultCode::kMigrationAbort: return "migration_abort";
    case FaultCode::kMigrationCrashSource: return "migration_crash_source";
    case FaultCode::kMigrationCrashDest: return "migration_crash_dest";
    case FaultCode::kBrownout: return "brownout";
  }
  return "unknown";
}

void AppendField(std::string& out, const char* name, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", name,
                static_cast<long long>(v));
  out += buf;
}

void AppendField(std::string& out, const char* name, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", name,
                static_cast<unsigned long long>(v));
  out += buf;
}

void AppendField(std::string& out, const char* name, const char* v) {
  out += ",\"";
  out += name;
  out += "\":\"";
  out += v;  // all emitted strings are fixed identifiers, no escaping needed
  out += '"';
}

}  // namespace

TraceEvent QueryStartEvent(TimePoint t, std::uint64_t key) {
  return Make(t, EventKind::kQueryStart, kNoNode, key, 0, 0, 0);
}

TraceEvent QueryEndEvent(TimePoint t, std::uint64_t key,
                         QueryOutcomeKind outcome, Duration latency) {
  return Make(t, EventKind::kQueryEnd, kNoNode, key,
              static_cast<std::int64_t>(outcome), latency.micros(), 0);
}

TraceEvent SplitEvent(TimePoint t, std::uint64_t src, std::uint64_t dst,
                      std::uint64_t records, std::uint64_t bytes) {
  return Make(t, EventKind::kSplit, src, kNoKey,
              static_cast<std::int64_t>(dst),
              static_cast<std::int64_t>(records),
              static_cast<std::int64_t>(bytes));
}

TraceEvent MigrationPhaseEvent(TimePoint t, std::uint64_t src,
                               std::uint64_t dst, int step,
                               std::uint64_t migration) {
  return Make(t, EventKind::kMigrationPhase, src, kNoKey,
              static_cast<std::int64_t>(dst), step,
              static_cast<std::int64_t>(migration));
}

TraceEvent EvictionSweepEvent(TimePoint t, std::uint64_t requested,
                              std::uint64_t erased) {
  return Make(t, EventKind::kEvictionSweep, kNoNode, kNoKey,
              static_cast<std::int64_t>(requested),
              static_cast<std::int64_t>(erased), 0);
}

TraceEvent ContractionMergeEvent(TimePoint t, std::uint64_t donor,
                                 std::uint64_t absorber,
                                 std::uint64_t records) {
  return Make(t, EventKind::kContractionMerge, donor, kNoKey,
              static_cast<std::int64_t>(absorber),
              static_cast<std::int64_t>(records), 0);
}

TraceEvent NodeAllocEvent(TimePoint t, std::uint64_t node,
                          Duration boot_wait) {
  return Make(t, EventKind::kNodeAlloc, node, kNoKey, boot_wait.micros(), 0,
              0);
}

TraceEvent NodeDeallocEvent(TimePoint t, std::uint64_t node) {
  return Make(t, EventKind::kNodeDealloc, node, kNoKey, 0, 0, 0);
}

TraceEvent NodeCrashEvent(TimePoint t, std::uint64_t node,
                          std::uint64_t records_dropped,
                          std::uint64_t records_recoverable) {
  return Make(t, EventKind::kNodeCrash, node, kNoKey,
              static_cast<std::int64_t>(records_dropped),
              static_cast<std::int64_t>(records_recoverable), 0);
}

TraceEvent RpcRetryEvent(TimePoint t, std::uint64_t node,
                         std::uint64_t attempt) {
  return Make(t, EventKind::kRpcRetry, node, kNoKey,
              static_cast<std::int64_t>(attempt), 0, 0);
}

TraceEvent RpcFailureEvent(TimePoint t, std::uint64_t node,
                           std::uint64_t attempts) {
  return Make(t, EventKind::kRpcFailure, node, kNoKey,
              static_cast<std::int64_t>(attempts), 0, 0);
}

TraceEvent FaultInjectedEvent(TimePoint t, std::uint64_t node, FaultCode code,
                              std::int64_t arg) {
  return Make(t, EventKind::kFaultInjected, node, kNoKey,
              static_cast<std::int64_t>(code), arg, 0);
}

TraceEvent LoadShedEvent(TimePoint t, std::uint64_t key, ShedCode reason) {
  return Make(t, EventKind::kLoadShed, kNoNode, key,
              static_cast<std::int64_t>(reason), 0, 0);
}

TraceEvent BreakerEvent(TimePoint t, BreakerStateCode from,
                        BreakerStateCode to) {
  return Make(t, EventKind::kBreaker, kNoNode, kNoKey,
              static_cast<std::int64_t>(from), static_cast<std::int64_t>(to),
              0);
}

TraceEvent StaleServeEvent(TimePoint t, std::uint64_t key, StaleSource source,
                           std::uint64_t age_slices) {
  return Make(t, EventKind::kStaleServe, kNoNode, key,
              static_cast<std::int64_t>(source),
              static_cast<std::int64_t>(age_slices), 0);
}

TraceEvent DeadlineExceededEvent(TimePoint t, std::uint64_t key,
                                 Duration overshoot) {
  return Make(t, EventKind::kDeadlineExceeded, kNoNode, key,
              overshoot.micros(), 0, 0);
}

TraceEvent NodeSuspectedEvent(TimePoint t, std::uint64_t node,
                              std::uint64_t suspicion) {
  return Make(t, EventKind::kNodeSuspected, node, kNoKey,
              static_cast<std::int64_t>(suspicion), 0, 0);
}

TraceEvent NodeConfirmedDeadEvent(TimePoint t, std::uint64_t node,
                                  std::uint64_t missed) {
  return Make(t, EventKind::kNodeConfirmedDead, node, kNoKey,
              static_cast<std::int64_t>(missed), 0, 0);
}

TraceEvent RereplicateEvent(TimePoint t, std::uint64_t recovered,
                            std::uint64_t from_spill,
                            std::uint64_t unrecoverable) {
  return Make(t, EventKind::kRereplicate, kNoNode, kNoKey,
              static_cast<std::int64_t>(recovered),
              static_cast<std::int64_t>(from_spill),
              static_cast<std::int64_t>(unrecoverable));
}

TraceEvent ScrubRepairEvent(TimePoint t, std::uint64_t key,
                            ScrubRepairKind kind) {
  return Make(t, EventKind::kScrubRepair, kNoNode, key,
              static_cast<std::int64_t>(kind), 0, 0);
}

TraceEvent FrontHitEvent(TimePoint t, std::uint64_t key) {
  return Make(t, EventKind::kFrontHit, kNoNode, key, 0, 0, 0);
}

TraceEvent FrontInvalidateEvent(TimePoint t, std::uint64_t key, int reason) {
  return Make(t, EventKind::kFrontInvalidate, kNoNode, key, reason, 0, 0);
}

TraceEvent PolicyDecisionEvent(TimePoint t, PolicyDecisionCode code,
                               std::uint64_t key, std::int64_t b,
                               std::int64_t c) {
  return Make(t, EventKind::kPolicyDecision, kNoNode, key,
              static_cast<std::int64_t>(code), b, c);
}

TraceEvent ChaosFaultEvent(TimePoint t, std::uint64_t node,
                           ChaosFaultCode code, std::int64_t arg) {
  return Make(t, EventKind::kChaosFault, node, kNoKey,
              static_cast<std::int64_t>(code), arg, 0);
}

TraceEvent InvariantViolationEvent(TimePoint t, std::uint64_t key,
                                   InvariantViolationKind kind) {
  return Make(t, EventKind::kInvariantViolation, kNoNode, key,
              static_cast<std::int64_t>(kind), 0, 0);
}

TraceEvent InvariantCheckEvent(TimePoint t, std::uint64_t checked,
                               std::uint64_t violations,
                               std::uint64_t unrecoverable) {
  return Make(t, EventKind::kInvariantCheck, kNoNode, kNoKey,
              static_cast<std::int64_t>(checked),
              static_cast<std::int64_t>(violations),
              static_cast<std::int64_t>(unrecoverable));
}

TraceEvent WalAppendEvent(TimePoint t, std::uint64_t node,
                          std::uint64_t records, std::uint64_t bytes) {
  return Make(t, EventKind::kWalAppend, node, kNoKey,
              static_cast<std::int64_t>(records),
              static_cast<std::int64_t>(bytes), 0);
}

TraceEvent SnapshotEvent(TimePoint t, std::uint64_t node,
                         std::uint64_t records, std::uint64_t bytes) {
  return Make(t, EventKind::kSnapshot, node, kNoKey,
              static_cast<std::int64_t>(records),
              static_cast<std::int64_t>(bytes), 0);
}

TraceEvent RejoinDeltaEvent(TimePoint t, std::uint64_t node,
                            std::uint64_t owned, std::uint64_t transferred,
                            std::uint64_t recovered) {
  return Make(t, EventKind::kRejoinDelta, node, kNoKey,
              static_cast<std::int64_t>(owned),
              static_cast<std::int64_t>(transferred),
              static_cast<std::int64_t>(recovered));
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceLog::Append(const TraceEvent& e) {
  const std::lock_guard<std::mutex> g(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_] = e;
    next_ = (next_ + 1) % capacity_;
  }
  ++appended_;
}

std::vector<TraceEvent> TraceLog::Events() const {
  const std::lock_guard<std::mutex> g(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t TraceLog::size() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return ring_.size();
}

std::uint64_t TraceLog::total_appended() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return appended_;
}

std::uint64_t TraceLog::dropped() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return appended_ - ring_.size();
}

void TraceLog::Clear() {
  const std::lock_guard<std::mutex> g(mutex_);
  ring_.clear();
  next_ = 0;
  appended_ = 0;
}

std::string EventToJson(const TraceEvent& e) {
  std::string out = "{";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"t_us\":%lld",
                  static_cast<long long>(e.t_us));
    out += buf;
  }
  AppendField(out, "ev", EventKindName(e.kind));
  if (e.node != kNoNode) AppendField(out, "node", e.node);
  if (e.key != kNoKey) AppendField(out, "key", e.key);
  switch (e.kind) {
    case EventKind::kQueryStart:
      break;
    case EventKind::kQueryEnd:
      AppendField(out, "outcome", OutcomeName(e.a));
      AppendField(out, "latency_us", e.b);
      break;
    case EventKind::kSplit:
      AppendField(out, "dst", static_cast<std::uint64_t>(e.a));
      AppendField(out, "records", e.b);
      AppendField(out, "bytes", e.c);
      break;
    case EventKind::kMigrationPhase:
      AppendField(out, "dst", static_cast<std::uint64_t>(e.a));
      AppendField(out, "step", e.b);
      AppendField(out, "migration", e.c);
      break;
    case EventKind::kEvictionSweep:
      AppendField(out, "requested", e.a);
      AppendField(out, "erased", e.b);
      break;
    case EventKind::kContractionMerge:
      AppendField(out, "absorber", static_cast<std::uint64_t>(e.a));
      AppendField(out, "records", e.b);
      break;
    case EventKind::kNodeAlloc:
      AppendField(out, "boot_wait_us", e.a);
      break;
    case EventKind::kNodeDealloc:
      break;
    case EventKind::kNodeCrash:
      AppendField(out, "dropped", e.a);
      AppendField(out, "recoverable", e.b);
      break;
    case EventKind::kRpcRetry:
      AppendField(out, "attempt", e.a);
      break;
    case EventKind::kRpcFailure:
      AppendField(out, "attempts", e.a);
      break;
    case EventKind::kFaultInjected:
      AppendField(out, "fault", FaultCodeName(e.a));
      AppendField(out, "arg", e.b);
      break;
    case EventKind::kLoadShed:
      AppendField(out, "reason", ShedCodeName(e.a));
      break;
    case EventKind::kBreaker:
      AppendField(out, "from", BreakerStateName(e.a));
      AppendField(out, "to", BreakerStateName(e.b));
      break;
    case EventKind::kStaleServe:
      AppendField(out, "source", StaleSourceName(e.a));
      AppendField(out, "age_slices", e.b);
      break;
    case EventKind::kDeadlineExceeded:
      AppendField(out, "overshoot_us", e.a);
      break;
    case EventKind::kNodeSuspected:
      AppendField(out, "suspicion", e.a);
      break;
    case EventKind::kNodeConfirmedDead:
      AppendField(out, "missed", e.a);
      break;
    case EventKind::kRereplicate:
      AppendField(out, "recovered", e.a);
      AppendField(out, "from_spill", e.b);
      AppendField(out, "unrecoverable", e.c);
      break;
    case EventKind::kScrubRepair:
      AppendField(out, "kind", ScrubRepairKindName(e.a));
      break;
    case EventKind::kFrontHit:
      break;
    case EventKind::kFrontInvalidate:
      AppendField(out, "reason", FrontInvalidateReasonName(e.a));
      break;
    case EventKind::kPolicyDecision:
      AppendField(out, "decision", PolicyDecisionCodeName(e.a));
      AppendField(out, "b", e.b);
      AppendField(out, "c", e.c);
      break;
    case EventKind::kChaosFault:
      AppendField(out, "fault", ChaosFaultCodeName(e.a));
      AppendField(out, "arg", e.b);
      break;
    case EventKind::kInvariantViolation:
      AppendField(out, "kind", InvariantViolationKindName(e.a));
      break;
    case EventKind::kInvariantCheck:
      AppendField(out, "checked", e.a);
      AppendField(out, "violations", e.b);
      AppendField(out, "unrecoverable", e.c);
      break;
    case EventKind::kWalAppend:
      AppendField(out, "records", e.a);
      AppendField(out, "bytes", e.b);
      break;
    case EventKind::kSnapshot:
      AppendField(out, "records", e.a);
      AppendField(out, "bytes", e.b);
      break;
    case EventKind::kRejoinDelta:
      AppendField(out, "owned", e.a);
      AppendField(out, "transferred", e.b);
      AppendField(out, "recovered", e.c);
      break;
  }
  out += '}';
  return out;
}

std::string TraceLog::ToJsonLines() const {
  std::string out;
  for (const TraceEvent& e : Events()) {
    out += EventToJson(e);
    out += '\n';
  }
  return out;
}

Status TraceLog::AppendJsonLinesToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const std::string body = ToJsonLines();
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (wrote != body.size()) return Status::Internal("short write " + path);
  return Status::Ok();
}

bool MaybeDumpTraceFromEnv(const TraceLog& log, const char* env_var) {
  const char* path = std::getenv(env_var);
  if (path == nullptr || path[0] == '\0') return false;
  return log.AppendJsonLinesToFile(path).ok();
}

}  // namespace ecc::obs
