// Observability wiring bundle.
//
// Components that report (ElasticCache, Coordinator, ParallelCoordinator,
// fault injector, RPC retry layer) take one of these in their options;
// every pointer is optional and none is owned.  Pass {} for silence,
// {.metrics = &EccObsDisabled()} to force a cache's internal accounting
// into no-op handles, or wire all three for the full picture (benches do,
// see bench/figcommon).
#pragma once

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace ecc::obs {

struct Observability {
  /// Counter/gauge/histogram sink.  For ElasticCache, nullptr means "use an
  /// internal private registry" (the CacheStats shim needs cells to read);
  /// everywhere else nullptr means unregistered null handles.
  MetricsRegistry* metrics = nullptr;
  /// Structured event sink; nullptr = no tracing.
  TraceLog* trace = nullptr;
  /// Fleet load sampler, fed at time-step boundaries; nullptr = off.
  FleetTelemetry* telemetry = nullptr;

  /// Null-safe counter registration for the metrics-optional components.
  [[nodiscard]] Counter MakeCounter(const std::string& name) const {
    return metrics == nullptr ? Counter{} : metrics->GetCounter(name);
  }
};

}  // namespace ecc::obs
