#include "fronttier/heavy_hitters.h"

#include <algorithm>

namespace ecc::fronttier {

SpaceSavingTracker::SpaceSavingTracker(std::size_t capacity)
    : capacity_(capacity) {}

void SpaceSavingTracker::IndexInsert(Key k, std::uint64_t count) {
  by_count_[count].insert(k);
}

void SpaceSavingTracker::IndexErase(Key k, std::uint64_t count) {
  const auto it = by_count_.find(count);
  it->second.erase(k);
  if (it->second.empty()) by_count_.erase(it);
}

void SpaceSavingTracker::Record(Key k) {
  if (capacity_ == 0) return;
  ++observed_;

  const auto it = slots_.find(k);
  if (it != slots_.end()) {
    IndexErase(k, it->second.count);
    ++it->second.count;
    IndexInsert(k, it->second.count);
    return;
  }

  if (slots_.size() < capacity_) {
    slots_.emplace(k, Slot{1, 0});
    IndexInsert(k, 1);
    return;
  }

  // Summary full: the newcomer takes over the minimum counter, inheriting
  // its count as the over-count bound (the space-saving step).
  const auto min_it = by_count_.begin();
  const std::uint64_t min_count = min_it->first;
  const Key victim = *min_it->second.begin();
  IndexErase(victim, min_count);
  slots_.erase(victim);
  slots_.emplace(k, Slot{min_count + 1, min_count});
  IndexInsert(k, min_count + 1);
}

bool SpaceSavingTracker::Tracked(Key k) const { return slots_.contains(k); }

std::uint64_t SpaceSavingTracker::EstimateOf(Key k) const {
  const auto it = slots_.find(k);
  return it == slots_.end() ? 0 : it->second.count;
}

std::uint64_t SpaceSavingTracker::ErrorOf(Key k) const {
  const auto it = slots_.find(k);
  return it == slots_.end() ? 0 : it->second.error;
}

std::uint64_t SpaceSavingTracker::GuaranteedOf(Key k) const {
  const auto it = slots_.find(k);
  return it == slots_.end() ? 0 : it->second.count - it->second.error;
}

std::vector<HeavyHitter> SpaceSavingTracker::TopK(std::size_t n) const {
  std::vector<HeavyHitter> out;
  out.reserve(std::min(n, slots_.size()));
  // by_count_ ascends; walk it backwards for highest-first.
  for (auto bucket = by_count_.rbegin();
       bucket != by_count_.rend() && out.size() < n; ++bucket) {
    for (const Key k : bucket->second) {
      if (out.size() >= n) break;
      out.push_back(HeavyHitter{k, bucket->first, slots_.at(k).error});
    }
  }
  return out;
}

std::uint64_t SpaceSavingTracker::MinCount() const {
  if (slots_.size() < capacity_ || by_count_.empty()) return 0;
  return by_count_.begin()->first;
}

void SpaceSavingTracker::Decay() {
  std::unordered_map<Key, Slot> aged;
  aged.reserve(slots_.size());
  by_count_.clear();
  for (const auto& [k, slot] : slots_) {
    const std::uint64_t count = slot.count / 2;
    if (count == 0) continue;
    aged.emplace(k, Slot{count, slot.error / 2});
    IndexInsert(k, count);
  }
  slots_ = std::move(aged);
}

}  // namespace ecc::fronttier
