// Streaming heavy-hitter tracking for the coordinator front tier.
//
// The front cache must stay tiny (tens of entries) yet catch exactly the
// keys that dominate a skewed workload, so admission cannot be "cache what
// you saw last" — that thrashes under the uniform tail.  SpaceSavingTracker
// implements the space-saving summary of Metwally, Agrawal & El Abbadi
// ("Efficient computation of frequent and top-k elements in data streams"):
// k counters follow the stream, an unseen key evicts the current minimum
// counter and inherits its count as its error bound.  Guarantees, for a
// stream of N records and capacity k:
//
//   * every key with true frequency > N/k is tracked;
//   * estimate(k) >= true_count(k) for every tracked key;
//   * estimate(k) - error(k) <= true_count(k)   (a provable lower bound);
//   * the minimum counter — the eviction bar — never exceeds N/k.
//
// Admission decisions use the *guaranteed* count (estimate - error): an
// all-distinct stream inflates estimates to ~N/k but its guaranteed counts
// stay at 1, so cold keys are never promoted into the front cache.
//
// Decay() halves every counter, aging the summary across sliding-window
// boundaries so yesterday's hot set cannot squat in the summary forever.
//
// Single-threaded by design: each coordinator (or coordinator worker) owns
// a private tracker, which is what keeps the front tier free of any shared
// hot-path lock.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace ecc::fronttier {

/// Keys mirror core::Key (the fronttier module stays below core in the
/// dependency order, so it spells the alias itself).
using Key = std::uint64_t;

/// One tracked counter, as reported by TopK().
struct HeavyHitter {
  Key key = 0;
  std::uint64_t count = 0;  ///< over-estimate of the true frequency
  std::uint64_t error = 0;  ///< count inherited at takeover (over-count bound)

  /// Provable lower bound on the true frequency.
  [[nodiscard]] std::uint64_t Guaranteed() const { return count - error; }
};

class SpaceSavingTracker {
 public:
  /// `capacity` is the number of counters (the algorithm's k).  0 disables
  /// tracking entirely: Record is a no-op and nothing is ever reported hot.
  explicit SpaceSavingTracker(std::size_t capacity);

  void Record(Key k);

  [[nodiscard]] bool Tracked(Key k) const;
  /// Frequency over-estimate; 0 when untracked.
  [[nodiscard]] std::uint64_t EstimateOf(Key k) const;
  /// Over-count bound inherited at counter takeover; 0 when untracked.
  [[nodiscard]] std::uint64_t ErrorOf(Key k) const;
  /// estimate - error: hits provably observed.  0 when untracked.
  [[nodiscard]] std::uint64_t GuaranteedOf(Key k) const;

  /// Tracked keys, highest estimate first (ties broken by smaller key for
  /// deterministic output); at most `n` entries.
  [[nodiscard]] std::vector<HeavyHitter> TopK(
      std::size_t n = static_cast<std::size_t>(-1)) const;

  /// The eviction bar: the smallest tracked count (0 while not full).
  [[nodiscard]] std::uint64_t MinCount() const;

  /// Age the summary at a window boundary: halve every count and error,
  /// dropping counters that reach zero.
  void Decay();

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records observed since construction (not reduced by Decay).
  [[nodiscard]] std::uint64_t observed() const { return observed_; }

 private:
  struct Slot {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  void IndexInsert(Key k, std::uint64_t count);
  void IndexErase(Key k, std::uint64_t count);

  std::size_t capacity_;
  std::uint64_t observed_ = 0;
  std::unordered_map<Key, Slot> slots_;
  /// count -> tracked keys at that count; begin() is the eviction bucket.
  /// std::set inside keeps victim choice deterministic (smallest key).
  std::map<std::uint64_t, std::set<Key>> by_count_;
};

}  // namespace ecc::fronttier
