#include "fronttier/front_cache.h"

#include <functional>
#include <limits>

namespace ecc::fronttier {

// --- InvalidationHub --------------------------------------------------------

InvalidationHub::InvalidationHub(std::size_t slots)
    : slots_(slots == 0 ? 1 : slots) {
  for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
}

std::size_t InvalidationHub::SlotOf(Key k) const {
  // Fibonacci multiplicative mix: adjacent keys (which the range-partitioned
  // ring makes common) land on well-spread slots.
  return static_cast<std::size_t>((k * 0x9e3779b97f4a7c15ull) >> 32) %
         slots_.size();
}

Stamp InvalidationHub::Current(Key k) const {
  // Epoch first: if a BumpAll lands between the two loads we read an old
  // epoch with a new version, which can only fail a later equality check —
  // over-invalidation, never staleness.
  Stamp s;
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.version = slots_[SlotOf(k)].load(std::memory_order_acquire);
  return s;
}

void InvalidationHub::BumpKey(Key k) {
  slots_[SlotOf(k)].fetch_add(1, std::memory_order_release);
  key_bumps_.fetch_add(1, std::memory_order_relaxed);
}

void InvalidationHub::BumpAll() {
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
}

InvalidationHub::Stats InvalidationHub::stats() const {
  return Stats{key_bumps_.load(std::memory_order_relaxed),
               epoch_bumps_.load(std::memory_order_relaxed)};
}

// --- FrontCache -------------------------------------------------------------

FrontCache::FrontCache(const FrontTierOptions& opts, InvalidationHub* hub,
                       const obs::Observability& obs)
    : opts_(opts),
      hub_(hub),
      tracker_(opts.tracker_counters),
      trace_(obs.trace),
      m_lookups_(obs.MakeCounter("fronttier.lookups")),
      m_hits_(obs.MakeCounter("fronttier.hits")),
      m_misses_(obs.MakeCounter("fronttier.misses")),
      m_admissions_(obs.MakeCounter("fronttier.admissions")),
      m_rejections_(obs.MakeCounter("fronttier.rejections")),
      m_invalidations_(obs.MakeCounter("fronttier.invalidations")),
      m_evictions_(obs.MakeCounter("fronttier.evictions")) {}

void FrontCache::DropEntry(Key k, FrontInvalidateCode reason, TimePoint now) {
  entries_.erase(k);
  if (reason == FrontInvalidateCode::kVersion ||
      reason == FrontInvalidateCode::kEpoch) {
    ++stats_.invalidations;
    m_invalidations_.Inc();
  } else {
    ++stats_.evictions;
    m_evictions_.Inc();
  }
  obs::Emit(trace_, obs::FrontInvalidateEvent(now, k, static_cast<int>(reason)));
}

FrontCache::Lookup FrontCache::Find(Key k, TimePoint now) {
  tracker_.Record(k);
  ++stats_.lookups;
  m_lookups_.Inc();

  const auto it = entries_.find(k);
  if (it == entries_.end()) {
    ++stats_.misses;
    m_misses_.Inc();
    return Lookup{};
  }

  const Stamp cur = hub_->Current(k);
  if (cur != it->second.stamp) {
    const FrontInvalidateCode reason = cur.epoch != it->second.stamp.epoch
                                           ? FrontInvalidateCode::kEpoch
                                           : FrontInvalidateCode::kVersion;
    DropEntry(k, reason, now);
    ++stats_.misses;
    m_misses_.Inc();
    return Lookup{nullptr, true, reason};
  }

  ++stats_.hits;
  m_hits_.Inc();
  obs::Emit(trace_, obs::FrontHitEvent(now, k));
  return Lookup{&it->second.value, false, FrontInvalidateCode::kVersion};
}

bool FrontCache::Offer(Key k, const std::string& value, Stamp pre_read,
                       TimePoint now) {
  if (opts_.capacity == 0) return false;

  // Freshness gate: the stamp was taken before the backend read, so a match
  // here proves no invalidation raced the read — the value is current.
  if (hub_->Current(k) != pre_read) {
    ++stats_.rejections;
    m_rejections_.Inc();
    return false;
  }

  const auto it = entries_.find(k);
  if (it != entries_.end()) {
    // Already resident: refresh (a re-read observed the same freshness).
    it->second.value = value;
    it->second.stamp = pre_read;
    return true;
  }

  // Admission gate: only provably-hot keys (see heavy_hitters.h on why the
  // guaranteed count, not the estimate).
  const std::uint64_t guaranteed = tracker_.GuaranteedOf(k);
  if (guaranteed < opts_.admit_min_count) {
    ++stats_.rejections;
    m_rejections_.Inc();
    return false;
  }

  if (entries_.size() >= opts_.capacity) {
    // Displace the coldest resident, but only for a strictly hotter key.
    Key coldest = 0;
    std::uint64_t coldest_est = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [rk, entry] : entries_) {
      const std::uint64_t est = tracker_.EstimateOf(rk);
      if (est < coldest_est || (est == coldest_est && rk < coldest)) {
        coldest_est = est;
        coldest = rk;
      }
    }
    if (tracker_.EstimateOf(k) <= coldest_est) {
      ++stats_.rejections;
      m_rejections_.Inc();
      return false;
    }
    DropEntry(coldest, FrontInvalidateCode::kCapacity, now);
  }

  entries_.emplace(k, Entry{value, pre_read});
  ++stats_.admissions;
  m_admissions_.Inc();
  return true;
}

void FrontCache::OnWindowBoundary(TimePoint now) {
  if (opts_.decay_per_window) tracker_.Decay();

  // Residents that decayed out of the hot set leave; they would only be
  // re-admitted by earning their guaranteed count again.
  std::vector<Key> cooled;
  for (const auto& [k, entry] : entries_) {
    if (tracker_.GuaranteedOf(k) < opts_.admit_min_count) cooled.push_back(k);
  }
  for (const Key k : cooled) {
    DropEntry(k, FrontInvalidateCode::kWindow, now);
  }
}

}  // namespace ecc::fronttier
