// The coordinator front tier: a tiny bounded cache of the hottest keys,
// sitting in front of the elastic cache fleet so that zipf/hotspot traffic
// stops saturating the one node that owns the hot shard (the client/proxy
// hot-key tier of CoT, "Decentralized Elastic Caches for Cloud
// Environments", adapted to this simulator's coordinator front-end).
//
// Three pieces:
//
//   * SpaceSavingTracker (heavy_hitters.h) decides *admission*: only keys
//     with a provable hit count make it in, so the cache stays tiny and a
//     uniform tail cannot thrash it.
//
//   * InvalidationHub decides *freshness*.  It is the one structure shared
//     between the coordinator threads and the mutation paths: a fixed array
//     of per-key version slots (hashed) plus a global topology epoch, all
//     atomics — no locks, so the hot path stays wait-free and TSan-clean.
//     Value-level changes (Put, erase, eviction, mirror write) bump the
//     key's slot; topology-level changes (migration commit, contraction,
//     node crash/recovery) bump the epoch, invalidating every front entry
//     at once.  Hash collisions only ever *over*-invalidate: safe.
//
//   * FrontCache holds the entries.  One instance per coordinator (and per
//     ParallelCoordinator worker thread) — strictly single-owner, never
//     shared, which is the whole thread-safety story.
//
// Staleness bound — by construction, not by TTL.  The lookup protocol is:
//
//     Stamp pre = cache.PreReadStamp(k);     // BEFORE the backend read
//     value     = backend.Get(k);            // authoritative read
//     cache.Offer(k, value, pre);            // admit only if stamp holds
//
// Offer re-checks the hub at admission: if any writer bumped the key (or
// the epoch) between the stamp and the admission, the value is discarded.
// A resident entry is revalidated against the hub on every Find.  Hence a
// front entry can never serve a value older than the latest bump of its
// key — the staleness bound is "no staleness past the most recent
// invalidation point", verified by tests/fronttier_staleness_test.cc.
//
// Admission happens on the *hit* path only (after a successful backend
// Get), never on the miss path: the miss path's own Put bumps the version,
// so no pre-read stamp taken around it can vouch for the value.  A hot key
// therefore pays one extra backend hit before going front-resident —
// negligible for keys hot enough to qualify.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "fronttier/heavy_hitters.h"
#include "obs/obs.h"

namespace ecc::fronttier {

/// A point-in-time freshness witness: global topology epoch + per-key
/// version.  Both are monotonic, so a stale stamp can never re-match.
struct Stamp {
  std::uint64_t epoch = 0;
  std::uint64_t version = 0;
  [[nodiscard]] bool operator==(const Stamp&) const = default;
};

/// Lock-free invalidation fan-out from the mutation paths to every front
/// cache.  Shared by all coordinator threads; writers are the backend's
/// mutation paths (under their own locks), readers are the front caches.
class InvalidationHub {
 public:
  struct Stats {
    std::uint64_t key_bumps = 0;
    std::uint64_t epoch_bumps = 0;
  };

  /// `slots` fixes the per-key version table size; keys hash onto slots,
  /// and a collision merely invalidates an extra entry (never misses one).
  explicit InvalidationHub(std::size_t slots = 1024);

  InvalidationHub(const InvalidationHub&) = delete;
  InvalidationHub& operator=(const InvalidationHub&) = delete;

  /// The key's current freshness witness (acquire; pairs with bump release).
  [[nodiscard]] Stamp Current(Key k) const;

  /// A value-level change to `k`: Put, erase, eviction, mirror write.
  void BumpKey(Key k);
  /// A topology-level change (migration commit, contraction, crash,
  /// recovery re-replication): invalidates every front entry at once.
  void BumpAll();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

 private:
  [[nodiscard]] std::size_t SlotOf(Key k) const;

  std::vector<std::atomic<std::uint64_t>> slots_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> key_bumps_{0};
  std::atomic<std::uint64_t> epoch_bumps_{0};
};

/// Why a front entry was dropped (trace `front_invalidate` reason, and the
/// `a` field of obs::FrontInvalidateEvent).
enum class FrontInvalidateCode : int {
  kVersion = 0,   ///< the key's version slot moved (value-level change)
  kEpoch = 1,     ///< the topology epoch moved (migration/contraction/crash)
  kCapacity = 2,  ///< displaced by a hotter key under the capacity bound
  kWindow = 3,    ///< no longer hot after window decay
};

struct FrontTierOptions {
  /// Master switch: default off so every existing configuration is
  /// byte-for-byte unchanged.
  bool enabled = false;
  /// Space-saving counters (the tracker's k).  O(k) memory total.
  std::size_t tracker_counters = 64;
  /// Max resident entries per front cache.
  std::size_t capacity = 32;
  /// Guaranteed (estimate - error) hits a key needs before admission.
  std::uint64_t admit_min_count = 4;
  /// Halve tracker counters at every window boundary so a stale hot set
  /// ages out.
  bool decay_per_window = true;
  /// Virtual-clock cost of a front hit (vs. the coordinator's full
  /// lookup_cost RPC): the front tier answers from coordinator-local
  /// memory.
  Duration hit_cost = Duration::Micros(2);
  /// Share an external hub (several coordinators over one backend, or one
  /// hub across ParallelCoordinator workers).  nullptr = the owning
  /// coordinator creates a private hub and attaches it to its backend.
  InvalidationHub* hub = nullptr;
};

/// Aggregate counters, mirrored into obs metrics (`fronttier.*`).
struct FrontCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        ///< lookups that found no usable entry
  std::uint64_t admissions = 0;
  std::uint64_t rejections = 0;    ///< Offer declined (cold key/stale stamp)
  std::uint64_t invalidations = 0; ///< resident entries dropped stale on Find
  std::uint64_t evictions = 0;     ///< capacity displacement + window decay
};

/// One per coordinator thread; single-owner by contract (only the hub it
/// reads is shared, and the hub is atomics-only).
class FrontCache {
 public:
  struct Lookup {
    const std::string* value = nullptr;  ///< non-null on a front hit
    bool invalidated = false;  ///< a resident entry was dropped stale
    FrontInvalidateCode reason = FrontInvalidateCode::kVersion;
  };

  /// `hub` must be non-null and outlive the cache.
  FrontCache(const FrontTierOptions& opts, InvalidationHub* hub,
             const obs::Observability& obs);

  FrontCache(const FrontCache&) = delete;
  FrontCache& operator=(const FrontCache&) = delete;

  /// Record the access in the tracker and consult the front entries.  A
  /// resident entry whose stamp no longer matches the hub is dropped here
  /// (lazy invalidation) and reported as `invalidated`.
  [[nodiscard]] Lookup Find(Key k, TimePoint now);

  /// The freshness witness to capture BEFORE reading the backend.
  [[nodiscard]] Stamp PreReadStamp(Key k) const { return hub_->Current(k); }

  /// Admit `value` for `k` if (a) the tracker guarantees at least
  /// admit_min_count hits, and (b) the hub still matches `pre_read` — i.e.
  /// nothing invalidated the key between the stamp and now.  When full, a
  /// hotter candidate displaces the coldest resident.  Returns true on
  /// admission.
  bool Offer(Key k, const std::string& value, Stamp pre_read, TimePoint now);

  /// Window boundary: decay the tracker and drop residents that are no
  /// longer provably hot.
  void OnWindowBoundary(TimePoint now);

  [[nodiscard]] const FrontCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool Contains(Key k) const { return entries_.contains(k); }
  [[nodiscard]] const SpaceSavingTracker& tracker() const { return tracker_; }
  [[nodiscard]] InvalidationHub* hub() const { return hub_; }
  [[nodiscard]] const FrontTierOptions& options() const { return opts_; }

 private:
  struct Entry {
    std::string value;
    Stamp stamp;
  };

  void DropEntry(Key k, FrontInvalidateCode reason, TimePoint now);

  FrontTierOptions opts_;
  InvalidationHub* hub_;
  SpaceSavingTracker tracker_;
  std::unordered_map<Key, Entry> entries_;
  obs::TraceLog* trace_ = nullptr;

  FrontCacheStats stats_;
  obs::Counter m_lookups_;
  obs::Counter m_hits_;
  obs::Counter m_misses_;
  obs::Counter m_admissions_;
  obs::Counter m_rejections_;
  obs::Counter m_invalidations_;
  obs::Counter m_evictions_;
};

}  // namespace ecc::fronttier
