#include "hashring/consistent_hash.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace ecc::hashring {

std::uint64_t Arc::Length(std::uint64_t range) const {
  if (!wraps) return hi_inclusive - lo_exclusive;
  return (range - lo_exclusive) + hi_inclusive;
}

bool Arc::Contains(std::uint64_t aux, std::uint64_t range) const {
  assert(aux < range);
  (void)range;
  if (!wraps) return aux > lo_exclusive && aux <= hi_inclusive;
  return aux > lo_exclusive || aux <= hi_inclusive;
}

ConsistentHashRing::ConsistentHashRing(RingOptions opts) : opts_(opts) {
  assert(opts_.range >= 2);
}

std::uint64_t ConsistentHashRing::AuxHash(std::uint64_t key) const {
  if (opts_.mix_keys) key = SplitMix64(key);
  return key % opts_.range;
}

std::size_t ConsistentHashRing::IndexForAux(std::uint64_t aux) const {
  assert(!buckets_.empty());
  // First bucket with point >= aux; wrap to bucket 0 past the last point.
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), aux,
      [](const Bucket& b, std::uint64_t a) { return b.point < a; });
  if (it == buckets_.end()) return 0;
  return static_cast<std::size_t>(it - buckets_.begin());
}

StatusOr<std::size_t> ConsistentHashRing::BucketIndexFor(
    std::uint64_t key) const {
  if (buckets_.empty()) {
    return Status::FailedPrecondition("ring has no buckets");
  }
  return IndexForAux(AuxHash(key));
}

StatusOr<Owner> ConsistentHashRing::Lookup(std::uint64_t key) const {
  auto idx = BucketIndexFor(key);
  if (!idx.ok()) return idx.status();
  return buckets_[*idx].owner;
}

std::optional<std::size_t> ConsistentHashRing::FindBucket(
    std::uint64_t point) const {
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), point,
      [](const Bucket& b, std::uint64_t p) { return b.point < p; });
  if (it == buckets_.end() || it->point != point) return std::nullopt;
  return static_cast<std::size_t>(it - buckets_.begin());
}

bool ConsistentHashRing::HasBucketAt(std::uint64_t point) const {
  return FindBucket(point).has_value();
}

StatusOr<Takeover> ConsistentHashRing::AddBucket(std::uint64_t point,
                                                 Owner owner) {
  if (point >= opts_.range) {
    return Status::InvalidArgument("bucket point beyond hash line");
  }
  if (FindBucket(point).has_value()) {
    return Status::AlreadyExists("bucket point occupied");
  }
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), point,
      [](const Bucket& b, std::uint64_t p) { return b.point < p; });
  const std::size_t idx = static_cast<std::size_t>(it - buckets_.begin());
  buckets_.insert(it, Bucket{point, owner});

  Takeover t;
  if (buckets_.size() == 1) {
    // First bucket owns the whole circle.
    t.arc = Arc{point, point, /*wraps=*/true};
    t.previous_owner = owner;
    return t;
  }
  // Successor on the circle (the bucket the arc came from).
  const std::size_t succ = (idx + 1) % buckets_.size();
  t.previous_owner = buckets_[succ].owner;
  t.arc = ArcOf(idx);
  return t;
}

Status ConsistentHashRing::RemoveBucket(std::uint64_t point) {
  const auto idx = FindBucket(point);
  if (!idx.has_value()) return Status::NotFound("no bucket at point");
  if (buckets_.size() == 1) {
    return Status::FailedPrecondition("cannot remove the last bucket");
  }
  buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(*idx));
  return Status::Ok();
}

Status ConsistentHashRing::ReassignBucket(std::uint64_t point,
                                          Owner new_owner) {
  const auto idx = FindBucket(point);
  if (!idx.has_value()) return Status::NotFound("no bucket at point");
  buckets_[*idx].owner = new_owner;
  return Status::Ok();
}

std::vector<Bucket> ConsistentHashRing::BucketsOwnedBy(Owner owner) const {
  std::vector<Bucket> out;
  for (const Bucket& b : buckets_) {
    if (b.owner == owner) out.push_back(b);
  }
  return out;
}

Arc ConsistentHashRing::ArcOf(std::size_t idx) const {
  assert(idx < buckets_.size());
  const std::uint64_t hi = buckets_[idx].point;
  if (buckets_.size() == 1) return Arc{hi, hi, /*wraps=*/true};
  const std::size_t pred = (idx + buckets_.size() - 1) % buckets_.size();
  const std::uint64_t lo = buckets_[pred].point;
  return Arc{lo, hi, /*wraps=*/lo >= hi};
}

double ConsistentHashRing::ArcFraction(std::size_t idx) const {
  return static_cast<double>(ArcOf(idx).Length(opts_.range)) /
         static_cast<double>(opts_.range);
}

double ConsistentHashRing::OwnerFraction(Owner owner) const {
  double total = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].owner == owner) total += ArcFraction(i);
  }
  return total;
}

std::size_t ConsistentHashRing::OwnerCount() const {
  std::set<Owner> owners;
  for (const Bucket& b : buckets_) owners.insert(b.owner);
  return owners.size();
}

}  // namespace ecc::hashring
