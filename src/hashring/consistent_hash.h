// Consistent-hash ring (paper §II.A, Fig. 1, following Karger et al. [29]).
//
// A fixed auxiliary hash h'(k) = k mod r places keys on a circular hash line
// [0, r).  An ordered sequence of buckets B = (b_1, ..., b_p) partitions the
// line; each bucket maps to one cache node (the paper's NodeMap).  A key is
// owned by the closest bucket at or above h'(k), wrapping to b_1 past b_p:
//
//   h(k) = b_1                                 if h'(k) > b_p
//        = min { b_i in B : b_i >= h'(k) }      otherwise
//
// Adding a bucket steals exactly one contiguous arc of the line from its
// successor — this is what bounds "hash disruption" when the elastic cache
// allocates a node mid-run.
//
// Lookup is a binary search over the ordered bucket points: O(log2 p),
// matching the paper's T(h(k)) analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ecc::hashring {

/// Opaque owner handle (the cache layer stores node ids here).
using Owner = std::uint64_t;

struct RingOptions {
  /// Size r of the hash line [0, r).
  std::uint64_t range = 1ull << 32;
  /// If true, keys are mixed (splitmix64) before the mod — needed when the
  /// key population is not already uniform, e.g. clustered SFC keys.
  bool mix_keys = false;
};

/// One bucket: a point on the hash line and the node that owns the arc
/// ending at this point.
struct Bucket {
  std::uint64_t point = 0;
  Owner owner = 0;

  friend bool operator==(const Bucket&, const Bucket&) = default;
};

/// A contiguous arc of the circular hash line: the aux-hash values
/// (lo, hi], or — when `wraps` — (lo, r) ∪ [0, hi].
struct Arc {
  std::uint64_t lo_exclusive = 0;
  std::uint64_t hi_inclusive = 0;
  bool wraps = false;

  /// Number of hash-line positions in the arc, given line size r.
  [[nodiscard]] std::uint64_t Length(std::uint64_t range) const;
  [[nodiscard]] bool Contains(std::uint64_t aux, std::uint64_t range) const;
};

/// Result of an AddBucket: the arc the new bucket took and from whom.
struct Takeover {
  Arc arc;
  Owner previous_owner = 0;
};

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(RingOptions opts = {});

  [[nodiscard]] const RingOptions& options() const { return opts_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] bool empty() const { return buckets_.empty(); }
  [[nodiscard]] const std::vector<Bucket>& buckets() const {
    return buckets_;
  }

  /// The auxiliary hash h'(k).
  [[nodiscard]] std::uint64_t AuxHash(std::uint64_t key) const;

  /// Index into buckets() of the bucket owning `key`; error on empty ring.
  [[nodiscard]] StatusOr<std::size_t> BucketIndexFor(std::uint64_t key) const;

  /// h(k) composed with NodeMap: the owner of the bucket owning `key`.
  [[nodiscard]] StatusOr<Owner> Lookup(std::uint64_t key) const;

  /// Insert a bucket at `point` owned by `owner`.  Returns the takeover
  /// description (which arc moved, from which owner).  For the first bucket
  /// the arc is the whole line and previous_owner == owner.
  [[nodiscard]] StatusOr<Takeover> AddBucket(std::uint64_t point,
                                             Owner owner);

  /// Remove the bucket at `point`; its arc accrues to the successor.
  /// Refuses to remove the last bucket.
  Status RemoveBucket(std::uint64_t point);

  /// Point the bucket at `point` to a different owner (used when a node's
  /// data migrates wholesale during contraction).
  Status ReassignBucket(std::uint64_t point, Owner new_owner);

  /// All buckets owned by `owner`, in ring order.
  [[nodiscard]] std::vector<Bucket> BucketsOwnedBy(Owner owner) const;

  [[nodiscard]] bool HasBucketAt(std::uint64_t point) const;

  /// The arc owned by buckets()[idx].
  [[nodiscard]] Arc ArcOf(std::size_t idx) const;

  /// Fraction of the hash line owned by buckets()[idx], in (0, 1].
  [[nodiscard]] double ArcFraction(std::size_t idx) const;

  /// Fraction of the line owned by `owner` across all its buckets.
  [[nodiscard]] double OwnerFraction(Owner owner) const;

  /// Number of distinct owners present.
  [[nodiscard]] std::size_t OwnerCount() const;

 private:
  [[nodiscard]] std::size_t IndexForAux(std::uint64_t aux) const;
  [[nodiscard]] std::optional<std::size_t> FindBucket(
      std::uint64_t point) const;

  RingOptions opts_;
  std::vector<Bucket> buckets_;  // sorted by point, unique points
};

}  // namespace ecc::hashring
