#include "service/composite.h"

#include <cassert>

#include "net/wire.h"

namespace ecc::service {

CachedStage::CachedStage(Service* service, ResultCache* cache,
                         const sfc::Linearizer* linearizer)
    : service_(service), cache_(cache), linearizer_(linearizer) {
  assert(service != nullptr);
  assert(cache == nullptr || linearizer != nullptr);
}

StatusOr<std::string> CachedStage::Materialize(
    const sfc::GeoTemporalQuery& q, VirtualClock* clock) {
  if (cache_ != nullptr) {
    auto key = linearizer_->EncodeQuery(q);
    if (!key.ok()) return key.status();
    auto cached = cache_->Lookup(*key);
    if (cached.ok()) {
      ++hits_;
      return cached;
    }
    ++misses_;
    auto result = service_->Invoke(q, clock);
    if (!result.ok()) return result.status();
    cache_->Store(*key, result->payload);
    return std::move(result->payload);
  }
  ++misses_;
  auto result = service_->Invoke(q, clock);
  if (!result.ok()) return result.status();
  return std::move(result->payload);
}

std::string BundleCompose(const std::vector<std::string>& parts) {
  net::WireWriter w;
  w.PutVarint(parts.size());
  for (const std::string& part : parts) w.PutBytes(part);
  return w.TakeBuffer();
}

StatusOr<std::vector<std::string>> BundleDecompose(
    const std::string& bundle) {
  net::WireReader r(bundle);
  std::uint64_t count = 0;
  if (Status s = r.GetVarint(count); !s.ok()) return s;
  if (count > r.remaining()) {  // each part costs >= 1 wire byte
    return Status::InvalidArgument("part count exceeds payload");
  }
  std::vector<std::string> parts;
  parts.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string part;
    if (Status s = r.GetBytes(part); !s.ok()) return s;
    parts.push_back(std::move(part));
  }
  return parts;
}

CompositeService::CompositeService(std::string name, ComposeFn compose)
    : name_(std::move(name)), compose_(std::move(compose)) {
  assert(compose_ != nullptr);
}

void CompositeService::AddStage(CachedStage stage) {
  stages_.push_back(std::move(stage));
}

StatusOr<ServiceResult> CompositeService::Invoke(
    const sfc::GeoTemporalQuery& q, VirtualClock* clock) {
  if (stages_.empty()) {
    return Status::FailedPrecondition("composite has no stages");
  }
  ++invocations_;
  const TimePoint start =
      clock != nullptr ? clock->now() : TimePoint::Epoch();
  std::vector<std::string> parts;
  parts.reserve(stages_.size());
  for (CachedStage& stage : stages_) {
    auto part = stage.Materialize(q, clock);
    if (!part.ok()) return part.status();
    parts.push_back(std::move(*part));
  }
  ServiceResult result;
  result.payload = compose_(parts);
  result.exec_time =
      clock != nullptr ? clock->now() - start : Duration::Zero();
  return result;
}

}  // namespace ecc::service
