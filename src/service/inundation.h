// Inundation mapping service: a second concrete service for composite
// workflows.
//
// The paper motivates the cache with disaster-response mashups where
// "services can be strung together like building-blocks".  Shoreline
// extraction answers "where is the waterline"; inundation mapping answers
// "which cells are under water, and how deep" — for the same CTM and tide
// substrate.  Output is a compact run-length-encoded flood mask plus depth
// statistics, sized like the paper's derived results (~1 kB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "service/ctm.h"
#include "service/service.h"
#include "sfc/linearizer.h"

namespace ecc::service {

/// Decoded inundation summary.
struct InundationMap {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  float water_level = 0.0f;
  float max_depth = 0.0f;
  float mean_depth = 0.0f;       ///< over submerged cells
  double submerged_fraction = 0.0;
  /// Run-length encoding of the flood mask in row-major order:
  /// alternating (dry run, wet run) lengths, starting dry.
  std::vector<std::uint32_t> runs;
};

/// Compute the map directly (the service's kernel, exposed for tests).
[[nodiscard]] InundationMap ComputeInundation(const CoastalTerrainModel& ctm,
                                              float water_level);

/// Compact binary encoding (RLE runs as varints).
[[nodiscard]] std::string EncodeInundation(const InundationMap& map,
                                           std::size_t max_bytes = 1024);
[[nodiscard]] StatusOr<InundationMap> DecodeInundation(
    const std::string& blob);

struct InundationServiceOptions {
  Duration base_exec_time = Duration::Seconds(17);
  Duration exec_jitter = Duration::Seconds(1.5);
  CtmGeneratorOptions ctm;
  std::size_t max_result_bytes = 1024;
  std::uint64_t seed = 0xf100dULL;
  sfc::LinearizerOptions grid;
  /// Storm surge added on top of the tide (scenario knob).
  double surge_m = 0.0;
};

/// CTM + tide + flood-mask extraction, deterministic per cell/time slot.
class InundationService final : public Service {
 public:
  explicit InundationService(InundationServiceOptions opts = {});

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] StatusOr<ServiceResult> Invoke(
      const sfc::GeoTemporalQuery& q, VirtualClock* clock) override;
  [[nodiscard]] std::uint64_t invocations() const override {
    return invocations_;
  }

  [[nodiscard]] const sfc::Linearizer& linearizer() const { return lin_; }

 private:
  std::string name_ = "inundation-mapping";
  InundationServiceOptions opts_;
  sfc::Linearizer lin_;
  Rng rng_;
  std::uint64_t invocations_ = 0;
};

}  // namespace ecc::service
