#include "service/ctm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace ecc::service {

CoastalTerrainModel::CoastalTerrainModel(std::uint32_t width,
                                         std::uint32_t height)
    : width_(width), height_(height),
      elev_(static_cast<std::size_t>(width) * height, 0.0f) {
  assert(width >= 2 && height >= 2);
}

float CoastalTerrainModel::MinElevation() const {
  return *std::min_element(elev_.begin(), elev_.end());
}

float CoastalTerrainModel::MaxElevation() const {
  return *std::max_element(elev_.begin(), elev_.end());
}

double CoastalTerrainModel::SubmergedFraction(float water_level) const {
  std::size_t under = 0;
  for (float e : elev_) {
    if (e < water_level) ++under;
  }
  return static_cast<double>(under) / static_cast<double>(elev_.size());
}

namespace {

/// Deterministic lattice noise: hash of (seed, octave, ix, iy) -> [-1, 1].
float LatticeValue(std::uint64_t seed, unsigned octave, std::int64_t ix,
                   std::int64_t iy) {
  std::uint64_t h = seed;
  h = SplitMix64(h ^ (0x9e3779b9ULL + octave));
  h = SplitMix64(h ^ static_cast<std::uint64_t>(ix));
  h = SplitMix64(h ^ static_cast<std::uint64_t>(iy));
  // Map the top 53 bits to [-1, 1).
  return static_cast<float>(
      static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0);
}

float SmoothStep(float t) { return t * t * (3.0f - 2.0f * t); }

/// Bilinear value noise at continuous (x, y) with the given lattice pitch.
float ValueNoise(std::uint64_t seed, unsigned octave, float x, float y,
                 float pitch) {
  const float fx = x / pitch;
  const float fy = y / pitch;
  const auto ix = static_cast<std::int64_t>(std::floor(fx));
  const auto iy = static_cast<std::int64_t>(std::floor(fy));
  const float tx = SmoothStep(fx - static_cast<float>(ix));
  const float ty = SmoothStep(fy - static_cast<float>(iy));
  const float v00 = LatticeValue(seed, octave, ix, iy);
  const float v10 = LatticeValue(seed, octave, ix + 1, iy);
  const float v01 = LatticeValue(seed, octave, ix, iy + 1);
  const float v11 = LatticeValue(seed, octave, ix + 1, iy + 1);
  const float top = v00 + (v10 - v00) * tx;
  const float bot = v01 + (v11 - v01) * tx;
  return top + (bot - top) * ty;
}

}  // namespace

CoastalTerrainModel GenerateCtm(std::uint64_t seed,
                                const CtmGeneratorOptions& opts) {
  CoastalTerrainModel ctm(opts.width, opts.height);
  const float w = static_cast<float>(opts.width - 1);
  for (std::uint32_t y = 0; y < opts.height; ++y) {
    for (std::uint32_t x = 0; x < opts.width; ++x) {
      // Shore gradient: sea on the left, land on the right.
      const float frac = static_cast<float>(x) / w;  // 0..1
      float elev = (2.0f * frac - 1.0f) * opts.shore_relief_m;
      // Fractal detail.
      float amp = opts.amplitude_m * 0.5f;
      float pitch = static_cast<float>(opts.width) / 4.0f;
      for (unsigned o = 0; o < opts.octaves; ++o) {
        elev += amp * ValueNoise(seed, o, static_cast<float>(x),
                                 static_cast<float>(y), pitch);
        amp *= 0.5f;
        pitch = std::max(1.0f, pitch * 0.5f);
      }
      ctm.Set(x, y, elev);
    }
  }
  return ctm;
}

}  // namespace ecc::service
