#include "service/service.h"

#include "service/shoreline.h"
#include "service/water_level.h"

namespace ecc::service {

ShorelineService::ShorelineService(ShorelineServiceOptions opts)
    : opts_(opts), lin_(opts.grid), rng_(opts.seed) {}

StatusOr<ServiceResult> ShorelineService::Invoke(
    const sfc::GeoTemporalQuery& q, VirtualClock* clock) {
  auto cell = lin_.Quantize(q);
  if (!cell.ok()) return cell.status();

  ++invocations_;

  // Terrain identity is the spatial cell; the time slot selects the tide.
  const std::uint64_t terrain_seed =
      SplitMix64((static_cast<std::uint64_t>(cell->x) << 32) ^ cell->y ^
                 opts_.seed);
  const CoastalTerrainModel ctm = GenerateCtm(terrain_seed, opts_.ctm);
  const WaterLevelModel tide(terrain_seed);
  const auto level = static_cast<float>(tide.LevelAt(q.epoch_days));

  const std::vector<Segment> segs = ExtractShoreline(ctm, level);

  ServiceResult result;
  result.payload = EncodeShoreline(segs, ctm.width(), ctm.height(),
                                   opts_.max_result_bytes);
  // Execution cost: base plus jitter, never below half the base.
  const Duration jitter = Duration::Seconds(rng_.Normal(
      0.0, opts_.exec_jitter.seconds()));
  Duration cost = opts_.base_exec_time + jitter;
  if (cost < opts_.base_exec_time * 0.5) cost = opts_.base_exec_time * 0.5;
  result.exec_time = cost;
  if (clock != nullptr) clock->Advance(cost);
  return result;
}

SyntheticService::SyntheticService(std::string name, Duration exec_time,
                                   std::size_t payload_bytes)
    : name_(std::move(name)),
      exec_time_(exec_time),
      payload_bytes_(payload_bytes) {}

StatusOr<ServiceResult> SyntheticService::Invoke(
    const sfc::GeoTemporalQuery& q, VirtualClock* clock) {
  ++invocations_;
  ServiceResult result;
  // Deterministic, query-dependent payload.
  const auto tag = static_cast<std::uint64_t>(q.longitude * 1e3) ^
                   (static_cast<std::uint64_t>(q.latitude * 1e3) << 20) ^
                   (static_cast<std::uint64_t>(q.epoch_days * 24.0) << 40);
  std::uint64_t h = SplitMix64(tag);
  result.payload.reserve(payload_bytes_);
  while (result.payload.size() < payload_bytes_) {
    h = SplitMix64(h);
    const char c = static_cast<char>('a' + (h % 26));
    result.payload.push_back(c);
  }
  result.exec_time = exec_time_;
  if (clock != nullptr) clock->Advance(exec_time_);
  return result;
}

}  // namespace ecc::service
