#include "service/water_level.h"

#include <cmath>

#include "common/rng.h"

namespace ecc::service {

namespace {
double UnitFromHash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}
}  // namespace

WaterLevelModel::WaterLevelModel(std::uint64_t station_seed) {
  // Derive stable parameters from the seed.
  const std::uint64_t h1 = SplitMix64(station_seed ^ 0x1111);
  const std::uint64_t h2 = SplitMix64(station_seed ^ 0x2222);
  const std::uint64_t h3 = SplitMix64(station_seed ^ 0x3333);
  const std::uint64_t h4 = SplitMix64(station_seed ^ 0x4444);
  const std::uint64_t h5 = SplitMix64(station_seed ^ 0x5555);

  mean_level_ = -0.5 + UnitFromHash(h1);  // +-0.5 m datum offset

  m2_.amplitude_m = 0.4 + 0.8 * UnitFromHash(h2);
  m2_.period_hours = 12.4206012;  // lunar semidiurnal
  m2_.phase_rad = 2.0 * M_PI * UnitFromHash(h3);

  s2_.amplitude_m = 0.1 + 0.4 * UnitFromHash(h4);
  s2_.period_hours = 12.0;  // solar semidiurnal
  s2_.phase_rad = 2.0 * M_PI * UnitFromHash(h5);

  surge_amplitude_ = 0.3 * UnitFromHash(SplitMix64(station_seed ^ 0x6666));
  surge_period_days_ =
      3.0 + 6.0 * UnitFromHash(SplitMix64(station_seed ^ 0x7777));
  surge_phase_ =
      2.0 * M_PI * UnitFromHash(SplitMix64(station_seed ^ 0x8888));
}

double WaterLevelModel::LevelAt(double epoch_days) const {
  const double hours = epoch_days * 24.0;
  double level = mean_level_;
  level += m2_.amplitude_m *
           std::sin(2.0 * M_PI * hours / m2_.period_hours + m2_.phase_rad);
  level += s2_.amplitude_m *
           std::sin(2.0 * M_PI * hours / s2_.period_hours + s2_.phase_rad);
  level += surge_amplitude_ *
           std::sin(2.0 * M_PI * epoch_days / surge_period_days_ +
                    surge_phase_);
  return level;
}

}  // namespace ecc::service
