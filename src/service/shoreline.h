// Shoreline interpolation: marching squares over a CTM at the water level.
//
// "given the CTM and water level, the coast line is interpolated and
// returned" (paper §IV.A).  We run the standard marching-squares contour
// extraction at iso = water level and serialize the resulting segments into
// a compact (< 1 kB, like the paper's derived result) binary polyline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/ctm.h"

namespace ecc::service {

/// One contour segment in raster coordinates (cells; sub-cell precision via
/// linear interpolation along cell edges).
struct Segment {
  float x1 = 0, y1 = 0, x2 = 0, y2 = 0;
};

/// Extract the iso-contour at `water_level`.
[[nodiscard]] std::vector<Segment> ExtractShoreline(
    const CoastalTerrainModel& ctm, float water_level);

/// Serialize segments to a compact blob: header (magic, count, raster dims)
/// then per-segment quantized u16 endpoints.  If the encoding would exceed
/// `max_bytes`, segments are uniformly decimated first (the paper's derived
/// shoreline is < 1 kB).
[[nodiscard]] std::string EncodeShoreline(const std::vector<Segment>& segs,
                                          std::uint32_t width,
                                          std::uint32_t height,
                                          std::size_t max_bytes = 1024);

/// Inverse of EncodeShoreline (lossy by quantization/decimation).
[[nodiscard]] StatusOr<std::vector<Segment>> DecodeShoreline(
    const std::string& blob);

}  // namespace ecc::service
