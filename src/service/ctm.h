// Synthetic Coastal Terrain Model (CTM).
//
// The paper's shoreline service reads proprietary CTM rasters — large
// matrices of depth/elevation readings for a coastal area — indexed by
// spatiotemporal metadata.  We substitute a deterministic generator: seeded
// multi-octave value noise superimposed on a shore gradient, so every grid
// cell of the query space maps to a repeatable terrain whose zero-elevation
// contour is a plausible coastline.  Determinism matters: the cache must be
// able to compare a cached result with a freshly recomputed one in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ecc::service {

/// A rectangular elevation raster.  Elevations are meters relative to mean
/// sea level; negative = underwater.
class CoastalTerrainModel {
 public:
  CoastalTerrainModel(std::uint32_t width, std::uint32_t height);

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }

  [[nodiscard]] float At(std::uint32_t x, std::uint32_t y) const {
    return elev_[static_cast<std::size_t>(y) * width_ + x];
  }
  void Set(std::uint32_t x, std::uint32_t y, float v) {
    elev_[static_cast<std::size_t>(y) * width_ + x] = v;
  }

  [[nodiscard]] const std::vector<float>& data() const { return elev_; }

  [[nodiscard]] float MinElevation() const;
  [[nodiscard]] float MaxElevation() const;

  /// Fraction of cells underwater at the given water level.
  [[nodiscard]] double SubmergedFraction(float water_level) const;

 private:
  std::uint32_t width_;
  std::uint32_t height_;
  std::vector<float> elev_;
};

struct CtmGeneratorOptions {
  std::uint32_t width = 64;
  std::uint32_t height = 64;
  /// Octaves of value noise; more octaves -> rougher coastline.
  unsigned octaves = 4;
  /// Peak-to-trough amplitude of the noise, meters.
  float amplitude_m = 12.0f;
  /// Across-raster shore gradient: left edge is this many meters below sea
  /// level, right edge the same above.  Guarantees a coastline crosses the
  /// raster.
  float shore_relief_m = 10.0f;
};

/// Deterministically generate the CTM for a terrain seed (derived from the
/// query's spatial cell).
[[nodiscard]] CoastalTerrainModel GenerateCtm(std::uint64_t seed,
                                              const CtmGeneratorOptions& opts = {});

}  // namespace ecc::service
