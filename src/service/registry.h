// Service registry: name -> Service, the discovery surface a coordinator
// uses.  The paper situates the cache inside a service-oriented workflow
// system (Auspice) where services are shared and looked up by name.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/service.h"

namespace ecc::service {

class ServiceRegistry {
 public:
  /// Register a service; refuses duplicate names.
  Status Register(std::unique_ptr<Service> service);

  /// Lookup by name.
  [[nodiscard]] StatusOr<Service*> Find(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> Names() const;
  [[nodiscard]] std::size_t size() const { return services_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Service>> services_;
};

}  // namespace ecc::service
