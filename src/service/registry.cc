#include "service/registry.h"

namespace ecc::service {

Status ServiceRegistry::Register(std::unique_ptr<Service> service) {
  if (service == nullptr) return Status::InvalidArgument("null service");
  const std::string name = service->name();
  const auto [it, inserted] =
      services_.try_emplace(name, std::move(service));
  (void)it;
  if (!inserted) return Status::AlreadyExists("service '" + name + "'");
  return Status::Ok();
}

StatusOr<Service*> ServiceRegistry::Find(const std::string& name) const {
  const auto it = services_.find(name);
  if (it == services_.end()) {
    return Status::NotFound("service '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> ServiceRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, svc] : services_) out.push_back(name);
  return out;
}

}  // namespace ecc::service
