#include "service/inundation.h"

#include <algorithm>
#include <cmath>

#include "net/wire.h"
#include "service/water_level.h"

namespace ecc::service {

InundationMap ComputeInundation(const CoastalTerrainModel& ctm,
                                float water_level) {
  InundationMap map;
  map.width = ctm.width();
  map.height = ctm.height();
  map.water_level = water_level;

  // Row-major RLE, alternating dry/wet starting dry, plus depth moments.
  bool current_wet = false;
  std::uint32_t run = 0;
  std::uint64_t wet_cells = 0;
  double depth_sum = 0.0;
  float max_depth = 0.0f;
  for (std::uint32_t y = 0; y < ctm.height(); ++y) {
    for (std::uint32_t x = 0; x < ctm.width(); ++x) {
      const float elev = ctm.At(x, y);
      const bool wet = elev < water_level;
      if (wet) {
        const float depth = water_level - elev;
        max_depth = std::max(max_depth, depth);
        depth_sum += depth;
        ++wet_cells;
      }
      if (wet == current_wet) {
        ++run;
      } else {
        map.runs.push_back(run);
        current_wet = wet;
        run = 1;
      }
    }
  }
  map.runs.push_back(run);
  const auto total =
      static_cast<std::uint64_t>(ctm.width()) * ctm.height();
  map.submerged_fraction =
      static_cast<double>(wet_cells) / static_cast<double>(total);
  map.max_depth = max_depth;
  map.mean_depth = wet_cells == 0
                       ? 0.0f
                       : static_cast<float>(depth_sum /
                                            static_cast<double>(wet_cells));
  return map;
}

namespace {
constexpr std::uint32_t kMagic = 0x464c4431;  // "FLD1"
}  // namespace

std::string EncodeInundation(const InundationMap& map,
                             std::size_t max_bytes) {
  net::WireWriter w;
  w.PutU32(kMagic);
  w.PutU32(map.width);
  w.PutU32(map.height);
  w.PutDouble(map.water_level);
  w.PutDouble(map.max_depth);
  w.PutDouble(map.mean_depth);
  w.PutDouble(map.submerged_fraction);
  // Emit runs until the budget would be exceeded; a truncated mask keeps
  // the statistics (which is what composite consumers mostly read).
  net::WireWriter runs;
  std::size_t emitted = 0;
  for (std::uint32_t r : map.runs) {
    runs.PutVarint(r);
    ++emitted;
    if (w.size() + runs.size() + 10 > max_bytes) break;
  }
  w.PutVarint(emitted);
  std::string out = w.TakeBuffer();
  out += runs.buffer();
  return out;
}

StatusOr<InundationMap> DecodeInundation(const std::string& blob) {
  net::WireReader r(blob);
  std::uint32_t magic = 0;
  if (Status s = r.GetU32(magic); !s.ok()) return s;
  if (magic != kMagic) return Status::InvalidArgument("bad flood magic");
  InundationMap map;
  double level = 0, max_depth = 0, mean_depth = 0;
  if (Status s = r.GetU32(map.width); !s.ok()) return s;
  if (Status s = r.GetU32(map.height); !s.ok()) return s;
  if (Status s = r.GetDouble(level); !s.ok()) return s;
  if (Status s = r.GetDouble(max_depth); !s.ok()) return s;
  if (Status s = r.GetDouble(mean_depth); !s.ok()) return s;
  if (Status s = r.GetDouble(map.submerged_fraction); !s.ok()) return s;
  map.water_level = static_cast<float>(level);
  map.max_depth = static_cast<float>(max_depth);
  map.mean_depth = static_cast<float>(mean_depth);
  std::uint64_t count = 0;
  if (Status s = r.GetVarint(count); !s.ok()) return s;
  if (count > r.remaining()) {  // each run costs >= 1 wire byte
    return Status::InvalidArgument("run count exceeds payload");
  }
  map.runs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t run = 0;
    if (Status s = r.GetVarint(run); !s.ok()) return s;
    map.runs.push_back(static_cast<std::uint32_t>(run));
  }
  return map;
}

InundationService::InundationService(InundationServiceOptions opts)
    : opts_(opts), lin_(opts.grid), rng_(opts.seed) {}

StatusOr<ServiceResult> InundationService::Invoke(
    const sfc::GeoTemporalQuery& q, VirtualClock* clock) {
  auto cell = lin_.Quantize(q);
  if (!cell.ok()) return cell.status();
  ++invocations_;

  // Same terrain identity scheme as the shoreline service, so composite
  // workflows see a coherent world.
  const std::uint64_t terrain_seed =
      SplitMix64((static_cast<std::uint64_t>(cell->x) << 32) ^ cell->y ^
                 0x5ea5ULL);
  const CoastalTerrainModel ctm = GenerateCtm(terrain_seed, opts_.ctm);
  const WaterLevelModel tide(terrain_seed);
  const auto level =
      static_cast<float>(tide.LevelAt(q.epoch_days) + opts_.surge_m);

  const InundationMap map = ComputeInundation(ctm, level);

  ServiceResult result;
  result.payload = EncodeInundation(map, opts_.max_result_bytes);
  const Duration jitter =
      Duration::Seconds(rng_.Normal(0.0, opts_.exec_jitter.seconds()));
  Duration cost = opts_.base_exec_time + jitter;
  if (cost < opts_.base_exec_time * 0.5) cost = opts_.base_exec_time * 0.5;
  result.exec_time = cost;
  if (clock != nullptr) clock->Advance(cost);
  return result;
}

}  // namespace ecc::service
