#include "service/shoreline.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "net/wire.h"

namespace ecc::service {

namespace {

/// Interpolated crossing position between two grid values along one axis.
float Cross(float a, float b, float iso) {
  const float d = b - a;
  if (std::fabs(d) < 1e-12f) return 0.5f;
  return std::clamp((iso - a) / d, 0.0f, 1.0f);
}

}  // namespace

std::vector<Segment> ExtractShoreline(const CoastalTerrainModel& ctm,
                                      float water_level) {
  std::vector<Segment> segs;
  const std::uint32_t w = ctm.width();
  const std::uint32_t h = ctm.height();
  for (std::uint32_t y = 0; y + 1 < h; ++y) {
    for (std::uint32_t x = 0; x + 1 < w; ++x) {
      const float v00 = ctm.At(x, y);
      const float v10 = ctm.At(x + 1, y);
      const float v01 = ctm.At(x, y + 1);
      const float v11 = ctm.At(x + 1, y + 1);
      int c = 0;
      if (v00 >= water_level) c |= 1;
      if (v10 >= water_level) c |= 2;
      if (v11 >= water_level) c |= 4;
      if (v01 >= water_level) c |= 8;
      if (c == 0 || c == 15) continue;

      const float fx = static_cast<float>(x);
      const float fy = static_cast<float>(y);
      // Edge crossing points (marching-squares edge order: top, right,
      // bottom, left).
      const float top_x = fx + Cross(v00, v10, water_level);
      const float right_y = fy + Cross(v10, v11, water_level);
      const float bot_x = fx + Cross(v01, v11, water_level);
      const float left_y = fy + Cross(v00, v01, water_level);

      auto add = [&](float x1, float y1, float x2, float y2) {
        segs.push_back(Segment{x1, y1, x2, y2});
      };
      switch (c) {
        case 1:  case 14: add(top_x, fy, fx, left_y); break;
        case 2:  case 13: add(top_x, fy, fx + 1, right_y); break;
        case 3:  case 12: add(fx, left_y, fx + 1, right_y); break;
        case 4:  case 11: add(fx + 1, right_y, bot_x, fy + 1); break;
        case 6:  case 9:  add(top_x, fy, bot_x, fy + 1); break;
        case 7:  case 8:  add(fx, left_y, bot_x, fy + 1); break;
        case 5:
          // Saddle: resolve with the cell-average rule.
          add(top_x, fy, fx + 1, right_y);
          add(fx, left_y, bot_x, fy + 1);
          break;
        case 10:
          add(top_x, fy, fx, left_y);
          add(fx + 1, right_y, bot_x, fy + 1);
          break;
        default: break;
      }
    }
  }
  return segs;
}

namespace {
constexpr std::uint32_t kMagic = 0x53484f52;  // "SHOR"
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4;  // magic,count,w,h
constexpr std::size_t kSegBytes = 8;                 // 4 quantized u16
}  // namespace

std::string EncodeShoreline(const std::vector<Segment>& segs,
                            std::uint32_t width, std::uint32_t height,
                            std::size_t max_bytes) {
  // Decimate uniformly to fit the byte budget.
  std::size_t keep = segs.size();
  if (max_bytes > kHeaderBytes) {
    keep = std::min(keep, (max_bytes - kHeaderBytes) / kSegBytes);
  } else {
    keep = 0;
  }
  const std::size_t stride =
      keep == 0 ? 1 : std::max<std::size_t>(1, (segs.size() + keep - 1) / keep);

  net::WireWriter wr;
  wr.PutU32(kMagic);
  std::vector<const Segment*> kept;
  for (std::size_t i = 0; i < segs.size(); i += stride) {
    kept.push_back(&segs[i]);
  }
  wr.PutU32(static_cast<std::uint32_t>(kept.size()));
  wr.PutU32(width);
  wr.PutU32(height);
  const float sx = width > 1 ? 65535.0f / static_cast<float>(width - 1) : 1.0f;
  const float sy =
      height > 1 ? 65535.0f / static_cast<float>(height - 1) : 1.0f;
  auto quant = [](float v, float s) {
    const float q = std::clamp(v * s, 0.0f, 65535.0f);
    return static_cast<std::uint16_t>(q + 0.5f);
  };
  for (const Segment* s : kept) {
    wr.PutU16(quant(s->x1, sx));
    wr.PutU16(quant(s->y1, sy));
    wr.PutU16(quant(s->x2, sx));
    wr.PutU16(quant(s->y2, sy));
  }
  return wr.TakeBuffer();
}

StatusOr<std::vector<Segment>> DecodeShoreline(const std::string& blob) {
  net::WireReader rd(blob);
  std::uint32_t magic = 0, count = 0, width = 0, height = 0;
  if (Status s = rd.GetU32(magic); !s.ok()) return s;
  if (magic != kMagic) return Status::InvalidArgument("bad shoreline magic");
  if (Status s = rd.GetU32(count); !s.ok()) return s;
  if (Status s = rd.GetU32(width); !s.ok()) return s;
  if (Status s = rd.GetU32(height); !s.ok()) return s;
  // Plausibility bound (8 wire bytes per segment) against corrupt counts.
  if (count > rd.remaining() / 8) {
    return Status::InvalidArgument("segment count exceeds payload");
  }
  const float sx =
      width > 1 ? static_cast<float>(width - 1) / 65535.0f : 1.0f;
  const float sy =
      height > 1 ? static_cast<float>(height - 1) / 65535.0f : 1.0f;
  std::vector<Segment> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint16_t x1 = 0, y1 = 0, x2 = 0, y2 = 0;
    if (Status s = rd.GetU16(x1); !s.ok()) return s;
    if (Status s = rd.GetU16(y1); !s.ok()) return s;
    if (Status s = rd.GetU16(x2); !s.ok()) return s;
    if (Status s = rd.GetU16(y2); !s.ok()) return s;
    out.push_back(Segment{static_cast<float>(x1) * sx,
                          static_cast<float>(y1) * sy,
                          static_cast<float>(x2) * sx,
                          static_cast<float>(y2) * sy});
  }
  return out;
}

}  // namespace ecc::service
