// Synthetic water-level model.
//
// The paper's service retrieves "actual water level readings" for the query
// time before interpolating the coastline.  We substitute a deterministic
// tidal model: mean level plus the two dominant harmonic constituents
// (semidiurnal lunar M2 and solar S2) plus a slowly varying seeded residual
// standing in for weather surge.  The amplitude/phase of each constituent
// is derived from the station (spatial cell) seed, so nearby queries see
// coherent tides.
#pragma once

#include <cstdint>

namespace ecc::service {

struct TidalConstituent {
  double amplitude_m = 0.0;
  double period_hours = 0.0;
  double phase_rad = 0.0;
};

class WaterLevelModel {
 public:
  /// `station_seed` selects constituent amplitudes/phases deterministically.
  explicit WaterLevelModel(std::uint64_t station_seed);

  /// Water level (meters above raster datum) at `epoch_days`.
  [[nodiscard]] double LevelAt(double epoch_days) const;

  [[nodiscard]] const TidalConstituent& m2() const { return m2_; }
  [[nodiscard]] const TidalConstituent& s2() const { return s2_; }
  [[nodiscard]] double mean_level() const { return mean_level_; }

 private:
  double mean_level_;
  TidalConstituent m2_;
  TidalConstituent s2_;
  double surge_amplitude_;
  double surge_period_days_;
  double surge_phase_;
};

}  // namespace ecc::service
