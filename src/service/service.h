// The Web-service abstraction the cache accelerates.
//
// From the cache's perspective a service is an opaque, expensive function
// from a spatiotemporal query to a small derived blob.  Execution cost is
// charged to the shared virtual clock: the paper's shoreline extraction
// baseline is ~23 s per uncached invocation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "service/ctm.h"
#include "sfc/linearizer.h"

namespace ecc::service {

/// Outcome of one service invocation.
struct ServiceResult {
  std::string payload;   ///< the derived result (cache value)
  Duration exec_time;    ///< virtual time the invocation took
};

class Service {
 public:
  virtual ~Service() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Execute the service for `q`, charging the execution time to `clock`
  /// (may be null for cost-free probing in tests).
  [[nodiscard]] virtual StatusOr<ServiceResult> Invoke(
      const sfc::GeoTemporalQuery& q, VirtualClock* clock) = 0;

  /// Cumulative invocations (for bench accounting).
  [[nodiscard]] virtual std::uint64_t invocations() const = 0;
};

struct ShorelineServiceOptions {
  /// Baseline uncached execution time (paper: ~23 s) and jitter.
  Duration base_exec_time = Duration::Seconds(23);
  Duration exec_jitter = Duration::Seconds(2);
  CtmGeneratorOptions ctm;
  /// Derived result budget; the paper's shoreline blobs are < 1 kB.
  std::size_t max_result_bytes = 1024;
  std::uint64_t seed = 0x5ea5ULL;
  /// Linearizer defining the cell grid (terrain seeds key off cells).
  sfc::LinearizerOptions grid;
};

/// The paper's representative workload: CTM fetch + water level + contour
/// interpolation, all deterministic per (cell, time slot).
class ShorelineService final : public Service {
 public:
  explicit ShorelineService(ShorelineServiceOptions opts = {});

  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] StatusOr<ServiceResult> Invoke(
      const sfc::GeoTemporalQuery& q, VirtualClock* clock) override;

  [[nodiscard]] std::uint64_t invocations() const override {
    return invocations_;
  }

  [[nodiscard]] const sfc::Linearizer& linearizer() const { return lin_; }
  [[nodiscard]] const ShorelineServiceOptions& options() const {
    return opts_;
  }

 private:
  std::string name_ = "shoreline-extraction";
  ShorelineServiceOptions opts_;
  sfc::Linearizer lin_;
  Rng rng_;
  std::uint64_t invocations_ = 0;
};

/// A trivial synthetic service for tests/benches: payload is a fixed-size
/// deterministic blob; cost is constant.
class SyntheticService final : public Service {
 public:
  SyntheticService(std::string name, Duration exec_time,
                   std::size_t payload_bytes);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] StatusOr<ServiceResult> Invoke(
      const sfc::GeoTemporalQuery& q, VirtualClock* clock) override;
  [[nodiscard]] std::uint64_t invocations() const override {
    return invocations_;
  }

 private:
  std::string name_;
  Duration exec_time_;
  std::size_t payload_bytes_;
  std::uint64_t invocations_ = 0;
};

}  // namespace ecc::service
