// Composite services: stringing cached services together (paper §I:
// services "strung together like building-blocks to generate larger, more
// meaningful applications in processes known as service composition,
// mashups, and service workflows").
//
// A CompositeService runs an ordered list of member services for the same
// query and merges their payloads into one derived result.  Crucially, a
// CachedStage can wrap any member with its own cache backend, so composite
// invocations reuse members' derived data exactly the way the paper's
// workflow system (Auspice) composes cached intermediates into plans.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/service.h"

namespace ecc::service {

/// Minimal cache surface a composition stage needs.  Kept abstract so the
/// service layer does not depend on the cache core; core provides a
/// CacheBackend adapter (core/cache_adapters.h).
class ResultCache {
 public:
  virtual ~ResultCache() = default;
  [[nodiscard]] virtual StatusOr<std::string> Lookup(std::uint64_t key) = 0;
  virtual void Store(std::uint64_t key, const std::string& value) = 0;
};

/// A member of a composition: a service plus an optional cache in front.
class CachedStage {
 public:
  /// `service` is required; `cache` may be null (always invoke).  Neither
  /// is owned.  `linearizer` keys the cache for this stage.
  CachedStage(Service* service, ResultCache* cache,
              const sfc::Linearizer* linearizer);

  /// Result for `q`, from the stage cache when possible.
  [[nodiscard]] StatusOr<std::string> Materialize(
      const sfc::GeoTemporalQuery& q, VirtualClock* clock);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] Service& service() { return *service_; }

 private:
  Service* service_;
  ResultCache* cache_;
  const sfc::Linearizer* linearizer_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Merges member payloads into the composite result.  The default frames
/// each payload with its length (a "mashup bundle").
using ComposeFn =
    std::function<std::string(const std::vector<std::string>&)>;

[[nodiscard]] std::string BundleCompose(
    const std::vector<std::string>& parts);

/// Split a BundleCompose payload back into its parts.
[[nodiscard]] StatusOr<std::vector<std::string>> BundleDecompose(
    const std::string& bundle);

class CompositeService final : public Service {
 public:
  CompositeService(std::string name, ComposeFn compose = BundleCompose);

  /// Stages execute in insertion order.
  void AddStage(CachedStage stage);

  [[nodiscard]] const std::string& name() const override { return name_; }

  /// Runs every stage (cache-first) and composes the results.  Execution
  /// time is whatever the stages charged to the clock.
  [[nodiscard]] StatusOr<ServiceResult> Invoke(
      const sfc::GeoTemporalQuery& q, VirtualClock* clock) override;

  [[nodiscard]] std::uint64_t invocations() const override {
    return invocations_;
  }
  [[nodiscard]] const std::vector<CachedStage>& stages() const {
    return stages_;
  }
  [[nodiscard]] std::vector<CachedStage>& stages() { return stages_; }

 private:
  std::string name_;
  ComposeFn compose_;
  std::vector<CachedStage> stages_;
  std::uint64_t invocations_ = 0;
};

}  // namespace ecc::service
