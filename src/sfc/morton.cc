#include "sfc/morton.h"

namespace ecc::sfc {

namespace {

// Spread the low 32 bits of v so bit i lands at position 2i.
std::uint64_t Spread2(std::uint64_t v) {
  v &= 0xffffffffULL;
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

// Inverse of Spread2: gather even bits into the low 32 bits.
std::uint64_t Gather2(std::uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffULL;
  v = (v | (v >> 16)) & 0x00000000ffffffffULL;
  return v;
}

// Spread the low 21 bits of v so bit i lands at position 3i.
std::uint64_t Spread3(std::uint64_t v) {
  v &= 0x1fffffULL;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t Gather3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v | (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v | (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v | (v >> 16)) & 0x1f00000000ffffULL;
  v = (v | (v >> 32)) & 0x1fffffULL;
  return v;
}

}  // namespace

std::uint64_t MortonEncode2(std::uint32_t x, std::uint32_t y) {
  return Spread2(x) | (Spread2(y) << 1);
}

void MortonDecode2(std::uint64_t code, std::uint32_t& x, std::uint32_t& y) {
  x = static_cast<std::uint32_t>(Gather2(code));
  y = static_cast<std::uint32_t>(Gather2(code >> 1));
}

std::uint64_t MortonEncode3(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z) {
  return Spread3(x) | (Spread3(y) << 1) | (Spread3(z) << 2);
}

void MortonDecode3(std::uint64_t code, std::uint32_t& x, std::uint32_t& y,
                   std::uint32_t& z) {
  x = static_cast<std::uint32_t>(Gather3(code));
  y = static_cast<std::uint32_t>(Gather3(code >> 1));
  z = static_cast<std::uint32_t>(Gather3(code >> 2));
}

}  // namespace ecc::sfc
