// 2-D Hilbert curve encode/decode.
//
// Hilbert codes have better *clustering* than Z-order: a compact spatial
// region decomposes into fewer contiguous code runs (Moon et al.), so the
// cache's migration sweeps and region probes touch fewer disjoint key
// ranges when related queries cluster spatially (sfc/locality.h measures
// the comparison).  Implementation follows the classic rotation/reflection
// formulation, iterating from the most significant bit plane down.
#pragma once

#include <cstdint>

namespace ecc::sfc {

/// Map (x, y), each in [0, 2^order), to the Hilbert index in
/// [0, 2^(2*order)).  `order` must be in [1, 31].
[[nodiscard]] std::uint64_t HilbertEncode2(std::uint32_t x, std::uint32_t y,
                                           unsigned order);

/// Inverse of HilbertEncode2.
void HilbertDecode2(std::uint64_t d, unsigned order, std::uint32_t& x,
                    std::uint32_t& y);

}  // namespace ecc::sfc
