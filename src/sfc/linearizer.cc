#include "sfc/linearizer.h"

#include <cassert>
#include <cmath>

namespace ecc::sfc {

Linearizer::Linearizer(LinearizerOptions opts) : opts_(opts) {
  assert(opts_.spatial_bits >= 1 && opts_.spatial_bits <= 24);
  assert(opts_.time_bits <= 16);
  assert(2 * opts_.spatial_bits + opts_.time_bits <= 63);
  assert(opts_.lon_min < opts_.lon_max);
  assert(opts_.lat_min < opts_.lat_max);
  assert(opts_.time_horizon_days > 0.0);
}

std::uint64_t Linearizer::KeySpace() const {
  return 1ull << (2 * opts_.spatial_bits + opts_.time_bits);
}

namespace {
// Quantize v in [lo, hi] onto [0, cells-1]; hi maps to the last cell.
std::uint32_t QuantizeAxis(double v, double lo, double hi,
                           std::uint32_t cells) {
  const double frac = (v - lo) / (hi - lo);
  auto cell = static_cast<std::int64_t>(frac * cells);
  if (cell >= cells) cell = cells - 1;
  if (cell < 0) cell = 0;
  return static_cast<std::uint32_t>(cell);
}
}  // namespace

StatusOr<GridPoint> Linearizer::Quantize(const GeoTemporalQuery& q) const {
  if (q.longitude < opts_.lon_min || q.longitude > opts_.lon_max) {
    return Status::InvalidArgument("longitude out of range");
  }
  if (q.latitude < opts_.lat_min || q.latitude > opts_.lat_max) {
    return Status::InvalidArgument("latitude out of range");
  }
  if (q.epoch_days < 0.0 || q.epoch_days > opts_.time_horizon_days) {
    return Status::InvalidArgument("time out of range");
  }
  const std::uint32_t cells = 1u << opts_.spatial_bits;
  const std::uint32_t slots = 1u << opts_.time_bits;
  GridPoint p;
  p.x = QuantizeAxis(q.longitude, opts_.lon_min, opts_.lon_max, cells);
  p.y = QuantizeAxis(q.latitude, opts_.lat_min, opts_.lat_max, cells);
  p.t = QuantizeAxis(q.epoch_days, 0.0, opts_.time_horizon_days, slots);
  return p;
}

std::uint64_t Linearizer::Encode(const GridPoint& p) const {
  std::uint64_t spatial;
  if (opts_.curve == CurveKind::kHilbert) {
    spatial = HilbertEncode2(p.x, p.y, opts_.spatial_bits);
  } else {
    spatial = MortonEncode2(p.x, p.y);
  }
  return (static_cast<std::uint64_t>(p.t) << (2 * opts_.spatial_bits)) |
         spatial;
}

GridPoint Linearizer::Decode(std::uint64_t key) const {
  GridPoint p;
  const std::uint64_t spatial_mask = (1ull << (2 * opts_.spatial_bits)) - 1;
  const std::uint64_t spatial = key & spatial_mask;
  p.t = static_cast<std::uint32_t>(key >> (2 * opts_.spatial_bits));
  if (opts_.curve == CurveKind::kHilbert) {
    HilbertDecode2(spatial, opts_.spatial_bits, p.x, p.y);
  } else {
    MortonDecode2(spatial, p.x, p.y);
  }
  return p;
}

StatusOr<std::uint64_t> Linearizer::EncodeQuery(
    const GeoTemporalQuery& q) const {
  auto gp = Quantize(q);
  if (!gp.ok()) return gp.status();
  return Encode(*gp);
}

GeoTemporalQuery Linearizer::CellCenter(std::uint64_t key) const {
  const GridPoint p = Decode(key);
  const double cells = static_cast<double>(1u << opts_.spatial_bits);
  const double slots = static_cast<double>(1u << opts_.time_bits);
  GeoTemporalQuery q;
  q.longitude = opts_.lon_min + (opts_.lon_max - opts_.lon_min) *
                                    ((p.x + 0.5) / cells);
  q.latitude = opts_.lat_min + (opts_.lat_max - opts_.lat_min) *
                                   ((p.y + 0.5) / cells);
  q.epoch_days = opts_.time_horizon_days * ((p.t + 0.5) / slots);
  return q;
}

}  // namespace ecc::sfc
