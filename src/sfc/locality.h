// Locality metrics for space-filling curves.
//
// The design picks Hilbert over Z-order for the B²-Tree linearization
// because it preserves spatial locality better, which tightens the key
// ranges sweep-and-migrate walks when related queries cluster.  These
// metrics quantify that claim (and feed tests/micro-benches):
//
//  * neighbor stretch: average/max |code(p) - code(q)| over 4-neighbor
//    pairs — how far apart adjacent cells land on the key line;
//  * window span ratio: for a w x w spatial window, (covered key span) /
//    (cells in window) — 1.0 = perfectly contiguous;
//  * window cluster count: number of contiguous key runs needed to cover
//    a w x w window.  This is the metric where Hilbert provably beats
//    Z-order (Moon et al., "Analysis of the clustering properties of the
//    Hilbert space-filling curve"): each cluster is one leaf-level sweep
//    for migration or one range probe for a region query.
#pragma once

#include <cstdint>

#include "sfc/linearizer.h"

namespace ecc::sfc {

struct LocalityStats {
  double mean_neighbor_stretch = 0.0;
  double max_neighbor_stretch = 0.0;
  double mean_window_span_ratio = 0.0;
};

/// Neighbor stretch over the full 2^order x 2^order grid.
[[nodiscard]] LocalityStats MeasureNeighborStretch(CurveKind curve,
                                                   unsigned order);

/// Window span ratio averaged over `samples` random w x w windows.
[[nodiscard]] double MeasureWindowSpanRatio(CurveKind curve, unsigned order,
                                            unsigned window,
                                            std::uint64_t seed,
                                            std::size_t samples = 200);

/// Mean number of contiguous key runs covering random w x w windows.
[[nodiscard]] double MeasureWindowClusters(CurveKind curve, unsigned order,
                                           unsigned window,
                                           std::uint64_t seed,
                                           std::size_t samples = 200);

}  // namespace ecc::sfc
