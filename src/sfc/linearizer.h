// Spatiotemporal linearization: (latitude, longitude, time) -> 64-bit key.
//
// This is the B²-Tree keying scheme the paper adopts from [26]: continuous
// coordinates are quantized onto a grid, the spatial pair is run through a
// space-filling curve, and the time dimension is interleaved so that queries
// near each other in space *and* time land on nearby one-dimensional keys.
// The resulting key drives both the per-node B+-Tree index and the
// consistent-hash placement.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "sfc/hilbert.h"
#include "sfc/morton.h"

namespace ecc::sfc {

enum class CurveKind { kMorton, kHilbert };

/// A quantized spatiotemporal point.
struct GridPoint {
  std::uint32_t x = 0;  ///< quantized longitude cell
  std::uint32_t y = 0;  ///< quantized latitude cell
  std::uint32_t t = 0;  ///< quantized time slot

  friend bool operator==(const GridPoint&, const GridPoint&) = default;
};

/// Continuous query coordinates as a service client supplies them.
struct GeoTemporalQuery {
  double longitude = 0.0;  ///< degrees, [-180, 180]
  double latitude = 0.0;   ///< degrees, [-90, 90]
  double epoch_days = 0.0; ///< days since dataset epoch, [0, horizon)
};

/// Configuration of the quantization grid.
struct LinearizerOptions {
  unsigned spatial_bits = 8;  ///< bits per spatial axis
  unsigned time_bits = 5;     ///< bits for the time axis
  double lon_min = -180.0, lon_max = 180.0;
  double lat_min = -90.0, lat_max = 90.0;
  double time_horizon_days = 365.0;
  CurveKind curve = CurveKind::kHilbert;
};

/// Maps continuous (lon, lat, t) to keys and back (to cell representatives).
class Linearizer {
 public:
  explicit Linearizer(LinearizerOptions opts = {});

  /// Total number of distinct keys: 2^(2*spatial_bits + time_bits).
  [[nodiscard]] std::uint64_t KeySpace() const;

  /// Quantize continuous coordinates; out-of-range inputs are rejected.
  [[nodiscard]] StatusOr<GridPoint> Quantize(
      const GeoTemporalQuery& q) const;

  /// Grid cell -> key.  The spatial pair goes through the configured curve;
  /// the time slot occupies the high bits so that one "epoch" of space forms
  /// a contiguous key range (temporal runs cluster, matching the paper's
  /// query-intensive episodes).
  [[nodiscard]] std::uint64_t Encode(const GridPoint& p) const;

  /// Inverse of Encode.
  [[nodiscard]] GridPoint Decode(std::uint64_t key) const;

  /// Convenience: quantize + encode.
  [[nodiscard]] StatusOr<std::uint64_t> EncodeQuery(
      const GeoTemporalQuery& q) const;

  /// Representative continuous coordinates (cell centers) for a key.
  [[nodiscard]] GeoTemporalQuery CellCenter(std::uint64_t key) const;

  [[nodiscard]] const LinearizerOptions& options() const { return opts_; }

 private:
  LinearizerOptions opts_;
};

}  // namespace ecc::sfc
