#include "sfc/locality.h"

#include <algorithm>
#include <vector>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "sfc/hilbert.h"
#include "sfc/morton.h"

namespace ecc::sfc {

namespace {
std::uint64_t Encode(CurveKind curve, std::uint32_t x, std::uint32_t y,
                     unsigned order) {
  return curve == CurveKind::kHilbert ? HilbertEncode2(x, y, order)
                                      : MortonEncode2(x, y);
}

double AbsDiff(std::uint64_t a, std::uint64_t b) {
  return a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
}
}  // namespace

LocalityStats MeasureNeighborStretch(CurveKind curve, unsigned order) {
  assert(order >= 1 && order <= 12);  // full-grid scan
  const std::uint32_t side = 1u << order;
  LocalityStats stats;
  double sum = 0.0;
  double max = 0.0;
  std::uint64_t pairs = 0;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const std::uint64_t c = Encode(curve, x, y, order);
      if (x + 1 < side) {
        const double d = AbsDiff(c, Encode(curve, x + 1, y, order));
        sum += d;
        max = std::max(max, d);
        ++pairs;
      }
      if (y + 1 < side) {
        const double d = AbsDiff(c, Encode(curve, x, y + 1, order));
        sum += d;
        max = std::max(max, d);
        ++pairs;
      }
    }
  }
  stats.mean_neighbor_stretch = pairs == 0 ? 0.0 : sum / (double)pairs;
  stats.max_neighbor_stretch = max;
  return stats;
}

double MeasureWindowSpanRatio(CurveKind curve, unsigned order,
                              unsigned window, std::uint64_t seed,
                              std::size_t samples) {
  assert(window >= 1 && window <= (1u << order));
  const std::uint32_t side = 1u << order;
  Rng rng(seed);
  double ratio_sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto x0 = static_cast<std::uint32_t>(
        rng.Uniform(side - window + 1));
    const auto y0 = static_cast<std::uint32_t>(
        rng.Uniform(side - window + 1));
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (std::uint32_t dy = 0; dy < window; ++dy) {
      for (std::uint32_t dx = 0; dx < window; ++dx) {
        const std::uint64_t c = Encode(curve, x0 + dx, y0 + dy, order);
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
    }
    const double cells = static_cast<double>(window) * window;
    ratio_sum += (static_cast<double>(hi - lo) + 1.0) / cells;
  }
  return ratio_sum / static_cast<double>(samples);
}

double MeasureWindowClusters(CurveKind curve, unsigned order,
                             unsigned window, std::uint64_t seed,
                             std::size_t samples) {
  assert(window >= 1 && window <= (1u << order));
  const std::uint32_t side = 1u << order;
  Rng rng(seed);
  double cluster_sum = 0.0;
  std::vector<std::uint64_t> codes;
  codes.reserve(static_cast<std::size_t>(window) * window);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto x0 = static_cast<std::uint32_t>(
        rng.Uniform(side - window + 1));
    const auto y0 = static_cast<std::uint32_t>(
        rng.Uniform(side - window + 1));
    codes.clear();
    for (std::uint32_t dy = 0; dy < window; ++dy) {
      for (std::uint32_t dx = 0; dx < window; ++dx) {
        codes.push_back(Encode(curve, x0 + dx, y0 + dy, order));
      }
    }
    std::sort(codes.begin(), codes.end());
    std::size_t clusters = 1;
    for (std::size_t i = 1; i < codes.size(); ++i) {
      if (codes[i] != codes[i - 1] + 1) ++clusters;
    }
    cluster_sum += static_cast<double>(clusters);
  }
  return cluster_sum / static_cast<double>(samples);
}

}  // namespace ecc::sfc
