// Morton (Z-order) space-filling curves in 2 and 3 dimensions.
//
// The paper's cache keys are B²-Tree keys: spatiotemporal coordinates
// linearized through a space-filling curve so a one-dimensional B+-Tree key
// carries spatiotemporality.  Z-order is the cheap default; Hilbert (see
// hilbert.h) trades encode cost for better locality preservation.
//
// Encoding uses parallel-bit magic-number spreading, O(1) per coordinate.
#pragma once

#include <cstdint>

namespace ecc::sfc {

/// Interleave the low 32 bits of x and y: result bit 2i = x bit i,
/// bit 2i+1 = y bit i.
[[nodiscard]] std::uint64_t MortonEncode2(std::uint32_t x, std::uint32_t y);

/// Inverse of MortonEncode2.
void MortonDecode2(std::uint64_t code, std::uint32_t& x, std::uint32_t& y);

/// Interleave the low 21 bits of x, y, z into a 63-bit code.
[[nodiscard]] std::uint64_t MortonEncode3(std::uint32_t x, std::uint32_t y,
                                          std::uint32_t z);

/// Inverse of MortonEncode3 (restores 21-bit coordinates).
void MortonDecode3(std::uint64_t code, std::uint32_t& x, std::uint32_t& y,
                   std::uint32_t& z);

}  // namespace ecc::sfc
