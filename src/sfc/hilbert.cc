#include "sfc/hilbert.h"

#include <cassert>

namespace ecc::sfc {

std::uint64_t HilbertEncode2(std::uint32_t x, std::uint32_t y,
                             unsigned order) {
  assert(order >= 1 && order <= 31);
  std::uint64_t d = 0;
  for (std::uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      const std::uint32_t t = x;
      x = y;
      y = t;
    }
  }
  return d;
}

void HilbertDecode2(std::uint64_t d, unsigned order, std::uint32_t& x,
                    std::uint32_t& y) {
  assert(order >= 1 && order <= 31);
  std::uint32_t rx = 0;
  std::uint32_t ry = 0;
  x = y = 0;
  for (std::uint64_t s = 1; s < (1ull << order); s <<= 1) {
    rx = 1 & static_cast<std::uint32_t>(d / 2);
    ry = 1 & static_cast<std::uint32_t>(d ^ rx);
    // Rotate back.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<std::uint32_t>(s) - 1 - x;
        y = static_cast<std::uint32_t>(s) - 1 - y;
      }
      const std::uint32_t t = x;
      x = y;
      y = t;
    }
    x += static_cast<std::uint32_t>(s) * rx;
    y += static_cast<std::uint32_t>(s) * ry;
    d /= 4;
  }
}

}  // namespace ecc::sfc
