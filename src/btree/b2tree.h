// B²-Tree façade: a B+-Tree keyed by space-filling-curve linearized
// spatiotemporal coordinates (paper §II.A, following [26]).
//
// Clients address records by continuous (longitude, latitude, time); the
// façade quantizes, linearizes, and delegates to the underlying B+-Tree.
// A bounding-box query is answered by scanning the SFC key interval that
// covers the box within each time slot and filtering decoded cells — the
// standard "range decomposition by filter" strategy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/status.h"
#include "sfc/linearizer.h"

namespace ecc::btree {

/// Result record of a spatiotemporal lookup.
struct SpatioTemporalRecord {
  std::uint64_t key = 0;
  sfc::GeoTemporalQuery coords;  ///< cell-center representative
  std::string value;
};

class B2Tree {
 public:
  explicit B2Tree(sfc::LinearizerOptions opts = {});

  [[nodiscard]] const sfc::Linearizer& linearizer() const { return lin_; }
  [[nodiscard]] std::size_t size() const { return tree_.size(); }

  /// Insert-or-assign at the cell containing `q`.  Returns the key used.
  StatusOr<std::uint64_t> Put(const sfc::GeoTemporalQuery& q,
                              std::string value);

  /// Exact-cell lookup.
  [[nodiscard]] StatusOr<std::string> Get(
      const sfc::GeoTemporalQuery& q) const;

  [[nodiscard]] bool Contains(const sfc::GeoTemporalQuery& q) const;

  Status Erase(const sfc::GeoTemporalQuery& q);

  /// All records whose cells intersect the box [lon_lo,lon_hi] x
  /// [lat_lo,lat_hi] within time slot of `epoch_days`.
  [[nodiscard]] std::vector<SpatioTemporalRecord> QueryBox(
      double lon_lo, double lon_hi, double lat_lo, double lat_hi,
      double epoch_days) const;

  /// Same box, across every time slot intersecting [day_lo, day_hi]
  /// (results ordered by slot, then key).
  [[nodiscard]] std::vector<SpatioTemporalRecord> QueryBoxOverDays(
      double lon_lo, double lon_hi, double lat_lo, double lat_hi,
      double day_lo, double day_hi) const;

  /// Direct access to the keyed tree (the cache layers on this).
  [[nodiscard]] const BPlusTree<std::string>& tree() const { return tree_; }
  [[nodiscard]] BPlusTree<std::string>& tree() { return tree_; }

 private:
  sfc::Linearizer lin_;
  BPlusTree<std::string> tree_;
};

}  // namespace ecc::btree
