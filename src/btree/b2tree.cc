#include "btree/b2tree.h"

#include <algorithm>
#include <cmath>

namespace ecc::btree {

B2Tree::B2Tree(sfc::LinearizerOptions opts) : lin_(opts) {}

StatusOr<std::uint64_t> B2Tree::Put(const sfc::GeoTemporalQuery& q,
                                    std::string value) {
  auto key = lin_.EncodeQuery(q);
  if (!key.ok()) return key.status();
  tree_.InsertOrAssign(*key, std::move(value));
  return *key;
}

StatusOr<std::string> B2Tree::Get(const sfc::GeoTemporalQuery& q) const {
  auto key = lin_.EncodeQuery(q);
  if (!key.ok()) return key.status();
  const std::string* v = tree_.Find(*key);
  if (v == nullptr) return Status::NotFound();
  return *v;
}

bool B2Tree::Contains(const sfc::GeoTemporalQuery& q) const {
  auto key = lin_.EncodeQuery(q);
  return key.ok() && tree_.Contains(*key);
}

Status B2Tree::Erase(const sfc::GeoTemporalQuery& q) {
  auto key = lin_.EncodeQuery(q);
  if (!key.ok()) return key.status();
  return tree_.Erase(*key) ? Status::Ok() : Status::NotFound();
}

std::vector<SpatioTemporalRecord> B2Tree::QueryBox(double lon_lo,
                                                   double lon_hi,
                                                   double lat_lo,
                                                   double lat_hi,
                                                   double epoch_days) const {
  std::vector<SpatioTemporalRecord> out;
  // Quantize the box corners; invalid boxes yield empty results.
  auto lo = lin_.Quantize({lon_lo, lat_lo, epoch_days});
  auto hi = lin_.Quantize({lon_hi, lat_hi, epoch_days});
  if (!lo.ok() || !hi.ok()) return out;
  const std::uint32_t x_lo = std::min(lo->x, hi->x);
  const std::uint32_t x_hi = std::max(lo->x, hi->x);
  const std::uint32_t y_lo = std::min(lo->y, hi->y);
  const std::uint32_t y_hi = std::max(lo->y, hi->y);
  const std::uint32_t t = lo->t;

  // The time slot occupies the key's high bits, so one slot's keys form a
  // contiguous interval; scan it and filter by decoded spatial cell.
  const unsigned spatial_bits = lin_.options().spatial_bits;
  const std::uint64_t slot_base = static_cast<std::uint64_t>(t)
                                  << (2 * spatial_bits);
  const std::uint64_t slot_end =
      slot_base + ((1ull << (2 * spatial_bits)) - 1);
  tree_.ForEachInRange(
      slot_base, slot_end,
      [&](std::uint64_t key, const std::string& value) {
        const sfc::GridPoint p = lin_.Decode(key);
        if (p.x < x_lo || p.x > x_hi || p.y < y_lo || p.y > y_hi) return;
        SpatioTemporalRecord rec;
        rec.key = key;
        rec.coords = lin_.CellCenter(key);
        rec.value = value;
        out.push_back(std::move(rec));
      });
  return out;
}

std::vector<SpatioTemporalRecord> B2Tree::QueryBoxOverDays(
    double lon_lo, double lon_hi, double lat_lo, double lat_hi,
    double day_lo, double day_hi) const {
  std::vector<SpatioTemporalRecord> out;
  const auto& opts = lin_.options();
  day_lo = std::max(0.0, day_lo);
  day_hi = std::min(day_hi, opts.time_horizon_days);
  if (day_lo > day_hi) return out;
  const std::uint32_t slots = 1u << opts.time_bits;
  const double slot_days =
      opts.time_horizon_days / static_cast<double>(slots);
  const auto slot_of = [&](double day) {
    return std::min<std::uint32_t>(
        slots - 1, static_cast<std::uint32_t>(day / slot_days));
  };
  // One QueryBox per intersecting time slot, probed at slot centers.
  for (std::uint32_t slot = slot_of(day_lo); slot <= slot_of(day_hi);
       ++slot) {
    const double center = (static_cast<double>(slot) + 0.5) * slot_days;
    auto slice = QueryBox(lon_lo, lon_hi, lat_lo, lat_hi, center);
    out.insert(out.end(), std::make_move_iterator(slice.begin()),
               std::make_move_iterator(slice.end()));
  }
  return out;
}

}  // namespace ecc::btree
