// In-memory B+-Tree with linked leaves.
//
// Each cooperative cache node indexes its shard with one of these (paper
// §II.A).  The structure is a textbook B+-Tree [6]:
//
//   * internal nodes hold separator keys and child pointers;
//   * all records live in leaves;
//   * leaves form a singly linked, key-sorted list, which is exactly what
//     Algorithm 2 (sweep-and-migrate) exploits: locate the start leaf with
//     one root-to-leaf search, then walk `next` pointers collecting records
//     until the end key.
//
// Deletion implements full rebalancing (borrow from siblings, merge on
// underflow) so that eviction-heavy phases (Fig. 6) do not degrade the tree.
//
// Keys are fixed at std::uint64_t — the B²-Tree linearization (src/sfc)
// reduces spatiotemporal coordinates to exactly this type.  The value type
// is a template parameter; the cache instantiates it with a byte-blob.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ecc::btree {

template <typename V>
class BPlusTree {
 private:
  struct Node;  // defined below; Iterator refers to it

 public:
  using Key = std::uint64_t;
  using Value = V;

  /// Maximum keys per node.  32..128 are all reasonable; 64 keeps nodes
  /// around a cache line multiple for small values.
  static constexpr std::size_t kMaxKeys = 64;
  static constexpr std::size_t kMinKeys = kMaxKeys / 2;

  BPlusTree() = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept = default;
  BPlusTree& operator=(BPlusTree&&) noexcept = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    root_.reset();
    size_ = 0;
  }

  /// Insert; returns false (and leaves the tree unchanged) if `k` exists.
  bool Insert(Key k, V v) {
    if (!root_) {
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      leaf->keys.push_back(k);
      leaf->values.push_back(std::move(v));
      root_ = std::move(leaf);
      size_ = 1;
      return true;
    }
    bool inserted = false;
    SplitResult split = InsertRec(root_.get(), k, std::move(v), inserted);
    if (split.happened) GrowRoot(std::move(split));
    if (inserted) ++size_;
    return inserted;
  }

  /// Insert or overwrite; returns true if the key was new.
  bool InsertOrAssign(Key k, V v) {
    if (V* existing = FindMutable(k)) {
      *existing = std::move(v);
      return false;
    }
    const bool inserted = Insert(k, std::move(v));
    assert(inserted);
    (void)inserted;
    return true;
  }

  [[nodiscard]] const V* Find(Key k) const {
    const Node* n = root_.get();
    while (n != nullptr && !n->leaf) n = n->children[ChildIndex(n, k)].get();
    if (n == nullptr) return nullptr;
    const std::size_t i = LowerBoundIndex(n, k);
    if (i < n->keys.size() && n->keys[i] == k) return &n->values[i];
    return nullptr;
  }

  [[nodiscard]] V* FindMutable(Key k) {
    return const_cast<V*>(std::as_const(*this).Find(k));
  }

  [[nodiscard]] bool Contains(Key k) const { return Find(k) != nullptr; }

  /// Erase; returns false if absent.
  bool Erase(Key k) {
    if (!root_) return false;
    bool erased = false;
    EraseRec(root_.get(), k, erased);
    if (erased) {
      --size_;
      ShrinkRoot();
    }
    return erased;
  }

  /// Cursor over the linked leaf level.
  class Iterator {
   public:
    Iterator() = default;

    [[nodiscard]] bool valid() const { return node_ != nullptr; }
    [[nodiscard]] Key key() const { return node_->keys[idx_]; }
    [[nodiscard]] const V& value() const { return node_->values[idx_]; }

    void Next() {
      if (node_ == nullptr) return;
      if (++idx_ >= node_->keys.size()) {
        node_ = node_->next;
        idx_ = 0;
      }
    }

   private:
    friend class BPlusTree;
    Iterator(const Node* node, std::size_t idx) : node_(node), idx_(idx) {}
    const Node* node_ = nullptr;
    std::size_t idx_ = 0;
  };

  /// Iterator at the smallest key >= k (invalid if none).
  [[nodiscard]] Iterator LowerBound(Key k) const {
    const Node* n = root_.get();
    while (n != nullptr && !n->leaf) n = n->children[ChildIndex(n, k)].get();
    if (n == nullptr) return {};
    std::size_t i = LowerBoundIndex(n, k);
    if (i == n->keys.size()) {
      n = n->next;
      i = 0;
    }
    return n == nullptr ? Iterator{} : Iterator{n, i};
  }

  [[nodiscard]] Iterator Begin() const {
    const Node* n = root_.get();
    while (n != nullptr && !n->leaf) n = n->children.front().get();
    return n == nullptr ? Iterator{} : Iterator{n, 0};
  }

  /// Smallest / largest keys; tree must be nonempty.
  [[nodiscard]] Key MinKey() const {
    assert(!empty());
    return Begin().key();
  }
  [[nodiscard]] Key MaxKey() const {
    assert(!empty());
    const Node* n = root_.get();
    while (!n->leaf) n = n->children.back().get();
    return n->keys.back();
  }

  /// Key at in-order rank `r` (0-based).  O(n) leaf walk; used by the cache
  /// to find the median key for bucket splits.
  [[nodiscard]] Key KeyAtRank(std::size_t r) const {
    assert(r < size_);
    Iterator it = Begin();
    while (r-- > 0) it.Next();
    return it.key();
  }

  /// Visit [lo, hi] in order; returns number visited.  `fn` must not mutate
  /// the tree.
  std::size_t ForEachInRange(
      Key lo, Key hi,
      const std::function<void(Key, const V&)>& fn) const {
    std::size_t visited = 0;
    for (Iterator it = LowerBound(lo); it.valid() && it.key() <= hi;
         it.Next()) {
      fn(it.key(), it.value());
      ++visited;
    }
    return visited;
  }

  /// Copy out all records with keys in [lo, hi] — the "sweep" half of
  /// Algorithm 2.
  [[nodiscard]] std::vector<std::pair<Key, V>> SweepRange(Key lo,
                                                          Key hi) const {
    std::vector<std::pair<Key, V>> out;
    ForEachInRange(lo, hi, [&out](Key k, const V& v) {
      out.emplace_back(k, v);
    });
    return out;
  }

  /// Remove all records with keys in [lo, hi]; returns count removed.
  std::size_t EraseRange(Key lo, Key hi) {
    // Collect keys first, then erase one by one: erasure invalidates
    // iterators, and per-key erase keeps the rebalancing logic single-path.
    std::vector<Key> doomed;
    for (Iterator it = LowerBound(lo); it.valid() && it.key() <= hi;
         it.Next()) {
      doomed.push_back(it.key());
    }
    for (Key k : doomed) Erase(k);
    return doomed.size();
  }

  /// Move all records with keys in [lo, hi] out of the tree.
  [[nodiscard]] std::vector<std::pair<Key, V>> ExtractRange(Key lo, Key hi) {
    std::vector<std::pair<Key, V>> out = SweepRange(lo, hi);
    for (const auto& [k, v] : out) Erase(k);
    return out;
  }

  /// Build from key-sorted unique pairs; replaces current contents.
  ///
  /// Bottom-up construction: pack leaves left to right at ~3/4 fill
  /// (leaving insertion slack), then build each internal level over the
  /// previous one.  O(n), compared with O(n log n) repeated insertion —
  /// contraction merges use this to rebuild absorbed shards.
  void BulkLoad(std::vector<std::pair<Key, V>> sorted) {
    clear();
    if (sorted.empty()) return;
    assert(std::is_sorted(sorted.begin(), sorted.end(),
                          [](const auto& a, const auto& b) {
                            return a.first < b.first;
                          }));

    // Target fill leaves 3/4 full, but never below kMinKeys unless the
    // whole tree is one leaf.
    constexpr std::size_t kTargetFill = kMaxKeys * 3 / 4;
    static_assert(kTargetFill >= kMinKeys);

    // --- Leaf level.  Chunk sizes stay within [kMinKeys, kMaxKeys]
    // (except a lone root leaf). ---
    std::vector<std::unique_ptr<Node>> level;
    std::size_t i = 0;
    const std::size_t n = sorted.size();
    while (i < n) {
      const std::size_t left = n - i;
      std::size_t take;
      if (left <= kMaxKeys) {
        take = left;  // one (possibly root) leaf takes the rest
      } else {
        take = kTargetFill;
        if (left - take < kMinKeys) take = left - kMinKeys;
      }
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      leaf->keys.reserve(take);
      leaf->values.reserve(take);
      for (std::size_t j = 0; j < take; ++j, ++i) {
        leaf->keys.push_back(sorted[i].first);
        leaf->values.push_back(std::move(sorted[i].second));
      }
      if (!level.empty()) level.back()->next = leaf.get();
      level.push_back(std::move(leaf));
    }

    // --- Internal levels.  Fan-out stays within
    // [kMinKeys+1, kMaxKeys+1] (except the root). ---
    while (level.size() > 1) {
      std::vector<std::unique_ptr<Node>> parents;
      std::size_t c = 0;
      const std::size_t count = level.size();
      while (c < count) {
        const std::size_t left = count - c;
        std::size_t take;
        if (left <= kMaxKeys + 1) {
          take = left;
        } else {
          take = kTargetFill + 1;
          if (left - take < kMinKeys + 1) take = left - (kMinKeys + 1);
        }
        auto parent = std::make_unique<Node>(/*leaf=*/false);
        for (std::size_t j = 0; j < take; ++j, ++c) {
          if (j > 0) parent->keys.push_back(SubtreeMinKey(level[c].get()));
          parent->children.push_back(std::move(level[c]));
        }
        parents.push_back(std::move(parent));
      }
      level = std::move(parents);
    }
    root_ = std::move(level.front());
    size_ = n;
  }

  /// Structural statistics, for tests and micro-benches.
  struct Stats {
    std::size_t height = 0;       ///< 0 for empty, 1 for a lone leaf
    std::size_t leaf_count = 0;
    std::size_t internal_count = 0;
    std::size_t record_count = 0;
  };

  [[nodiscard]] Stats GetStats() const {
    Stats s;
    if (root_) CollectStats(root_.get(), 1, s);
    return s;
  }

  /// Verify every B+-Tree invariant; used by property tests after random
  /// operation sequences.
  [[nodiscard]] Status CheckInvariants() const {
    if (!root_) {
      return size_ == 0 ? Status::Ok()
                        : Status::Internal("empty tree with nonzero size");
    }
    std::size_t counted = 0;
    const Node* prev_leaf = nullptr;
    Key low = 0;
    bool has_low = false;
    Status s = CheckNode(root_.get(), /*is_root=*/true, low, has_low,
                         prev_leaf, counted);
    if (!s.ok()) return s;
    if (counted != size_) {
      return Status::Internal("size mismatch: counted " +
                              std::to_string(counted) + " recorded " +
                              std::to_string(size_));
    }
    // The last leaf reached by recursion must terminate the leaf chain.
    if (prev_leaf != nullptr && prev_leaf->next != nullptr) {
      return Status::Internal("leaf chain extends past last leaf");
    }
    return Status::Ok();
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    // Leaf payload:
    std::vector<V> values;
    Node* next = nullptr;
    // Internal payload: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
  };

  /// First index i with keys[i] >= k.
  static std::size_t LowerBoundIndex(const Node* n, Key k) {
    std::size_t lo = 0;
    std::size_t hi = n->keys.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (n->keys[mid] < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child to descend into for key k: first key > k goes right of equal
  /// separators (separator s means right subtree holds keys >= s).
  static std::size_t ChildIndex(const Node* n, Key k) {
    // keys[i] is the smallest key of children[i+1]'s subtree.
    std::size_t lo = 0;
    std::size_t hi = n->keys.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (n->keys[mid] <= k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  struct SplitResult {
    bool happened = false;
    Key separator = 0;
    std::unique_ptr<Node> right;
  };

  SplitResult InsertRec(Node* n, Key k, V&& v, bool& inserted) {
    if (n->leaf) {
      const std::size_t i = LowerBoundIndex(n, k);
      if (i < n->keys.size() && n->keys[i] == k) {
        inserted = false;
        return {};
      }
      n->keys.insert(n->keys.begin() + i, k);
      n->values.insert(n->values.begin() + i, std::move(v));
      inserted = true;
      if (n->keys.size() <= kMaxKeys) return {};
      return SplitLeaf(n);
    }
    const std::size_t ci = ChildIndex(n, k);
    SplitResult child_split =
        InsertRec(n->children[ci].get(), k, std::move(v), inserted);
    if (!child_split.happened) return {};
    n->keys.insert(n->keys.begin() + ci, child_split.separator);
    n->children.insert(n->children.begin() + ci + 1,
                       std::move(child_split.right));
    if (n->keys.size() <= kMaxKeys) return {};
    return SplitInternal(n);
  }

  static SplitResult SplitLeaf(Node* n) {
    auto right = std::make_unique<Node>(/*leaf=*/true);
    const std::size_t mid = n->keys.size() / 2;
    right->keys.assign(n->keys.begin() + mid, n->keys.end());
    right->values.assign(std::make_move_iterator(n->values.begin() + mid),
                         std::make_move_iterator(n->values.end()));
    n->keys.resize(mid);
    n->values.resize(mid);
    right->next = n->next;
    n->next = right.get();
    SplitResult r;
    r.happened = true;
    r.separator = right->keys.front();
    r.right = std::move(right);
    return r;
  }

  static SplitResult SplitInternal(Node* n) {
    auto right = std::make_unique<Node>(/*leaf=*/false);
    const std::size_t mid = n->keys.size() / 2;
    const Key separator = n->keys[mid];
    right->keys.assign(n->keys.begin() + mid + 1, n->keys.end());
    right->children.assign(
        std::make_move_iterator(n->children.begin() + mid + 1),
        std::make_move_iterator(n->children.end()));
    n->keys.resize(mid);
    n->children.resize(mid + 1);
    SplitResult r;
    r.happened = true;
    r.separator = separator;
    r.right = std::move(right);
    return r;
  }

  void GrowRoot(SplitResult split) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
  }

  // --- Deletion -----------------------------------------------------------

  void EraseRec(Node* n, Key k, bool& erased) {
    if (n->leaf) {
      const std::size_t i = LowerBoundIndex(n, k);
      if (i < n->keys.size() && n->keys[i] == k) {
        n->keys.erase(n->keys.begin() + i);
        n->values.erase(n->values.begin() + i);
        erased = true;
      }
      return;
    }
    const std::size_t ci = ChildIndex(n, k);
    Node* child = n->children[ci].get();
    EraseRec(child, k, erased);
    if (!erased) return;
    if (child->keys.size() >= kMinKeys) {
      return;
    }
    FixUnderflow(n, ci);
  }

  /// Restore minimum occupancy of n->children[ci] by borrowing from a
  /// sibling or merging with one.
  void FixUnderflow(Node* parent, std::size_t ci) {
    Node* child = parent->children[ci].get();
    Node* left = ci > 0 ? parent->children[ci - 1].get() : nullptr;
    Node* right = ci + 1 < parent->children.size()
                      ? parent->children[ci + 1].get()
                      : nullptr;

    if (left != nullptr && left->keys.size() > kMinKeys) {
      BorrowFromLeft(parent, ci, left, child);
      return;
    }
    if (right != nullptr && right->keys.size() > kMinKeys) {
      BorrowFromRight(parent, ci, child, right);
      return;
    }
    if (left != nullptr) {
      MergeChildren(parent, ci - 1);
    } else if (right != nullptr) {
      MergeChildren(parent, ci);
    }
    // A root child may legitimately be under-occupied; ShrinkRoot handles
    // the root itself.
  }

  static void BorrowFromLeft(Node* parent, std::size_t ci, Node* left,
                             Node* child) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(),
                           std::move(left->values.back()));
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[ci - 1] = child->keys.front();
    } else {
      // Rotate through the separator.
      child->keys.insert(child->keys.begin(), parent->keys[ci - 1]);
      parent->keys[ci - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
  }

  static void BorrowFromRight(Node* parent, std::size_t ci, Node* child,
                              Node* right) {
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(std::move(right->values.front()));
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[ci] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[ci]);
      parent->keys[ci] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
  }

  /// Merge children[i+1] into children[i] and drop separator keys[i].
  void MergeChildren(Node* parent, std::size_t i) {
    Node* left = parent->children[i].get();
    Node* right = parent->children[i + 1].get();
    if (left->leaf) {
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->values.insert(left->values.end(),
                          std::make_move_iterator(right->values.begin()),
                          std::make_move_iterator(right->values.end()));
      left->next = right->next;
    } else {
      left->keys.push_back(parent->keys[i]);
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->children.insert(left->children.end(),
                            std::make_move_iterator(right->children.begin()),
                            std::make_move_iterator(right->children.end()));
    }
    parent->keys.erase(parent->keys.begin() + i);
    parent->children.erase(parent->children.begin() + i + 1);
  }

  void ShrinkRoot() {
    while (root_ != nullptr) {
      if (root_->leaf) {
        if (root_->keys.empty()) root_.reset();
        return;
      }
      if (root_->children.size() == 1) {
        root_ = std::move(root_->children.front());
        continue;
      }
      // Internal root with an underflowed single child chain is handled
      // above; an internal root may have fewer than kMinKeys keys, which is
      // legal.
      return;
    }
  }

  /// Minimum key of the subtree rooted at `n` (leftmost leaf's first key).
  static Key SubtreeMinKey(const Node* n) {
    while (!n->leaf) n = n->children.front().get();
    return n->keys.front();
  }

  // --- Introspection ------------------------------------------------------

  static void CollectStats(const Node* n, std::size_t depth, Stats& s) {
    s.height = std::max(s.height, depth);
    if (n->leaf) {
      ++s.leaf_count;
      s.record_count += n->keys.size();
      return;
    }
    ++s.internal_count;
    for (const auto& c : n->children) CollectStats(c.get(), depth + 1, s);
  }

  Status CheckNode(const Node* n, bool is_root, Key& low, bool& has_low,
                   const Node*& prev_leaf, std::size_t& counted) const {
    // Key ordering within the node.
    for (std::size_t i = 1; i < n->keys.size(); ++i) {
      if (n->keys[i - 1] >= n->keys[i]) {
        return Status::Internal("unsorted keys in node");
      }
    }
    if (n->leaf) {
      if (n->keys.size() != n->values.size()) {
        return Status::Internal("leaf key/value arity mismatch");
      }
      if (!is_root && n->keys.size() < kMinKeys) {
        return Status::Internal("leaf underflow");
      }
      if (n->keys.size() > kMaxKeys) return Status::Internal("leaf overflow");
      for (Key k : n->keys) {
        if (has_low && k <= low) {
          return Status::Internal("global key order violated");
        }
        low = k;
        has_low = true;
      }
      if (prev_leaf != nullptr && prev_leaf->next != n) {
        return Status::Internal("leaf chain broken");
      }
      prev_leaf = n;
      counted += n->keys.size();
      return Status::Ok();
    }
    if (n->children.size() != n->keys.size() + 1) {
      return Status::Internal("internal fan-out mismatch");
    }
    if (!is_root && n->keys.size() < kMinKeys) {
      return Status::Internal("internal underflow");
    }
    if (n->keys.size() > kMaxKeys) {
      return Status::Internal("internal overflow");
    }
    for (std::size_t i = 0; i < n->children.size(); ++i) {
      if (Status s = CheckNode(n->children[i].get(), false, low, has_low,
                               prev_leaf, counted);
          !s.ok()) {
        return s;
      }
      // After visiting child i, the next separator must exceed every key
      // seen so far and equal the minimum of the right subtree.
      if (i < n->keys.size() && has_low && n->keys[i] <= low) {
        return Status::Internal("separator below left subtree max");
      }
    }
    return Status::Ok();
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace ecc::btree
