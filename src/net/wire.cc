#include "net/wire.h"

namespace ecc::net {

Status WireReader::GetFixed(void* p, std::size_t n) {
  if (remaining() < n) return Status::InvalidArgument("wire underrun");
  std::memcpy(p, data_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status WireReader::GetU8(std::uint8_t& out) { return GetFixed(&out, 1); }
Status WireReader::GetU16(std::uint16_t& out) { return GetFixed(&out, 2); }
Status WireReader::GetU32(std::uint32_t& out) { return GetFixed(&out, 4); }
Status WireReader::GetU64(std::uint64_t& out) { return GetFixed(&out, 8); }
Status WireReader::GetDouble(double& out) { return GetFixed(&out, 8); }

Status WireReader::GetVarint(std::uint64_t& out) {
  out = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    std::uint8_t byte = 0;
    if (Status s = GetU8(byte); !s.ok()) return s;
    out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return Status::Ok();
  }
  return Status::InvalidArgument("varint too long");
}

Status WireReader::GetBytes(std::string& out) {
  std::uint64_t len = 0;
  if (Status s = GetVarint(len); !s.ok()) return s;
  if (remaining() < len) return Status::InvalidArgument("wire underrun");
  out.assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

}  // namespace ecc::net
