#include "net/netmodel.h"

#include <cassert>

namespace ecc::net {

NetworkModel::NetworkModel(NetworkModelOptions opts) : opts_(opts) {
  assert(opts_.bandwidth_bytes_per_sec > 0.0);
}

Duration NetworkModel::TransferTime(std::size_t payload_bytes) const {
  const double wire_bytes = static_cast<double>(
      payload_bytes + opts_.per_message_overhead_bytes);
  return opts_.rtt +
         Duration::Seconds(wire_bytes / opts_.bandwidth_bytes_per_sec);
}

Duration NetworkModel::RoundTripTime(std::size_t request_bytes,
                                     std::size_t response_bytes) const {
  return TransferTime(request_bytes) + TransferTime(response_bytes);
}

Duration NetworkModel::PerRecordTime(std::size_t record_bytes,
                                     std::size_t batch_records) const {
  assert(batch_records >= 1);
  const Duration batch =
      TransferTime(record_bytes * batch_records);
  return batch / static_cast<std::int64_t>(batch_records);
}

}  // namespace ecc::net
