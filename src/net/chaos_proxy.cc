#include "net/chaos_proxy.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "net/message.h"

namespace ecc::net {

namespace {

constexpr int kEpollTickMs = 2;
constexpr std::size_t kReadChunk = 64 * 1024;
/// Frame-length bound used only for the proxy's own boundary tracking; it
/// must be at least as permissive as any endpoint's, or the proxy would
/// drop into passthrough on frames the endpoints consider legal.
constexpr std::size_t kTrackerMaxFrame = 256u * 1024u * 1024u;
/// Upstream connect wait; the relay thread blocks here, which is fine —
/// chaos scenarios dial a handful of connections, not thousands.
constexpr int kDialTimeoutMs = 2000;

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void HardReset(int fd) {
  // SO_LINGER with zero timeout turns close() into an RST, which is how a
  // machine death (as opposed to a process exit) looks on the wire.
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  (void)setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

}  // namespace

ChaosProxy::ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
                       ChaosPlan plan)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      plan_(std::move(plan)) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::Ok();

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::Internal("chaos proxy: socket failed");

  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd_, 64) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("chaos proxy: bind/listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("chaos proxy: getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::Internal("chaos proxy: epoll/eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  start_time_ = Clock::now();
  last_tick_ = start_time_;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { RelayLoop(); });
  return Status::Ok();
}

void ChaosProxy::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    const std::uint64_t one = 1;
    (void)write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  for (auto& [fd, conn] : conns_) {
    if (conn->client_fd >= 0) close(conn->client_fd);
    if (conn->upstream_fd >= 0) close(conn->upstream_fd);
  }
  conns_.clear();
  by_fd_.clear();
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      close(*fd);
      *fd = -1;
    }
  }
}

void ChaosProxy::Partition(bool to_upstream, bool to_client) {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    manual_to_upstream_ = manual_to_upstream_ || to_upstream;
    manual_to_client_ = manual_to_client_ || to_client;
  }
  const std::uint64_t one = 1;
  (void)write(wake_fd_, &one, sizeof(one));
}

void ChaosProxy::Heal() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    manual_to_upstream_ = false;
    manual_to_client_ = false;
  }
  const std::uint64_t one = 1;
  (void)write(wake_fd_, &one, sizeof(one));
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.bytes_relayed = bytes_relayed_.load(std::memory_order_relaxed);
  s.bytes_corrupted = bytes_corrupted_.load(std::memory_order_relaxed);
  s.frames_truncated = frames_truncated_.load(std::memory_order_relaxed);
  s.frames_reset = frames_reset_.load(std::memory_order_relaxed);
  s.chunks_delayed = chunks_delayed_.load(std::memory_order_relaxed);
  s.bytes_throttled = bytes_throttled_.load(std::memory_order_relaxed);
  s.partition_transitions =
      partition_transitions_.load(std::memory_order_relaxed);
  s.partitioned_to_upstream = cut_to_upstream_.load(std::memory_order_relaxed);
  s.partitioned_to_client = cut_to_client_.load(std::memory_order_relaxed);
  return s;
}

void ChaosProxy::BindTrace(obs::TraceLog* trace, std::uint64_t node) {
  trace_ = trace;
  trace_node_ = node;
}

TimePoint ChaosProxy::Elapsed() const {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start_time_)
                      .count();
  return TimePoint::FromMicros(us);
}

void ChaosProxy::EmitChaos(obs::ChaosFaultCode code, std::int64_t arg) {
  if (trace_ == nullptr) return;
  trace_->Append(obs::ChaosFaultEvent(Elapsed(), trace_node_, code, arg));
}

// --- Relay thread ---------------------------------------------------------

void ChaosProxy::RelayLoop() {
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, 64, kEpollTickMs);

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      const auto it = by_fd_.find(fd);
      if (it == by_fd_.end()) continue;
      Conn& conn = *it->second;
      Leg& leg = (fd == conn.client_fd) ? conn.up : conn.down;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        ReadLeg(conn, leg);
      }
    }

    // Taken *after* the reads so a chunk stamped due-now inside ReadLeg is
    // already releasable in this very sweep — an unshaped relay must not
    // pay the epoll tick as latency.
    const Clock::time_point now = Clock::now();
    RefreshPartitionState(now);

    // Pump every connection: release due chunks, apply faults, flush, and
    // retire legs/connections that have nothing left to do.
    std::vector<int> to_close;
    for (auto& [client_fd, conn_ptr] : conns_) {
      Conn& conn = *conn_ptr;
      bool write_failed = false;
      for (Leg* leg : {&conn.up, &conn.down}) {
        if (DirectionPartitioned(*leg)) continue;  // frozen until heal
        PumpLeg(conn, *leg, now);
        if (!FlushOutboxOk(conn, *leg)) write_failed = true;
      }
      if (write_failed) {
        to_close.push_back(client_fd);
        continue;
      }
      if (conn.doom != Doom::kNone && conn.up.outbox.empty() &&
          conn.down.outbox.empty()) {
        if (conn.doom == Doom::kReset) {
          HardReset(conn.client_fd);
          HardReset(conn.upstream_fd);
        }
        to_close.push_back(client_fd);
        continue;
      }
      // Half-close propagation: a drained leg whose source is gone shuts
      // down the write side of its destination; the connection dies when
      // both directions are done.
      for (Leg* leg : {&conn.up, &conn.down}) {
        if (!leg->dead && !leg->src_open && leg->inq.empty() &&
            leg->outbox.empty() && !DirectionPartitioned(*leg)) {
          (void)shutdown(leg->dst, SHUT_WR);
          leg->dead = true;
        }
      }
      if (conn.up.dead && conn.down.dead) to_close.push_back(client_fd);
    }
    for (const int fd : to_close) CloseConn(fd);

    last_tick_ = now;
  }
}

void ChaosProxy::AcceptPending() {
  while (true) {
    const int client_fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client_fd < 0) return;
    const int one = 1;
    (void)setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const int upstream_fd = DialUpstream();
    if (upstream_fd < 0) {
      // Refused upstream reads as connect-then-EOF at the client, which is
      // exactly what a dead node behind a healthy load balancer looks like.
      close(client_fd);
      continue;
    }

    const std::uint64_t conn_seed =
        SplitMix64(plan_.seed ^ SplitMix64(next_conn_index_++));
    auto conn = std::make_unique<Conn>(conn_seed);
    conn->client_fd = client_fd;
    conn->upstream_fd = upstream_fd;
    conn->up = Leg{};
    conn->up.src = client_fd;
    conn->up.dst = upstream_fd;
    conn->up.to_upstream = true;
    conn->up.last_refill = Clock::now();
    conn->down = Leg{};
    conn->down.src = upstream_fd;
    conn->down.dst = client_fd;
    conn->down.to_upstream = false;
    conn->down.last_refill = conn->up.last_refill;
    // Buckets start full so short exchanges are not throttled spuriously.
    conn->up.drip_tokens = static_cast<double>(plan_.drip_bytes);
    conn->down.drip_tokens = conn->up.drip_tokens;
    conn->up.throttle_tokens = static_cast<double>(plan_.throttle_bytes_per_sec);
    conn->down.throttle_tokens = conn->up.throttle_tokens;

    epoll_event ev{};
    ev.data.fd = client_fd;
    ev.events = DirectionPartitioned(conn->up) ? 0 : EPOLLIN;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client_fd, &ev);
    ev.data.fd = upstream_fd;
    ev.events = DirectionPartitioned(conn->down) ? 0 : EPOLLIN;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, upstream_fd, &ev);

    by_fd_[client_fd] = conn.get();
    by_fd_[upstream_fd] = conn.get();
    conns_[client_fd] = std::move(conn);
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

int ChaosProxy::DialUpstream() {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  SetNonBlocking(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(upstream_port_);
  if (inet_pton(AF_INET, upstream_host_.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return -1;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 &&
      errno != EINPROGRESS) {
    close(fd);
    return -1;
  }
  pollfd pfd{fd, POLLOUT, 0};
  if (poll(&pfd, 1, kDialTimeoutMs) != 1) {
    close(fd);
    return -1;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void ChaosProxy::ReadLeg(Conn& conn, Leg& leg) {
  if (!leg.src_open) return;
  char buf[kReadChunk];
  while (true) {
    const ssize_t got = recv(leg.src, buf, sizeof(buf), MSG_DONTWAIT);
    if (got > 0) {
      const Clock::time_point now = Clock::now();
      Clock::time_point release = now;
      const bool shaped =
          plan_.delay > Duration::Zero() || plan_.jitter > Duration::Zero();
      if (shaped) {
        std::int64_t hold_us = plan_.delay.micros();
        if (plan_.jitter > Duration::Zero()) {
          hold_us += static_cast<std::int64_t>(conn.rng.Uniform(
              static_cast<std::uint64_t>(plan_.jitter.micros())));
        }
        release = now + std::chrono::microseconds(hold_us);
        chunks_delayed_.fetch_add(1, std::memory_order_relaxed);
        if (!conn.delay_traced) {
          conn.delay_traced = true;
          EmitChaos(obs::ChaosFaultCode::kDelay, hold_us);
        }
      }
      leg.inq.append(buf, static_cast<std::size_t>(got));
      leg.chunks.emplace_back(static_cast<std::size_t>(got), release);
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (got < 0 && errno == EINTR) continue;
    // EOF or hard error: stop reading; whatever is queued still forwards.
    leg.src_open = false;
    epoll_event ev{};
    ev.data.fd = leg.src;
    ev.events = 0;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, leg.src, &ev);
    return;
  }
}

void ChaosProxy::PumpLeg(Conn& conn, Leg& leg, Clock::time_point now) {
  if (conn.doom != Doom::kNone) return;

  // Refill the shaping buckets from elapsed time (burst = one period for
  // the drip, one second for the throttle).
  const double dt =
      std::chrono::duration<double>(now - leg.last_refill).count();
  leg.last_refill = now;
  if (plan_.drip_bytes > 0 && plan_.drip_every > Duration::Zero()) {
    const double per_sec =
        static_cast<double>(plan_.drip_bytes) / plan_.drip_every.seconds();
    leg.drip_tokens = std::min(static_cast<double>(plan_.drip_bytes),
                               leg.drip_tokens + dt * per_sec);
  }
  if (plan_.throttle_bytes_per_sec > 0) {
    const auto cap = static_cast<double>(plan_.throttle_bytes_per_sec);
    leg.throttle_tokens = std::min(cap, leg.throttle_tokens + dt * cap);
  }

  // Bytes whose delay has elapsed.
  std::size_t due = 0;
  while (!leg.chunks.empty() && leg.chunks.front().second <= now) {
    due += leg.chunks.front().first;
    leg.chunks.pop_front();
  }
  if (due == 0) return;

  std::size_t take = due;
  if (plan_.drip_bytes > 0 && plan_.drip_every > Duration::Zero()) {
    take = std::min(take, static_cast<std::size_t>(leg.drip_tokens));
  }
  if (plan_.throttle_bytes_per_sec > 0) {
    take = std::min(take, static_cast<std::size_t>(leg.throttle_tokens));
  }
  if (take < due) {
    bytes_throttled_.fetch_add(due - take, std::memory_order_relaxed);
    if (!conn.throttle_traced) {
      conn.throttle_traced = true;
      EmitChaos(obs::ChaosFaultCode::kThrottle,
                static_cast<std::int64_t>(due - take));
    }
    // Deferred bytes go back to the head of the queue, due immediately.
    leg.chunks.emplace_front(due - take, now);
  }
  if (take == 0) return;
  if (plan_.drip_bytes > 0) leg.drip_tokens -= static_cast<double>(take);
  if (plan_.throttle_bytes_per_sec > 0) {
    leg.throttle_tokens -= static_cast<double>(take);
  }

  std::string bytes = leg.inq.substr(0, take);
  leg.inq.erase(0, take);
  FrameAndEmit(conn, leg, std::move(bytes));
}

void ChaosProxy::FrameAndEmit(Conn& conn, Leg& leg, std::string bytes) {
  // Emit helper: apply seeded corruption on the way into the outbox.
  std::uint64_t corrupted_here = 0;
  const auto emit = [&](const char* data, std::size_t n) {
    const std::size_t at = leg.outbox.size();
    leg.outbox.append(data, n);
    if (plan_.corrupt_byte_p > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (conn.rng.Chance(plan_.corrupt_byte_p)) {
          leg.outbox[at + i] =
              static_cast<char>(static_cast<unsigned char>(leg.outbox[at + i]) ^
                                (1u << conn.rng.Uniform(8)));
          ++corrupted_here;
        }
      }
    }
  };

  std::size_t pos = 0;
  while (pos < bytes.size() && conn.doom == Doom::kNone) {
    if (!leg.frame_parse_ok) {
      // Stream desynced (corrupt header from a buggy peer, or a non-frame
      // protocol): relay the rest verbatim, no frame-boundary faults.
      emit(bytes.data() + pos, bytes.size() - pos);
      pos = bytes.size();
      break;
    }
    if (leg.in_header) {
      const std::size_t need = kFrameHeaderBytes - leg.frame_buf.size();
      const std::size_t got = std::min(need, bytes.size() - pos);
      leg.frame_buf.append(bytes.data() + pos, got);
      pos += got;
      if (leg.frame_buf.size() < kFrameHeaderBytes) break;

      std::uint32_t payload_len = 0;
      if (!ValidateFrameHeader(leg.frame_buf.data(), kTrackerMaxFrame,
                               &payload_len)
               .ok()) {
        leg.frame_parse_ok = false;
        emit(leg.frame_buf.data(), leg.frame_buf.size());
        leg.frame_buf.clear();
        continue;
      }
      leg.frame_total = kFrameHeaderBytes + payload_len;
      leg.frame_done = 0;
      leg.frame_fault = FrameFault::kNone;
      if (plan_.truncate_frame_p > 0.0 &&
          conn.rng.Chance(plan_.truncate_frame_p)) {
        leg.frame_fault = FrameFault::kTruncate;
      } else if (plan_.reset_frame_p > 0.0 &&
                 conn.rng.Chance(plan_.reset_frame_p)) {
        leg.frame_fault = FrameFault::kReset;
      }
      // Strict nonzero prefix: at least one byte forwarded, at least one
      // withheld, so the victim sees a torn frame rather than a clean gap.
      leg.frame_target =
          leg.frame_fault == FrameFault::kNone
              ? leg.frame_total
              : 1 + static_cast<std::size_t>(conn.rng.Uniform(
                        static_cast<std::uint64_t>(leg.frame_total - 1)));

      const std::size_t header_emit =
          std::min(leg.frame_buf.size(), leg.frame_target);
      emit(leg.frame_buf.data(), header_emit);
      leg.frame_done = leg.frame_buf.size();
      leg.frame_buf.clear();
      leg.in_header = false;
      if (leg.frame_done >= leg.frame_target &&
          leg.frame_fault != FrameFault::kNone) {
        ApplyFrameFault(conn, leg);
        break;
      }
      if (leg.frame_done == leg.frame_total) leg.in_header = true;
      continue;
    }

    // Frame body.
    const std::size_t remaining = leg.frame_total - leg.frame_done;
    const std::size_t got = std::min(remaining, bytes.size() - pos);
    const std::size_t can_emit =
        leg.frame_done < leg.frame_target
            ? std::min(got, leg.frame_target - leg.frame_done)
            : 0;
    if (can_emit > 0) emit(bytes.data() + pos, can_emit);
    leg.frame_done += got;
    pos += got;
    if (leg.frame_fault != FrameFault::kNone &&
        leg.frame_done >= leg.frame_target) {
      ApplyFrameFault(conn, leg);
      break;
    }
    if (leg.frame_done == leg.frame_total) {
      leg.in_header = true;
      leg.frame_done = 0;
    }
  }

  if (corrupted_here > 0) {
    bytes_corrupted_.fetch_add(corrupted_here, std::memory_order_relaxed);
    EmitChaos(obs::ChaosFaultCode::kCorrupt,
              static_cast<std::int64_t>(corrupted_here));
  }
}

void ChaosProxy::ApplyFrameFault(Conn& conn, Leg& leg) {
  if (leg.frame_fault == FrameFault::kTruncate) {
    conn.doom = Doom::kClean;
    frames_truncated_.fetch_add(1, std::memory_order_relaxed);
    EmitChaos(obs::ChaosFaultCode::kTruncate,
              static_cast<std::int64_t>(leg.frame_target));
  } else {
    conn.doom = Doom::kReset;
    frames_reset_.fetch_add(1, std::memory_order_relaxed);
    EmitChaos(obs::ChaosFaultCode::kReset,
              static_cast<std::int64_t>(leg.frame_target));
  }
  // Nothing past the prefix may leak out of either direction.
  conn.up.inq.clear();
  conn.up.chunks.clear();
  conn.down.inq.clear();
  conn.down.chunks.clear();
}

bool ChaosProxy::FlushOutboxOk(Conn& conn, Leg& leg) {
  (void)conn;
  while (!leg.outbox.empty()) {
    const ssize_t put = send(leg.dst, leg.outbox.data(), leg.outbox.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (put > 0) {
      bytes_relayed_.fetch_add(static_cast<std::uint64_t>(put),
                               std::memory_order_relaxed);
      leg.outbox.erase(0, static_cast<std::size_t>(put));
      continue;
    }
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (put < 0 && errno == EINTR) continue;
    return false;  // peer gone; caller closes the connection
  }
  return true;
}

void ChaosProxy::CloseConn(int client_fd) {
  const auto it = conns_.find(client_fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  for (const int fd : {conn.client_fd, conn.upstream_fd}) {
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    by_fd_.erase(fd);
    close(fd);
  }
  conns_.erase(it);
}

void ChaosProxy::RefreshPartitionState(Clock::time_point now) {
  bool want_up = false;
  bool want_down = false;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    want_up = manual_to_upstream_;
    want_down = manual_to_client_;
  }
  const Duration elapsed = Duration::Micros(
      std::chrono::duration_cast<std::chrono::microseconds>(now - start_time_)
          .count());
  for (const ChaosPartitionWindow& w : plan_.partitions) {
    if (elapsed >= w.start && elapsed < w.end) {
      want_up = want_up || w.to_upstream;
      want_down = want_down || w.to_client;
    }
  }

  const bool had_up = cut_to_upstream_.load(std::memory_order_relaxed);
  const bool had_down = cut_to_client_.load(std::memory_order_relaxed);
  if (want_up == had_up && want_down == had_down) return;

  cut_to_upstream_.store(want_up, std::memory_order_relaxed);
  cut_to_client_.store(want_down, std::memory_order_relaxed);
  partition_transitions_.fetch_add(1, std::memory_order_relaxed);

  const std::int64_t mask =
      (want_up ? 1 : 0) | (want_down ? 2 : 0);
  if (want_up || want_down) {
    EmitChaos(obs::ChaosFaultCode::kPartition, mask);
  } else {
    EmitChaos(obs::ChaosFaultCode::kHeal, 0);
  }

  for (auto& [client_fd, conn] : conns_) {
    for (Leg* leg : {&conn->up, &conn->down}) {
      SetReadInterest(*leg, !DirectionPartitioned(*leg));
    }
  }
}

void ChaosProxy::SetReadInterest(Leg& leg, bool enabled) {
  if (!leg.src_open) return;
  epoll_event ev{};
  ev.data.fd = leg.src;
  ev.events = enabled ? EPOLLIN : 0;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, leg.src, &ev);
}

bool ChaosProxy::DirectionPartitioned(const Leg& leg) const {
  return leg.to_upstream ? cut_to_upstream_.load(std::memory_order_relaxed)
                         : cut_to_client_.load(std::memory_order_relaxed);
}

std::uint64_t ChaosSeedFromEnv(std::uint64_t fallback) {
  const char* env = std::getenv("ECC_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 0);
}

}  // namespace ecc::net
