// Socket-backed transport: a real kernel boundary under the cache protocol.
//
// The LoopbackChannel models transfer *time*; SocketTransport exercises the
// actual I/O path a deployed cache server would use.  The server side runs
// the RpcServer dispatch loop on its own thread behind a Unix socketpair;
// Call() writes a framed request and blocks for the framed response.
//
// Dispatch failures travel back as kError frames carrying the status code
// and text, so the caller gets the handler's verdict verbatim and can
// distinguish transport loss from a non-retryable rejection.
//
// Hardening (each with a regression test in socket_channel_test):
//   * writes use send(MSG_NOSIGNAL), so a Call() against a dead peer
//     returns Unavailable instead of killing the process with SIGPIPE;
//   * the serve loop shuts its end down on exit, so a blocked client read
//     sees EOF instead of hanging forever;
//   * the byte counters are relaxed atomics — accessors may race Call();
//   * destruction shuts both socket ends down first (unblocking any
//     in-flight reader with EOF), joins the server thread, drains the call
//     mutex, and only then closes the descriptors;
//   * frame headers are validated (tag + length) before any allocation.
//
// Thread-safety: Call() is serialized by an internal mutex, so any number
// of client threads may share one transport (requests are pipelined
// one-at-a-time, like a single HTTP/1.1 connection).  TcpChannel
// (tcp_channel.h) is the pooled, genuinely concurrent alternative.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/rpc.h"

namespace ecc::net {

class SocketTransport final : public Channel {
 public:
  /// Starts the server thread immediately.  `server` is not owned and must
  /// outlive the transport.  An optional `clock` (not owned) makes retry
  /// pacing charge virtual time instead of really sleeping.
  explicit SocketTransport(RpcServer* server, VirtualClock* clock = nullptr);

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Shuts both socket ends down, joins the server loop, waits out any
  /// in-flight Call, then closes the descriptors.
  ~SocketTransport() override;

  /// Full round trip through the kernel: frame, write, read, unframe.
  /// An interceptor bound via BindInterceptor perturbs the call exactly as
  /// on a LoopbackChannel (drops surface as Unavailable; a dropped
  /// response still executed server-side).
  [[nodiscard]] StatusOr<Message> Call(const Message& request) override;

  [[nodiscard]] VirtualClock* clock() const override { return clock_; }

  /// Virtual-clock charge when one is attached, real sleep otherwise —
  /// this transport runs on the wall clock.
  void Wait(Duration d) override;

  [[nodiscard]] ChannelStats stats() const override;

  /// Bytes moved in each direction (for tests/metrics).  Safe to read
  /// while another thread is inside Call().
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 private:
  void ServeLoop();

  RpcServer* server_;
  VirtualClock* clock_ = nullptr;
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::thread server_thread_;
  std::mutex call_mutex_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
};

}  // namespace ecc::net
