// Socket-backed transport: a real kernel boundary under the cache protocol.
//
// The LoopbackChannel models transfer *time*; SocketTransport exercises the
// actual I/O path a deployed cache server would use.  The server side runs
// the RpcServer dispatch loop on its own thread behind a Unix socketpair;
// Call() writes a framed request and blocks for the framed response.
//
// Dispatch failures travel back as kError frames carrying the status text,
// so the caller distinguishes transport errors from handler errors.
//
// Thread-safety: Call() is serialized by an internal mutex, so any number
// of client threads may share one transport (requests are pipelined
// one-at-a-time, like a single HTTP/1.1 connection).
#pragma once

#include <mutex>
#include <thread>

#include "common/status.h"
#include "net/message.h"
#include "net/rpc.h"

namespace ecc::net {

class SocketTransport {
 public:
  /// Starts the server thread immediately.  `server` is not owned and must
  /// outlive the transport.
  explicit SocketTransport(RpcServer* server);

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Closes the client end; the server loop drains and exits.
  ~SocketTransport();

  /// Full round trip through the kernel: frame, write, read, unframe.
  [[nodiscard]] StatusOr<Message> Call(const Message& request);

  /// Bytes moved in each direction (for tests/metrics).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }

 private:
  void ServeLoop();

  RpcServer* server_;
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::thread server_thread_;
  std::mutex call_mutex_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace ecc::net
