// Cache wire protocol: the messages a coordinator and cache servers
// exchange.  Each typed struct encodes to / decodes from a framed Message
// (1-byte type tag + payload).  Decoders are total: malformed bytes yield
// InvalidArgument, never UB.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace ecc::net {

enum class MsgType : std::uint8_t {
  kGetRequest = 1,
  kGetResponse = 2,
  kPutRequest = 3,
  kPutResponse = 4,
  kMigrateRequest = 5,
  kMigrateResponse = 6,
  kEraseRequest = 7,
  kEraseResponse = 8,
  kStatsRequest = 9,
  kStatsResponse = 10,
  /// Transport-level failure report (payload = status message text).
  kError = 11,
  /// Record count/bytes within one key range (two-phase migration verify).
  kRangeStatsRequest = 12,
  kRangeStatsResponse = 13,
  /// Bulk range delete (two-phase migration source cleanup / rollback).
  kEraseRangeRequest = 14,
  kEraseRangeResponse = 15,
  /// Commutative digest of [lo, hi] (warm-rejoin anti-entropy diff).
  kDigestRequest = 16,
  kDigestResponse = 17,
};

[[nodiscard]] const char* MsgTypeName(MsgType t);

/// True when `tag` is a defined MsgType value.  Transports must check this
/// (and the length bound) BEFORE allocating a frame buffer, so a garbage
/// header cannot commit the server to a 64 MiB allocation that
/// Message::Deserialize would only reject afterwards.
[[nodiscard]] constexpr bool IsKnownMsgType(std::uint8_t tag) {
  return tag >= static_cast<std::uint8_t>(MsgType::kGetRequest) &&
         tag <= static_cast<std::uint8_t>(MsgType::kDigestResponse);
}

/// Frame header layout shared by every byte-stream transport: 1-byte type
/// tag + u32 little-endian payload length + u32 little-endian FNV-1a
/// checksum of the payload.  The checksum is what turns wire corruption
/// (a flipped bit anywhere in the payload) into a detectable, retryable
/// transport error instead of a silently-wrong stored value: without it an
/// acknowledged Put whose value byte was damaged in flight would read back
/// corrupt forever.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;

/// FNV-1a (32-bit) over the payload bytes — the frame checksum.
[[nodiscard]] constexpr std::uint32_t FramePayloadCrc(std::string_view bytes) {
  std::uint32_t h = 2166136261u;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

/// Validate a frame header before trusting its length: unknown tags and
/// frames above `max_frame_bytes` are rejected without allocating.  On Ok,
/// `len` holds the payload byte count still to be read.
[[nodiscard]] Status ValidateFrameHeader(const char* header,
                                         std::size_t max_frame_bytes,
                                         std::uint32_t* len);

/// Encode a failed dispatch as a kError frame whose payload carries the
/// status code (1 byte) followed by the message text.  Preserving the code
/// across the wire matters for retry semantics: a handler's
/// InvalidArgument must NOT come back as retryable Unavailable, or the
/// client re-executes a known-bad request for its whole retry budget.
[[nodiscard]] struct Message EncodeErrorFrame(const Status& s);

/// Reconstruct the remote Status from a kError frame.  Payloads that do
/// not carry a code byte (or carry a nonsense one) degrade to Unavailable
/// with the raw text — loss-equivalent, hence retryable.
[[nodiscard]] Status DecodeErrorFrame(const struct Message& m);

/// A framed message: type tag + opaque payload bytes.
struct Message {
  MsgType type = MsgType::kGetRequest;
  std::string payload;

  /// Bytes this message occupies on the wire (header + payload).
  [[nodiscard]] std::size_t WireSize() const {
    return kFrameHeaderBytes + payload.size();
  }

  /// Flatten to bytes / parse from bytes (frame = tag, u32 length, payload).
  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] static StatusOr<Message> Deserialize(std::string_view bytes);
};

// --- Typed payloads -------------------------------------------------------

struct GetRequest {
  std::uint64_t key = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<GetRequest> Decode(const Message& m);
};

struct GetResponse {
  bool found = false;
  std::string value;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<GetResponse> Decode(const Message& m);
};

struct PutRequest {
  std::uint64_t key = 0;
  std::string value;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<PutRequest> Decode(const Message& m);
};

struct PutResponse {
  bool accepted = false;      ///< false => node overflow
  std::uint64_t used_bytes = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<PutResponse> Decode(const Message& m);
};

/// A batch of records swept from one node toward another (Algorithm 2's
/// transfer unit).
struct MigrateRequest {
  std::vector<std::pair<std::uint64_t, std::string>> records;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<MigrateRequest> Decode(const Message& m);
};

struct MigrateResponse {
  std::uint64_t accepted = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<MigrateResponse> Decode(const Message& m);
};

struct EraseRequest {
  std::vector<std::uint64_t> keys;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<EraseRequest> Decode(const Message& m);
};

struct EraseResponse {
  std::uint64_t erased = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<EraseResponse> Decode(const Message& m);
};

struct StatsRequest {
  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<StatsRequest> Decode(const Message& m);
};

struct StatsResponse {
  std::uint64_t records = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t capacity_bytes = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<StatsResponse> Decode(const Message& m);
};

/// "What do you hold in [lo, hi]?" — the verify step of a two-phase
/// migration asks the destination this before the ring commit.
struct RangeStatsRequest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  ///< inclusive

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<RangeStatsRequest> Decode(const Message& m);
};

struct RangeStatsResponse {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<RangeStatsResponse> Decode(const Message& m);
};

/// "Delete everything you hold in [lo, hi]."  Idempotent, so a migration
/// cleanup (or rollback) interrupted mid-flight can simply be re-issued.
struct EraseRangeRequest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  ///< inclusive

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<EraseRangeRequest> Decode(const Message& m);
};

struct EraseRangeResponse {
  std::uint64_t erased = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<EraseRangeResponse> Decode(const Message& m);
};

/// "Fold your records in [lo, hi] to a commutative digest."  The warm
/// rejoin protocol partitions the keyspace into buckets and asks the
/// restarted node this per bucket: matching digests verify a whole bucket
/// of recovered state in one round trip; only mismatched buckets are
/// synced key-by-key.
struct DigestRequest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  ///< inclusive

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<DigestRequest> Decode(const Message& m);
};

struct DigestResponse {
  std::uint64_t digest = 0;   ///< sum of common::DigestTerm over the range
  std::uint64_t records = 0;

  [[nodiscard]] Message Encode() const;
  [[nodiscard]] static StatusOr<DigestResponse> Decode(const Message& m);
};

}  // namespace ecc::net
