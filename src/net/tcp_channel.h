// TCP client channel: the deployable net::Channel.
//
// A TcpChannel speaks the length-framed Message protocol to one host:port
// endpoint (a TcpServer, or any process serving the same frames) over a
// pool of real kernel connections.  Call() borrows an idle connection —
// opening one when the pool is dry — writes the framed request, blocks for
// the framed response under a wall-clock IO timeout, and returns the
// connection to the pool.  Concurrent callers each borrow their own
// connection, so calls genuinely overlap on the wire (beng-proxy's `stock`
// idiom: a keyed stock of reusable connections, borrowed per request).
//
// Failure semantics match the simulated transport: a dead peer, refused
// connect, IO timeout, or injected drop surfaces as Status::Unavailable
// (retryable); handler rejections arrive as kError frames carrying the
// remote status code + message and are reconstructed verbatim (so a
// non-retryable InvalidArgument stays non-retryable across the wire);
// malformed responses are InvalidArgument.  A connection that saw any
// error is closed, never pooled again.
//
// Two pool pathologies are handled explicitly.  (1) Staleness: a pooled
// connection can outlive its peer — the server restarts, or a healed
// partition RSTs the link — so its next borrow dies instantly with
// EPIPE/ECONNRESET/EOF even though the endpoint is healthy again.  Call()
// detects the peer-gone first use of a reused connection, flushes the idle
// pool (every pooled fd predates the same restart), redials once after a
// short backoff, and resends — safe because the protocol is idempotent and
// the retry layer would resend on Unavailable anyway.  (2) Exhaustion:
// open connections are capped at max_connections; when every slot is
// borrowed (each borrower waiting out its IO timeout against a black-holed
// peer) a new caller waits at most pool_wait_timeout for a slot and then
// fails with Unavailable instead of blocking unboundedly.
//
// Fault injection: BindInterceptor works as on every channel — request
// drops never touch the kernel, response drops complete the round trip
// server-side and discard the answer, delays wait out `delay` first.  This
// is what lets the crash/retry suites run against real sockets.
//
// Time: pass a VirtualClock to charge retry pacing (and injected delays)
// to virtual time — the transport-parametrized tests do this so loopback
// and TCP share exact accounting.  Without a clock the channel is
// wall-clock: Wait() really sleeps, as a deployed fleet needs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "net/channel.h"
#include "net/framing.h"
#include "net/message.h"

namespace ecc::net {

struct TcpChannelOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Idle connections kept for reuse; extras close on release.
  std::size_t max_pool_size = 4;
  /// Wall-clock cap on each connect/read/write (SO_RCVTIMEO/SO_SNDTIMEO).
  Duration io_timeout = Duration::Seconds(5);
  std::size_t max_frame_bytes = 64u << 20;
  /// Hard cap on connections open at once (idle + borrowed); 0 = unlimited.
  /// When every slot is borrowed — e.g. the peer is black-holed and each
  /// borrower is waiting out its IO timeout — new callers wait at most
  /// `pool_wait_timeout` for a slot, then fail with Unavailable.  Without
  /// the cap a partition turns into one new socket per caller; without the
  /// wait bound it turns into callers parked forever on a mutex.
  std::size_t max_connections = 32;
  Duration pool_wait_timeout = Duration::Millis(250);
  /// Pause before redialing when a pooled connection proves stale (the
  /// peer restarted or a partition reset it under us).
  Duration stale_reconnect_backoff = Duration::Millis(2);
};

class TcpChannel final : public Channel {
 public:
  /// Connections open lazily on first Call.  `clock` (not owned, may be
  /// nullptr) switches Wait/delay charging to virtual time.
  explicit TcpChannel(TcpChannelOptions opts, VirtualClock* clock = nullptr);

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Closes pooled connections.  Callers must have finished their Calls.
  ~TcpChannel() override;

  /// Full round trip over a pooled connection.  Thread-safe.
  [[nodiscard]] StatusOr<Message> Call(const Message& request) override;

  [[nodiscard]] VirtualClock* clock() const override { return clock_; }

  /// Virtual-clock charge when a clock is attached, real sleep otherwise.
  void Wait(Duration d) override;

  [[nodiscard]] ChannelStats stats() const override;

  // --- Introspection (tests, fleet telemetry) ----------------------------

  [[nodiscard]] std::size_t idle_connections() const;
  [[nodiscard]] std::uint64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }
  /// Calls that detected a dead pooled connection and transparently
  /// redialed + resent instead of surfacing Unavailable.
  [[nodiscard]] std::uint64_t stale_reconnects() const {
    return stale_reconnects_.load(std::memory_order_relaxed);
  }
  /// Acquisitions that gave up after `pool_wait_timeout` at the cap.
  [[nodiscard]] std::uint64_t pool_exhausted_failures() const {
    return pool_exhausted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const TcpChannelOptions& options() const { return opts_; }

 private:
  /// Pop an idle pooled connection (sets *reused) or dial a new one,
  /// waiting up to pool_wait_timeout for a slot under max_connections.
  [[nodiscard]] StatusOr<int> AcquireConnection(bool* reused);
  /// Return a healthy connection to the pool (closes it when full).
  void ReleaseConnection(int fd);
  /// Close a connection and free its slot for waiting acquirers.
  void CloseConnection(int fd);
  /// Close every idle connection (they share the dead peer's epoch).
  void FlushIdle();
  /// One write+read round trip on `fd`; `io_fail` reports the raw IO
  /// outcome of a failed response read.
  [[nodiscard]] StatusOr<Message> RoundTrip(int fd, const Message& request,
                                            bool* write_failed,
                                            framing::IoResult* io_fail);

  TcpChannelOptions opts_;
  VirtualClock* clock_ = nullptr;

  mutable std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::vector<int> idle_;
  std::size_t open_count_ = 0;  ///< idle + borrowed + being dialed

  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::int64_t> wire_micros_{0};
  std::atomic<std::uint64_t> connections_opened_{0};
  std::atomic<std::uint64_t> stale_reconnects_{0};
  std::atomic<std::uint64_t> pool_exhausted_{0};
};

}  // namespace ecc::net
