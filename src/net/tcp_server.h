// Epoll-based non-blocking TCP server for the cache wire protocol.
//
// One TcpServer binds a listening socket and serves length-framed Messages
// (the exact Message::Serialize layout) to any number of concurrent
// connections, dispatching each complete request frame through an
// RpcServer and writing the framed response back.  Dispatch failures
// travel as kError frames, exactly like the loopback and socketpair
// transports, so CallWithRetry semantics are identical across wires.
//
// Event-loop architecture (beng-proxy's src/event idiom, scaled down):
//   * a dedicated accept loop owns the listening socket behind its own
//     epoll, accepts non-blocking, and hands each new connection to an IO
//     loop round-robin through an eventfd-signaled inbox;
//   * `io_threads` IO loops each run epoll_wait over their connections
//     with edge-level read/write readiness: reads accumulate into a
//     per-connection buffer until at least one complete frame is present,
//     writes drain a pending-output buffer and arm EPOLLOUT only while
//     output remains.
//
// Frame hardening: headers are validated (known tag, bounded length)
// before any payload allocation; a connection that sends a malformed
// header is counted in frame_errors and closed — the rest of the fleet is
// unaffected.
//
// Dispatch synchronization: handlers registered on an RpcServer are not
// required to be thread-safe (a CacheNode mutates its shard), so the
// server serializes Dispatch calls behind one mutex even with several IO
// loops.  IO, framing, and syscalls still run concurrently; only the
// handler body is serialized.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/message.h"
#include "net/rpc.h"

namespace ecc::net {

struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = let the kernel pick an ephemeral port; read it back via port().
  std::uint16_t port = 0;
  /// Event loops servicing established connections (>= 1).
  std::size_t io_threads = 1;
  int listen_backlog = 128;
  /// Frames above this are protocol violations; the connection is closed.
  std::size_t max_frame_bytes = 64u << 20;
};

/// Point-in-time counters (relaxed atomics; safe to poll while serving).
struct TcpServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t frame_errors = 0;
  /// Transient accept failures survived (EMFILE/ENFILE/ECONNABORTED…): the
  /// server logged, backed off, and kept serving instead of dying.
  std::uint64_t accept_soft_errors = 0;
};

class TcpServer {
 public:
  /// `dispatch` is not owned and must outlive the server.
  explicit TcpServer(RpcServer* dispatch, TcpServerOptions opts = {});

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Stops and joins if still running.
  ~TcpServer();

  /// Bind, listen, and launch the accept + IO loops.  InvalidArgument on a
  /// bad bind address, Unavailable when the port cannot be bound.
  [[nodiscard]] Status Start();

  /// Idempotent clean shutdown: stop accepting, wake every loop, join the
  /// threads, close every connection.
  void Stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (resolves an ephemeral request); 0 before Start.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] TcpServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::string in;        ///< bytes read, not yet framed
    std::string out;       ///< response bytes not yet written
    std::size_t out_off = 0;
  };

  /// One IO loop: an epoll set, an eventfd to interrupt epoll_wait, and an
  /// inbox of freshly accepted descriptors awaiting registration.
  struct IoLoop {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex inbox_mutex;
    std::vector<int> inbox;
    std::unordered_map<int, Connection> conns;
  };

  void AcceptLoop();
  void RunIoLoop(IoLoop& loop);
  /// Drain readable bytes, dispatch complete frames, queue responses.
  /// False when the connection must close (EOF, error, malformed frame).
  bool HandleReadable(IoLoop& loop, Connection& conn);
  /// Flush pending output; arms/disarms EPOLLOUT.  False on a dead peer.
  bool FlushWrites(IoLoop& loop, Connection& conn);
  void CloseConnection(IoLoop& loop, int fd);

  RpcServer* dispatch_;
  TcpServerOptions opts_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int accept_epoll_fd_ = -1;
  int accept_wake_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::size_t next_loop_ = 0;
  std::atomic<bool> running_{false};
  /// Handlers are not thread-safe by contract; see header comment.
  std::mutex dispatch_mutex_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> accept_soft_errors_{0};
};

}  // namespace ecc::net
