#include "net/rpc.h"

namespace ecc::net {

void RpcServer::Handle(MsgType type, Handler handler) {
  handlers_[type] = std::move(handler);
}

StatusOr<Message> RpcServer::Dispatch(const Message& request) const {
  const auto it = handlers_.find(request.type);
  if (it == handlers_.end()) {
    return Status::Unavailable(std::string("no handler for ") +
                               MsgTypeName(request.type));
  }
  return it->second(request);
}

LoopbackChannel::LoopbackChannel(RpcServer* server, NetworkModel model,
                                 VirtualClock* clock)
    : server_(server), model_(model), clock_(clock) {}

StatusOr<Message> LoopbackChannel::Call(const Message& request) {
  // Serialize and "transmit" the request.
  const std::string wire = request.Serialize();
  if (clock_ != nullptr) clock_->Advance(model_.TransferTime(wire.size()));
  stats_.bytes_sent += wire.size();
  ++stats_.calls;
  stats_.time_on_wire += model_.TransferTime(wire.size());

  // The server parses the frame it received.
  auto parsed = Message::Deserialize(wire);
  if (!parsed.ok()) return parsed.status();
  auto response = server_->Dispatch(*parsed);
  if (!response.ok()) return response.status();

  // "Transmit" the response back.
  const std::string resp_wire = response->Serialize();
  if (clock_ != nullptr) {
    clock_->Advance(model_.TransferTime(resp_wire.size()));
  }
  stats_.bytes_received += resp_wire.size();
  stats_.time_on_wire += model_.TransferTime(resp_wire.size());

  return Message::Deserialize(resp_wire);
}

}  // namespace ecc::net
