#include "net/rpc.h"

#include <algorithm>

namespace ecc::net {

void RpcServer::Handle(MsgType type, Handler handler) {
  handlers_[type] = std::move(handler);
}

StatusOr<Message> RpcServer::Dispatch(const Message& request) const {
  const auto it = handlers_.find(request.type);
  if (it == handlers_.end()) {
    return Status::Unavailable(std::string("no handler for ") +
                               MsgTypeName(request.type));
  }
  return it->second(request);
}

LoopbackChannel::LoopbackChannel(RpcServer* server, NetworkModel model,
                                 VirtualClock* clock)
    : server_(server), model_(model), clock_(clock) {}

StatusOr<Message> LoopbackChannel::Call(const Message& request) {
  const CallFault fault = NextFault(request.type);
  if (fault.kind != CallFaultKind::kNone) ++stats_.faults_injected;

  // Serialize and "transmit" the request.
  const std::string wire = request.Serialize();
  if (clock_ != nullptr) clock_->Advance(model_.TransferTime(wire.size()));
  stats_.bytes_sent += wire.size();
  ++stats_.calls;
  stats_.time_on_wire += model_.TransferTime(wire.size());

  if (fault.kind == CallFaultKind::kDelay) {
    if (clock_ != nullptr) clock_->Advance(fault.delay);
    stats_.time_on_wire += fault.delay;
  }
  if (fault.kind == CallFaultKind::kDropRequest) {
    // The bytes left the sender but never arrived; the caller learns of the
    // loss only through its timeout (charged by the retry layer).
    return Status::Unavailable("injected fault: request lost");
  }

  // The server parses the frame it received.
  auto parsed = Message::Deserialize(wire);
  if (!parsed.ok()) return parsed.status();
  auto response = server_->Dispatch(*parsed);
  if (!response.ok()) return response.status();

  if (fault.kind == CallFaultKind::kDropResponse) {
    // The handler ran — server-side state changed — but the answer is gone.
    return Status::Unavailable("injected fault: response lost");
  }

  // "Transmit" the response back.
  const std::string resp_wire = response->Serialize();
  if (clock_ != nullptr) {
    clock_->Advance(model_.TransferTime(resp_wire.size()));
  }
  stats_.bytes_received += resp_wire.size();
  stats_.time_on_wire += model_.TransferTime(resp_wire.size());

  return Message::Deserialize(resp_wire);
}

StatusOr<Message> CallWithRetry(Channel& channel, const Message& request,
                                const RetryPolicy& policy,
                                RetryStats* stats, obs::TraceLog* trace,
                                Deadline deadline) {
  const std::size_t attempts = std::max<std::size_t>(1, policy.max_attempts);
  const auto now = [&channel] {
    return channel.clock() != nullptr ? channel.clock()->now()
                                      : TimePoint::Epoch();
  };
  Duration backoff = policy.initial_backoff;
  Status last = Status::Unavailable("no attempt made");
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (deadline.Expired()) {
      // No attempt is allowed to *start* past the deadline; the overshoot
      // is whatever the in-flight attempt (timeout included) already burned.
      if (stats != nullptr) ++stats->deadline_clipped;
      obs::Emit(trace,
                obs::DeadlineExceededEvent(
                    now(), obs::kNoKey,
                    deadline.clock->now() - deadline.at));
      return Status::DeadlineExceeded("retry budget clipped by deadline");
    }
    if (stats != nullptr) {
      ++stats->attempts;
      if (attempt > 0) ++stats->retries;
    }
    if (attempt > 0) {
      obs::Emit(trace,
                obs::RpcRetryEvent(now(), channel.endpoint(), attempt));
    }
    auto response = channel.Call(request);
    if (response.ok()) return response;
    if (response.status().code() != StatusCode::kUnavailable) {
      // A definitive answer (malformed frame, handler rejection) — the
      // transport worked; retrying cannot change it.
      return response.status();
    }
    last = response.status();
    // The attempt is only known dead after the detection timeout elapses
    // (clamped to the deadline budget — there is no point waiting out a
    // timeout the caller will not honor).
    const Duration timeout =
        std::min(policy.attempt_timeout, deadline.Remaining());
    channel.Wait(timeout);
    if (stats != nullptr) stats->time_waiting += timeout;
    if (attempt + 1 < attempts) {
      const Duration wait = std::min(backoff, deadline.Remaining());
      channel.Wait(wait);
      if (stats != nullptr) {
        stats->time_waiting += wait;
        stats->time_backing_off += wait;
      }
      backoff = std::min(policy.max_backoff,
                         backoff * policy.backoff_multiplier);
    }
  }
  if (stats != nullptr) ++stats->exhausted;
  obs::Emit(trace, obs::RpcFailureEvent(now(), channel.endpoint(), attempts));
  return last;
}

}  // namespace ecc::net
