// In-process RPC with simulated transfer cost.
//
// An RpcServer dispatches framed Messages to per-type handlers.  A
// LoopbackChannel connects a caller to a server: each Call serializes the
// request, charges the network model for request and response transfer on
// the shared virtual clock, and hands back the decoded response — the same
// code path a socket transport would follow, minus the kernel.
//
// Fault injection: a channel may carry a CallInterceptor (see src/fault/),
// which gets to see every Call and can drop the request before dispatch,
// drop the response after dispatch (the server-side effect HAPPENED — the
// nastiest partial failure), or add wire delay.  Lost messages surface as
// Status::Unavailable, which callers treat as retryable.
//
// Retry: CallWithRetry wraps Call with a per-attempt detection timeout and
// bounded exponential backoff, both charged to the channel's virtual clock.
// Retrying after a dropped *response* re-sends a request the server already
// executed, so every mutating handler must be idempotent (PUT/MIGRATE treat
// duplicates as accepted; ERASE of an absent key is a no-op).
//
// Thread-safety: a channel is NOT internally synchronized — Call mutates
// the per-channel stats, and the server's handlers mutate whatever state
// they are bound to (a CacheNode's shard).  Concurrent callers must
// serialize per channel/endpoint; the striped backend does this with one
// stripe mutex per cache node, so a node's channel and shard are only ever
// driven by the stripe holder.  The clock pointer is safe to share (the
// VirtualClock is atomic); an interceptor must be internally synchronized
// (FaultInjector is).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/status.h"
#include "common/time.h"
#include "net/message.h"
#include "net/netmodel.h"
#include "obs/trace.h"

namespace ecc::net {

class RpcServer {
 public:
  using Handler = std::function<StatusOr<Message>(const Message&)>;

  /// Register the handler for one request type; overwrites any previous.
  void Handle(MsgType type, Handler handler);

  /// Dispatch a raw request.  Unknown types yield Unavailable.
  [[nodiscard]] StatusOr<Message> Dispatch(const Message& request) const;

 private:
  std::map<MsgType, Handler> handlers_;
};

/// What an interceptor may do to one Call.
enum class CallFaultKind : std::uint8_t {
  kNone = 0,
  kDropRequest,   ///< request never reaches the server
  kDropResponse,  ///< server executed, but the response is lost
  kDelay,         ///< extra wire latency, call otherwise succeeds
};

[[nodiscard]] const char* CallFaultKindName(CallFaultKind k);

struct CallFault {
  CallFaultKind kind = CallFaultKind::kNone;
  Duration delay;  ///< extra latency for kDelay
};

/// Sees every Call on channels it is bound to.  Implemented by
/// fault::FaultInjector; the indirection keeps ecc_net free of a dependency
/// on the fault library.
class CallInterceptor {
 public:
  virtual ~CallInterceptor() = default;

  /// Decide the fate of one call to `endpoint` (the cache-node id the
  /// channel was bound with) carrying a `type` request.
  [[nodiscard]] virtual CallFault OnCall(std::uint64_t endpoint,
                                         MsgType type) = 0;
};

/// Accumulated transfer accounting for one channel.
struct ChannelStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t faults_injected = 0;  ///< calls perturbed by an interceptor
  Duration time_on_wire;
};

class LoopbackChannel {
 public:
  /// The channel charges transfer time to `clock` (not owned); pass nullptr
  /// to skip time accounting (pure unit tests).
  LoopbackChannel(RpcServer* server, NetworkModel model,
                  VirtualClock* clock);

  /// Full round trip: serialize, charge request transfer, dispatch, charge
  /// response transfer, deserialize.  Unavailable if an interceptor drops
  /// either direction.
  [[nodiscard]] StatusOr<Message> Call(const Message& request);

  /// Attach `interceptor` (not owned; nullptr detaches); `endpoint` labels
  /// this channel's destination in the interceptor's view.
  void BindInterceptor(CallInterceptor* interceptor, std::uint64_t endpoint);

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkModel& model() const { return model_; }
  [[nodiscard]] VirtualClock* clock() const { return clock_; }
  [[nodiscard]] std::uint64_t endpoint() const { return endpoint_; }

 private:
  RpcServer* server_;
  NetworkModel model_;
  VirtualClock* clock_;
  CallInterceptor* interceptor_ = nullptr;
  std::uint64_t endpoint_ = 0;
  ChannelStats stats_;
};

/// Timeout + bounded-exponential-backoff policy for CallWithRetry.
struct RetryPolicy {
  /// Total tries, including the first (>= 1).
  std::size_t max_attempts = 4;
  /// Virtual time a lost message costs before the caller gives up on the
  /// attempt (detection timeout, charged per failed attempt).
  Duration attempt_timeout = Duration::Millis(50);
  /// First backoff; doubles (times `backoff_multiplier`) per retry, capped
  /// at `max_backoff`.
  Duration initial_backoff = Duration::Millis(5);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Duration::Millis(200);
};

struct RetryStats {
  std::uint64_t attempts = 0;   ///< calls issued (first try included)
  std::uint64_t retries = 0;    ///< attempts beyond the first
  std::uint64_t exhausted = 0;  ///< calls that failed every attempt
  /// Calls abandoned because the caller's deadline expired before the next
  /// attempt could start.
  std::uint64_t deadline_clipped = 0;
  Duration time_waiting;      ///< timeout + backoff charged to the clock
  /// Backoff-only portion of time_waiting (detection timeouts excluded).
  /// Deadline accounting needs the split: backoff is time the caller chose
  /// to burn, timeouts are time the network forced on it.
  Duration time_backing_off;
};

/// Issue `request` through `channel`, retrying transient (Unavailable)
/// failures per `policy`.  Timeouts and backoff advance the channel's
/// virtual clock; `stats`, when given, accumulates across calls.  Handler-
/// level errors other than Unavailable are returned immediately (they are
/// answers, not transport loss).  After the retry budget the last
/// Unavailable status surfaces to the caller.  A non-null `trace` receives
/// one kRpcRetry event per attempt beyond the first and a kRpcFailure when
/// the budget is exhausted, stamped from the channel's clock (epoch when
/// the channel carries none) and labeled with the channel's endpoint.
///
/// An active `deadline` (see common/time.h) clips the retry budget: no
/// attempt starts once the deadline has expired on *its own* clock (the
/// call returns DeadlineExceeded and emits a kDeadlineExceeded trace
/// event), and timeout/backoff charges to the channel clock are clamped to
/// the remaining budget so a retry loop can overshoot the deadline by at
/// most the one attempt already in flight.
[[nodiscard]] StatusOr<Message> CallWithRetry(LoopbackChannel& channel,
                                              const Message& request,
                                              const RetryPolicy& policy,
                                              RetryStats* stats = nullptr,
                                              obs::TraceLog* trace = nullptr,
                                              Deadline deadline = {});

}  // namespace ecc::net
