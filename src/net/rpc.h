// In-process RPC with simulated transfer cost.
//
// An RpcServer dispatches framed Messages to per-type handlers.  A
// LoopbackChannel connects a caller to a server: each Call serializes the
// request, charges the network model for request and response transfer on
// the shared virtual clock, and hands back the decoded response — the same
// code path a socket transport would follow, minus the kernel.
//
// Thread-safety: a channel is NOT internally synchronized — Call mutates
// the per-channel stats, and the server's handlers mutate whatever state
// they are bound to (a CacheNode's shard).  Concurrent callers must
// serialize per channel/endpoint; the striped backend does this with one
// stripe mutex per cache node, so a node's channel and shard are only ever
// driven by the stripe holder.  The clock pointer is safe to share (the
// VirtualClock is atomic).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/status.h"
#include "common/time.h"
#include "net/message.h"
#include "net/netmodel.h"

namespace ecc::net {

class RpcServer {
 public:
  using Handler = std::function<StatusOr<Message>(const Message&)>;

  /// Register the handler for one request type; overwrites any previous.
  void Handle(MsgType type, Handler handler);

  /// Dispatch a raw request.  Unknown types yield Unavailable.
  [[nodiscard]] StatusOr<Message> Dispatch(const Message& request) const;

 private:
  std::map<MsgType, Handler> handlers_;
};

/// Accumulated transfer accounting for one channel.
struct ChannelStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  Duration time_on_wire;
};

class LoopbackChannel {
 public:
  /// The channel charges transfer time to `clock` (not owned); pass nullptr
  /// to skip time accounting (pure unit tests).
  LoopbackChannel(RpcServer* server, NetworkModel model,
                  VirtualClock* clock);

  /// Full round trip: serialize, charge request transfer, dispatch, charge
  /// response transfer, deserialize.
  [[nodiscard]] StatusOr<Message> Call(const Message& request);

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkModel& model() const { return model_; }

 private:
  RpcServer* server_;
  NetworkModel model_;
  VirtualClock* clock_;
  ChannelStats stats_;
};

}  // namespace ecc::net
