// In-process RPC with simulated transfer cost.
//
// An RpcServer dispatches framed Messages to per-type handlers.  A
// LoopbackChannel is the simulator's net::Channel (see channel.h): each
// Call serializes the request, charges the network model for request and
// response transfer on the shared virtual clock, and hands back the
// decoded response — the same code path a socket transport follows, minus
// the kernel.
//
// Fault injection: a channel may carry a CallInterceptor (see src/fault/),
// which gets to see every Call and can drop the request before dispatch,
// drop the response after dispatch (the server-side effect HAPPENED — the
// nastiest partial failure), or add wire delay.  Lost messages surface as
// Status::Unavailable, which callers treat as retryable.
//
// Retry: CallWithRetry wraps any Channel's Call with a per-attempt
// detection timeout and bounded exponential backoff, both burned through
// Channel::Wait (virtual-clock charge on simulated transports, a real
// sleep on wall-clock ones).  Retrying after a dropped *response* re-sends
// a request the server already executed, so every mutating handler must be
// idempotent (PUT/MIGRATE treat duplicates as accepted; ERASE of an absent
// key is a no-op).
//
// Thread-safety: a LoopbackChannel is NOT internally synchronized — Call
// mutates the per-channel stats, and the server's handlers mutate whatever
// state they are bound to (a CacheNode's shard).  Concurrent callers must
// serialize per channel/endpoint; the striped backend does this with one
// stripe mutex per cache node, so a node's channel and shard are only ever
// driven by the stripe holder.  The clock pointer is safe to share (the
// VirtualClock is atomic); an interceptor must be internally synchronized
// (FaultInjector is).  Real transports (socket_channel.h, tcp_channel.h)
// are internally synchronized and take concurrent callers directly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/status.h"
#include "common/time.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/netmodel.h"
#include "obs/trace.h"

namespace ecc::net {

class RpcServer {
 public:
  using Handler = std::function<StatusOr<Message>(const Message&)>;

  /// Register the handler for one request type; overwrites any previous.
  void Handle(MsgType type, Handler handler);

  /// Dispatch a raw request.  Unknown types yield Unavailable.
  [[nodiscard]] StatusOr<Message> Dispatch(const Message& request) const;

 private:
  std::map<MsgType, Handler> handlers_;
};

class LoopbackChannel final : public Channel {
 public:
  /// The channel charges transfer time to `clock` (not owned); pass nullptr
  /// to skip time accounting (pure unit tests, background migrations).
  LoopbackChannel(RpcServer* server, NetworkModel model,
                  VirtualClock* clock);

  /// Full round trip: serialize, charge request transfer, dispatch, charge
  /// response transfer, deserialize.  Unavailable if an interceptor drops
  /// either direction.
  [[nodiscard]] StatusOr<Message> Call(const Message& request) override;

  [[nodiscard]] ChannelStats stats() const override { return stats_; }
  [[nodiscard]] const NetworkModel& model() const { return model_; }
  [[nodiscard]] VirtualClock* clock() const override { return clock_; }

 private:
  RpcServer* server_;
  NetworkModel model_;
  VirtualClock* clock_;
  ChannelStats stats_;
};

/// Timeout + bounded-exponential-backoff policy for CallWithRetry.
struct RetryPolicy {
  /// Total tries, including the first (>= 1).
  std::size_t max_attempts = 4;
  /// Time a lost message costs before the caller gives up on the attempt
  /// (detection timeout, burned per failed attempt via Channel::Wait).
  Duration attempt_timeout = Duration::Millis(50);
  /// First backoff; doubles (times `backoff_multiplier`) per retry, capped
  /// at `max_backoff`.
  Duration initial_backoff = Duration::Millis(5);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Duration::Millis(200);
};

struct RetryStats {
  std::uint64_t attempts = 0;   ///< calls issued (first try included)
  std::uint64_t retries = 0;    ///< attempts beyond the first
  std::uint64_t exhausted = 0;  ///< calls that failed every attempt
  /// Calls abandoned because the caller's deadline expired before the next
  /// attempt could start.
  std::uint64_t deadline_clipped = 0;
  Duration time_waiting;      ///< timeout + backoff burned waiting
  /// Backoff-only portion of time_waiting (detection timeouts excluded).
  /// Deadline accounting needs the split: backoff is time the caller chose
  /// to burn, timeouts are time the network forced on it.
  Duration time_backing_off;
};

/// Issue `request` through `channel` — any transport — retrying transient
/// (Unavailable) failures per `policy`.  Timeouts and backoff are burned
/// through the channel's Wait (virtual-clock charge or real sleep);
/// `stats`, when given, accumulates across calls.  Handler-level errors
/// other than Unavailable are returned immediately (they are answers, not
/// transport loss).  After the retry budget the last Unavailable status
/// surfaces to the caller.  A non-null `trace` receives one kRpcRetry
/// event per attempt beyond the first and a kRpcFailure when the budget is
/// exhausted, stamped from the channel's clock (epoch when the channel
/// carries none) and labeled with the channel's endpoint.
///
/// An active `deadline` (see common/time.h) clips the retry budget: no
/// attempt starts once the deadline has expired on *its own* clock (the
/// call returns DeadlineExceeded and emits a kDeadlineExceeded trace
/// event), and timeout/backoff waits are clamped to the remaining budget
/// so a retry loop can overshoot the deadline by at most the one attempt
/// already in flight.
[[nodiscard]] StatusOr<Message> CallWithRetry(Channel& channel,
                                              const Message& request,
                                              const RetryPolicy& policy,
                                              RetryStats* stats = nullptr,
                                              obs::TraceLog* trace = nullptr,
                                              Deadline deadline = {});

}  // namespace ecc::net
