// Network cost model: the simulation's source of T_net.
//
// The paper's complexity analysis makes T_net — the time to move one record
// between cache nodes — the dominant term of migration and contraction.  We
// model intra-datacenter transfer as
//
//   time(bytes) = rtt + bytes / bandwidth
//
// with defaults drawn from 2010-era EC2 small instances (sub-millisecond
// RTT, a few hundred Mbit/s sustained).  Batched transfers pay one RTT per
// message, not per record, matching the sweep-and-migrate implementation
// that ships records in batches.
#pragma once

#include <cstddef>

#include "common/time.h"

namespace ecc::net {

struct NetworkModelOptions {
  Duration rtt = Duration::Micros(500);
  double bandwidth_bytes_per_sec = 40e6;  ///< ~320 Mbit/s
  std::size_t per_message_overhead_bytes = 64;  ///< headers/framing
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkModelOptions opts = {});

  [[nodiscard]] const NetworkModelOptions& options() const { return opts_; }

  /// Time to deliver one message of `payload_bytes`.
  [[nodiscard]] Duration TransferTime(std::size_t payload_bytes) const;

  /// Time for a request/response exchange with the given payload sizes
  /// (two messages, two RTT halves each way folded into per-message rtt).
  [[nodiscard]] Duration RoundTripTime(std::size_t request_bytes,
                                       std::size_t response_bytes) const;

  /// The paper's per-record T_net for a record of `record_bytes`, amortized
  /// over a batch of `batch_records` (>= 1).
  [[nodiscard]] Duration PerRecordTime(std::size_t record_bytes,
                                       std::size_t batch_records) const;

 private:
  NetworkModelOptions opts_;
};

}  // namespace ecc::net
