#include "net/message.h"

#include <cstring>

namespace ecc::net {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kGetRequest: return "GET";
    case MsgType::kGetResponse: return "GET_RESP";
    case MsgType::kPutRequest: return "PUT";
    case MsgType::kPutResponse: return "PUT_RESP";
    case MsgType::kMigrateRequest: return "MIGRATE";
    case MsgType::kMigrateResponse: return "MIGRATE_RESP";
    case MsgType::kEraseRequest: return "ERASE";
    case MsgType::kEraseResponse: return "ERASE_RESP";
    case MsgType::kStatsRequest: return "STATS";
    case MsgType::kStatsResponse: return "STATS_RESP";
    case MsgType::kError: return "ERROR";
    case MsgType::kRangeStatsRequest: return "RANGE_STATS";
    case MsgType::kRangeStatsResponse: return "RANGE_STATS_RESP";
    case MsgType::kEraseRangeRequest: return "ERASE_RANGE";
    case MsgType::kEraseRangeResponse: return "ERASE_RANGE_RESP";
    case MsgType::kDigestRequest: return "DIGEST";
    case MsgType::kDigestResponse: return "DIGEST_RESP";
  }
  return "UNKNOWN";
}

Message EncodeErrorFrame(const Status& s) {
  Message m;
  m.type = MsgType::kError;
  m.payload.push_back(static_cast<char>(s.code()));
  m.payload += s.message();
  return m;
}

Status DecodeErrorFrame(const Message& m) {
  if (m.type != MsgType::kError || m.payload.empty()) {
    return Status::Unavailable("remote error");
  }
  const auto code_byte = static_cast<std::uint8_t>(m.payload[0]);
  if (code_byte == 0 ||
      code_byte > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    // No code byte (legacy/foreign peer): the text is all we have, and
    // without a code we must assume the transport-loss default.
    return Status::Unavailable("remote error: " + m.payload);
  }
  return Status(static_cast<StatusCode>(code_byte),
                "remote error: " + m.payload.substr(1));
}

Status ValidateFrameHeader(const char* header, std::size_t max_frame_bytes,
                           std::uint32_t* len) {
  const auto tag = static_cast<std::uint8_t>(header[0]);
  if (!IsKnownMsgType(tag)) {
    return Status::InvalidArgument("unknown message type tag");
  }
  std::uint32_t n = 0;
  std::memcpy(&n, header + 1, sizeof(n));
  if (n > max_frame_bytes) {
    return Status::InvalidArgument("frame too large");
  }
  *len = n;
  return Status::Ok();
}

std::string Message::Serialize() const {
  WireWriter w;
  w.PutU8(static_cast<std::uint8_t>(type));
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutU32(FramePayloadCrc(payload));
  std::string out = w.TakeBuffer();
  out += payload;
  return out;
}

StatusOr<Message> Message::Deserialize(std::string_view bytes) {
  WireReader r(bytes);
  std::uint8_t tag = 0;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  if (Status s = r.GetU8(tag); !s.ok()) return s;
  if (Status s = r.GetU32(len); !s.ok()) return s;
  if (Status s = r.GetU32(crc); !s.ok()) return s;
  if (!IsKnownMsgType(tag)) {
    return Status::InvalidArgument("unknown message type tag");
  }
  if (r.remaining() != len) {
    return Status::InvalidArgument("frame length mismatch");
  }
  Message m;
  m.type = static_cast<MsgType>(tag);
  m.payload = std::string(bytes.substr(bytes.size() - len));
  if (FramePayloadCrc(m.payload) != crc) {
    // Wire damage, not a malformed request: loss-equivalent and therefore
    // retryable, unlike the InvalidArgument cases above.
    return Status::Unavailable("frame checksum mismatch");
  }
  return m;
}

namespace {
Status ExpectType(const Message& m, MsgType want) {
  if (m.type != want) {
    return Status::InvalidArgument(std::string("expected ") +
                                   MsgTypeName(want) + " got " +
                                   MsgTypeName(m.type));
  }
  return Status::Ok();
}
}  // namespace

// --- GetRequest -----------------------------------------------------------

Message GetRequest::Encode() const {
  WireWriter w;
  w.PutU64(key);
  return Message{MsgType::kGetRequest, w.TakeBuffer()};
}

StatusOr<GetRequest> GetRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kGetRequest); !s.ok()) return s;
  WireReader r(m.payload);
  GetRequest out;
  if (Status s = r.GetU64(out.key); !s.ok()) return s;
  return out;
}

// --- GetResponse ----------------------------------------------------------

Message GetResponse::Encode() const {
  WireWriter w;
  w.PutU8(found ? 1 : 0);
  w.PutBytes(value);
  return Message{MsgType::kGetResponse, w.TakeBuffer()};
}

StatusOr<GetResponse> GetResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kGetResponse); !s.ok()) return s;
  WireReader r(m.payload);
  GetResponse out;
  std::uint8_t flag = 0;
  if (Status s = r.GetU8(flag); !s.ok()) return s;
  out.found = flag != 0;
  if (Status s = r.GetBytes(out.value); !s.ok()) return s;
  return out;
}

// --- PutRequest -----------------------------------------------------------

Message PutRequest::Encode() const {
  WireWriter w;
  w.PutU64(key);
  w.PutBytes(value);
  return Message{MsgType::kPutRequest, w.TakeBuffer()};
}

StatusOr<PutRequest> PutRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kPutRequest); !s.ok()) return s;
  WireReader r(m.payload);
  PutRequest out;
  if (Status s = r.GetU64(out.key); !s.ok()) return s;
  if (Status s = r.GetBytes(out.value); !s.ok()) return s;
  return out;
}

// --- PutResponse ----------------------------------------------------------

Message PutResponse::Encode() const {
  WireWriter w;
  w.PutU8(accepted ? 1 : 0);
  w.PutU64(used_bytes);
  return Message{MsgType::kPutResponse, w.TakeBuffer()};
}

StatusOr<PutResponse> PutResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kPutResponse); !s.ok()) return s;
  WireReader r(m.payload);
  PutResponse out;
  std::uint8_t flag = 0;
  if (Status s = r.GetU8(flag); !s.ok()) return s;
  out.accepted = flag != 0;
  if (Status s = r.GetU64(out.used_bytes); !s.ok()) return s;
  return out;
}

// --- MigrateRequest -------------------------------------------------------

Message MigrateRequest::Encode() const {
  WireWriter w;
  w.PutVarint(records.size());
  for (const auto& [key, value] : records) {
    w.PutU64(key);
    w.PutBytes(value);
  }
  return Message{MsgType::kMigrateRequest, w.TakeBuffer()};
}

StatusOr<MigrateRequest> MigrateRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kMigrateRequest); !s.ok()) return s;
  WireReader r(m.payload);
  std::uint64_t count = 0;
  if (Status s = r.GetVarint(count); !s.ok()) return s;
  // Plausibility bound: each record costs at least 9 wire bytes (8-byte
  // key + 1-byte length).  Guards reserve() against allocation bombs from
  // corrupt counts.
  if (count > r.remaining() / 9) {
    return Status::InvalidArgument("record count exceeds payload");
  }
  MigrateRequest out;
  out.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t key = 0;
    std::string value;
    if (Status s = r.GetU64(key); !s.ok()) return s;
    if (Status s = r.GetBytes(value); !s.ok()) return s;
    out.records.emplace_back(key, std::move(value));
  }
  return out;
}

// --- MigrateResponse ------------------------------------------------------

Message MigrateResponse::Encode() const {
  WireWriter w;
  w.PutU64(accepted);
  return Message{MsgType::kMigrateResponse, w.TakeBuffer()};
}

StatusOr<MigrateResponse> MigrateResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kMigrateResponse); !s.ok()) return s;
  WireReader r(m.payload);
  MigrateResponse out;
  if (Status s = r.GetU64(out.accepted); !s.ok()) return s;
  return out;
}

// --- EraseRequest ---------------------------------------------------------

Message EraseRequest::Encode() const {
  WireWriter w;
  w.PutVarint(keys.size());
  for (std::uint64_t k : keys) w.PutU64(k);
  return Message{MsgType::kEraseRequest, w.TakeBuffer()};
}

StatusOr<EraseRequest> EraseRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kEraseRequest); !s.ok()) return s;
  WireReader r(m.payload);
  std::uint64_t count = 0;
  if (Status s = r.GetVarint(count); !s.ok()) return s;
  // Plausibility bound (8 wire bytes per key): see MigrateRequest::Decode.
  if (count > r.remaining() / 8) {
    return Status::InvalidArgument("key count exceeds payload");
  }
  EraseRequest out;
  out.keys.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t k = 0;
    if (Status s = r.GetU64(k); !s.ok()) return s;
    out.keys.push_back(k);
  }
  return out;
}

// --- EraseResponse --------------------------------------------------------

Message EraseResponse::Encode() const {
  WireWriter w;
  w.PutU64(erased);
  return Message{MsgType::kEraseResponse, w.TakeBuffer()};
}

StatusOr<EraseResponse> EraseResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kEraseResponse); !s.ok()) return s;
  WireReader r(m.payload);
  EraseResponse out;
  if (Status s = r.GetU64(out.erased); !s.ok()) return s;
  return out;
}

// --- Stats ----------------------------------------------------------------

Message StatsRequest::Encode() const {
  return Message{MsgType::kStatsRequest, {}};
}

StatusOr<StatsRequest> StatsRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kStatsRequest); !s.ok()) return s;
  return StatsRequest{};
}

Message StatsResponse::Encode() const {
  WireWriter w;
  w.PutU64(records);
  w.PutU64(used_bytes);
  w.PutU64(capacity_bytes);
  return Message{MsgType::kStatsResponse, w.TakeBuffer()};
}

StatusOr<StatsResponse> StatsResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kStatsResponse); !s.ok()) return s;
  WireReader r(m.payload);
  StatsResponse out;
  if (Status s = r.GetU64(out.records); !s.ok()) return s;
  if (Status s = r.GetU64(out.used_bytes); !s.ok()) return s;
  if (Status s = r.GetU64(out.capacity_bytes); !s.ok()) return s;
  return out;
}

// --- RangeStats -----------------------------------------------------------

Message RangeStatsRequest::Encode() const {
  WireWriter w;
  w.PutU64(lo);
  w.PutU64(hi);
  return Message{MsgType::kRangeStatsRequest, w.TakeBuffer()};
}

StatusOr<RangeStatsRequest> RangeStatsRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kRangeStatsRequest); !s.ok()) {
    return s;
  }
  WireReader r(m.payload);
  RangeStatsRequest out;
  if (Status s = r.GetU64(out.lo); !s.ok()) return s;
  if (Status s = r.GetU64(out.hi); !s.ok()) return s;
  return out;
}

Message RangeStatsResponse::Encode() const {
  WireWriter w;
  w.PutU64(records);
  w.PutU64(bytes);
  return Message{MsgType::kRangeStatsResponse, w.TakeBuffer()};
}

StatusOr<RangeStatsResponse> RangeStatsResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kRangeStatsResponse); !s.ok()) {
    return s;
  }
  WireReader r(m.payload);
  RangeStatsResponse out;
  if (Status s = r.GetU64(out.records); !s.ok()) return s;
  if (Status s = r.GetU64(out.bytes); !s.ok()) return s;
  return out;
}

// --- EraseRange -----------------------------------------------------------

Message EraseRangeRequest::Encode() const {
  WireWriter w;
  w.PutU64(lo);
  w.PutU64(hi);
  return Message{MsgType::kEraseRangeRequest, w.TakeBuffer()};
}

StatusOr<EraseRangeRequest> EraseRangeRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kEraseRangeRequest); !s.ok()) {
    return s;
  }
  WireReader r(m.payload);
  EraseRangeRequest out;
  if (Status s = r.GetU64(out.lo); !s.ok()) return s;
  if (Status s = r.GetU64(out.hi); !s.ok()) return s;
  return out;
}

Message EraseRangeResponse::Encode() const {
  WireWriter w;
  w.PutU64(erased);
  return Message{MsgType::kEraseRangeResponse, w.TakeBuffer()};
}

StatusOr<EraseRangeResponse> EraseRangeResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kEraseRangeResponse); !s.ok()) {
    return s;
  }
  WireReader r(m.payload);
  EraseRangeResponse out;
  if (Status s = r.GetU64(out.erased); !s.ok()) return s;
  return out;
}

// --- Digest ---------------------------------------------------------------

Message DigestRequest::Encode() const {
  WireWriter w;
  w.PutU64(lo);
  w.PutU64(hi);
  return Message{MsgType::kDigestRequest, w.TakeBuffer()};
}

StatusOr<DigestRequest> DigestRequest::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kDigestRequest); !s.ok()) return s;
  WireReader r(m.payload);
  DigestRequest out;
  if (Status s = r.GetU64(out.lo); !s.ok()) return s;
  if (Status s = r.GetU64(out.hi); !s.ok()) return s;
  return out;
}

Message DigestResponse::Encode() const {
  WireWriter w;
  w.PutU64(digest);
  w.PutU64(records);
  return Message{MsgType::kDigestResponse, w.TakeBuffer()};
}

StatusOr<DigestResponse> DigestResponse::Decode(const Message& m) {
  if (Status s = ExpectType(m, MsgType::kDigestResponse); !s.ok()) return s;
  WireReader r(m.payload);
  DigestResponse out;
  if (Status s = r.GetU64(out.digest); !s.ok()) return s;
  if (Status s = r.GetU64(out.records); !s.ok()) return s;
  return out;
}

}  // namespace ecc::net
