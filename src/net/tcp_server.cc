#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.h"

namespace ecc::net {

namespace {

constexpr int kEpollBatch = 32;
constexpr std::size_t kReadChunk = 64 * 1024;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void DrainEventFd(int fd) {
  std::uint64_t tick = 0;
  while (::read(fd, &tick, sizeof(tick)) > 0) {
  }
}

void WakeEventFd(int fd) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t w = ::write(fd, &one, sizeof(one));
}

}  // namespace

TcpServer::TcpServer(RpcServer* dispatch, TcpServerOptions opts)
    : dispatch_(dispatch), opts_(std::move(opts)) {
  assert(dispatch_ != nullptr);
  if (opts_.io_threads == 0) opts_.io_threads = 1;
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + opts_.bind_address);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, opts_.listen_backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("cannot bind " + opts_.bind_address + ":" +
                               std::to_string(opts_.port));
  }
  // Resolve the ephemeral port before anyone can connect.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  accept_epoll_fd_ = ::epoll_create1(0);
  accept_wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.fd = listen_fd_;
  ::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev);
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.fd = accept_wake_fd_;
  ::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, accept_wake_fd_, &wev);

  for (std::size_t i = 0; i < opts_.io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epoll_fd = ::epoll_create1(0);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }

  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { RunIoLoop(*raw); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ECC_LOG_INFO("tcp: serving on %s:%u (%zu io loop(s))",
               opts_.bind_address.c_str(), static_cast<unsigned>(port_),
               opts_.io_threads);
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  WakeEventFd(accept_wake_fd_);
  for (auto& loop : loops_) WakeEventFd(loop->wake_fd);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    for (auto& [fd, conn] : loop->conns) {
      ::close(fd);
      connections_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    loop->conns.clear();
    for (int fd : loop->inbox) ::close(fd);
    loop->inbox.clear();
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  loops_.clear();
  ::close(accept_epoll_fd_);
  ::close(accept_wake_fd_);
  ::close(listen_fd_);
  listen_fd_ = accept_epoll_fd_ = accept_wake_fd_ = -1;
}

TcpServerStats TcpServer::stats() const {
  TcpServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.frames_served = frames_served_.load(std::memory_order_relaxed);
  s.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  s.accept_soft_errors = accept_soft_errors_.load(std::memory_order_relaxed);
  return s;
}

void TcpServer::AcceptLoop() {
  epoll_event events[kEpollBatch];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(accept_epoll_fd_, events, kEpollBatch, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == accept_wake_fd_) {
        DrainEventFd(accept_wake_fd_);
        continue;  // shutdown checked by the loop condition
      }
      for (;;) {
        const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
        if (conn_fd < 0) {
          if (errno == EINTR) continue;
          if (errno == ECONNABORTED) {
            // The peer gave up while queued; nothing wrong with us.
            accept_soft_errors_.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
              errno == ENOMEM) {
            // Descriptor/buffer exhaustion is a load condition, not a
            // protocol error: keep serving the connections we have.  The
            // short sleep matters — the listen fd is level-triggered, so
            // breaking straight back to epoll_wait would busy-spin until
            // a descriptor frees up.
            accept_soft_errors_.fetch_add(1, std::memory_order_relaxed);
            ECC_LOG_WARN("tcp_server: accept: %s (backing off)",
                         std::strerror(errno));
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          break;  // EAGAIN: accepted everything pending
        }
        if (!SetNonBlocking(conn_fd)) {
          ::close(conn_fd);
          continue;
        }
        SetNoDelay(conn_fd);
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        IoLoop& loop = *loops_[next_loop_++ % loops_.size()];
        {
          const std::lock_guard<std::mutex> lock(loop.inbox_mutex);
          loop.inbox.push_back(conn_fd);
        }
        WakeEventFd(loop.wake_fd);
      }
    }
  }
}

void TcpServer::RunIoLoop(IoLoop& loop) {
  epoll_event events[kEpollBatch];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll_fd, events, kEpollBatch, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        DrainEventFd(loop.wake_fd);
        // Register freshly accepted connections.
        std::vector<int> fresh;
        {
          const std::lock_guard<std::mutex> lock(loop.inbox_mutex);
          fresh.swap(loop.inbox);
        }
        for (int conn_fd : fresh) {
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = conn_fd;
          if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, conn_fd, &ev) == 0) {
            loop.conns[conn_fd] = Connection{conn_fd, {}, {}, 0};
          } else {
            ::close(conn_fd);
            connections_closed_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;  // already closed this batch
      Connection& conn = it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        alive = false;
      }
      if (alive && (events[i].events & EPOLLIN) != 0) {
        alive = HandleReadable(loop, conn);
      }
      if (alive && (events[i].events & EPOLLOUT) != 0) {
        alive = FlushWrites(loop, conn);
      }
      if (!alive) CloseConnection(loop, fd);
    }
  }
}

bool TcpServer::HandleReadable(IoLoop& loop, Connection& conn) {
  // Pull everything the kernel has for us.
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t r = ::read(conn.fd, chunk, sizeof(chunk));
    if (r > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  // Serve every complete frame sitting in the buffer.
  std::size_t consumed = 0;
  while (conn.in.size() - consumed >= kFrameHeaderBytes) {
    std::uint32_t len = 0;
    if (Status s = ValidateFrameHeader(conn.in.data() + consumed,
                                       opts_.max_frame_bytes, &len);
        !s.ok()) {
      // Protocol violation: this connection cannot be trusted to stay
      // frame-aligned.  Drop it; other connections are unaffected.
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const std::size_t frame = kFrameHeaderBytes + len;
    if (conn.in.size() - consumed < frame) break;  // wait for the rest
    auto request = Message::Deserialize(
        std::string_view(conn.in).substr(consumed, frame));
    consumed += frame;
    if (!request.ok()) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    StatusOr<Message> response = [&] {
      const std::lock_guard<std::mutex> lock(dispatch_mutex_);
      return dispatch_->Dispatch(*request);
    }();
    Message out = response.ok() ? std::move(*response)
                                : EncodeErrorFrame(response.status());
    conn.out += out.Serialize();
    frames_served_.fetch_add(1, std::memory_order_relaxed);
  }
  if (consumed > 0) conn.in.erase(0, consumed);
  return FlushWrites(loop, conn);
}

bool TcpServer::FlushWrites(IoLoop& loop, Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t w = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // peer gone
    }
    conn.out_off += static_cast<std::size_t>(w);
  }
  epoll_event ev{};
  ev.data.fd = conn.fd;
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    ev.events = EPOLLIN;
  } else {
    ev.events = EPOLLIN | EPOLLOUT;  // more to write when the pipe drains
  }
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  return true;
}

void TcpServer::CloseConnection(IoLoop& loop, int fd) {
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  loop.conns.erase(fd);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ecc::net
