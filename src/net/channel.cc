#include "net/channel.h"

namespace ecc::net {

void Channel::Wait(Duration d) {
  VirtualClock* c = clock();
  if (c != nullptr) c->Advance(d);
}

const char* CallFaultKindName(CallFaultKind k) {
  switch (k) {
    case CallFaultKind::kNone: return "NONE";
    case CallFaultKind::kDropRequest: return "DROP_REQUEST";
    case CallFaultKind::kDropResponse: return "DROP_RESPONSE";
    case CallFaultKind::kDelay: return "DELAY";
  }
  return "UNKNOWN";
}

}  // namespace ecc::net
