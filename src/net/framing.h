// Blocking framed IO over a byte-stream descriptor, shared by the
// socketpair transport (socket_channel.cc) and the TCP client channel
// (tcp_channel.cc).  The frame layout is exactly Message::Serialize: a
// 1-byte type tag + u32 little-endian payload length + payload.
//
// Hardening contract:
//   * writes go through send(MSG_NOSIGNAL) — a dead peer yields an error
//     return, never SIGPIPE;
//   * headers are validated (known tag, bounded length) BEFORE the frame
//     buffer is allocated;
//   * EINTR is retried; EAGAIN/EWOULDBLOCK (an armed SO_RCVTIMEO/SNDTIMEO
//     firing) is reported as kTimeout so callers can surface Unavailable.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "net/message.h"

namespace ecc::net::framing {

enum class IoResult : std::uint8_t {
  kOk = 0,
  kEof,      ///< peer closed cleanly (reads only)
  kTimeout,  ///< SO_RCVTIMEO / SO_SNDTIMEO fired
  kError,    ///< any other errno (peer reset, bad fd, ...)
};

/// Read exactly n bytes.
[[nodiscard]] IoResult ReadFull(int fd, char* buf, std::size_t n);

/// Write exactly n bytes via send(MSG_NOSIGNAL).
[[nodiscard]] IoResult WriteFull(int fd, const char* buf, std::size_t n);

/// Read one framed Message.  NotFound on clean EOF before a frame,
/// Unavailable on timeout or mid-frame loss, InvalidArgument on a header
/// that fails validation (unknown tag / frame above `max_frame_bytes`) —
/// rejected before any payload allocation.
///
/// `io_fail`, when given, reports the raw IO outcome of the failing read
/// (kOk when the frame was read but failed validation).  Callers that pool
/// connections use it to tell a dead peer (kEof/kError — reconnect and
/// resend) from a slow one (kTimeout — do not).
[[nodiscard]] StatusOr<Message> ReadFrame(int fd, std::size_t max_frame_bytes,
                                          IoResult* io_fail = nullptr);

/// Write one framed Message; `bytes`, when given, accumulates the wire
/// size actually attempted.
[[nodiscard]] IoResult WriteFrame(int fd, const Message& m,
                                  std::uint64_t* bytes = nullptr);

}  // namespace ecc::net::framing
