// Explicit little-endian wire format.
//
// The paper's cache servers exchange records over EC2's network; our
// substitute keeps the full serialize → transfer → deserialize code path but
// delivers in-process (see rpc.h).  Integers are fixed-width little-endian
// or LEB128 varints; byte strings are varint-length-prefixed.  Decoding is
// bounds-checked and never reads past the buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ecc::net {

class WireWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(std::uint16_t v) { PutFixed(&v, sizeof(v)); }
  void PutU32(std::uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(std::uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }

  void PutVarint(std::uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<std::uint8_t>(v));
  }

  void PutBytes(std::string_view bytes) {
    PutVarint(bytes.size());
    buf_.append(bytes.data(), bytes.size());
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string TakeBuffer() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* p, std::size_t n) {
    // Little-endian hosts only (asserted at build time below).
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "wire format assumes a little-endian host");

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  [[nodiscard]] Status GetU8(std::uint8_t& out);
  [[nodiscard]] Status GetU16(std::uint16_t& out);
  [[nodiscard]] Status GetU32(std::uint32_t& out);
  [[nodiscard]] Status GetU64(std::uint64_t& out);
  [[nodiscard]] Status GetDouble(double& out);
  [[nodiscard]] Status GetVarint(std::uint64_t& out);
  [[nodiscard]] Status GetBytes(std::string& out);

 private:
  [[nodiscard]] Status GetFixed(void* p, std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace ecc::net
