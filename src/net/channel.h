// The pluggable transport boundary: every coordinator -> node call goes
// through a Channel.
//
// A Channel owns one logical request/response path to a single endpoint.
// Implementations differ in what "the wire" is:
//
//   * LoopbackChannel (rpc.h)      — in-process dispatch, transfer *time*
//     charged to a virtual clock from a NetworkModel.  The simulator's
//     transport.
//   * SocketTransport (socket_channel.h) — a real Unix socketpair and a
//     server thread: the kernel boundary without an address.
//   * TcpChannel (tcp_channel.h)   — real TCP to a host:port served by an
//     epoll event loop (tcp_server.h), with per-endpoint connection
//     pooling.  The deployable transport.
//
// The retry layer (CallWithRetry, rpc.h) and every call site in core/
// speak only to this interface, so the same cache / crash-test machinery
// runs transport-parametrized over simulated and real wires.
//
// Fault injection: any channel may carry a CallInterceptor (see
// src/fault/), which sees every Call and can drop the request before it is
// sent, drop the response after the server executed (the nastiest partial
// failure), or add wire delay.  Lost messages surface as
// Status::Unavailable, which callers treat as retryable.
//
// Time: clock() is the virtual clock the channel charges, or nullptr for
// channels that run on the wall clock (or charge nothing).  Wait() is how
// the retry layer burns a timeout/backoff span: simulated channels advance
// their virtual clock, wall-clock channels actually sleep, and a channel
// with neither (a charge-free background loopback) does nothing — so one
// retry loop paces correctly over every transport.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/time.h"
#include "net/message.h"

namespace ecc::net {

/// What an interceptor may do to one Call.
enum class CallFaultKind : std::uint8_t {
  kNone = 0,
  kDropRequest,   ///< request never reaches the server
  kDropResponse,  ///< server executed, but the response is lost
  kDelay,         ///< extra wire latency, call otherwise succeeds
};

[[nodiscard]] const char* CallFaultKindName(CallFaultKind k);

struct CallFault {
  CallFaultKind kind = CallFaultKind::kNone;
  Duration delay;  ///< extra latency for kDelay
};

/// Sees every Call on channels it is bound to.  Implemented by
/// fault::FaultInjector; the indirection keeps ecc_net free of a dependency
/// on the fault library.  Implementations must be internally synchronized
/// when bound to a concurrently-called channel (FaultInjector is).
class CallInterceptor {
 public:
  virtual ~CallInterceptor() = default;

  /// Decide the fate of one call to `endpoint` (the cache-node id the
  /// channel was bound with) carrying a `type` request.
  [[nodiscard]] virtual CallFault OnCall(std::uint64_t endpoint,
                                         MsgType type) = 0;
};

/// Accumulated transfer accounting for one channel.
struct ChannelStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t faults_injected = 0;  ///< calls perturbed by an interceptor
  Duration time_on_wire;
};

class Channel {
 public:
  virtual ~Channel() = default;

  /// Full round trip: send `request`, block for the decoded response.
  /// Transport loss (peer gone, injected drop, timeout) is Unavailable;
  /// handler-level rejections come back as their own status codes.
  [[nodiscard]] virtual StatusOr<Message> Call(const Message& request) = 0;

  /// The virtual clock this channel charges, or nullptr for wall-clock /
  /// charge-free channels.  Retry accounting stamps events from it.
  [[nodiscard]] virtual VirtualClock* clock() const { return nullptr; }

  /// Burn `d` of retry pacing (detection timeout or backoff).  Default:
  /// advance clock() when the channel has one, otherwise do nothing.
  /// Wall-clock transports override this to really sleep.
  virtual void Wait(Duration d);

  /// Point-in-time transfer accounting.  By value: concurrent transports
  /// materialize a consistent copy from atomics.
  [[nodiscard]] virtual ChannelStats stats() const = 0;

  /// Attach `interceptor` (not owned; nullptr detaches); `endpoint` labels
  /// this channel's destination in the interceptor's view.  Bind before
  /// issuing concurrent Calls — the binding itself is not synchronized.
  void BindInterceptor(CallInterceptor* interceptor, std::uint64_t endpoint) {
    interceptor_ = interceptor;
    endpoint_ = endpoint;
  }

  [[nodiscard]] std::uint64_t endpoint() const { return endpoint_; }

 protected:
  /// The interceptor's verdict for one call (kNone when unbound).
  [[nodiscard]] CallFault NextFault(MsgType type) {
    return interceptor_ != nullptr ? interceptor_->OnCall(endpoint_, type)
                                   : CallFault{};
  }

  [[nodiscard]] CallInterceptor* interceptor() const { return interceptor_; }

 private:
  CallInterceptor* interceptor_ = nullptr;
  std::uint64_t endpoint_ = 0;
};

}  // namespace ecc::net
