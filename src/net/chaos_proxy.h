// Deterministic network-fault proxy: a TCP relay that sits between the
// coordinator and one node and executes a seeded ChaosPlan against every
// byte it forwards.
//
// This is the wall-clock sibling of fault::FaultPlan.  The injector
// perturbs simulated Calls from inside the process; the chaos proxy
// perturbs a *real* TCP stream from outside it, so the client library, the
// framing layer, the epoll server, and the retry stack all face the same
// disasters a deployed fleet does:
//
//   * partitions — full or one-way black holes, scheduled (windows of
//     elapsed time with automatic heal) or manual (Partition()/Heal()).
//     A partitioned direction stops being read, exactly like a netsplit:
//     the kernel buffers back up, the sender blocks or times out, and the
//     connection survives to deliver its bytes when the link heals;
//   * delay + jitter — every relayed chunk is held before forwarding;
//   * bandwidth throttle and slow-loris drip — token-bucket caps on the
//     forwarding rate (throttle = bytes/sec, drip = N bytes per period);
//   * byte corruption — seeded bit flips in forwarded bytes (the frame
//     checksum in message.h is what turns these into retryable errors
//     instead of silently-wrong cache values);
//   * frame truncation — a victim frame is forwarded as a strict prefix,
//     then the connection is closed cleanly (the peer reads a torn frame
//     then EOF);
//   * mid-frame reset — as truncation, but the close is a hard RST
//     (SO_LINGER abort), surfacing ECONNRESET mid-read.
//
// Frame faults track frame boundaries with ValidateFrameHeader over the
// *pre-corruption* stream, so the proxy's own parser never desyncs.
//
// Determinism: all probabilistic decisions come from per-connection Rngs
// seeded from ChaosPlan::seed and the connection's accept index, so a run
// replays from ECC_CHAOS_SEED (see ChaosSeedFromEnv) given the same
// per-connection traffic.
//
// Threading: one relay thread owns every socket behind an epoll set;
// Partition/Heal/stats are safe from any thread (mutex + eventfd wake).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "obs/trace.h"

namespace ecc::net {

/// One scheduled black-hole window, in elapsed time since Start().
struct ChaosPartitionWindow {
  Duration start;
  Duration end;               ///< heal time; Duration::Max() = never
  bool to_upstream = true;    ///< client -> node direction black-holed
  bool to_client = true;      ///< node -> client direction black-holed
};

struct ChaosPlan {
  std::uint64_t seed = 0xc4a05u;

  /// Per-forwarded-byte probability of flipping one random bit.
  double corrupt_byte_p = 0.0;
  /// Per-frame probability the frame is forwarded as a strict prefix and
  /// the connection then closed cleanly (torn frame + EOF).
  double truncate_frame_p = 0.0;
  /// Per-frame probability of the same prefix cut followed by a hard RST.
  double reset_frame_p = 0.0;

  /// Hold every relayed chunk this long (+ uniform [0, jitter)) before
  /// forwarding.
  Duration delay;
  Duration jitter;

  /// Slow-loris drip: forward at most `drip_bytes` per `drip_every`.
  /// Zero bytes or zero period disables the drip.
  std::size_t drip_bytes = 0;
  Duration drip_every;

  /// Bandwidth cap in bytes/second (token bucket); 0 = unlimited.
  std::size_t throttle_bytes_per_sec = 0;

  std::vector<ChaosPartitionWindow> partitions;
};

/// Point-in-time counters; safe to poll while relaying.
struct ChaosProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t bytes_relayed = 0;       ///< bytes actually written onward
  std::uint64_t bytes_corrupted = 0;
  std::uint64_t frames_truncated = 0;
  std::uint64_t frames_reset = 0;
  std::uint64_t chunks_delayed = 0;      ///< chunks that waited on delay/jitter
  std::uint64_t bytes_throttled = 0;     ///< bytes deferred by a rate cap
  std::uint64_t partition_transitions = 0;
  bool partitioned_to_upstream = false;
  bool partitioned_to_client = false;
};

class ChaosProxy {
 public:
  /// Relays 127.0.0.1:<port()> -> `upstream_host`:`upstream_port`.
  ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
             ChaosPlan plan = {});

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  ~ChaosProxy();

  /// Bind an ephemeral listen port and launch the relay thread.
  [[nodiscard]] Status Start();

  /// Idempotent: close every connection, join the thread.
  void Stop();

  /// The proxy's listen port (0 before Start).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // --- Manual partition control (thread-safe) ----------------------------

  /// Black-hole the selected directions until Heal() (on top of any
  /// scheduled windows).
  void Partition(bool to_upstream = true, bool to_client = true);
  void Heal();

  [[nodiscard]] ChaosProxyStats stats() const;

  /// Emit chaos_fault trace events (not owned; nullptr detaches).  `node`
  /// labels this proxy's endpoint in the events; stamps are elapsed wall
  /// time since Start().
  void BindTrace(obs::TraceLog* trace, std::uint64_t node);

 private:
  using Clock = std::chrono::steady_clock;

  enum class FrameFault : std::uint8_t { kNone = 0, kTruncate, kReset };
  enum class Doom : std::uint8_t { kNone = 0, kClean, kReset };

  /// One relay direction of one connection.
  struct Leg {
    int src = -1;
    int dst = -1;
    bool to_upstream = true;
    bool src_open = true;   ///< still registered for reads
    bool dead = false;      ///< drained + dst shut down; nothing left to do
    /// Raw bytes read, awaiting their delay release (count, release time).
    std::string inq;
    std::deque<std::pair<std::size_t, Clock::time_point>> chunks;
    /// Frame tracker over the released stream.
    std::string frame_buf;       ///< buffered bytes of the current unit
    bool in_header = true;
    std::size_t frame_target = 0;   ///< bytes of this frame to forward
    std::size_t frame_total = 0;    ///< full frame size (header + payload)
    std::size_t frame_done = 0;     ///< bytes of this frame consumed
    bool frame_parse_ok = true;     ///< false => passthrough, no frame faults
    FrameFault frame_fault = FrameFault::kNone;
    /// Cleared-to-send bytes (post-fault, post-corruption).
    std::string outbox;
    /// Token buckets (doubles; refilled from elapsed time each tick).
    double drip_tokens = 0.0;
    double throttle_tokens = 0.0;
    Clock::time_point last_refill{};
  };

  struct Conn {
    int client_fd = -1;
    int upstream_fd = -1;
    Leg up;     ///< client -> upstream
    Leg down;   ///< upstream -> client
    Rng rng;
    Doom doom = Doom::kNone;  ///< close verdict once outboxes drain
    bool delay_traced = false;     ///< one chaos_fault(delay) per connection
    bool throttle_traced = false;  ///< one chaos_fault(throttle) per connection
    explicit Conn(std::uint64_t seed) : rng(seed) {}
  };

  void RelayLoop();
  void AcceptPending();
  [[nodiscard]] int DialUpstream();
  /// Read whatever the kernel has on `leg.src` into its chunk queue.
  void ReadLeg(Conn& conn, Leg& leg);
  /// Release due chunks through the framer into the outbox, then write.
  void PumpLeg(Conn& conn, Leg& leg, Clock::time_point now);
  /// Move released bytes through frame tracking + faults into the outbox.
  void FrameAndEmit(Conn& conn, Leg& leg, std::string bytes);
  /// Doom the connection per the leg's pending frame fault and drop
  /// everything buffered beyond the forwarded prefix.
  void ApplyFrameFault(Conn& conn, Leg& leg);
  /// Write what the kernel will take; false means the peer is gone.
  [[nodiscard]] bool FlushOutboxOk(Conn& conn, Leg& leg);
  void CloseConn(int client_fd);
  /// Recompute partition state from manual flags + scheduled windows and
  /// update epoll read interest on every connection.
  void RefreshPartitionState(Clock::time_point now);
  void SetReadInterest(Leg& leg, bool enabled);
  [[nodiscard]] bool DirectionPartitioned(const Leg& leg) const;
  void EmitChaos(obs::ChaosFaultCode code, std::int64_t arg);
  [[nodiscard]] TimePoint Elapsed() const;

  std::string upstream_host_;
  std::uint16_t upstream_port_;
  ChaosPlan plan_;

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  Clock::time_point start_time_{};
  Clock::time_point last_tick_{};

  /// Owned by the relay thread; keyed by client fd.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::unordered_map<int, Conn*> by_fd_;  ///< either side fd -> conn
  std::uint64_t next_conn_index_ = 0;

  mutable std::mutex control_mutex_;
  bool manual_to_upstream_ = false;
  bool manual_to_client_ = false;
  /// Effective (manual || scheduled) state; written by the relay thread,
  /// polled by stats().
  std::atomic<bool> cut_to_upstream_{false};
  std::atomic<bool> cut_to_client_{false};

  obs::TraceLog* trace_ = nullptr;
  std::uint64_t trace_node_ = obs::kNoNode;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> bytes_relayed_{0};
  std::atomic<std::uint64_t> bytes_corrupted_{0};
  std::atomic<std::uint64_t> frames_truncated_{0};
  std::atomic<std::uint64_t> frames_reset_{0};
  std::atomic<std::uint64_t> chunks_delayed_{0};
  std::atomic<std::uint64_t> bytes_throttled_{0};
  std::atomic<std::uint64_t> partition_transitions_{0};
};

/// The seed for a chaos schedule: ECC_CHAOS_SEED from the environment when
/// set (decimal or 0x-hex), else `fallback`.  Runners log the value they
/// used so any invariant violation replays bit-exactly.
[[nodiscard]] std::uint64_t ChaosSeedFromEnv(std::uint64_t fallback);

}  // namespace ecc::net
