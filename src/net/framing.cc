#include "net/framing.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace ecc::net::framing {

IoResult ReadFull(int fd, char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, buf + done, n - done);
    if (r == 0) return done == 0 ? IoResult::kEof : IoResult::kError;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kTimeout;
      return IoResult::kError;
    }
    done += static_cast<std::size_t>(r);
  }
  return IoResult::kOk;
}

IoResult WriteFull(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a peer that is gone must surface as an error return
    // (EPIPE), never as a process-killing SIGPIPE.
    const ssize_t w = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kTimeout;
      return IoResult::kError;
    }
    done += static_cast<std::size_t>(w);
  }
  return IoResult::kOk;
}

StatusOr<Message> ReadFrame(int fd, std::size_t max_frame_bytes,
                            IoResult* io_fail) {
  if (io_fail != nullptr) *io_fail = IoResult::kOk;
  char header[kFrameHeaderBytes];
  switch (const IoResult r = ReadFull(fd, header, sizeof(header))) {
    case IoResult::kOk: break;
    case IoResult::kEof:
      if (io_fail != nullptr) *io_fail = r;
      return Status::NotFound("connection closed");
    case IoResult::kTimeout:
      if (io_fail != nullptr) *io_fail = r;
      return Status::Unavailable("read timed out");
    case IoResult::kError:
      if (io_fail != nullptr) *io_fail = r;
      return Status::Unavailable("read failed");
  }
  // Validate the header before trusting its length: a garbage tag must not
  // commit us to a max_frame_bytes allocation.
  std::uint32_t len = 0;
  if (Status s = ValidateFrameHeader(header, max_frame_bytes, &len);
      !s.ok()) {
    return s;
  }
  std::string wire(kFrameHeaderBytes + len, '\0');
  std::memcpy(wire.data(), header, kFrameHeaderBytes);
  if (len > 0) {
    switch (const IoResult r = ReadFull(fd, wire.data() + kFrameHeaderBytes,
                                        len)) {
      case IoResult::kOk: break;
      case IoResult::kTimeout:
        if (io_fail != nullptr) *io_fail = r;
        return Status::Unavailable("read timed out");
      default:
        if (io_fail != nullptr) *io_fail = r;
        return Status::Unavailable("truncated frame");
    }
  }
  return Message::Deserialize(wire);
}

IoResult WriteFrame(int fd, const Message& m, std::uint64_t* bytes) {
  const std::string wire = m.Serialize();
  if (bytes != nullptr) *bytes += wire.size();
  return WriteFull(fd, wire.data(), wire.size());
}

}  // namespace ecc::net::framing
