#include "net/socket_channel.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <chrono>
#include <thread>

#include "net/framing.h"

namespace ecc::net {

namespace {
constexpr std::size_t kMaxFrameBytes = 64u << 20;
}  // namespace

SocketTransport::SocketTransport(RpcServer* server, VirtualClock* clock)
    : server_(server), clock_(clock) {
  assert(server != nullptr);
  int fds[2] = {-1, -1};
  const int rc = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
  assert(rc == 0);
  (void)rc;
  client_fd_ = fds[0];
  server_fd_ = fds[1];
  server_thread_ = std::thread([this] { ServeLoop(); });
}

SocketTransport::~SocketTransport() {
  // Shutdown-before-close: a reader blocked in Call() (client end) or the
  // serve loop (server end) wakes with EOF instead of racing a closed —
  // and possibly reused — descriptor.
  if (client_fd_ >= 0) ::shutdown(client_fd_, SHUT_RDWR);
  if (server_fd_ >= 0) ::shutdown(server_fd_, SHUT_RDWR);
  if (server_thread_.joinable()) server_thread_.join();
  {
    // Drain any in-flight Call: it holds call_mutex_ until it is done with
    // the descriptor, so acquiring it here fences the close below.
    const std::lock_guard<std::mutex> drain(call_mutex_);
  }
  if (client_fd_ >= 0) ::close(client_fd_);
  if (server_fd_ >= 0) ::close(server_fd_);
}

void SocketTransport::Wait(Duration d) {
  if (clock_ != nullptr) {
    clock_->Advance(d);
  } else if (d > Duration::Zero()) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.micros()));
  }
}

ChannelStats SocketTransport::stats() const {
  ChannelStats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  return s;
}

void SocketTransport::ServeLoop() {
  for (;;) {
    auto request = framing::ReadFrame(server_fd_, kMaxFrameBytes);
    if (!request.ok()) break;  // peer closed or fatal frame error
    auto response = server_->Dispatch(*request);
    Message out = response.ok() ? std::move(*response)
                                : EncodeErrorFrame(response.status());
    if (framing::WriteFrame(server_fd_, out) != framing::IoResult::kOk) {
      break;
    }
  }
  // Signal EOF to any client blocked mid-Call: without this, a fatal frame
  // error would leave the loop dead but the connection half open, and the
  // client's read would hang until destruction.
  ::shutdown(server_fd_, SHUT_RDWR);
}

StatusOr<Message> SocketTransport::Call(const Message& request) {
  const std::lock_guard<std::mutex> lock(call_mutex_);
  const CallFault fault = NextFault(request.type);
  if (fault.kind != CallFaultKind::kNone) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (fault.kind == CallFaultKind::kDelay) Wait(fault.delay);
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (fault.kind == CallFaultKind::kDropRequest) {
    // Count the bytes as sent — they left the caller — but never give them
    // to the kernel.
    bytes_sent_.fetch_add(request.WireSize(), std::memory_order_relaxed);
    return Status::Unavailable("injected fault: request lost");
  }
  std::uint64_t sent = 0;
  const auto wrote = framing::WriteFrame(client_fd_, request, &sent);
  bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
  if (wrote != framing::IoResult::kOk) {
    return Status::Unavailable("write failed");
  }
  auto response = framing::ReadFrame(client_fd_, kMaxFrameBytes);
  if (!response.ok()) {
    return Status::Unavailable("read failed: " +
                               response.status().ToString());
  }
  bytes_received_.fetch_add(response->WireSize(),
                            std::memory_order_relaxed);
  if (fault.kind == CallFaultKind::kDropResponse) {
    // The handler ran — server-side state changed — but the answer is gone.
    return Status::Unavailable("injected fault: response lost");
  }
  if (response->type == MsgType::kError) {
    return DecodeErrorFrame(*response);
  }
  return response;
}

}  // namespace ecc::net
