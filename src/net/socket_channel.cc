#include "net/socket_channel.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>

#include "net/wire.h"

namespace ecc::net {

namespace {

constexpr std::size_t kFrameHeaderBytes = 1 + 4;  // tag + u32 length

/// Read exactly n bytes; false on EOF/error.
bool ReadFull(int fd, char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, buf + done, n - done);
    if (r == 0) return false;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

/// Read one framed Message.  Returns NotFound on clean EOF before a frame.
StatusOr<Message> ReadFrame(int fd) {
  char header[kFrameHeaderBytes];
  if (!ReadFull(fd, header, sizeof(header))) {
    return Status::NotFound("connection closed");
  }
  std::uint32_t len = 0;
  std::memcpy(&len, header + 1, sizeof(len));
  if (len > (64u << 20)) {
    return Status::InvalidArgument("frame too large");
  }
  std::string wire(kFrameHeaderBytes + len, '\0');
  std::memcpy(wire.data(), header, kFrameHeaderBytes);
  if (len > 0 && !ReadFull(fd, wire.data() + kFrameHeaderBytes, len)) {
    return Status::Internal("truncated frame");
  }
  return Message::Deserialize(wire);
}

bool WriteFrame(int fd, const Message& m, std::uint64_t* bytes) {
  const std::string wire = m.Serialize();
  if (bytes != nullptr) *bytes += wire.size();
  return WriteFull(fd, wire.data(), wire.size());
}

}  // namespace

SocketTransport::SocketTransport(RpcServer* server) : server_(server) {
  assert(server != nullptr);
  int fds[2] = {-1, -1};
  const int rc = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
  assert(rc == 0);
  (void)rc;
  client_fd_ = fds[0];
  server_fd_ = fds[1];
  server_thread_ = std::thread([this] { ServeLoop(); });
}

SocketTransport::~SocketTransport() {
  if (client_fd_ >= 0) ::close(client_fd_);
  if (server_thread_.joinable()) server_thread_.join();
  if (server_fd_ >= 0) ::close(server_fd_);
}

void SocketTransport::ServeLoop() {
  for (;;) {
    auto request = ReadFrame(server_fd_);
    if (!request.ok()) return;  // peer closed or fatal frame error
    auto response = server_->Dispatch(*request);
    Message out;
    if (response.ok()) {
      out = std::move(*response);
    } else {
      out = Message{MsgType::kError, response.status().ToString()};
    }
    if (!WriteFrame(server_fd_, out, nullptr)) return;
  }
}

StatusOr<Message> SocketTransport::Call(const Message& request) {
  const std::lock_guard<std::mutex> lock(call_mutex_);
  if (!WriteFrame(client_fd_, request, &bytes_sent_)) {
    return Status::Unavailable("write failed");
  }
  auto response = ReadFrame(client_fd_);
  if (!response.ok()) {
    return Status::Unavailable("read failed: " +
                               response.status().ToString());
  }
  bytes_received_ += response->WireSize();
  if (response->type == MsgType::kError) {
    return Status::Unavailable("remote error: " + response->payload);
  }
  return response;
}

}  // namespace ecc::net
