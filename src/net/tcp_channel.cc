#include "net/tcp_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "net/framing.h"

namespace ecc::net {

namespace {

void SetIoTimeout(int fd, Duration timeout) {
  if (timeout <= Duration::Zero()) return;
  timeval tv{};
  tv.tv_sec = timeout.micros() / 1000000;
  tv.tv_usec = timeout.micros() % 1000000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

TcpChannel::TcpChannel(TcpChannelOptions opts, VirtualClock* clock)
    : opts_(std::move(opts)), clock_(clock) {}

TcpChannel::~TcpChannel() {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  for (int fd : idle_) ::close(fd);
  idle_.clear();
}

void TcpChannel::Wait(Duration d) {
  if (clock_ != nullptr) {
    clock_->Advance(d);
  } else if (d > Duration::Zero()) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.micros()));
  }
}

ChannelStats TcpChannel::stats() const {
  ChannelStats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.time_on_wire =
      Duration::Micros(wire_micros_.load(std::memory_order_relaxed));
  return s;
}

std::size_t TcpChannel::idle_connections() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return idle_.size();
}

StatusOr<int> TcpChannel::AcquireConnection() {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!idle_.empty()) {
      const int fd = idle_.back();
      idle_.pop_back();
      return fd;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad endpoint host: " + opts_.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  SetIoTimeout(fd, opts_.io_timeout);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect to " + opts_.host + ":" +
                               std::to_string(opts_.port) + " failed");
  }
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  return fd;
}

void TcpChannel::ReleaseConnection(int fd) {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (idle_.size() < opts_.max_pool_size) {
      idle_.push_back(fd);
      return;
    }
  }
  ::close(fd);
}

StatusOr<Message> TcpChannel::Call(const Message& request) {
  const CallFault fault = NextFault(request.type);
  if (fault.kind != CallFaultKind::kNone) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (fault.kind == CallFaultKind::kDelay) {
    Wait(fault.delay);
    wire_micros_.fetch_add(fault.delay.micros(), std::memory_order_relaxed);
  }
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (fault.kind == CallFaultKind::kDropRequest) {
    // The bytes "left the caller" but never touch the kernel; the loss is
    // only observable through the retry layer's timeout.
    bytes_sent_.fetch_add(request.WireSize(), std::memory_order_relaxed);
    return Status::Unavailable("injected fault: request lost");
  }

  auto fd = AcquireConnection();
  if (!fd.ok()) return fd.status();
  const auto wire_start = std::chrono::steady_clock::now();

  std::uint64_t sent = 0;
  const auto wrote = framing::WriteFrame(*fd, request, &sent);
  bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
  if (wrote != framing::IoResult::kOk) {
    ::close(*fd);
    return Status::Unavailable("write failed");
  }
  auto response = framing::ReadFrame(*fd, opts_.max_frame_bytes);
  const auto wire_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wire_start)
                           .count();
  wire_micros_.fetch_add(wire_us, std::memory_order_relaxed);
  if (!response.ok()) {
    // A connection that saw loss or a frame error is never reused: the
    // stream may be mid-frame and would corrupt the next caller.
    ::close(*fd);
    if (response.status().code() == StatusCode::kInvalidArgument) {
      return response.status();  // malformed response: an answer, not loss
    }
    return Status::Unavailable("read failed: " +
                               response.status().ToString());
  }
  ReleaseConnection(*fd);
  bytes_received_.fetch_add(response->WireSize(),
                            std::memory_order_relaxed);
  if (fault.kind == CallFaultKind::kDropResponse) {
    // The server executed — its state changed — but the answer is gone.
    return Status::Unavailable("injected fault: response lost");
  }
  if (response->type == MsgType::kError) {
    return DecodeErrorFrame(*response);
  }
  return response;
}

}  // namespace ecc::net
