#include "net/tcp_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "net/framing.h"

namespace ecc::net {

namespace {

void SetIoTimeout(int fd, Duration timeout) {
  if (timeout <= Duration::Zero()) return;
  timeval tv{};
  tv.tv_sec = timeout.micros() / 1000000;
  tv.tv_usec = timeout.micros() % 1000000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

TcpChannel::TcpChannel(TcpChannelOptions opts, VirtualClock* clock)
    : opts_(std::move(opts)), clock_(clock) {}

TcpChannel::~TcpChannel() {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  for (int fd : idle_) ::close(fd);
  open_count_ -= idle_.size();
  idle_.clear();
}

void TcpChannel::Wait(Duration d) {
  if (clock_ != nullptr) {
    clock_->Advance(d);
  } else if (d > Duration::Zero()) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.micros()));
  }
}

ChannelStats TcpChannel::stats() const {
  ChannelStats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.time_on_wire =
      Duration::Micros(wire_micros_.load(std::memory_order_relaxed));
  return s;
}

std::size_t TcpChannel::idle_connections() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return idle_.size();
}

StatusOr<int> TcpChannel::AcquireConnection(bool* reused) {
  *reused = false;
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(opts_.pool_wait_timeout.micros());
    while (true) {
      if (!idle_.empty()) {
        const int fd = idle_.back();
        idle_.pop_back();
        *reused = true;
        return fd;
      }
      if (opts_.max_connections == 0 || open_count_ < opts_.max_connections) {
        ++open_count_;  // slot reserved; released on close or dial failure
        break;
      }
      // Every slot is borrowed.  Wait for a release, but only for a
      // bounded interval: with the peer black-holed the borrowers are all
      // waiting out their IO timeouts, and an unbounded wait here would
      // hang every new caller for the duration of the outage.
      if (pool_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          idle_.empty() && open_count_ >= opts_.max_connections) {
        pool_exhausted_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable(
            "connection pool exhausted (" +
            std::to_string(opts_.max_connections) + " in flight to " +
            opts_.host + ":" + std::to_string(opts_.port) + ")");
      }
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  const auto release_slot = [this] {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    --open_count_;
    pool_cv_.notify_one();
  };
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    release_slot();
    return Status::InvalidArgument("bad endpoint host: " + opts_.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    release_slot();
    return Status::Unavailable("socket() failed");
  }
  // SO_SNDTIMEO bounds connect() as well as writes, so a black-holed peer
  // cannot park the dialer past the IO timeout.
  SetIoTimeout(fd, opts_.io_timeout);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    release_slot();
    return Status::Unavailable("connect to " + opts_.host + ":" +
                               std::to_string(opts_.port) + " failed");
  }
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  return fd;
}

void TcpChannel::ReleaseConnection(int fd) {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (idle_.size() < opts_.max_pool_size) {
      idle_.push_back(fd);
      pool_cv_.notify_one();
      return;
    }
  }
  CloseConnection(fd);
}

void TcpChannel::CloseConnection(int fd) {
  ::close(fd);
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  --open_count_;
  pool_cv_.notify_one();
}

void TcpChannel::FlushIdle() {
  std::vector<int> doomed;
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    doomed.swap(idle_);
    open_count_ -= doomed.size();
    if (!doomed.empty()) pool_cv_.notify_all();
  }
  for (const int fd : doomed) ::close(fd);
}

StatusOr<Message> TcpChannel::Call(const Message& request) {
  const CallFault fault = NextFault(request.type);
  if (fault.kind != CallFaultKind::kNone) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (fault.kind == CallFaultKind::kDelay) {
    Wait(fault.delay);
    wire_micros_.fetch_add(fault.delay.micros(), std::memory_order_relaxed);
  }
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (fault.kind == CallFaultKind::kDropRequest) {
    // The bytes "left the caller" but never touch the kernel; the loss is
    // only observable through the retry layer's timeout.
    bytes_sent_.fetch_add(request.WireSize(), std::memory_order_relaxed);
    return Status::Unavailable("injected fault: request lost");
  }

  bool reused = false;
  auto fd = AcquireConnection(&reused);
  if (!fd.ok()) return fd.status();

  StatusOr<Message> response = Status::Unavailable("never attempted");
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool write_failed = false;
    framing::IoResult io_fail = framing::IoResult::kOk;
    response = RoundTrip(*fd, request, &write_failed, &io_fail);
    if (response.ok()) {
      ReleaseConnection(*fd);
      break;
    }

    // A connection that saw loss or a frame error is never reused: the
    // stream may be mid-frame and would corrupt the next caller.
    CloseConnection(*fd);
    if (response.status().code() == StatusCode::kInvalidArgument) {
      return response.status();  // malformed response: an answer, not loss
    }

    // Stale pooled connection: the peer restarted (or a healed partition
    // reset the link) after this fd was pooled, so its first use dies with
    // EPIPE/ECONNRESET/EOF.  The endpoint itself may be perfectly healthy
    // — redial once and resend rather than surfacing Unavailable.  Only an
    // immediate peer-gone failure qualifies: a *timeout* means the peer
    // holds the request, and resending is the retry layer's call, not
    // ours.  The whole idle pool predates the same restart, so flush it.
    const bool peer_gone = io_fail == framing::IoResult::kEof ||
                           io_fail == framing::IoResult::kError;
    const bool stale = reused && attempt == 0 && peer_gone;
    if (!stale) {
      if (write_failed) return response.status();
      return Status::Unavailable("read failed: " +
                                 response.status().ToString());
    }
    FlushIdle();
    stale_reconnects_.fetch_add(1, std::memory_order_relaxed);
    Wait(opts_.stale_reconnect_backoff);
    fd = AcquireConnection(&reused);
    if (!fd.ok()) return fd.status();
  }
  if (!response.ok()) {
    return Status::Unavailable("read failed: " + response.status().ToString());
  }

  bytes_received_.fetch_add(response->WireSize(), std::memory_order_relaxed);
  if (fault.kind == CallFaultKind::kDropResponse) {
    // The server executed — its state changed — but the answer is gone.
    return Status::Unavailable("injected fault: response lost");
  }
  if (response->type == MsgType::kError) {
    return DecodeErrorFrame(*response);
  }
  return response;
}

StatusOr<Message> TcpChannel::RoundTrip(int fd, const Message& request,
                                        bool* write_failed,
                                        framing::IoResult* io_fail) {
  const auto wire_start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  const auto wrote = framing::WriteFrame(fd, request, &sent);
  bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
  if (wrote != framing::IoResult::kOk) {
    // `io_fail` carries the write outcome: only a hard error
    // (EPIPE/ECONNRESET — the peer is *gone*) marks the connection stale;
    // a send timeout means the peer is merely black-holed and a redial
    // would stall just the same.
    *write_failed = true;
    *io_fail = wrote;
    return Status::Unavailable("write failed");
  }
  auto response = framing::ReadFrame(fd, opts_.max_frame_bytes, io_fail);
  const auto wire_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wire_start)
                           .count();
  wire_micros_.fetch_add(wire_us, std::memory_order_relaxed);
  return response;
}

}  // namespace ecc::net
