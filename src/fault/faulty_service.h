// FaultyService: a Service decorator that fails chosen invocations.
//
// Wraps any backing service and consults a FaultInjector before each
// Invoke; injected failures surface as Status::Unavailable after charging
// `failure_cost` to the caller's clock (the time burned before the failure
// was observed).  Used to exercise the parallel front-end's single-flight
// failure propagation: when a flight leader's service call fails, the
// coalesced followers must inherit the failure, not re-invoke the service
// and double-charge its latency.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "fault/fault.h"
#include "service/service.h"

namespace ecc::fault {

class FaultyService final : public service::Service {
 public:
  /// Neither pointer is owned.  `failure_cost` is the virtual time a failed
  /// invocation still burns (default: fail fast).
  FaultyService(service::Service* inner, FaultInjector* injector,
                Duration failure_cost = Duration::Zero())
      : inner_(inner), injector_(injector), failure_cost_(failure_cost) {
    assert(inner_ != nullptr && injector_ != nullptr);
  }

  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }

  [[nodiscard]] StatusOr<service::ServiceResult> Invoke(
      const sfc::GeoTemporalQuery& q, VirtualClock* clock) override {
    ++attempts_;
    const ServiceFault fault = injector_->OnServiceCall();
    if (fault.fail) {
      if (clock != nullptr) clock->Advance(failure_cost_);
      return Status::Unavailable("injected service failure");
    }
    if (fault.latency_multiplier > 1.0) {
      // Brownout: the answer arrives, just N× late.  Measure the normal
      // cost on a scratch clock, then charge the inflated cost.
      VirtualClock scratch;
      auto result = inner_->Invoke(q, &scratch);
      const Duration inflated =
          (scratch.now() - TimePoint::Epoch()) * fault.latency_multiplier;
      if (clock != nullptr) clock->Advance(inflated);
      if (result.ok()) result->exec_time = inflated;
      return result;
    }
    return inner_->Invoke(q, clock);
  }

  /// Successful invocations only (delegates to the backing service).
  [[nodiscard]] std::uint64_t invocations() const override {
    return inner_->invocations();
  }

  /// All attempts, failed ones included.
  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }

 private:
  service::Service* inner_;
  FaultInjector* injector_;
  Duration failure_cost_;
  std::uint64_t attempts_ = 0;
};

}  // namespace ecc::fault
