#include "fault/fault.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace ecc::fault {

const char* MigrationStepName(MigrationStep s) {
  switch (s) {
    case MigrationStep::kBeforeCopy: return "BEFORE_COPY";
    case MigrationStep::kMidCopy: return "MID_COPY";
    case MigrationStep::kAfterCopy: return "AFTER_COPY";
    case MigrationStep::kAfterVerify: return "AFTER_VERIFY";
    case MigrationStep::kAfterCommit: return "AFTER_COMMIT";
    case MigrationStep::kAfterDelete: return "AFTER_DELETE";
  }
  return "UNKNOWN";
}

const char* MigrationFaultName(MigrationFault f) {
  switch (f) {
    case MigrationFault::kNone: return "NONE";
    case MigrationFault::kAbort: return "ABORT";
    case MigrationFault::kCrashSource: return "CRASH_SOURCE";
    case MigrationFault::kCrashDest: return "CRASH_DEST";
  }
  return "UNKNOWN";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      call_rule_matches_(plan_.calls.size(), 0) {}

void FaultInjector::BindTrace(obs::TraceLog* trace,
                              const VirtualClock* clock) {
  const std::lock_guard<std::mutex> g(mutex_);
  trace_ = trace;
  trace_clock_ = clock;
}

void FaultInjector::TraceFault(std::uint64_t endpoint, obs::FaultCode code,
                               std::int64_t arg) {
  if (trace_ == nullptr) return;
  const TimePoint t =
      trace_clock_ != nullptr ? trace_clock_->now() : TimePoint::Epoch();
  trace_->Append(obs::FaultInjectedEvent(t, endpoint, code, arg));
}

net::CallFault FaultInjector::OnCall(std::uint64_t endpoint,
                                     net::MsgType type) {
  const std::lock_guard<std::mutex> g(mutex_);
  ++stats_.calls_seen;

  // A dead endpoint swallows everything, before any scripted rule.
  if (down_.count(endpoint) != 0) {
    ++stats_.requests_dropped;
    ++stats_.down_endpoint_drops;
    TraceFault(endpoint, obs::FaultCode::kDropRequest, /*arg=*/1);
    return {net::CallFaultKind::kDropRequest, {}};
  }

  // Scripted rules, in plan order; first firing rule wins.
  for (std::size_t i = 0; i < plan_.calls.size(); ++i) {
    const ScriptedCallFault& rule = plan_.calls[i];
    if (rule.endpoint != kAnyEndpoint && rule.endpoint != endpoint) continue;
    if (!rule.any_type && rule.type != type) continue;
    const std::size_t match = call_rule_matches_[i]++;
    if (match < rule.after_matching ||
        match >= rule.after_matching + rule.count) {
      continue;
    }
    switch (rule.kind) {
      case net::CallFaultKind::kDropRequest:
        ++stats_.requests_dropped;
        TraceFault(endpoint, obs::FaultCode::kDropRequest, 0);
        break;
      case net::CallFaultKind::kDropResponse:
        ++stats_.responses_dropped;
        TraceFault(endpoint, obs::FaultCode::kDropResponse, 0);
        break;
      case net::CallFaultKind::kDelay:
        ++stats_.delays;
        TraceFault(endpoint, obs::FaultCode::kDelay, rule.delay.micros());
        break;
      case net::CallFaultKind::kNone:
        break;
    }
    return {rule.kind, rule.delay};
  }

  // Background noise from the seed.  Heartbeat probes have their own drop
  // rate so detector tests can starve probes without touching data traffic.
  if (plan_.heartbeat_drop_p > 0.0 && type == net::MsgType::kStatsRequest &&
      rng_.Chance(plan_.heartbeat_drop_p)) {
    ++stats_.requests_dropped;
    TraceFault(endpoint, obs::FaultCode::kDropRequest, 0);
    return {net::CallFaultKind::kDropRequest, {}};
  }
  if (plan_.drop_request_p > 0.0 && rng_.Chance(plan_.drop_request_p)) {
    ++stats_.requests_dropped;
    TraceFault(endpoint, obs::FaultCode::kDropRequest, 0);
    return {net::CallFaultKind::kDropRequest, {}};
  }
  if (plan_.drop_response_p > 0.0 && rng_.Chance(plan_.drop_response_p)) {
    ++stats_.responses_dropped;
    TraceFault(endpoint, obs::FaultCode::kDropResponse, 0);
    return {net::CallFaultKind::kDropResponse, {}};
  }
  if (plan_.delay_p > 0.0 && rng_.Chance(plan_.delay_p)) {
    ++stats_.delays;
    const double mean = plan_.delay_mean.seconds();
    const Duration delay = Duration::Seconds(rng_.Exponential(mean));
    TraceFault(endpoint, obs::FaultCode::kDelay, delay.micros());
    return {net::CallFaultKind::kDelay, delay};
  }
  return {};
}

std::size_t FaultInjector::BeginMigration() {
  const std::lock_guard<std::mutex> g(mutex_);
  return migrations_started_++;
}

MigrationFault FaultInjector::OnMigrationStep(std::size_t index,
                                              MigrationStep step) {
  const std::lock_guard<std::mutex> g(mutex_);
  const auto fire = [this, step](MigrationFault f) {
    ++stats_.migration_faults;
    obs::FaultCode code = obs::FaultCode::kMigrationAbort;
    switch (f) {
      case MigrationFault::kCrashSource:
        code = obs::FaultCode::kMigrationCrashSource;
        break;
      case MigrationFault::kCrashDest:
        code = obs::FaultCode::kMigrationCrashDest;
        break;
      case MigrationFault::kAbort:
      case MigrationFault::kNone:
        break;
    }
    TraceFault(obs::kNoNode, code, static_cast<std::int64_t>(step));
    return f;
  };
  for (const ScriptedMigrationFault& rule : plan_.migrations) {
    if (rule.migration_index == index && rule.step == step &&
        rule.fault != MigrationFault::kNone) {
      return fire(rule.fault);
    }
  }
  if (plan_.migration_crash_p > 0.0 && rng_.Chance(plan_.migration_crash_p)) {
    return fire(rng_.Chance(0.5) ? MigrationFault::kCrashSource
                                 : MigrationFault::kCrashDest);
  }
  if (plan_.migration_abort_p > 0.0 && rng_.Chance(plan_.migration_abort_p)) {
    return fire(MigrationFault::kAbort);
  }
  return MigrationFault::kNone;
}

bool FaultInjector::ServiceShouldFailLocked() {
  const std::size_t index = service_invocations_++;
  const bool scripted =
      std::find(plan_.service_failures.begin(), plan_.service_failures.end(),
                index) != plan_.service_failures.end();
  if (scripted ||
      (plan_.service_failure_p > 0.0 && rng_.Chance(plan_.service_failure_p))) {
    ++stats_.service_failures;
    return true;
  }
  return false;
}

bool FaultInjector::OnServiceInvoke() {
  const std::lock_guard<std::mutex> g(mutex_);
  return ServiceShouldFailLocked();
}

ServiceFault FaultInjector::OnServiceCall() {
  const std::lock_guard<std::mutex> g(mutex_);
  ServiceFault verdict;
  verdict.fail = ServiceShouldFailLocked();
  if (verdict.fail) return verdict;

  // Scripted brownout windows first (strongest matching slowdown wins),
  // then seeded background noise.
  double multiplier = 1.0;
  for (const ScriptedBrownout& rule : plan_.brownouts) {
    if (service_slice_ >= rule.from_slice &&
        service_slice_ < rule.from_slice + rule.slices) {
      multiplier = std::max(multiplier, rule.latency_multiplier);
    }
  }
  if (multiplier <= 1.0 && plan_.brownout_p > 0.0 &&
      rng_.Chance(plan_.brownout_p)) {
    multiplier = plan_.brownout_multiplier;
  }
  if (multiplier > 1.0) {
    verdict.latency_multiplier = multiplier;
    ++stats_.brownouts;
    TraceFault(obs::kNoNode, obs::FaultCode::kBrownout,
               static_cast<std::int64_t>(multiplier));
  }
  return verdict;
}

void FaultInjector::AdvanceServiceSlice() {
  const std::lock_guard<std::mutex> g(mutex_);
  ++service_slice_;
}

std::size_t FaultInjector::service_slice() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return service_slice_;
}

void FaultInjector::MarkDown(std::uint64_t endpoint) {
  const std::lock_guard<std::mutex> g(mutex_);
  down_.insert(endpoint);
}

void FaultInjector::ClearDown(std::uint64_t endpoint) {
  const std::lock_guard<std::mutex> g(mutex_);
  down_.erase(endpoint);
}

bool FaultInjector::IsDown(std::uint64_t endpoint) const {
  const std::lock_guard<std::mutex> g(mutex_);
  return down_.count(endpoint) != 0;
}

FaultStats FaultInjector::stats() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return stats_;
}

std::size_t FaultInjector::migrations_started() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return migrations_started_;
}

std::uint64_t FaultSeedFromEnv(std::uint64_t fallback) {
  const char* env = std::getenv("ECC_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 0);
}

}  // namespace ecc::fault
