// Fault injection: a seedable plan of failures driven into the RPC layer
// and the migration protocols.
//
// The reproduction's elasticity protocols (GBA split, sweep-and-migrate,
// contraction merge) move live shard data between cloud nodes; without a
// failure model a single mid-migration fault would silently lose or
// duplicate keys.  A FaultInjector executes a FaultPlan:
//
//   * call faults — every LoopbackChannel::Call it is bound to can have its
//     request dropped, its response dropped (server-side effect HAPPENED),
//     or extra delay added, either scripted ("the 3rd MIGRATE to node 2")
//     or probabilistically from the seed;
//   * endpoint down — a node marked down drops every call until repaired
//     (models abrupt instance loss; the cache reacts with ring repair);
//   * migration faults — at any step of a two-phase migration the injector
//     can abort the protocol (simulating a coordinator crash: recovery must
//     roll back or roll forward) or crash the source/destination node;
//   * service faults — a wrapped backing service (FaultyService) fails
//     chosen invocations, exercising single-flight failure propagation.
//
// Everything is deterministic from FaultPlan::seed; ECC_FAULT_SEED
// reproduces a failed randomized run (see FaultSeedFromEnv).
//
// Thread-safety: OnCall / OnServiceInvoke / MarkDown are called from
// concurrent front-end workers; all mutable state is mutex-guarded.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "net/message.h"
#include "net/rpc.h"
#include "obs/trace.h"

namespace ecc::fault {

/// Matches any endpoint / node in scripted rules.
inline constexpr std::uint64_t kAnyEndpoint = ~0ull;

/// The interruption points of a two-phase migration (split or merge).
/// The protocol is copy -> verify -> commit -> delete-at-source; the cache
/// consults the injector between phases.
enum class MigrationStep : int {
  kBeforeCopy = 0,  ///< destination chosen, nothing shipped yet
  kMidCopy,         ///< after the first batch landed (partial copy)
  kAfterCopy,       ///< all batches shipped, source still intact
  kAfterVerify,     ///< destination acknowledged the full range
  kAfterCommit,     ///< ring updated, source copies not yet deleted
  kAfterDelete,     ///< protocol complete
};
inline constexpr int kMigrationStepCount = 6;

[[nodiscard]] const char* MigrationStepName(MigrationStep s);

/// What happens at an injected migration fault.
enum class MigrationFault : int {
  kNone = 0,
  kAbort,        ///< the protocol stops here; recovery must restore invariants
  kCrashSource,  ///< the source node dies abruptly at this step
  kCrashDest,    ///< the destination node dies abruptly at this step
};

[[nodiscard]] const char* MigrationFaultName(MigrationFault f);

/// One scripted call fault: fire `count` times starting at the
/// `after_matching`-th call (0-based) that matches endpoint + type.
struct ScriptedCallFault {
  std::uint64_t endpoint = kAnyEndpoint;
  net::MsgType type = net::MsgType::kGetRequest;
  bool any_type = true;
  std::size_t after_matching = 0;
  std::size_t count = 1;
  net::CallFaultKind kind = net::CallFaultKind::kDropRequest;
  Duration delay;  ///< for kDelay
};

/// One scripted migration fault: fire at `step` of the `migration_index`-th
/// migration the cache starts (splits and merges share one counter).
struct ScriptedMigrationFault {
  std::size_t migration_index = 0;
  MigrationStep step = MigrationStep::kBeforeCopy;
  MigrationFault fault = MigrationFault::kAbort;
};

/// One scripted sustained brownout: every service invocation in time-step
/// slices [from_slice, from_slice + slices) costs `latency_multiplier`× its
/// normal execution time.  The slice counter advances via
/// FaultInjector::AdvanceServiceSlice(), which the experiment driver calls
/// alongside its EndTimeStep.  This is the deterministic way to trip the
/// circuit breaker: a browned-out service still answers, just ruinously
/// late (a ×10 brownout turns a 23 s miss into 230 s).
struct ScriptedBrownout {
  std::size_t from_slice = 0;
  std::size_t slices = 1;
  double latency_multiplier = 10.0;
};

struct FaultPlan {
  std::uint64_t seed = 0x5eedfa17ULL;

  // Background probabilistic noise applied to every intercepted call (on
  // top of scripted faults; scripted rules win when both match).
  double drop_request_p = 0.0;
  double drop_response_p = 0.0;
  double delay_p = 0.0;
  Duration delay_mean = Duration::Millis(5);

  /// Probability a heartbeat probe (a StatsRequest) is dropped, on top of
  /// the generic noise above.  Lets failure-detector tests lose probes
  /// without perturbing data-path GET/PUT traffic.
  double heartbeat_drop_p = 0.0;

  // Probabilistic migration churn: at each step, abort/crash with these
  // odds (the deterministic schedule in `migrations` fires first).
  double migration_abort_p = 0.0;
  double migration_crash_p = 0.0;

  /// Probability a FaultyService invocation fails.
  double service_failure_p = 0.0;
  /// Invocation indices (0-based, counting attempts) that always fail.
  std::vector<std::size_t> service_failures;

  /// Probability an invocation is browned out (seeded background noise, on
  /// top of the scripted schedule below), and the slowdown it applies.
  double brownout_p = 0.0;
  double brownout_multiplier = 10.0;

  std::vector<ScriptedCallFault> calls;
  std::vector<ScriptedMigrationFault> migrations;
  std::vector<ScriptedBrownout> brownouts;
};

struct FaultStats {
  std::uint64_t calls_seen = 0;
  std::uint64_t requests_dropped = 0;
  std::uint64_t responses_dropped = 0;
  std::uint64_t delays = 0;
  std::uint64_t down_endpoint_drops = 0;  ///< of requests_dropped, to a dead node
  std::uint64_t migration_faults = 0;
  std::uint64_t service_failures = 0;
  std::uint64_t brownouts = 0;  ///< invocations served with inflated latency
};

/// Verdict for one service invocation (FaultyService consults this).
struct ServiceFault {
  bool fail = false;
  /// > 1.0 = the invocation succeeds but costs this multiple of its normal
  /// execution time (brownout).
  double latency_multiplier = 1.0;
};

class FaultInjector final : public net::CallInterceptor {
 public:
  explicit FaultInjector(FaultPlan plan = {});

  // --- net::CallInterceptor ----------------------------------------------
  [[nodiscard]] net::CallFault OnCall(std::uint64_t endpoint,
                                      net::MsgType type) override;

  // --- migration hooks (driven by ElasticCache) ---------------------------

  /// A migration is starting; returns its index in the global order.
  std::size_t BeginMigration();

  /// Consulted between phases of migration `index`.
  [[nodiscard]] MigrationFault OnMigrationStep(std::size_t index,
                                               MigrationStep step);

  // --- service hooks (driven by FaultyService) ----------------------------

  /// True => fail this invocation.
  [[nodiscard]] bool OnServiceInvoke();

  /// Full verdict: failure plus any brownout slowdown for the current
  /// service slice.  Supersedes OnServiceInvoke (which remains for callers
  /// that only care about hard failures); both consume one invocation
  /// index.
  [[nodiscard]] ServiceFault OnServiceCall();

  /// Advance the brownout slice counter; the experiment driver calls this
  /// once per time step, next to its EndTimeStep.
  void AdvanceServiceSlice();
  [[nodiscard]] std::size_t service_slice() const;

  // --- endpoint liveness --------------------------------------------------

  /// All future calls to `endpoint` are dropped until ClearDown.
  void MarkDown(std::uint64_t endpoint);
  void ClearDown(std::uint64_t endpoint);
  [[nodiscard]] bool IsDown(std::uint64_t endpoint) const;

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t migrations_started() const;

  /// Emit a kFaultInjected trace event for every fault that actually fires
  /// (neither pointer is owned; nullptr trace detaches).  Events are stamped
  /// from `clock` when given, else with the epoch.  ElasticCache forwards
  /// its own trace/clock pair here automatically.
  void BindTrace(obs::TraceLog* trace, const VirtualClock* clock = nullptr);

 private:
  /// Requires mutex_ held (TraceLog has its own lock; nothing here calls
  /// back into the injector, so the order mutex_ -> trace lock is safe).
  void TraceFault(std::uint64_t endpoint, obs::FaultCode code,
                  std::int64_t arg);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::set<std::uint64_t> down_;
  std::vector<std::size_t> call_rule_matches_;  ///< per scripted call rule
  /// Requires mutex_ held; consumes one invocation index.
  [[nodiscard]] bool ServiceShouldFailLocked();

  std::size_t migrations_started_ = 0;
  std::size_t service_invocations_ = 0;
  std::size_t service_slice_ = 0;
  FaultStats stats_;
  obs::TraceLog* trace_ = nullptr;
  const VirtualClock* trace_clock_ = nullptr;
};

/// The seed to use for a randomized fault schedule: ECC_FAULT_SEED from the
/// environment when set (decimal or 0x-hex), else `fallback`.  Tests log
/// the value they used so any failure replays bit-exactly.
[[nodiscard]] std::uint64_t FaultSeedFromEnv(std::uint64_t fallback);

}  // namespace ecc::fault
