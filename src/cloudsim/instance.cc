#include "cloudsim/instance.h"

#include <cmath>

namespace ecc::cloudsim {

InstanceType SmallInstance() {
  return {"m1.small", 1700ull * 1024 * 1024, 1.0, 0.085};
}

InstanceType LargeInstance() {
  return {"m1.large", 7680ull * 1024 * 1024, 4.0, 0.34};
}

InstanceType XLargeInstance() {
  return {"m1.xlarge", 15360ull * 1024 * 1024, 8.0, 0.68};
}

InstanceType HighMemXLInstance() {
  return {"m2.xlarge", 17510ull * 1024 * 1024, 6.5, 0.50};
}

const char* InstanceStateName(InstanceState s) {
  switch (s) {
    case InstanceState::kBooting: return "BOOTING";
    case InstanceState::kRunning: return "RUNNING";
    case InstanceState::kTerminated: return "TERMINATED";
    case InstanceState::kFailed: return "FAILED";
  }
  return "UNKNOWN";
}

Duration Instance::RunningTime(TimePoint now) const {
  switch (state) {
    case InstanceState::kBooting:
      return Duration::Zero();
    case InstanceState::kRunning:
      return now - running_at;
    case InstanceState::kTerminated:
    case InstanceState::kFailed:
      return terminated_at - running_at;
  }
  return Duration::Zero();
}

double Instance::CostDollars(TimePoint now) const {
  // Billing starts at the allocation request (EC2 bills from launch), in
  // whole started hours.
  TimePoint end;
  switch (state) {
    case InstanceState::kBooting:
      end = now;
      break;
    case InstanceState::kRunning:
      end = now;
      break;
    case InstanceState::kTerminated:
    case InstanceState::kFailed:
      end = terminated_at;
      break;
  }
  const double hours = (end - requested_at).hours();
  const double billed = std::max(1.0, std::ceil(hours));
  return billed * type.price_per_hour;
}

}  // namespace ecc::cloudsim
