// Cloud instance descriptions (EC2 circa 2010).
//
// The paper evaluates on Small EC2 instances: 1.7 GB memory, one virtual
// core, 32-bit, $0.085/hour (2010 on-demand pricing).  The catalog below
// also carries the Large/XL types the paper's cost discussion (§IV.D)
// mentions, so the cost_advisor example can compare instance choices.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.h"

namespace ecc::cloudsim {

struct InstanceType {
  std::string name;
  std::uint64_t memory_bytes = 0;
  double compute_units = 0.0;  ///< EC2 "ECU"s
  double price_per_hour = 0.0; ///< USD, on-demand

  friend bool operator==(const InstanceType&, const InstanceType&) = default;
};

[[nodiscard]] InstanceType SmallInstance();   ///< m1.small: 1.7 GB, 1 ECU
[[nodiscard]] InstanceType LargeInstance();   ///< m1.large: 7.5 GB, 4 ECU
[[nodiscard]] InstanceType XLargeInstance();  ///< m1.xlarge: 15 GB, 8 ECU
[[nodiscard]] InstanceType HighMemXLInstance();  ///< m2.xlarge: 17.1 GB

using InstanceId = std::uint64_t;

enum class InstanceState {
  kBooting,
  kRunning,
  kTerminated,
  /// Abrupt loss (hardware fault, injected crash): billed like a
  /// termination, but distinguished for failure accounting.
  kFailed,
};

[[nodiscard]] const char* InstanceStateName(InstanceState s);

struct Instance {
  InstanceId id = 0;
  InstanceType type;
  InstanceState state = InstanceState::kBooting;
  TimePoint requested_at;
  TimePoint running_at;     ///< when boot completed
  TimePoint terminated_at;  ///< valid when kTerminated

  /// Time this instance has been (or was) running as of `now`.
  [[nodiscard]] Duration RunningTime(TimePoint now) const;

  /// EC2-style cost: each started hour is billed in full.
  [[nodiscard]] double CostDollars(TimePoint now) const;
};

}  // namespace ecc::cloudsim
