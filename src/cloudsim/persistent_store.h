// Simulated persistent Cloud object store (S3-like, 2010 pricing).
//
// The paper's §IV.D "assessed the various cost aspects of the Cloud's
// persistent storage, such as Amazon S3 and Elastic Block Storage" and
// defers the study to a companion paper.  This substrate lets the cache
// spill evicted derived results to durable storage: object get/put charge
// a latency far above memory yet far below recomputation, and cost accrues
// as $/GB-month plus per-request fees.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/time.h"

namespace ecc::cloudsim {

struct PersistentStoreOptions {
  /// Object round-trip latencies (2010-era S3 from EC2).
  Duration get_latency = Duration::Millis(220);
  Duration put_latency = Duration::Millis(300);
  /// 2010 S3 pricing: ~$0.15/GB-month, ~$0.01 per 1000 PUTs,
  /// ~$0.001 per 1000 GETs.
  double price_per_gb_month = 0.15;
  double put_price_per_1k = 0.01;
  double get_price_per_1k = 0.001;
};

class PersistentStore {
 public:
  /// `clock` is shared with the simulation; not owned.
  PersistentStore(PersistentStoreOptions opts, VirtualClock* clock);

  /// Store (replacing) an object; charges put latency.
  void Put(std::uint64_t key, std::string value);

  /// Fetch an object; charges get latency (also on miss — the request
  /// still happens).
  [[nodiscard]] StatusOr<std::string> Get(std::uint64_t key);

  /// Delete; no latency charge (asynchronous fire-and-forget).
  bool Erase(std::uint64_t key);

  [[nodiscard]] bool Contains(std::uint64_t key) const {
    return objects_.count(key) != 0;
  }
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] std::uint64_t puts() const { return puts_; }
  [[nodiscard]] std::uint64_t gets() const { return gets_; }
  [[nodiscard]] std::uint64_t get_hits() const { return get_hits_; }

  /// Storage + request bill as of the clock's now.
  [[nodiscard]] double AccruedCostDollars() const;

 private:
  /// Fold the byte-time integral forward to `now`.
  void AccrueStorage();

  PersistentStoreOptions opts_;
  VirtualClock* clock_;
  std::unordered_map<std::uint64_t, std::string> objects_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t get_hits_ = 0;
  /// Integral of used_bytes over time, in byte-seconds.
  double byte_seconds_ = 0.0;
  TimePoint last_accrual_;
};

}  // namespace ecc::cloudsim
