#include "cloudsim/billing.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"

namespace ecc::cloudsim {

double BillingReport::RoundingWasteFraction() const {
  if (billed_hours <= 0.0) return 0.0;
  return 1.0 - node_hours / billed_hours;
}

std::string BillingReport::ToTable() const {
  Table table({"instance", "type", "state", "launched", "lifetime",
               "billed_h", "usd"});
  for (const BillingLineItem& item : items) {
    table.AddRow({std::to_string(item.instance), item.instance_type,
                  InstanceStateName(item.state), item.launched.ToString(),
                  item.lifetime.ToString(), FormatG(item.billed_hours),
                  FormatG(item.cost_usd)});
  }
  table.AddRow({"TOTAL", "", "", "", FormatG(node_hours) + "h run",
                FormatG(billed_hours), FormatG(total_usd)});
  return table.ToString();
}

std::string BillingReport::ToCsv() const {
  std::string out = "instance,type,state,launched_s,lifetime_s,billed_h,usd\n";
  for (const BillingLineItem& item : items) {
    out += std::to_string(item.instance) + ',' + item.instance_type + ',' +
           InstanceStateName(item.state) + ',' +
           FormatG(item.launched.seconds()) + ',' +
           FormatG(item.lifetime.seconds()) + ',' +
           FormatG(item.billed_hours) + ',' + FormatG(item.cost_usd) + '\n';
  }
  return out;
}

BillingReport MakeBillingReport(const CloudProvider& provider,
                                TimePoint now) {
  BillingReport report;
  std::vector<const Instance*> instances = provider.AllInstances();
  std::sort(instances.begin(), instances.end(),
            [](const Instance* a, const Instance* b) {
              return a->requested_at < b->requested_at ||
                     (a->requested_at == b->requested_at && a->id < b->id);
            });
  for (const Instance* inst : instances) {
    BillingLineItem item;
    item.instance = inst->id;
    item.instance_type = inst->type.name;
    item.state = inst->state;
    item.launched = inst->requested_at;
    const TimePoint end = inst->state == InstanceState::kTerminated ||
                                  inst->state == InstanceState::kFailed
                              ? inst->terminated_at
                              : now;
    item.lifetime = end - inst->requested_at;
    item.cost_usd = inst->CostDollars(now);
    item.billed_hours = inst->type.price_per_hour > 0.0
                            ? item.cost_usd / inst->type.price_per_hour
                            : 0.0;
    report.total_usd += item.cost_usd;
    report.billed_hours += item.billed_hours;
    report.node_hours += inst->RunningTime(now).hours();
    report.items.push_back(std::move(item));
  }
  return report;
}

}  // namespace ecc::cloudsim
