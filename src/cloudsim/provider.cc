#include "cloudsim/provider.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace ecc::cloudsim {

CloudProvider::CloudProvider(CloudOptions opts, VirtualClock* clock)
    : opts_(opts), clock_(clock), rng_(opts.seed) {
  assert(clock != nullptr);
}

Duration CloudProvider::DrawBootDelay() {
  const double secs = rng_.Normal(opts_.boot_mean.seconds(),
                                  opts_.boot_stddev.seconds());
  return std::max(opts_.boot_min, Duration::Seconds(secs));
}

StatusOr<InstanceId> CloudProvider::Allocate() {
  if (opts_.max_instances != 0 && LiveCount() >= opts_.max_instances) {
    return Status::CapacityExceeded("instance limit reached");
  }

  // Warm path: take the earliest-prewarmed instance.
  if (!warm_pool_.empty()) {
    const InstanceId id = warm_pool_.front();
    warm_pool_.pop_front();
    Instance& inst = instances_.at(id);
    Duration wait = Duration::Zero();
    if (inst.running_at > clock_->now()) {
      // Still booting: pay only the residual.
      wait = inst.running_at - clock_->now();
      clock_->Advance(wait);
    }
    inst.state = InstanceState::kRunning;
    allocated_[id] = true;
    ++stats_.warm_hits;
    stats_.total_boot_wait += wait;
    stats_.last_boot_wait = wait;
    ECC_LOG_INFO("cloud: warm allocate #%llu (waited %s)",
                 static_cast<unsigned long long>(id),
                 wait.ToString().c_str());
    return id;
  }

  // Cold path: boot now, block for the whole delay.
  const Duration boot = DrawBootDelay();
  Instance inst;
  inst.id = NextId();
  inst.type = opts_.instance_type;
  inst.requested_at = clock_->now();
  clock_->Advance(boot);
  inst.running_at = clock_->now();
  inst.state = InstanceState::kRunning;
  const InstanceId id = inst.id;
  instances_.emplace(id, std::move(inst));
  allocated_[id] = true;
  ++stats_.cold_allocations;
  stats_.total_boot_wait += boot;
  stats_.last_boot_wait = boot;
  ECC_LOG_INFO("cloud: cold allocate #%llu (boot %s)",
               static_cast<unsigned long long>(id), boot.ToString().c_str());
  return id;
}

Status CloudProvider::Terminate(InstanceId id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) return Status::NotFound("unknown instance");
  Instance& inst = it->second;
  if (inst.state == InstanceState::kTerminated ||
      inst.state == InstanceState::kFailed) {
    return Status::FailedPrecondition("already terminated");
  }
  // A booting warm instance can be cancelled too; bill from request time.
  if (inst.running_at > clock_->now()) inst.running_at = clock_->now();
  inst.state = InstanceState::kTerminated;
  inst.terminated_at = clock_->now();
  allocated_.erase(id);
  warm_pool_.erase(std::remove(warm_pool_.begin(), warm_pool_.end(), id),
                   warm_pool_.end());
  ++stats_.terminations;
  ECC_LOG_INFO("cloud: terminate #%llu", static_cast<unsigned long long>(id));
  return Status::Ok();
}

Status CloudProvider::Fail(InstanceId id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) return Status::NotFound("unknown instance");
  Instance& inst = it->second;
  if (inst.state == InstanceState::kTerminated ||
      inst.state == InstanceState::kFailed) {
    return Status::FailedPrecondition("already terminated");
  }
  if (inst.running_at > clock_->now()) inst.running_at = clock_->now();
  inst.state = InstanceState::kFailed;
  inst.terminated_at = clock_->now();
  allocated_.erase(id);
  warm_pool_.erase(std::remove(warm_pool_.begin(), warm_pool_.end(), id),
                   warm_pool_.end());
  ++stats_.failures;
  ECC_LOG_WARN("cloud: instance #%llu FAILED",
               static_cast<unsigned long long>(id));
  return Status::Ok();
}

void CloudProvider::PrewarmAsync(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.id = NextId();
    inst.type = opts_.instance_type;
    inst.requested_at = clock_->now();
    inst.running_at = clock_->now() + DrawBootDelay();
    inst.state = InstanceState::kBooting;
    warm_pool_.push_back(inst.id);
    instances_.emplace(inst.id, std::move(inst));
  }
}

const Instance* CloudProvider::Get(InstanceId id) const {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

std::size_t CloudProvider::LiveCount() const { return allocated_.size(); }

std::size_t CloudProvider::WarmPoolCount() const { return warm_pool_.size(); }

std::size_t CloudProvider::WarmReadyCount() const {
  std::size_t ready = 0;
  for (const InstanceId id : warm_pool_) {
    const auto it = instances_.find(id);
    if (it != instances_.end() && it->second.running_at <= clock_->now()) {
      ++ready;
    }
  }
  return ready;
}

double CloudProvider::AccruedCostDollars() const {
  double total = 0.0;
  for (const auto& [id, inst] : instances_) {
    total += inst.CostDollars(clock_->now());
  }
  return total;
}

Duration CloudProvider::TotalAllocatedNodeTime() const {
  Duration total = Duration::Zero();
  for (const auto& [id, inst] : instances_) {
    total += inst.RunningTime(clock_->now());
  }
  return total;
}

std::vector<const Instance*> CloudProvider::AllInstances() const {
  std::vector<const Instance*> out;
  out.reserve(instances_.size());
  for (const auto& [id, inst] : instances_) out.push_back(&inst);
  return out;
}

}  // namespace ecc::cloudsim
