#include "cloudsim/persistent_store.h"

#include <cassert>

namespace ecc::cloudsim {

namespace {
constexpr double kSecondsPerMonth = 30.0 * 24.0 * 3600.0;
constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;
}  // namespace

PersistentStore::PersistentStore(PersistentStoreOptions opts,
                                 VirtualClock* clock)
    : opts_(opts), clock_(clock), last_accrual_(clock->now()) {
  assert(clock != nullptr);
}

void PersistentStore::AccrueStorage() {
  const TimePoint now = clock_->now();
  byte_seconds_ += static_cast<double>(used_bytes_) *
                   (now - last_accrual_).seconds();
  last_accrual_ = now;
}

void PersistentStore::Put(std::uint64_t key, std::string value) {
  AccrueStorage();
  clock_->Advance(opts_.put_latency);
  ++puts_;
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    used_bytes_ -= it->second.size();
    it->second = std::move(value);
    used_bytes_ += it->second.size();
    return;
  }
  used_bytes_ += value.size();
  objects_.emplace(key, std::move(value));
}

StatusOr<std::string> PersistentStore::Get(std::uint64_t key) {
  AccrueStorage();
  clock_->Advance(opts_.get_latency);
  ++gets_;
  const auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound();
  ++get_hits_;
  return it->second;
}

bool PersistentStore::Erase(std::uint64_t key) {
  AccrueStorage();
  const auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  used_bytes_ -= it->second.size();
  objects_.erase(it);
  return true;
}

double PersistentStore::AccruedCostDollars() const {
  const double live_byte_seconds =
      byte_seconds_ + static_cast<double>(used_bytes_) *
                          (clock_->now() - last_accrual_).seconds();
  const double gb_months =
      live_byte_seconds / kBytesPerGb / kSecondsPerMonth;
  return gb_months * opts_.price_per_gb_month +
         static_cast<double>(puts_) / 1000.0 * opts_.put_price_per_1k +
         static_cast<double>(gets_) / 1000.0 * opts_.get_price_per_1k;
}

}  // namespace ecc::cloudsim
