// Billing reports: itemized cloud spend.
//
// The paper's §IV.D weighs "cost aspects of the Cloud" (instance-hours,
// storage classes); the evaluation repeatedly argues in dollars.  This
// report turns the provider's instance ledger into per-instance line items
// and aggregate statistics a bench or example can print or export.
#pragma once

#include <string>
#include <vector>

#include "cloudsim/instance.h"
#include "cloudsim/provider.h"
#include "common/status.h"

namespace ecc::cloudsim {

struct BillingLineItem {
  InstanceId instance = 0;
  std::string instance_type;
  InstanceState state = InstanceState::kTerminated;
  TimePoint launched;
  Duration lifetime;       ///< launch to termination (or `now`)
  double billed_hours = 0; ///< whole started hours
  double cost_usd = 0.0;
};

struct BillingReport {
  std::vector<BillingLineItem> items;  ///< launch-ordered
  double total_usd = 0.0;
  double node_hours = 0.0;             ///< actual running time, fractional
  double billed_hours = 0.0;           ///< whole-started-hour total
  /// Waste = billed but unused fraction of the bill (the whole-hour
  /// rounding penalty elasticity churn pays).
  [[nodiscard]] double RoundingWasteFraction() const;

  /// Aligned text table (one row per instance + a total row).
  [[nodiscard]] std::string ToTable() const;
  /// CSV with the same columns.
  [[nodiscard]] std::string ToCsv() const;
};

/// Snapshot the provider's ledger as of its clock's `now`.
[[nodiscard]] BillingReport MakeBillingReport(const CloudProvider& provider,
                                              TimePoint now);

}  // namespace ecc::cloudsim
