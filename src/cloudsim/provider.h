// Simulated elastic cloud provider.
//
// Substitutes for Amazon EC2 in the reproduction.  Allocation is synchronous
// from the caller's perspective — the paper's GBA insert blocks on node
// acquisition, which is exactly why Fig. 4's split overhead is dominated by
// allocation time — and charges a stochastic boot delay (normal, truncated)
// to the shared virtual clock.
//
// Extension (paper §VI future work): a warm pool.  PrewarmAsync() launches
// instances whose boot completes in background virtual time; a subsequent
// Allocate() that finds a warmed instance pays nothing.  The
// ablation_warmpool bench quantifies the benefit.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "cloudsim/instance.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

namespace ecc::cloudsim {

struct CloudOptions {
  InstanceType instance_type = SmallInstance();
  Duration boot_mean = Duration::Seconds(80);
  Duration boot_stddev = Duration::Seconds(15);
  Duration boot_min = Duration::Seconds(30);
  std::uint64_t seed = 0xec2ULL;
  /// Hard cap on simultaneously live instances (0 = unlimited), modelling
  /// an account limit.
  std::size_t max_instances = 0;
};

struct AllocationStats {
  std::uint64_t cold_allocations = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t terminations = 0;
  std::uint64_t failures = 0;  ///< abrupt instance losses (Fail)
  Duration total_boot_wait;  ///< clock time spent waiting on boots
  Duration last_boot_wait;
};

class CloudProvider {
 public:
  /// `clock` is shared with the rest of the simulation; not owned.
  CloudProvider(CloudOptions opts, VirtualClock* clock);

  CloudProvider(const CloudProvider&) = delete;
  CloudProvider& operator=(const CloudProvider&) = delete;

  /// Acquire one instance.  Prefers a warmed instance (no wait, or only the
  /// residual boot wait if it is still booting); otherwise boots cold,
  /// advancing the clock by the full boot delay.
  [[nodiscard]] StatusOr<InstanceId> Allocate();

  /// Release an instance.  Idempotent errors: unknown/terminated ids fail.
  Status Terminate(InstanceId id);

  /// Record an abrupt instance loss (crash injection / node failure): the
  /// instance leaves service immediately, billed like a termination but
  /// marked kFailed and counted in stats().failures.
  Status Fail(InstanceId id);

  /// Launch `n` instances in the background (clock does not advance); they
  /// become free warm capacity once their boot completes.
  void PrewarmAsync(std::size_t n);

  [[nodiscard]] const Instance* Get(InstanceId id) const;
  [[nodiscard]] std::size_t LiveCount() const;       ///< booting+running, allocated
  [[nodiscard]] std::size_t WarmPoolCount() const;   ///< unallocated warm
  /// Warm instances whose boot has already completed (an Allocate() would
  /// return one of these without any wait).
  [[nodiscard]] std::size_t WarmReadyCount() const;
  [[nodiscard]] const AllocationStats& stats() const { return stats_; }
  [[nodiscard]] VirtualClock& clock() { return *clock_; }

  /// Total bill, EC2 whole-started-hours, across live and terminated
  /// instances (warm-pool instances included — idle warm capacity costs
  /// real money, which the ablation accounts for).
  [[nodiscard]] double AccruedCostDollars() const;

  /// Integral of allocated-and-running instance time (for the paper's
  /// "average nodes over the experiment" metric).
  [[nodiscard]] Duration TotalAllocatedNodeTime() const;

  /// Every instance ever seen (live and terminated), for reporting.
  [[nodiscard]] std::vector<const Instance*> AllInstances() const;

 private:
  [[nodiscard]] Duration DrawBootDelay();
  [[nodiscard]] InstanceId NextId() { return next_id_++; }

  CloudOptions opts_;
  VirtualClock* clock_;
  Rng rng_;
  InstanceId next_id_ = 1;
  std::map<InstanceId, Instance> instances_;
  /// Ids of instances launched via PrewarmAsync and not yet handed out.
  std::deque<InstanceId> warm_pool_;
  /// Ids handed out to the caller (subset of running/booting instances).
  std::map<InstanceId, bool> allocated_;
  AllocationStats stats_;
};

}  // namespace ecc::cloudsim
