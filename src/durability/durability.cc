#include "durability/durability.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "durability/snapshot.h"

namespace ecc::durability {

namespace {

const char* Env(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

TimePoint Stamp(const DurabilityOptions& opts) {
  return opts.now ? opts.now() : TimePoint{};
}

}  // namespace

Status EnsureDir(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty durability dir");
  // mkdir -p: create each prefix, tolerating the ones that already exist.
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir " + prefix + ": " +
                              std::strerror(errno));
    }
  }
  return Status::Ok();
}

DurabilityOptions DurabilityOptionsFromEnv(DurabilityOptions base) {
  if (const char* v = Env("ECC_DURABILITY_DIR")) base.dir = v;
  if (const char* v = Env("ECC_DURABILITY_FSYNC")) {
    base.fsync = !(v[0] == '0' && v[1] == '\0');
  }
  if (const char* v = Env("ECC_DURABILITY_SNAPSHOT_EVERY")) {
    const long long n = std::atoll(v);
    if (n > 0) base.snapshot_every_appends = static_cast<std::uint64_t>(n);
  }
  return base;
}

// --- NodeDurability --------------------------------------------------------

NodeDurability::NodeDurability(std::string dir, const DurabilityOptions& opts)
    : dir_(std::move(dir)), opts_(opts), wal_(dir_ + "/wal.ecc") {}

NodeDurability::~NodeDurability() { Detach(); }

Status NodeDurability::Attach(core::CacheNode* node) {
  if (node == nullptr) return Status::InvalidArgument("null node");
  if (node->record_count() != 0) {
    return Status::FailedPrecondition("attach to a non-empty shard");
  }
  if (Status s = EnsureDir(dir_); !s.ok()) return s;

  // 1. Snapshot, if any.  A damaged snapshot is never served: fall back to
  //    the WAL alone (whatever was compacted away is lost, which the log
  //    records loudly).
  auto blob = LoadSnapshotFile(dir_);
  if (blob.ok()) {
    if (Status s = node->RestoreShard(*blob); !s.ok()) return s;
    recovered_.snapshot_records = node->record_count();
  } else if (blob.status().code() == StatusCode::kInvalidArgument) {
    ECC_LOG_WARN("durability: %s: %s (recovering from WAL only)",
                 dir_.c_str(), blob.status().message().c_str());
  } else if (blob.status().code() != StatusCode::kNotFound) {
    return blob.status();
  }

  // 2. WAL replay on top.  AlreadyExists is benign: a crash between the
  //    snapshot rename and the WAL reset leaves records in both.
  auto replayed = WriteAheadLog::Replay(
      wal_.path(), [node](const WalRecord& r) -> Status {
        switch (r.op) {
          case WalRecord::Op::kPut: {
            const Status s = node->Insert(r.key, r.value);
            if (s.ok() || s.code() == StatusCode::kAlreadyExists) {
              return Status::Ok();
            }
            return s;
          }
          case WalRecord::Op::kErase:
            node->Erase(r.key);
            return Status::Ok();
          case WalRecord::Op::kEraseRange:
            node->EraseRange(r.key, r.hi);
            return Status::Ok();
        }
        return Status::InvalidArgument("unknown wal op");
      });
  if (!replayed.ok()) return replayed.status();
  recovered_.wal_records = replayed->records;
  recovered_.wal_bytes_truncated = replayed->bytes_truncated;
  recovered_.torn = replayed->torn;
  appends_since_snapshot_ = replayed->records;

  // 3. Start mirroring.
  if (Status s = wal_.Open(); !s.ok()) return s;
  node_ = node;
  node_->BindMutationListener(this);
  return Status::Ok();
}

void NodeDurability::Detach() {
  const std::lock_guard<std::mutex> g(mutex_);
  if (node_ != nullptr) {
    node_->BindMutationListener(nullptr);
    node_ = nullptr;
  }
  if (wal_.is_open()) {
    if (opts_.fsync) (void)wal_.Sync();
    wal_.Close();
  }
}

void NodeDurability::AppendLocked(const WalRecord& r) {
  if (!wal_.is_open()) return;
  const std::uint64_t before = wal_.bytes_appended();
  if (Status s = wal_.Append(r); !s.ok()) {
    // A full disk must not take the cache down; it only loses durability.
    ECC_LOG_ERROR("durability: %s: %s", dir_.c_str(), s.message().c_str());
    return;
  }
  ++appends_since_snapshot_;
  ++batch_records_;
  batch_bytes_ += wal_.bytes_appended() - before;
  if (appends_since_snapshot_ >= opts_.snapshot_every_appends) {
    // Compact inline: the mutation callback runs on the thread that owns
    // the shard, so serializing the tree here is race-free even when
    // Tick() is driven from a different thread (the TCP fleet runner's
    // serve loop).
    if (Status s = CompactLocked(); !s.ok()) {
      ECC_LOG_ERROR("durability: compact %s: %s", dir_.c_str(),
                    s.message().c_str());
    }
  }
}

void NodeDurability::OnInsert(core::Key k, std::string_view v) {
  WalRecord r;
  r.op = WalRecord::Op::kPut;
  r.key = k;
  r.value.assign(v.data(), v.size());
  const std::lock_guard<std::mutex> g(mutex_);
  AppendLocked(r);
}

void NodeDurability::OnErase(core::Key k) {
  WalRecord r;
  r.op = WalRecord::Op::kErase;
  r.key = k;
  const std::lock_guard<std::mutex> g(mutex_);
  AppendLocked(r);
}

void NodeDurability::OnEraseRange(core::Key lo, core::Key hi) {
  WalRecord r;
  r.op = WalRecord::Op::kEraseRange;
  r.key = lo;
  r.hi = hi;
  const std::lock_guard<std::mutex> g(mutex_);
  AppendLocked(r);
}

void NodeDurability::OnRestore() {
  const std::lock_guard<std::mutex> g(mutex_);
  need_compact_ = true;
}

void NodeDurability::Tick() {
  const std::lock_guard<std::mutex> g(mutex_);
  if (batch_records_ > 0) {
    if (opts_.fsync) {
      if (Status s = wal_.Sync(); !s.ok()) {
        ECC_LOG_ERROR("durability: %s: %s", dir_.c_str(),
                      s.message().c_str());
      }
    }
    obs::Emit(opts_.obs.trace,
              obs::WalAppendEvent(Stamp(opts_),
                                  node_ != nullptr ? node_->id() : 0,
                                  batch_records_, batch_bytes_));
    batch_records_ = 0;
    batch_bytes_ = 0;
  }
  // Post-restore compaction (the WAL no longer matches the shard) only
  // happens here, and restores only occur in single-threaded maintenance
  // deployments — threshold compaction runs inline on the mutating thread.
  if (need_compact_) {
    if (Status s = CompactLocked(); !s.ok()) {
      ECC_LOG_ERROR("durability: compact %s: %s", dir_.c_str(),
                    s.message().c_str());
    }
  }
}

Status NodeDurability::Compact() {
  const std::lock_guard<std::mutex> g(mutex_);
  return CompactLocked();
}

Status NodeDurability::CompactLocked() {
  if (node_ == nullptr) return Status::FailedPrecondition("not attached");
  const std::string blob = node_->SerializeShard();
  if (Status s = WriteSnapshotFile(dir_, blob); !s.ok()) return s;
  if (Status s = wal_.Reset(); !s.ok()) return s;
  appends_since_snapshot_ = 0;
  batch_records_ = 0;
  batch_bytes_ = 0;
  need_compact_ = false;
  ++snapshots_;
  obs::Emit(opts_.obs.trace,
            obs::SnapshotEvent(Stamp(opts_), node_->id(),
                               node_->record_count(), blob.size()));
  return Status::Ok();
}

std::uint64_t NodeDurability::appends() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return wal_.appended();
}

std::uint64_t NodeDurability::snapshots() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return snapshots_;
}

// --- FleetDurability -------------------------------------------------------

/// Forwarding listener handed to ElasticCache.  The fleet keeps the real
/// NodeDurability; the handle's destruction (node deallocation) retires it.
class FleetDurability::Handle final : public core::ShardMutationListener {
 public:
  Handle(FleetDurability* fleet, core::NodeId id, NodeDurability* nd)
      : fleet_(fleet), id_(id), nd_(nd) {}
  ~Handle() override { fleet_->Retire(id_); }

  void OnInsert(core::Key k, std::string_view v) override {
    nd_->OnInsert(k, v);
  }
  void OnErase(core::Key k) override { nd_->OnErase(k); }
  void OnEraseRange(core::Key lo, core::Key hi) override {
    nd_->OnEraseRange(lo, hi);
  }
  void OnRestore() override { nd_->OnRestore(); }

 private:
  FleetDurability* fleet_;
  core::NodeId id_;
  NodeDurability* nd_;
};

FleetDurability::FleetDurability(DurabilityOptions opts)
    : opts_(std::move(opts)) {}

FleetDurability::~FleetDurability() = default;

std::string FleetDurability::NodeDir(core::NodeId id) const {
  return opts_.dir + "/node_" + std::to_string(id);
}

std::function<std::unique_ptr<core::ShardMutationListener>(core::NodeId,
                                                           core::CacheNode*)>
FleetDurability::Factory() {
  return [this](core::NodeId id, core::CacheNode* node)
             -> std::unique_ptr<core::ShardMutationListener> {
    if (!enabled()) return nullptr;
    auto nd = std::make_unique<NodeDurability>(NodeDir(id), opts_);
    if (Status s = nd->Attach(node); !s.ok()) {
      ECC_LOG_ERROR("durability: node %llu: %s",
                    static_cast<unsigned long long>(id),
                    s.message().c_str());
      return nullptr;
    }
    // Attach() bound `nd` as the node's listener; rebind to the handle so
    // the fleet hears about the node's teardown.
    NodeDurability* raw = nd.get();
    auto handle = std::make_unique<Handle>(this, id, raw);
    node->BindMutationListener(handle.get());
    const std::lock_guard<std::mutex> g(mutex_);
    active_[id] = std::move(nd);
    ++attached_;
    return handle;
  };
}

void FleetDurability::Tick() {
  std::vector<NodeDurability*> live;
  {
    const std::lock_guard<std::mutex> g(mutex_);
    live.reserve(active_.size());
    for (auto& [id, nd] : active_) live.push_back(nd.get());
  }
  for (NodeDurability* nd : live) nd->Tick();
}

void FleetDurability::Retire(core::NodeId id) {
  const std::lock_guard<std::mutex> g(mutex_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  it->second->Detach();  // final fsync; files stay for salvage
  retired_dirs_.push_back(it->second->dir());
  active_.erase(it);
}

const std::unordered_map<core::Key, std::string>* FleetDurability::LoadRetired(
    const std::string& dir) {
  if (auto it = salvage_cache_.find(dir); it != salvage_cache_.end()) {
    return &it->second;
  }
  // Rebuild the retired shard off to the side; capacity is irrelevant here,
  // so give the scratch node effectively unbounded room.
  core::CacheNode scratch(/*id=*/0, /*instance=*/0, /*capacity_bytes=*/~0ull);
  NodeDurability nd(dir, opts_);
  if (Status s = nd.Attach(&scratch); !s.ok()) {
    ECC_LOG_WARN("durability: salvage %s: %s", dir.c_str(),
                 s.message().c_str());
    return &salvage_cache_[dir];  // cache the empty map; don't retry per key
  }
  nd.Detach();
  auto& map = salvage_cache_[dir];
  for (auto& [k, v] : scratch.SweepRange(0, ~0ull)) map[k] = std::move(v);
  return &map;
}

StatusOr<std::string> FleetDurability::SalvageValue(core::Key k) {
  const std::lock_guard<std::mutex> g(mutex_);
  // Newest retirement wins: a node retired later logged later writes.
  for (auto it = retired_dirs_.rbegin(); it != retired_dirs_.rend(); ++it) {
    const auto* map = LoadRetired(*it);
    if (auto found = map->find(k); found != map->end()) return found->second;
  }
  return Status::NotFound("no retired copy of key " + std::to_string(k));
}

std::uint64_t FleetDurability::attached() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return attached_;
}

std::uint64_t FleetDurability::retired() const {
  const std::lock_guard<std::mutex> g(mutex_);
  return retired_dirs_.size();
}

}  // namespace ecc::durability
