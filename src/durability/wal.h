// Append-only write-ahead log for one cache shard.
//
// Record framing reuses the wire idiom from src/net (framing.h/message.h):
// each record is `u32 length | u32 FNV-1a checksum | body`, little-endian,
// with the checksum taken over the body bytes.  The body is a WireWriter
// encoding of one shard mutation (put / erase / erase-range).
//
// Durability contract:
//   * Append() issues the full write(2) before returning, so once a PUT
//     response leaves the node the record is in the kernel — a SIGKILL
//     cannot lose an acknowledged write.
//   * Sync() batches fdatasync(2) for power-loss durability; callers run
//     it at quiesced slice boundaries (core::MaintenanceTask), not per
//     append.
//   * Replay() is torn-tail tolerant: a record with a short header, an
//     implausible length, a checksum mismatch, or an undecodable body ends
//     the replay at the last valid record — a partial record is never
//     served — and (by default) the file is truncated there so the next
//     append starts from a clean tail.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace ecc::durability {

/// One logged shard mutation.
struct WalRecord {
  enum class Op : std::uint8_t {
    kPut = 1,
    kErase = 2,
    kEraseRange = 3,
  };

  Op op = Op::kPut;
  std::uint64_t key = 0;  ///< kEraseRange: range lo
  std::uint64_t hi = 0;   ///< kEraseRange only (inclusive)
  std::string value;      ///< kPut only
};

/// Outcome of one Replay() pass.
struct WalReplayStats {
  std::uint64_t records = 0;          ///< records decoded and applied
  std::uint64_t bytes_kept = 0;       ///< file prefix covered by them
  std::uint64_t bytes_truncated = 0;  ///< torn/corrupt tail discarded
  bool torn = false;                  ///< replay ended at a bad record
};

class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::string path);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Open (creating if absent) for appends.  Idempotent.
  Status Open();
  void Close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Write one framed record fully into the kernel; Internal on IO error.
  Status Append(const WalRecord& r);

  /// fdatasync if any append landed since the last sync (fsync batching).
  Status Sync();

  /// Truncate to zero length (after a snapshot made the log redundant).
  Status Reset();

  [[nodiscard]] std::uint64_t appended() const { return appended_; }
  [[nodiscard]] std::uint64_t bytes_appended() const {
    return bytes_appended_;
  }
  [[nodiscard]] std::uint64_t unsynced() const { return unsynced_; }

  /// One record as its on-disk frame (exposed for torn-tail tests).
  [[nodiscard]] static std::string EncodeRecord(const WalRecord& r);

  /// Replay `path` oldest-first, calling `apply` per valid record.  A
  /// missing file is an empty log (ok, zero records).  The first invalid
  /// record ends the replay; with `truncate_torn_tail` the file is cut at
  /// the last valid byte so subsequent appends extend a clean log.  An
  /// `apply` failure aborts with that status (the tail is left alone).
  static StatusOr<WalReplayStats> Replay(
      const std::string& path,
      const std::function<Status(const WalRecord&)>& apply,
      bool truncate_torn_tail = true);

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t unsynced_ = 0;
};

}  // namespace ecc::durability
