#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "net/message.h"
#include "net/wire.h"

namespace ecc::durability {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x45435353;  // "ECSS"
constexpr std::size_t kSnapshotHeaderBytes = 4 + 4 + 4;

Status SysError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return SysError("snapshot write");
    }
    done += static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

/// fsync the directory so the rename itself survives power loss.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return SysError("snapshot opendir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return SysError("snapshot fsync dir " + dir);
  return Status::Ok();
}

}  // namespace

Status WriteSnapshotFile(const std::string& dir, const std::string& payload) {
  const std::string tmp = dir + "/snapshot.tmp";
  const std::string live = dir + "/" + kSnapshotFileName;

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return SysError("snapshot open " + tmp);

  net::WireWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutU32(net::FramePayloadCrc(payload));
  const std::string header = w.TakeBuffer();

  Status s = WriteAll(fd, header.data(), header.size());
  if (s.ok()) s = WriteAll(fd, payload.data(), payload.size());
  if (s.ok() && ::fsync(fd) != 0) s = SysError("snapshot fsync " + tmp);
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), live.c_str()) != 0) {
    const Status rs = SysError("snapshot rename " + tmp);
    ::unlink(tmp.c_str());
    return rs;
  }
  return SyncDir(dir);
}

StatusOr<std::string> LoadSnapshotFile(const std::string& dir) {
  const std::string live = dir + "/" + kSnapshotFileName;
  const int fd = ::open(live.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no snapshot in " + dir);
    return SysError("snapshot open " + live);
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return SysError("snapshot read " + live);
    }
    if (r == 0) break;
    data.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);

  net::WireReader r(data);
  std::uint32_t magic = 0;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  if (Status s = r.GetU32(magic); !s.ok()) return s;
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a snapshot file: " + live);
  }
  if (Status s = r.GetU32(len); !s.ok()) return s;
  if (Status s = r.GetU32(crc); !s.ok()) return s;
  if (data.size() != kSnapshotHeaderBytes + len) {
    return Status::InvalidArgument("snapshot length mismatch: " + live);
  }
  std::string payload = data.substr(kSnapshotHeaderBytes);
  if (net::FramePayloadCrc(payload) != crc) {
    return Status::InvalidArgument("snapshot checksum mismatch: " + live);
  }
  return payload;
}

}  // namespace ecc::durability
