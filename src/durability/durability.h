// Durable node state: WAL + snapshot per shard, and the fleet-wide manager
// that survives node restarts.
//
// NodeDurability mirrors one CacheNode's shard onto disk: every successful
// mutation is appended to a write-ahead log (core::ShardMutationListener),
// fsync is batched at slice boundaries (Tick), and a periodic compaction
// writes an atomic snapshot then resets the log.  Attach() runs the warm
// side of recovery — load snapshot, replay WAL (torn-tail tolerant), then
// start logging.
//
// FleetDurability owns one NodeDurability per live node (bound into
// ElasticCache through its durability_factory hook) and keeps the on-disk
// state of *retired* nodes around so the recovery manager can salvage an
// acknowledged write whose every in-memory copy died (SalvageValue).
//
// Opt-in: everything here is off unless a durability directory is
// configured (ECC_DURABILITY_DIR for the env overlay).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/cache_node.h"
#include "core/maintenance.h"
#include "durability/wal.h"
#include "obs/obs.h"

namespace ecc::durability {

struct DurabilityOptions {
  /// Root directory; each node persists under `<dir>/node_<id>/`.  Empty =
  /// durability disabled.
  std::string dir;
  /// fdatasync the WAL at slice boundaries (power-loss durability).  Off
  /// still survives SIGKILL — appends reach the kernel before the ack.
  bool fsync = true;
  /// Compact (snapshot + WAL reset) after this many appends.
  std::uint64_t snapshot_every_appends = 4096;
  obs::Observability obs;
  /// Virtual-clock source for trace stamps; nullptr stamps t = 0.
  std::function<TimePoint()> now;
};

/// Overlay `base` with ECC_DURABILITY_DIR, ECC_DURABILITY_FSYNC and
/// ECC_DURABILITY_SNAPSHOT_EVERY.
[[nodiscard]] DurabilityOptions DurabilityOptionsFromEnv(
    DurabilityOptions base = {});

/// What Attach() recovered from disk.
struct RecoverStats {
  std::uint64_t snapshot_records = 0;  ///< records restored from snapshot
  std::uint64_t wal_records = 0;       ///< mutations replayed from the WAL
  std::uint64_t wal_bytes_truncated = 0;  ///< torn tail dropped on replay
  bool torn = false;
};

/// Durable mirror of one shard.  Thread-safe: the RPC dispatch thread
/// drives the listener callbacks while the node's main loop drives Tick().
class NodeDurability final : public core::ShardMutationListener {
 public:
  /// `dir` is this node's own directory (created on Attach).
  NodeDurability(std::string dir, const DurabilityOptions& opts);
  ~NodeDurability() override;

  NodeDurability(const NodeDurability&) = delete;
  NodeDurability& operator=(const NodeDurability&) = delete;

  /// Recover `node` from disk (snapshot, then WAL replay; a missing or
  /// damaged snapshot falls back to the log alone) and start mirroring its
  /// mutations.  The node must be empty.
  Status Attach(core::CacheNode* node);

  /// Stop mirroring and close the log; on-disk state stays for salvage.
  void Detach();

  /// Slice-boundary maintenance: fsync the append batch and emit the
  /// wal_append trace event.  Threshold compaction runs inline on the
  /// mutating thread (the only one that may serialize the shard); Tick
  /// only compacts after a RestoreShard obsoleted the log.
  void Tick();

  /// Force a snapshot + WAL reset now.
  Status Compact();

  [[nodiscard]] const RecoverStats& recover_stats() const {
    return recovered_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t appends() const;
  [[nodiscard]] std::uint64_t snapshots() const;

  // core::ShardMutationListener
  void OnInsert(core::Key k, std::string_view v) override;
  void OnErase(core::Key k) override;
  void OnEraseRange(core::Key lo, core::Key hi) override;
  void OnRestore() override;

 private:
  void AppendLocked(const WalRecord& r);
  Status CompactLocked();

  const std::string dir_;
  const DurabilityOptions opts_;
  core::CacheNode* node_ = nullptr;

  mutable std::mutex mutex_;
  WriteAheadLog wal_;
  RecoverStats recovered_;
  std::uint64_t appends_since_snapshot_ = 0;
  std::uint64_t batch_records_ = 0;  ///< appends since the last Tick
  std::uint64_t batch_bytes_ = 0;
  std::uint64_t snapshots_ = 0;
  bool need_compact_ = false;  ///< a RestoreShard obsoleted the log
};

/// Per-fleet durability manager.  Hands ElasticCache a factory that binds a
/// NodeDurability to every allocated node, ticks them at slice boundaries
/// (core::MaintenanceTask), and answers salvage lookups against the on-disk
/// state of retired nodes.
class FleetDurability final : public core::MaintenanceTask {
 public:
  explicit FleetDurability(DurabilityOptions opts);
  ~FleetDurability() override;

  FleetDurability(const FleetDurability&) = delete;
  FleetDurability& operator=(const FleetDurability&) = delete;

  [[nodiscard]] bool enabled() const { return !opts_.dir.empty(); }
  [[nodiscard]] const DurabilityOptions& options() const { return opts_; }
  [[nodiscard]] std::string NodeDir(core::NodeId id) const;

  /// Factory for ElasticCacheOptions::durability_factory.  The returned
  /// handle keeps the node's durable mirror alive; destroying it (node
  /// deallocation) retires the on-disk state into the salvage set.
  [[nodiscard]] std::function<std::unique_ptr<core::ShardMutationListener>(
      core::NodeId, core::CacheNode*)>
  Factory();

  /// Tick every live node's durability (fsync batch + maybe compact).
  void Tick() override;

  /// Last-resort lookup for the recovery manager: search the WAL+snapshot
  /// state of retired nodes for `k`.  NotFound when no retired copy exists.
  [[nodiscard]] StatusOr<std::string> SalvageValue(core::Key k);

  [[nodiscard]] std::uint64_t attached() const;
  [[nodiscard]] std::uint64_t retired() const;

 private:
  class Handle;

  void Retire(core::NodeId id);
  /// Replay one retired dir into a key→value map (cached per dir).
  const std::unordered_map<core::Key, std::string>* LoadRetired(
      const std::string& dir);

  const DurabilityOptions opts_;

  mutable std::mutex mutex_;
  std::unordered_map<core::NodeId, std::unique_ptr<NodeDurability>> active_;
  std::vector<std::string> retired_dirs_;
  std::unordered_map<std::string, std::unordered_map<core::Key, std::string>>
      salvage_cache_;
  std::uint64_t attached_ = 0;
};

/// mkdir -p for durability directories (0755); Ok if it already exists.
Status EnsureDir(const std::string& path);

}  // namespace ecc::durability
