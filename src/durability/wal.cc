#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "net/message.h"
#include "net/wire.h"

namespace ecc::durability {

namespace {

/// Record header: u32 body length + u32 FNV-1a checksum of the body.
constexpr std::size_t kRecordHeaderBytes = 4 + 4;

/// Lengths above this are corruption, not data (a shard record is bounded
/// by node capacity, far below this).
constexpr std::uint32_t kMaxRecordBodyBytes = 64u << 20;

std::string EncodeBody(const WalRecord& r) {
  net::WireWriter w;
  w.PutU8(static_cast<std::uint8_t>(r.op));
  w.PutU64(r.key);
  switch (r.op) {
    case WalRecord::Op::kPut:
      w.PutBytes(r.value);
      break;
    case WalRecord::Op::kErase:
      break;
    case WalRecord::Op::kEraseRange:
      w.PutU64(r.hi);
      break;
  }
  return w.TakeBuffer();
}

Status DecodeBody(std::string_view body, WalRecord* out) {
  net::WireReader r(body);
  std::uint8_t op = 0;
  if (Status s = r.GetU8(op); !s.ok()) return s;
  if (op < static_cast<std::uint8_t>(WalRecord::Op::kPut) ||
      op > static_cast<std::uint8_t>(WalRecord::Op::kEraseRange)) {
    return Status::InvalidArgument("unknown wal op");
  }
  out->op = static_cast<WalRecord::Op>(op);
  if (Status s = r.GetU64(out->key); !s.ok()) return s;
  switch (out->op) {
    case WalRecord::Op::kPut:
      if (Status s = r.GetBytes(out->value); !s.ok()) return s;
      break;
    case WalRecord::Op::kErase:
      break;
    case WalRecord::Op::kEraseRange:
      if (Status s = r.GetU64(out->hi); !s.ok()) return s;
      break;
  }
  if (!r.exhausted()) return Status::InvalidArgument("trailing record bytes");
  return Status::Ok();
}

Status WriteAll(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wal write: ") +
                              std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path) : path_(std::move(path)) {}

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::Internal("wal open " + path_ + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void WriteAheadLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string WriteAheadLog::EncodeRecord(const WalRecord& r) {
  const std::string body = EncodeBody(r);
  net::WireWriter w;
  w.PutU32(static_cast<std::uint32_t>(body.size()));
  w.PutU32(net::FramePayloadCrc(body));
  std::string out = w.TakeBuffer();
  out += body;
  return out;
}

Status WriteAheadLog::Append(const WalRecord& r) {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
  const std::string frame = EncodeRecord(r);
  if (Status s = WriteAll(fd_, frame.data(), frame.size()); !s.ok()) {
    return s;
  }
  ++appended_;
  ++unsynced_;
  bytes_appended_ += frame.size();
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  if (fd_ < 0 || unsynced_ == 0) return Status::Ok();
  if (::fdatasync(fd_) != 0) {
    return Status::Internal(std::string("wal fdatasync: ") +
                            std::strerror(errno));
  }
  unsynced_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal(std::string("wal truncate: ") +
                            std::strerror(errno));
  }
  unsynced_ = 0;
  return Status::Ok();
}

StatusOr<WalReplayStats> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply,
    bool truncate_torn_tail) {
  WalReplayStats stats;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no log yet: empty, not an error
    return Status::Internal("wal open " + path + ": " +
                            std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal(std::string("wal read: ") +
                              std::strerror(errno));
    }
    if (r == 0) break;
    data.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);

  // Walk frames; the first bad one (short header, implausible length, bad
  // checksum, undecodable body) ends the valid prefix.
  std::size_t off = 0;
  while (off + kRecordHeaderBytes <= data.size()) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, data.data() + off, sizeof(len));
    std::memcpy(&crc, data.data() + off + 4, sizeof(crc));
    if (len > kMaxRecordBodyBytes ||
        off + kRecordHeaderBytes + len > data.size()) {
      break;  // torn tail (or garbage length)
    }
    const std::string_view body(data.data() + off + kRecordHeaderBytes, len);
    if (net::FramePayloadCrc(body) != crc) break;  // bit damage
    WalRecord rec;
    if (!DecodeBody(body, &rec).ok()) break;
    if (Status s = apply(rec); !s.ok()) return s;
    off += kRecordHeaderBytes + len;
    ++stats.records;
  }
  stats.bytes_kept = off;
  stats.bytes_truncated = data.size() - off;
  stats.torn = stats.bytes_truncated > 0;
  if (stats.torn && truncate_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(off)) != 0) {
      return Status::Internal(std::string("wal tail truncate: ") +
                              std::strerror(errno));
    }
    ECC_LOG_WARN("wal: %s: dropped torn tail (%llu bytes after %llu records)",
                 path.c_str(),
                 static_cast<unsigned long long>(stats.bytes_truncated),
                 static_cast<unsigned long long>(stats.records));
  }
  return stats;
}

}  // namespace ecc::durability
