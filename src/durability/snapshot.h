// Atomic on-disk snapshots of one shard.
//
// A snapshot file wraps a CacheNode::SerializeShard() blob in the same
// header idiom as the WAL: `u32 magic | u32 length | u32 FNV-1a checksum |
// payload`.  Writes go through a temp file + fsync + rename-into-place +
// directory fsync, so a crash at any point leaves either the old snapshot
// or the new one — never a partial file under the live name.
#pragma once

#include <string>

#include "common/status.h"

namespace ecc::durability {

/// Live snapshot file name inside a node's durability directory.
inline constexpr char kSnapshotFileName[] = "snapshot.ecc";

/// Write `payload` (a SerializeShard blob) as `dir`/snapshot.ecc,
/// atomically replacing any previous snapshot.
Status WriteSnapshotFile(const std::string& dir, const std::string& payload);

/// Load the snapshot payload from `dir`/snapshot.ecc.  NotFound when no
/// snapshot exists; InvalidArgument when the header or checksum is bad (a
/// damaged snapshot is never served).
StatusOr<std::string> LoadSnapshotFile(const std::string& dir);

}  // namespace ecc::durability
