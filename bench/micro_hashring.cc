// Micro-benchmarks for the consistent-hash ring: h(k) is a binary search
// over the ordered bucket list, O(log2 p) per the paper's T_GBA analysis;
// this bench verifies that scaling and measures disruption accounting.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "hashring/consistent_hash.h"

namespace {

using ecc::Rng;
using ecc::hashring::ConsistentHashRing;
using ecc::hashring::RingOptions;

ConsistentHashRing BuildRing(std::size_t buckets, std::uint64_t seed) {
  RingOptions opts;
  opts.range = 1ull << 32;
  ConsistentHashRing ring(opts);
  Rng rng(seed);
  std::size_t added = 0;
  while (added < buckets) {
    if (ring.AddBucket(rng.Uniform(opts.range), added).ok()) ++added;
  }
  return ring;
}

void BM_RingLookup(benchmark::State& state) {
  const ConsistentHashRing ring = BuildRing(state.range(0), 1);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Lookup(rng.Next()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RingLookup)->RangeMultiplier(4)->Range(4, 4096)
    ->Complexity(benchmark::oLogN);

void BM_RingAuxHash(benchmark::State& state) {
  const ConsistentHashRing ring = BuildRing(64, 3);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.AuxHash(rng.Next()));
  }
}
BENCHMARK(BM_RingAuxHash);

void BM_RingAddBucket(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    ConsistentHashRing ring = BuildRing(state.range(0), 6);
    std::uint64_t point = rng.Uniform(1ull << 32);
    while (ring.HasBucketAt(point)) point = rng.Uniform(1ull << 32);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ring.AddBucket(point, 9999));
  }
}
BENCHMARK(BM_RingAddBucket)->Arg(64)->Arg(1024);

void BM_RingOwnerFraction(benchmark::State& state) {
  const ConsistentHashRing ring = BuildRing(256, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.OwnerFraction(128));
  }
}
BENCHMARK(BM_RingOwnerFraction);

}  // namespace

#include "benchjson_main.h"  // main() with --json support
