// Self-healing micro-bench.
//
// Phase A (zero-cost gate): the same query workload runs with no
// maintenance attached, and with the recovery manager attached but idle
// (healthy fleet: every heartbeat answers, every scrub finds zero
// divergence).  The detector-disabled run must be bit-identical in virtual
// time and outcome counts, and the enabled-idle run must stay within noise
// on wall time — self-healing may not tax a healthy fleet.
//
// Phase B (double crash): node A dies, then the node holding the mirrors
// of A's keys dies too.  With recovery the detector confirms A, the lost
// copies are re-replicated before B goes, and nothing is lost; without it
// the second crash removes the last copy of every A-primary/B-mirror key.
//
// Overrides: keys=512 queries=4096 seed=0x5eed
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/coordinator.h"
#include "core/elastic_cache.h"
#include "fault/fault.h"
#include "figcommon.h"
#include "recovery/recovery.h"
#include "service/service.h"

namespace ecc::bench {
namespace {

struct RunResult {
  std::uint64_t clock_us = 0;
  std::uint64_t hits = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t scrub_passes = 0;
  double wall_ns_per_query = 0;
};

/// Phase A workload: sequential coordinator over a replicated fleet, with
/// the maintenance hook either unattached or attached-but-idle.
RunResult RunHealthy(const Config& cfg, bool attach_recovery) {
  VirtualClock clock;
  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x5eed));
  cloudsim::CloudProvider provider(cloud, &clock);

  obs::MetricsRegistry registry;
  core::ElasticCacheOptions eopts;
  eopts.node_capacity_bytes = 1024 * core::RecordSize(0, std::size_t{128});
  eopts.ring.range = 1 << 14;
  eopts.initial_nodes = 4;
  eopts.replicas = 2;
  core::ElasticCache cache(eopts, &provider, &clock);

  service::SyntheticService service("svc", Duration::Seconds(23), 100);
  sfc::LinearizerOptions grid;
  grid.spatial_bits = 5;
  grid.time_bits = 4;
  sfc::Linearizer linearizer(grid);
  core::CoordinatorOptions copts;
  copts.window.slices = 4;
  core::Coordinator coordinator(copts, &cache, &service, &linearizer,
                                &clock);

  recovery::RecoveryOptions ropts;
  ropts.enabled = true;
  ropts.heartbeat_every = Duration::Millis(250);
  ropts.suspect_threshold = 3;
  ropts.scrub_every_ticks = 4;
  ropts.obs.metrics = &registry;
  recovery::RecoveryManager manager(ropts, &cache, &clock);
  if (attach_recovery) coordinator.AttachMaintenance(&manager);

  const auto keys = static_cast<std::size_t>(cfg.GetInt("keys", 512));
  const auto queries = static_cast<std::size_t>(cfg.GetInt("queries", 4096));
  Rng rng(cloud.seed);
  std::vector<core::Key> workload;
  workload.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    workload.push_back(rng.Uniform(keys));
  }

  const std::size_t per_step = queries / 8;
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries; ++i) {
    (void)coordinator.ProcessKey(workload[i]);
    if (i % per_step == per_step - 1) (void)coordinator.EndTimeStep();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  RunResult r;
  r.clock_us = static_cast<std::uint64_t>(clock.now().micros());
  r.hits = coordinator.total_hits();
  r.heartbeats = registry.GetCounter("recovery.heartbeats").Value();
  r.scrub_passes = registry.GetCounter("recovery.scrub_passes").Value();
  r.wall_ns_per_query =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_start)
                              .count()) /
      static_cast<double>(queries);
  return r;
}

struct CrashResult {
  std::size_t seeded = 0;
  std::size_t lost = 0;
  std::uint64_t confirmed_dead = 0;
  std::uint64_t rereplicated = 0;
  std::size_t divergent_after = 0;
};

/// Phase B: the double-crash script, with or without the healing loop.
CrashResult RunDoubleCrash(const Config& cfg, bool with_recovery) {
  VirtualClock clock;
  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x5eed));
  cloudsim::CloudProvider provider(cloud, &clock);

  obs::MetricsRegistry registry;
  fault::FaultInjector injector;
  core::ElasticCacheOptions eopts;
  eopts.node_capacity_bytes = 1024 * core::RecordSize(0, std::size_t{128});
  eopts.ring.range = 1 << 14;
  eopts.initial_nodes = 4;
  eopts.replicas = 2;
  eopts.fault = &injector;
  core::ElasticCache cache(eopts, &provider, &clock);

  recovery::RecoveryOptions ropts;
  ropts.enabled = with_recovery;
  ropts.heartbeat_every = Duration::Millis(250);
  ropts.suspect_threshold = 3;
  ropts.probe_attempts = 2;
  ropts.obs.metrics = &registry;
  recovery::RecoveryManager manager(ropts, &cache, &clock);

  CrashResult r;
  const auto keys = static_cast<std::size_t>(cfg.GetInt("keys", 512));
  std::vector<core::Key> seeded;
  for (std::size_t i = 0; i < keys; ++i) {
    const core::Key k = (i * 13) % (eopts.ring.range / 2);
    if (!cache.Put(k, "payload-" + std::to_string(k)).ok()) continue;
    seeded.push_back(k);
  }
  r.seeded = seeded.size();

  // Pick the crash pair from one key's placement: A holds the primary,
  // B the mirror — without repair in between, that key cannot survive.
  const core::Key probe = seeded[1];
  const core::NodeId a = *cache.OwnerOf(probe);
  const core::NodeId b = *cache.ReplicaOwnerOf(probe);

  // A dies abruptly; maintenance ticks run at the next slice boundaries.
  injector.MarkDown(a);
  for (std::size_t i = 0; i < ropts.suspect_threshold + 1; ++i) {
    manager.Tick();
    clock.Advance(ropts.heartbeat_every);
  }
  // Then B dies before any further repair can run.
  (void)cache.KillNode(b);

  r.confirmed_dead =
      registry.GetCounter("recovery.nodes_confirmed_dead").Value();
  r.rereplicated = registry.GetCounter("recovery.keys_rereplicated").Value();
  if (with_recovery) {
    manager.Tick();  // heal the second crash too, then audit coherence
    r.divergent_after = manager.ScrubNow();
  }
  for (const core::Key k : seeded) {
    if (!cache.Get(k).ok()) ++r.lost;
  }
  return r;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Self-healing — idle-path overhead and double-crash durability",
      "Heartbeat failure detection + two-phase re-replication + "
      "anti-entropy scrub; the detector-disabled path must cost nothing, "
      "and recovery must close the window a second crash exploits.");

  // ---- Phase A: healing must be free on a healthy fleet -----------------
  RunResult off = RunHealthy(cfg, /*attach_recovery=*/false);
  RunResult idle = RunHealthy(cfg, /*attach_recovery=*/true);
  for (int i = 0; i < 2; ++i) {
    const RunResult off2 = RunHealthy(cfg, false);
    if (off2.wall_ns_per_query < off.wall_ns_per_query) off = off2;
    const RunResult idle2 = RunHealthy(cfg, true);
    if (idle2.wall_ns_per_query < idle.wall_ns_per_query) idle = idle2;
  }
  Table overhead(
      {"config", "virtual_s", "hits", "heartbeats", "scrubs", "wall_ns/q"});
  overhead.AddRow({"recovery off", FormatG(off.clock_us / 1e6),
                   std::to_string(off.hits), std::to_string(off.heartbeats),
                   std::to_string(off.scrub_passes),
                   FormatG(off.wall_ns_per_query)});
  overhead.AddRow({"attached, idle", FormatG(idle.clock_us / 1e6),
                   std::to_string(idle.hits), std::to_string(idle.heartbeats),
                   std::to_string(idle.scrub_passes),
                   FormatG(idle.wall_ns_per_query)});
  std::printf("%s\n", overhead.ToString().c_str());

  // ---- Phase B: the double crash ----------------------------------------
  const CrashResult bare = RunDoubleCrash(cfg, /*with_recovery=*/false);
  const CrashResult healed = RunDoubleCrash(cfg, /*with_recovery=*/true);
  Table crash({"config", "keys", "lost", "confirmed_dead", "rereplicated",
               "divergent_after"});
  crash.AddRow({"no recovery", std::to_string(bare.seeded),
                std::to_string(bare.lost), std::to_string(bare.confirmed_dead),
                std::to_string(bare.rereplicated),
                std::to_string(bare.divergent_after)});
  crash.AddRow({"with recovery", std::to_string(healed.seeded),
                std::to_string(healed.lost),
                std::to_string(healed.confirmed_dead),
                std::to_string(healed.rereplicated),
                std::to_string(healed.divergent_after)});
  std::printf("%s\n", crash.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("no-maintenance run is virtually identical to idle",
                   off.clock_us == idle.clock_us && off.hits == idle.hits);
  ok &= ShapeCheck("idle healing actually probed and scrubbed",
                   idle.heartbeats > 0 && idle.scrub_passes > 0 &&
                       off.heartbeats == 0);
  ok &= ShapeCheck("detector-disabled wall cost within noise of idle",
                   off.wall_ns_per_query <= idle.wall_ns_per_query * 1.5 &&
                       idle.wall_ns_per_query <=
                           off.wall_ns_per_query * 1.5);
  ok &= ShapeCheck("double crash without recovery loses keys",
                   bare.lost > 0 && bare.confirmed_dead == 0);
  ok &= ShapeCheck("recovery confirms the first death off the query path",
                   healed.confirmed_dead == 1 && healed.rereplicated > 0);
  ok &= ShapeCheck("double crash with recovery loses nothing",
                   healed.lost == 0);
  ok &= ShapeCheck("post-recovery scrub reports a coherent fleet",
                   healed.divergent_after == 0);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "micro_recovery");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
