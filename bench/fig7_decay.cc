// Figure 7 reproduction: "Data Reuse Behavior for Various Decay" —
// m = 100 window, decay alpha in {0.99, 0.98, 0.95, 0.93}, fixed eviction
// threshold (the m=100/alpha=0.99 baseline, ~0.3697), phased workload.
//
// Paper shape: smaller alpha evicts more aggressively (the exponential
// nature of the decay makes it very sensitive), the cache grows more
// slowly, yet actual cache hits do not vary enough across alphas to change
// speedup materially.
#include <cstdio>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

// alpha_ref^(m-1) with the same multiplication chain the window uses.
double FixedThreshold(double alpha_ref, std::size_t m) {
  double t = 1.0;
  for (std::size_t i = 1; i < m; ++i) t *= alpha_ref;
  return t;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Figure 7 — Data Reuse vs Decay (m = 100, alpha = "
      "0.99/0.98/0.95/0.93)",
      "Fixed threshold T_lambda ~= 0.3697; smaller alpha evicts more "
      "aggressively.");

  const std::size_t m = cfg.GetInt("window", 100);
  const double threshold = FixedThreshold(0.99, m);
  const std::vector<double> alphas = {0.99, 0.98, 0.95, 0.93};
  std::vector<workload::ExperimentResult> results;
  for (double alpha : alphas) {
    results.push_back(
        RunPhased(cfg, m, alpha, threshold, "alpha" + FormatG(alpha)));
  }

  SeriesSet fig("step");
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const std::string a = FormatG(alphas[i]);
    const Series* hits = results[i].series.Find("hits");
    const Series* evict = results[i].series.Find("evictions");
    Series& hc = fig.Get("hits_a" + a);
    Series& ec = fig.Get("evict_a" + a);
    for (std::size_t j = 0; j < hits->size(); ++j) {
      hc.Add(hits->xs()[j], hits->ys()[j]);
      ec.Add(evict->xs()[j], evict->ys()[j]);
    }
  }
  std::printf("\n%s\n", fig.ToTable().c_str());
  MaybeWriteCsv(cfg, fig, "fig7_decay");

  Table summary({"alpha", "total_hits", "hit_rate", "evictions",
                 "nodes_mean", "nodes_max", "max_speedup", "cost_usd"});
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const auto& s = results[i].summary;
    summary.AddRow({FormatG(alphas[i]),
                    FormatG(static_cast<double>(s.total_hits)),
                    FormatG(s.hit_rate),
                    FormatG(static_cast<double>(s.evictions)),
                    FormatG(s.mean_nodes),
                    FormatG(static_cast<double>(s.max_nodes)),
                    FormatG(s.max_speedup), FormatG(s.cost_usd)});
  }
  std::printf("%s\n", summary.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck(
      "evictions increase as alpha decreases (0.99 < 0.93 aggression)",
      results[0].summary.evictions < results[3].summary.evictions);
  ok &= ShapeCheck(
      "eviction counts are monotone across the alpha sweep",
      results[0].summary.evictions <= results[1].summary.evictions &&
          results[1].summary.evictions <= results[2].summary.evictions &&
          results[2].summary.evictions <= results[3].summary.evictions);
  ok &= ShapeCheck(
      "smaller alpha grows the cache more slowly (mean nodes ordered)",
      results[3].summary.mean_nodes <= results[0].summary.mean_nodes);
  {
    // "the number of actual cache hits does not seem to vary enough" —
    // within ~35% across the sweep.
    double lo = 1e18, hi = 0;
    for (const auto& r : results) {
      lo = std::min(lo, static_cast<double>(r.summary.total_hits));
      hi = std::max(hi, static_cast<double>(r.summary.total_hits));
    }
    ok &= ShapeCheck("total hits vary by < 35% across alphas",
                     hi <= lo * 1.35);
  }
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "fig7_decay");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
