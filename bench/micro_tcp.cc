// Wall-clock micro-benchmarks for the real transports: full kernel round
// trips over the blocking socketpair transport and the epoll TCP stack
// (TcpServer + pooled TcpChannel).  Where micro_net measures the simulated
// loopback (pure dispatch cost), these numbers are real syscall latency —
// the floor a deployed fleet pays per cache operation.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "net/message.h"
#include "net/rpc.h"
#include "net/socket_channel.h"
#include "net/tcp_channel.h"
#include "net/tcp_server.h"

namespace {

namespace net = ecc::net;

/// Echo server: responds to GET k with a value of k bytes, so one server
/// serves every payload size below.
net::RpcServer& SharedRpc() {
  static net::RpcServer* rpc = [] {
    auto* s = new net::RpcServer;
    s->Handle(net::MsgType::kGetRequest,
              [](const net::Message& m) -> ecc::StatusOr<net::Message> {
                auto req = net::GetRequest::Decode(m);
                if (!req.ok()) return req.status();
                net::GetResponse resp;
                resp.found = true;
                resp.value.assign(req->key, 'v');
                return resp.Encode();
              });
    return s;
  }();
  return *rpc;
}

/// One TCP server + channel for the whole binary (leaked: benchmark
/// registration outlives any scoped teardown ordering we could write).
struct TcpRig {
  net::TcpServer* server;
  net::TcpChannel* channel;
};

TcpRig& SharedTcp() {
  static TcpRig rig = [] {
    auto* server = new net::TcpServer(&SharedRpc());
    if (auto s = server->Start(); !s.ok()) std::abort();
    net::TcpChannelOptions opts;
    opts.port = server->port();
    opts.max_pool_size = 16;  // one per bench thread at the widest point
    return TcpRig{server, new net::TcpChannel(opts)};
  }();
  return rig;
}

void BM_SocketpairCall(benchmark::State& state) {
  net::SocketTransport transport(&SharedRpc());
  const net::Message req =
      net::GetRequest{static_cast<std::uint64_t>(state.range(0))}.Encode();
  for (auto _ : state) {
    auto out = transport.Call(req);
    if (!out.ok()) state.SkipWithError("call failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SocketpairCall)->Arg(64)->Arg(1024)->Arg(16384);

void BM_TcpCall(benchmark::State& state) {
  TcpRig& rig = SharedTcp();
  const net::Message req =
      net::GetRequest{static_cast<std::uint64_t>(state.range(0))}.Encode();
  for (auto _ : state) {
    auto out = rig.channel->Call(req);
    if (!out.ok()) state.SkipWithError("call failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpCall)->Arg(64)->Arg(1024)->Arg(16384);

/// Concurrent callers share the pooled channel: each borrows its own
/// connection, so round trips genuinely overlap on the wire.
void BM_TcpCallConcurrent(benchmark::State& state) {
  TcpRig& rig = SharedTcp();
  const net::Message req = net::GetRequest{1024}.Encode();
  for (auto _ : state) {
    auto out = rig.channel->Call(req);
    if (!out.ok()) state.SkipWithError("call failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpCallConcurrent)->Threads(2)->Threads(4)->UseRealTime();

/// Migration-sized frames: a ~1 MB batch per round trip, the shape the
/// sweep-and-migrate path puts on the wire.
void BM_TcpMigrateBatch(benchmark::State& state) {
  net::RpcServer rpc;
  rpc.Handle(net::MsgType::kMigrateRequest,
             [](const net::Message& m) -> ecc::StatusOr<net::Message> {
               auto req = net::MigrateRequest::Decode(m);
               if (!req.ok()) return req.status();
               net::MigrateResponse resp;
               resp.accepted = req->records.size();
               return resp.Encode();
             });
  net::TcpServer server(&rpc);
  if (auto s = server.Start(); !s.ok()) std::abort();
  net::TcpChannelOptions opts;
  opts.port = server.port();
  net::TcpChannel channel(opts);

  net::MigrateRequest batch;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    batch.records.emplace_back(i, std::string(1000, 'r'));
  }
  const net::Message req = batch.Encode();
  for (auto _ : state) {
    auto out = channel.Call(req);
    if (!out.ok()) state.SkipWithError("call failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(req.WireSize()));
  server.Stop();
}
BENCHMARK(BM_TcpMigrateBatch)->Arg(256)->Arg(1024);

}  // namespace

#include "benchjson_main.h"  // main() with --json support
