// Ablation: cost-aware elasticity policies (DESIGN.md §13).
//
// The paper's elasticity rule is cost-blind: every cached record lives a
// fixed window regardless of what holding it costs or whether it will be
// reused.  This bench reruns the §IV.C phased-rate workload — with the
// skewed (Zipf) key draw real query-intensive episodes show — under each
// elasticity policy and reports the two numbers the paper argues in:
// dollars billed and hit rate.
//
//   paper-baseline   decay window + epsilon merges (the seed rule)
//   cost-ttl         per-key TTL from reuse distance vs. memory-hour cost
//   mth-admission    cache a key only on its Mth requested miss
//   predictive       baseline + forecast-driven warm-pool pre-provisioning
//
// Expected outcome: the fixed window treats every phase of the workload
// the same, so it drops the one-hit tail exactly as slowly during the
// intensive phase (where a slice of retention is expensive) as during the
// cheap phases.  cost-ttl grants reused keys their full break-even
// lifetime but only a fraction of it to keys never seen again, so it
// sheds the tail sooner when time is dear and holds the reused set
// longer when time is cheap: fewer misses AND a smaller bill than the
// window on the same draw.  A uniform-draw control run (the paper's
// exact workload, "the worst case for possible reuse") is reported
// alongside: there cost-ttl gives up hit rate — nothing recurs, so
// nothing earns retention — in exchange for a ~3x smaller bill.
#include <cstdio>
#include <memory>
#include <string>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"
#include "policy/cost_ttl.h"
#include "policy/policy.h"
#include "policy/provision.h"

namespace ecc::bench {
namespace {

/// The planned phased intensity is a perfect volume forecast for the
/// pre-provisioner.
class ScheduleForecast final : public policy::VolumeForecast {
 public:
  explicit ScheduleForecast(const workload::RateSchedule* rate)
      : rate_(rate) {}
  [[nodiscard]] std::size_t VolumeAt(std::size_t step) const override {
    return rate_->RateAt(step);
  }

 private:
  const workload::RateSchedule* rate_;
};

struct Outcome {
  workload::ExperimentSummary summary;
  std::uint64_t admit_denials = 0;
  std::uint64_t prewarm_launches = 0;
};

Outcome RunPolicy(const Config& cfg, policy::PolicyKind kind, bool hotspot,
                  const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 15);  // 32K inputs (§IV.C)
  // Node size sets the economics: break_even ~ records_per_node / (rate *
  // miss_rate) slices ~ 60 at the intensive-phase rate, so the one-shot
  // tail (0.62 * break_even ~ 37 slices) dies sooner than the 50-slice
  // window would allow while reused keys (full break-even) outlive it.
  params.records_per_node = cfg.GetInt("records_per_node", 3072);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x7c);
  params.coordinator.window.slices = cfg.GetInt("window", 50);
  params.coordinator.contraction_epsilon = cfg.GetInt("epsilon", 5);
  params.min_nodes = cfg.GetInt("min_nodes", 2);

  policy::PolicyParams pp;
  pp.kind = kind;
  pp.contraction_epsilon = params.coordinator.contraction_epsilon;
  pp.admit_m = cfg.GetInt("admit_m", 2);
  pp.provision_quota = cfg.GetInt("quota", 12);
  // TTL floor: keeps a transient all-miss slice (break_even collapses
  // toward rate * 23 s of virtual time) from evicting the hot set before
  // it can prove its reuse.
  pp.ttl_min_slices = cfg.GetInt("ttl_min", 8);
  // A large alpha means "trust the break-even cap, not the noisy per-key
  // gap estimate": Zipf inter-arrivals are roughly geometric, so ttl =
  // 2 * gap_ema still loses ~e^-2 of genuine reuses; 12x loses none that
  // the economics would keep anyway (the cap binds first).
  pp.ttl_alpha = cfg.GetDouble("ttl_alpha", 12.0);
  pp.ttl_one_shot_fraction = cfg.GetDouble("ttl_one_shot", 0.62);
  std::unique_ptr<policy::ElasticityPolicy> pol = policy::MakePolicy(pp);

  const auto rate = workload::PaperPhasedSchedule();
  ScheduleForecast forecast(rate.get());
  if (kind == policy::PolicyKind::kPredictive) {
    static_cast<policy::PredictiveProvisionPolicy*>(pol.get())
        ->set_forecast(&forecast);
  }
  params.coordinator.policy = pol.get();
  Stack stack = BuildStack(params);

  std::unique_ptr<workload::KeyGenerator> keys;
  const std::uint64_t wseed = cfg.GetInt("workload_seed", 0xabc);
  if (hotspot) {
    const std::string keys_kind = cfg.GetString("keys", "zipf");
    if (keys_kind == "hotspot") {
      keys = std::make_unique<workload::HotspotKeyGenerator>(
          params.keyspace, cfg.GetDouble("hot_fraction", 0.02),
          cfg.GetDouble("hot_prob", 0.9), wseed);
    } else {
      keys = std::make_unique<workload::ZipfKeyGenerator>(
          params.keyspace, cfg.GetDouble("zipf_s", 1.1), wseed);
    }
  } else {
    keys = std::make_unique<workload::UniformKeyGenerator>(params.keyspace,
                                                           wseed);
  }

  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 400);
  eopts.observe_every = cfg.GetInt("observe_every", 10);
  eopts.label = label;
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(),
                                    keys.get(), rate.get(),
                                    stack.provider.get(), stack.clock.get());
  Outcome out;
  out.summary = driver.Run().summary;
  out.admit_denials = stack.coordinator->admit_denials();
  out.prewarm_launches = stack.coordinator->prewarm_launches();
  return out;
}

constexpr policy::PolicyKind kKinds[] = {
    policy::PolicyKind::kPaperBaseline,
    policy::PolicyKind::kCostAwareTtl,
    policy::PolicyKind::kMthAdmission,
    policy::PolicyKind::kPredictive,
};

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Cost-Aware Elasticity Policies (DESIGN.md §13)",
              "Phased-rate workload under each elasticity policy: dollars "
              "billed vs. hit rate, skewed and uniform key draws.");

  Table table({"scenario", "policy", "cost_usd", "hit_rate", "max_nodes",
               "evictions", "denied", "prewarmed"});
  Outcome hot[4], uni[4];
  for (int scenario = 0; scenario < 2; ++scenario) {
    const bool hotspot = scenario == 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const char* name = policy::PolicyKindName(kKinds[i]);
      Outcome& out = hotspot ? hot[i] : uni[i];
      out = RunPolicy(cfg, kKinds[i], hotspot,
                      std::string(name) + (hotspot ? "" : "-uniform"));
      table.AddRow({hotspot ? "skewed" : "uniform", name,
                    FormatG(out.summary.cost_usd),
                    FormatG(out.summary.hit_rate),
                    FormatG(static_cast<double>(out.summary.max_nodes)),
                    FormatG(static_cast<double>(out.summary.evictions)),
                    FormatG(static_cast<double>(out.admit_denials)),
                    FormatG(static_cast<double>(out.prewarm_launches))});
      const std::string suffix =
          std::string(hotspot ? "" : "_uniform") + "_" + name;
      BenchMetric("cost_usd" + suffix, out.summary.cost_usd);
      BenchMetric("hit_rate" + suffix, out.summary.hit_rate);
    }
  }
  std::printf("\n%s\n", table.ToString().c_str());

  const Outcome& base = hot[0];
  const Outcome& ttl = hot[1];
  const Outcome& mth = hot[2];
  const Outcome& pre = hot[3];

  bool ok = true;
  // The headline $cost claim the CI gate holds: economic TTLs beat the
  // fixed window on dollars without giving up hits.
  ok &= ShapeCheck("cost-ttl bills fewer dollars than paper-baseline "
                   "(phased skewed draw)",
                   ttl.summary.cost_usd < base.summary.cost_usd);
  ok &= ShapeCheck("cost-ttl holds the baseline hit rate (>= baseline)",
                   ttl.summary.hit_rate >= base.summary.hit_rate);
  ok &= ShapeCheck("cost-ttl never grows a larger fleet than baseline",
                   ttl.summary.max_nodes <= base.summary.max_nodes);
  ok &= ShapeCheck("mth-admission refuses one-hit-wonder insertions",
                   mth.admit_denials > 0);
  ok &= ShapeCheck("mth-admission does not bill more than baseline",
                   mth.summary.cost_usd <= base.summary.cost_usd);
  ok &= ShapeCheck("predictive policy pre-provisions during the ramp",
                   pre.prewarm_launches > 0);
  ok &= ShapeCheck("predictive hit rate matches baseline (same eviction "
                   "rule)",
                   pre.summary.hit_rate >= base.summary.hit_rate - 0.01);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_policy");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
