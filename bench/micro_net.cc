// Micro-benchmarks for the wire/RPC substrate: serialization throughput of
// the cache protocol and the full loopback round trip.
#include <benchmark/benchmark.h>

#include <string>

#include "common/rng.h"
#include "net/message.h"
#include "net/rpc.h"
#include "net/socket_channel.h"

namespace {

using ecc::Rng;
namespace net = ecc::net;

void BM_PutRequestEncode(benchmark::State& state) {
  const net::PutRequest req{42, std::string(state.range(0), 'v')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(req.Encode());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PutRequestEncode)->Arg(64)->Arg(1024)->Arg(16384);

void BM_PutRequestDecode(benchmark::State& state) {
  const net::Message msg =
      net::PutRequest{42, std::string(state.range(0), 'v')}.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::PutRequest::Decode(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PutRequestDecode)->Arg(64)->Arg(1024)->Arg(16384);

void BM_MigrateBatchRoundTrip(benchmark::State& state) {
  net::MigrateRequest req;
  Rng rng(1);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    req.records.emplace_back(rng.Next(), std::string(1000, 'r'));
  }
  for (auto _ : state) {
    const net::Message msg = req.Encode();
    auto decoded = net::MigrateRequest::Decode(msg);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MigrateBatchRoundTrip)->Arg(16)->Arg(64)->Arg(256);

void BM_FrameSerializeParse(benchmark::State& state) {
  const net::Message msg{net::MsgType::kGetResponse,
                         std::string(state.range(0), 'p')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Message::Deserialize(msg.Serialize()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameSerializeParse)->Arg(64)->Arg(4096);

void BM_LoopbackCall(benchmark::State& state) {
  net::RpcServer server;
  server.Handle(net::MsgType::kGetRequest,
                [](const net::Message&) -> ecc::StatusOr<net::Message> {
                  net::GetResponse resp;
                  resp.found = true;
                  resp.value = std::string(1000, 'v');
                  return resp.Encode();
                });
  net::LoopbackChannel channel(&server, net::NetworkModel{}, nullptr);
  const net::Message req = net::GetRequest{7}.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.Call(req));
  }
}
BENCHMARK(BM_LoopbackCall);

void BM_SocketCall(benchmark::State& state) {
  // The same round trip as BM_LoopbackCall but through a real kernel
  // socketpair — the wall-clock floor per cache op, next to the simulated
  // number for direct comparison.  (micro_tcp benches the epoll TCP path.)
  net::RpcServer server;
  server.Handle(net::MsgType::kGetRequest,
                [](const net::Message&) -> ecc::StatusOr<net::Message> {
                  net::GetResponse resp;
                  resp.found = true;
                  resp.value = std::string(1000, 'v');
                  return resp.Encode();
                });
  net::SocketTransport transport(&server);
  const net::Message req = net::GetRequest{7}.Encode();
  for (auto _ : state) {
    auto out = transport.Call(req);
    if (!out.ok()) state.SkipWithError("call failed");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SocketCall);

}  // namespace

#include "benchjson_main.h"  // main() with --json support
