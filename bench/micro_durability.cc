// Durability micro-bench.
//
// Phase A (put-path overhead): the same replicated put workload runs three
// ways — durability not wired at all, a disabled FleetDurability bound
// through the factory hook (no durability dir), and WAL-on (every mutation
// appended to a per-node write-ahead log, fsync batched at slice
// boundaries).  Disabled must be bit-identical to none in virtual time and
// outcome counts and within wall noise — durability off is zero-cost.
// WAL-on pays one write(2) per mutation; the gate holds it under a gross
// multiple of the bare put path.
//
// Phase B (the point of the WAL): after the fleet is torn down — every
// in-memory copy gone — an acknowledged write is still recoverable from
// the retired on-disk state via SalvageValue.
//
// Overrides: keys=2048 seed=0x5eed
#include <ftw.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "core/elastic_cache.h"
#include "durability/durability.h"
#include "figcommon.h"
#include "obs/trace.h"

namespace ecc::bench {
namespace {

constexpr std::size_t kValueBytes = 128;

std::string Val(core::Key k) {
  std::string v = "payload-" + std::to_string(k);
  v.resize(kValueBytes, 'd');
  return v;
}

int RemoveTreeCb(const char* path, const struct stat*, int,
                 struct FTW*) {
  return ::remove(path);
}

void RemoveTree(const std::string& dir) {
  ::nftw(dir.c_str(), RemoveTreeCb, 16, FTW_DEPTH | FTW_PHYS);
}

enum class Mode { kNone, kDisabled, kWal };

struct RunResult {
  std::uint64_t clock_us = 0;
  std::uint64_t puts_ok = 0;
  std::uint64_t wal_records = 0;  ///< appends flushed per wal_append events
  bool salvaged_after_teardown = false;
  double wall_ns_per_put = 0;
};

RunResult RunPuts(const Config& cfg, Mode mode) {
  VirtualClock clock;
  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x5eed));
  cloudsim::CloudProvider provider(cloud, &clock);

  obs::TraceLog trace{1 << 12};
  durability::DurabilityOptions dopts;
  if (mode == Mode::kWal) {
    std::string dir = "/tmp/ecc_bench_dur.XXXXXX";
    if (::mkdtemp(dir.data()) == nullptr) {
      std::perror("mkdtemp");
      std::exit(1);
    }
    dopts.dir = dir;
    dopts.fsync = false;  // fsync cost is the platter's, not the put path's
    dopts.obs.trace = &trace;
  }
  durability::FleetDurability durable(dopts);

  const auto keys = static_cast<std::size_t>(cfg.GetInt("keys", 2048));
  RunResult r;
  const core::Key probe = 13;  // first key of the workload
  {
    core::ElasticCacheOptions eopts;
    eopts.node_capacity_bytes =
        4096 * core::RecordSize(0, std::size_t{kValueBytes});
    eopts.ring.range = 1 << 14;
    eopts.initial_nodes = 4;
    eopts.replicas = 2;
    if (mode != Mode::kNone) eopts.durability_factory = durable.Factory();
    core::ElasticCache cache(eopts, &provider, &clock);

    std::vector<core::Key> workload;
    workload.reserve(keys);
    for (std::size_t i = 1; i <= keys; ++i) {
      workload.push_back((i * 13) % (eopts.ring.range / 2));
    }

    const std::size_t per_step = keys / 8;
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < keys; ++i) {
      if (cache.Put(workload[i], Val(workload[i])).ok()) ++r.puts_ok;
      if (i % per_step == per_step - 1) durable.Tick();  // slice boundary
    }
    const auto wall_end = std::chrono::steady_clock::now();
    r.wall_ns_per_put =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                                 wall_start)
                .count()) /
        static_cast<double>(keys);
    r.clock_us = static_cast<std::uint64_t>(clock.now().micros());
  }
  // The cache is gone: every in-memory copy of every record is destroyed,
  // and the durable dirs are retired into the salvage set.
  durable.Tick();
  for (const auto& e : trace.Events()) {
    if (e.kind == obs::EventKind::kWalAppend) {
      r.wal_records += static_cast<std::uint64_t>(e.a);
    }
  }
  if (mode == Mode::kWal) {
    auto v = durable.SalvageValue(probe);
    r.salvaged_after_teardown = v.ok() && *v == Val(probe);
    RemoveTree(dopts.dir);
  }
  return r;
}

RunResult Best(const Config& cfg, Mode mode, int reps) {
  RunResult best = RunPuts(cfg, mode);
  for (int i = 1; i < reps; ++i) {
    RunResult r = RunPuts(cfg, mode);
    if (r.wall_ns_per_put < best.wall_ns_per_put) {
      r.salvaged_after_teardown |= best.salvaged_after_teardown;
      best = r;
    }
  }
  return best;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Durability — WAL append overhead on the put path",
      "Write-ahead logging per shard mutation with fsync batched at slice "
      "boundaries; durability off must cost nothing, WAL-on must stay "
      "within a gross multiple of the bare put, and an acked write must "
      "survive full fleet teardown.");

  const RunResult none = Best(cfg, Mode::kNone, 3);
  const RunResult disabled = Best(cfg, Mode::kDisabled, 3);
  const RunResult wal = Best(cfg, Mode::kWal, 3);

  Table t({"config", "puts_ok", "virtual_s", "wal_records", "wall_ns/put"});
  t.AddRow({"no durability", std::to_string(none.puts_ok),
            FormatG(none.clock_us / 1e6), std::to_string(none.wal_records),
            FormatG(none.wall_ns_per_put)});
  t.AddRow({"factory bound, disabled", std::to_string(disabled.puts_ok),
            FormatG(disabled.clock_us / 1e6),
            std::to_string(disabled.wal_records),
            FormatG(disabled.wall_ns_per_put)});
  t.AddRow({"WAL on", std::to_string(wal.puts_ok),
            FormatG(wal.clock_us / 1e6), std::to_string(wal.wal_records),
            FormatG(wal.wall_ns_per_put)});
  std::printf("%s\n", t.ToString().c_str());

  BenchMetric("put_ns_none", none.wall_ns_per_put);
  BenchMetric("put_ns_disabled", disabled.wall_ns_per_put);
  BenchMetric("put_ns_wal", wal.wall_ns_per_put);
  BenchMetric("wal_records", static_cast<double>(wal.wal_records));

  bool ok = true;
  ok &= ShapeCheck("disabled durability is virtually identical to none",
                   none.clock_us == disabled.clock_us &&
                       none.puts_ok == disabled.puts_ok &&
                       disabled.wal_records == 0);
  ok &= ShapeCheck("disabled durability wall cost within noise",
                   disabled.wall_ns_per_put <= none.wall_ns_per_put * 1.5 &&
                       none.wall_ns_per_put <=
                           disabled.wall_ns_per_put * 1.5);
  ok &= ShapeCheck("WAL logged at least one record per acked put",
                   wal.wal_records >= wal.puts_ok && wal.puts_ok > 0);
  ok &= ShapeCheck("WAL append keeps the put path under the gated bound",
                   wal.wall_ns_per_put <= none.wall_ns_per_put * 25.0);
  ok &= ShapeCheck("acked write salvageable after full fleet teardown",
                   wal.salvaged_after_teardown);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "micro_durability");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
