// Front-tier hot-key cache micro-bench: ablation of the coordinator-local
// front cache (DESIGN.md §12) under skewed workloads.
//
// Phase A (zipf ablation): a warm zipf(s) stream is driven through the
// ParallelCoordinator at 1/2/4/8 workers, front tier off vs on.  Every
// query is a backend hit either way; what the front tier removes is the
// per-query backend probe (lookup_cost virtual time + the owning node's
// stripe mutex) for the heavy hitters each worker's tracker promotes.
// Throughput is queries per virtual makespan second.  Shape checks gate on
// (a) front-on beating front-off at every worker count and (b) front-on
// throughput still scaling with workers — the per-worker caches share no
// lock, so adding coordinators adds hot-key capacity.
//
// Phase B (hotspot residency): a 90/10 hotspot stream at workers_max, hot
// set sized to fit the front cache: the steady-state front hit rate must
// approach the hot probability.
//
// Phase C (sequential coordinator): the same hotspot stream through the
// single-threaded Coordinator, front off vs on, comparing total query time.
//
// Overrides: workers_max=8 stream=8192 zipf_s=1.2 hot=64 hot_prob=0.9
//            front_capacity=64 tracker=128 admit=4 value_bytes=1000 seed=0x90
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "core/parallel_coordinator.h"
#include "core/striped_backend.h"
#include "figcommon.h"
#include "workload/generator.h"

namespace ecc::bench {
namespace {

struct FrontStack {
  std::unique_ptr<VirtualClock> clock;
  std::unique_ptr<cloudsim::CloudProvider> provider;
  std::unique_ptr<core::ElasticCache> cache;
  std::unique_ptr<core::StripedBackend> striped;
  std::unique_ptr<service::Service> service;
  std::unique_ptr<sfc::Linearizer> linearizer;
  std::unique_ptr<core::ParallelCoordinator> coordinator;
};

constexpr std::uint64_t kKeyspace = 1u << 12;  // one node holds it all warm

fronttier::FrontTierOptions FrontOptions(const Config& cfg, bool enabled) {
  fronttier::FrontTierOptions front;
  front.enabled = enabled;
  front.tracker_counters =
      static_cast<std::size_t>(cfg.GetInt("tracker", 128));
  front.capacity = static_cast<std::size_t>(cfg.GetInt("front_capacity", 64));
  front.admit_min_count =
      static_cast<std::uint64_t>(cfg.GetInt("admit", 4));
  return front;
}

FrontStack BuildFrontStack(const Config& cfg, std::size_t workers,
                           bool front_on) {
  FrontStack s;
  s.clock = std::make_unique<VirtualClock>();

  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x90));
  s.provider = std::make_unique<cloudsim::CloudProvider>(cloud, s.clock.get());

  const auto value_bytes =
      static_cast<std::size_t>(cfg.GetInt("value_bytes", 1000));
  core::ElasticCacheOptions copts;
  copts.node_capacity_bytes = kKeyspace * core::RecordSize(0, value_bytes);
  copts.ring.range = kKeyspace;
  s.cache = std::make_unique<core::ElasticCache>(copts, s.provider.get(),
                                                 s.clock.get());
  s.striped = std::make_unique<core::StripedBackend>(s.cache.get(),
                                                     /*stripes=*/16);

  s.service = std::make_unique<service::SyntheticService>(
      "synthetic", Duration::Seconds(cfg.GetInt("service_s", 23)),
      value_bytes);
  s.linearizer = std::make_unique<sfc::Linearizer>(GridFor(kKeyspace));

  core::ParallelCoordinatorOptions popts;
  popts.workers = workers;
  popts.front = FrontOptions(cfg, front_on);
  s.coordinator = std::make_unique<core::ParallelCoordinator>(
      popts, s.striped.get(), s.service.get(), s.linearizer.get());

  // Warm every key the streams can draw, so the ablation measures the pure
  // hit path (no 23 s service calls muddying the makespan).
  const std::string v(value_bytes, 'w');
  for (std::uint64_t k = 0; k < kKeyspace; ++k) {
    (void)s.striped->Put(static_cast<core::Key>(k), v);
  }
  return s;
}

std::vector<core::Key> MakeStream(workload::KeyGenerator& gen,
                                  std::size_t len) {
  std::vector<core::Key> stream;
  stream.reserve(len);
  for (std::size_t i = 0; i < len; ++i) stream.push_back(gen.Next());
  return stream;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Front tier — hot-key throughput ablation",
      "Per-worker front caches over a striped elastic cache; zipf and "
      "hotspot streams, front tier off vs on.");

  const auto workers_max =
      static_cast<std::size_t>(cfg.GetInt("workers_max", 8));
  const auto stream_len =
      static_cast<std::size_t>(cfg.GetInt("stream", 8192));
  const auto seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x90));

  // ---- Phase A: zipf sweep over worker count, front off vs on ---------
  const double zipf_s = cfg.GetDouble("zipf_s", 1.2);
  workload::ZipfKeyGenerator zipf(kKeyspace, zipf_s, seed ^ 0x21Fu);
  const std::vector<core::Key> zstream = MakeStream(zipf, stream_len);

  std::vector<std::size_t> sweep;
  for (std::size_t w = 1; w <= workers_max; w *= 2) sweep.push_back(w);

  Table ablation({"workers", "qps_off", "qps_on", "front_hits", "speedup"});
  SeriesSet series("workers");
  double on1 = 0.0, on_last = 0.0;
  bool on_beats_off = true;
  bool counts_ok = true;
  for (std::size_t w : sweep) {
    FrontStack off = BuildFrontStack(cfg, w, /*front_on=*/false);
    const core::ParallelBatchReport ro = off.coordinator->RunKeys(zstream);
    FrontStack on = BuildFrontStack(cfg, w, /*front_on=*/true);
    const core::ParallelBatchReport rn = on.coordinator->RunKeys(zstream);
    const double qps_off = ro.QueriesPerSecond();
    const double qps_on = rn.QueriesPerSecond();
    if (w == 1) on1 = qps_on;
    on_last = qps_on;
    on_beats_off &= qps_on > qps_off;
    counts_ok &= rn.hits + rn.coalesced + rn.misses + rn.shed + rn.stale ==
                 rn.queries;
    counts_ok &= on.coordinator->front_hits() <= rn.hits;
    series.Get("qps_off").Add(static_cast<double>(w), qps_off);
    series.Get("qps_on").Add(static_cast<double>(w), qps_on);
    BenchMetric("zipf_qps_off_" + std::to_string(w) + "w", qps_off);
    BenchMetric("zipf_qps_on_" + std::to_string(w) + "w", qps_on);
    ablation.AddRow({std::to_string(w), FormatG(qps_off), FormatG(qps_on),
                     std::to_string(on.coordinator->front_hits()),
                     FormatG(qps_off > 0 ? qps_on / qps_off : 0.0)});
  }
  std::printf("%s\n", ablation.ToString().c_str());
  MaybeWriteCsv(cfg, series, "micro_fronttier");

  // ---- Phase B: hotspot residency at workers_max ----------------------
  const auto hot = static_cast<std::uint64_t>(cfg.GetInt("hot", 64));
  const double hot_prob = cfg.GetDouble("hot_prob", 0.9);
  workload::HotspotKeyGenerator hotspot(
      kKeyspace, static_cast<double>(hot) / static_cast<double>(kKeyspace),
      hot_prob, seed ^ 0x407u);
  const std::vector<core::Key> hstream = MakeStream(hotspot, stream_len);
  FrontStack hs = BuildFrontStack(cfg, workers_max, /*front_on=*/true);
  const core::ParallelBatchReport hr = hs.coordinator->RunKeys(hstream);
  const double front_rate =
      hr.queries > 0 ? static_cast<double>(hs.coordinator->front_hits()) /
                           static_cast<double>(hr.queries)
                     : 0.0;
  Table residency({"queries", "hits", "front_hits", "front_hit_rate"});
  residency.AddRow({std::to_string(hr.queries), std::to_string(hr.hits),
                    std::to_string(hs.coordinator->front_hits()),
                    FormatG(front_rate)});
  std::printf("%s\n", residency.ToString().c_str());
  BenchMetric("hotspot_front_hit_rate", front_rate);

  // ---- Phase C: sequential coordinator, hotspot stream ----------------
  StackParams sp;
  sp.keyspace = kKeyspace;
  sp.records_per_node = kKeyspace;
  sp.seed = seed;
  Duration seq_time[2];
  std::uint64_t seq_front_hits = 0;
  for (int on = 0; on < 2; ++on) {
    StackParams p = sp;
    p.coordinator.front = FrontOptions(cfg, on == 1);
    Stack stack = BuildStack(p);
    const std::string v(sp.value_bytes, 'w');
    for (std::uint64_t k = 0; k < kKeyspace; ++k) {
      (void)stack.cache->Put(static_cast<core::Key>(k), v);
    }
    for (const core::Key k : hstream) (void)stack.coordinator->ProcessKey(k);
    seq_time[on] = stack.coordinator->total_query_time();
    if (on == 1) seq_front_hits = stack.coordinator->front_hits();
  }
  std::printf("sequential hotspot: front-off %.3f s, front-on %.3f s "
              "(%llu front hits)\n\n",
              seq_time[0].seconds(), seq_time[1].seconds(),
              static_cast<unsigned long long>(seq_front_hits));
  BenchMetric("seq_query_time_off_s", seq_time[0].seconds());
  BenchMetric("seq_query_time_on_s", seq_time[1].seconds());

  bool ok = true;
  ok &= ShapeCheck("front-on throughput beats front-off at every worker "
                   "count (zipf stream)",
                   on_beats_off);
  ok &= ShapeCheck(
      "front-on throughput at " + std::to_string(workers_max) +
          " workers >= 4x the 1-worker front-on baseline",
      on1 > 0 && on_last / on1 >= 4.0);
  ok &= ShapeCheck("hotspot front hit rate >= 0.5 (hot set fits the front "
                   "cache)",
                   front_rate >= 0.5);
  ok &= ShapeCheck("sequential coordinator: front tier reduces total query "
                   "time",
                   seq_front_hits > 0 && seq_time[1] < seq_time[0]);
  ok &= ShapeCheck("query accounting balances with the front tier on",
                   counts_ok);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "micro_fronttier");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
