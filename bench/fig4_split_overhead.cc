// Figure 4 reproduction: "Node Splitting Overhead" — per split event, the
// sum of node-allocation time and data-migration time for GBA on the
// Fig. 3 workload.
//
// Paper shape: overhead can be large (tens of seconds), node allocation —
// not data movement — is the dominant contributor, and splits are seldom
// invoked so the penalty amortizes over the query volume.
#include <cstdio>

#include "common/histogram.h"
#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Figure 4 — Node Splitting Overhead (GBA, 64K keys, R=1)",
              "Per split: allocation wait + sweep-and-migrate transfer "
              "time.");

  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 16);
  params.records_per_node = cfg.GetInt("records_per_node", 4096);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x31);
  params.coordinator.window.slices = 0;
  params.coordinator.contraction_epsilon = 0;
  // Fleet telemetry: decimate the 200k-step run to ~200 samples.
  params.telemetry_every = cfg.GetInt("telemetry_every", 1000);
  Stack stack = BuildStack(params);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xf16));
  workload::ConstantRate rate(cfg.GetInt("rate", 1));
  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 200000);
  eopts.observe_every = eopts.time_steps;  // no intermediate samples needed
  eopts.label = "gba";
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(), &keys,
                                    &rate, stack.provider.get(),
                                    stack.clock.get());
  const auto result = driver.Run();

  const core::ElasticCache* cache = stack.elastic();
  Table table({"split#", "src", "dst", "new_node", "records", "bytes",
               "alloc_s", "migrate_s", "total_s"});
  Histogram overhead_s(0.001);
  Histogram alloc_share;
  Duration total_overhead;
  std::size_t alloc_splits = 0;
  for (std::size_t i = 0; i < cache->split_history().size(); ++i) {
    const core::SplitReport& r = cache->split_history()[i];
    table.AddRow({FormatG(static_cast<double>(i)),
                  FormatG(static_cast<double>(r.source)),
                  FormatG(static_cast<double>(r.destination)),
                  r.allocated_new_node ? "yes" : "no",
                  FormatG(static_cast<double>(r.records_moved)),
                  FormatG(static_cast<double>(r.bytes_moved)),
                  FormatG(r.alloc_time.seconds()),
                  FormatG(r.move_time.seconds()),
                  FormatG(r.TotalOverhead().seconds())});
    overhead_s.Add(r.TotalOverhead().seconds());
    total_overhead += r.TotalOverhead();
    if (r.allocated_new_node) {
      ++alloc_splits;
      alloc_share.Add(r.alloc_time.seconds() /
                      std::max(1e-9, r.TotalOverhead().seconds()));
    }
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("split overhead (s): %s\n", overhead_s.Summary().c_str());

  // The same distribution, reproduced from the metrics registry instead of
  // the split history: every split observes its overhead into the
  // cache.split_overhead_s histogram.
  const obs::MetricsSnapshot snap = stack.metrics->Snapshot();
  if (const Histogram* reg_overhead =
          snap.FindHistogram("cache.split_overhead_s");
      reg_overhead != nullptr) {
    std::printf("registry overhead (s): %s\n",
                reg_overhead->Summary().c_str());
  }

  const auto& stats = cache->stats();
  const double amortized_ms =
      total_overhead.millis() /
      static_cast<double>(result.summary.total_queries);
  std::printf("splits=%llu (with allocation: %zu)   total overhead=%s   "
              "amortized per query=%.3f ms\n",
              static_cast<unsigned long long>(stats.splits), alloc_splits,
              total_overhead.ToString().c_str(), amortized_ms);
  std::printf("allocation share of total split overhead: %.1f%%\n",
              100.0 * stats.total_alloc_time.seconds() /
                  std::max(1e-9, total_overhead.seconds()));

  bool ok = true;
  ok &= ShapeCheck("splits occurred and fleet grew",
                   stats.splits > 0 && result.summary.final_nodes > 1);
  ok &= ShapeCheck("overhead per split can be large (max > 10 s)",
                   overhead_s.max() > 10.0);
  ok &= ShapeCheck("allocation dominates migration overall",
                   stats.total_alloc_time > stats.total_migration_time);
  ok &= ShapeCheck(
      "allocation dominates within every allocating split",
      alloc_splits == 0 || alloc_share.min() > 0.5);
  ok &= ShapeCheck("splits are rare: <1 per 1000 queries",
                   static_cast<double>(stats.splits) <
                       static_cast<double>(result.summary.total_queries) /
                           1000.0);
  ok &= ShapeCheck("amortized cost per query below 10 ms",
                   amortized_ms < 10.0);
  // The CacheStats shim reads the same registry cells a snapshot does;
  // after the (single-threaded) run they must agree exactly, and the
  // registry histogram must have observed every split.
  const Histogram* reg_overhead = snap.FindHistogram("cache.split_overhead_s");
  ok &= ShapeCheck(
      "metrics snapshot agrees with stats shim",
      snap.CounterValue("cache.splits") == stats.splits &&
          snap.CounterValue("cache.gets") == stats.gets &&
          snap.CounterValue("cache.records_migrated") ==
              stats.records_migrated &&
          reg_overhead != nullptr &&
          reg_overhead->count() == stats.splits);
  ok &= ShapeCheck("fleet telemetry sampled the run",
                   stack.telemetry->samples_recorded() > 0);
  MaybeWriteCsv(cfg, stack.telemetry->series(), "fig4_fleet");
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "fig4_split_overhead");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
