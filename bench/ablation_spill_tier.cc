// Ablation: persistent spill tier (paper §IV.D / companion-paper topic —
// "cost benefits and performance tradeoffs among the varying Amazon Cloud
// storage types").
//
// The phased workload evicts aggressively after the burst.  Without a
// second tier, every re-query of an evicted key pays the 23 s service;
// with an S3-like tier the evicted records reheat in ~220 ms for cents.
// This bench compares tail-phase behaviour and total dollars.
#include <cstdio>

#include "cloudsim/persistent_store.h"
#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct Outcome {
  std::string label;
  std::uint64_t service_calls = 0;
  std::uint64_t spill_hits = 0;
  double tail_mean_latency_s = 0.0;  ///< mean query latency after step 400
  double compute_cost = 0.0;         ///< instance bill
  double storage_cost = 0.0;         ///< spill-tier bill
};

Outcome Run(const Config& cfg, bool with_spill, const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 15);
  params.records_per_node = cfg.GetInt("records_per_node", 3500);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x51);
  params.coordinator.window.slices = cfg.GetInt("window", 100);
  params.coordinator.contraction_epsilon = cfg.GetInt("epsilon", 5);
  params.min_nodes = 2;
  Stack stack = BuildStack(params);
  cloudsim::PersistentStore store(cloudsim::PersistentStoreOptions{},
                                  stack.clock.get());
  if (with_spill) stack.coordinator->AttachSpillStore(&store);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xabc));
  const auto rate = workload::PaperPhasedSchedule();
  const std::size_t steps = cfg.GetInt("steps", 700);

  double tail_latency_sum = 0.0;
  std::uint64_t tail_queries = 0;
  for (std::size_t step = 1; step <= steps; ++step) {
    const std::size_t r = rate->RateAt(step);
    for (std::size_t j = 0; j < r; ++j) {
      const core::QueryOutcome q =
          stack.coordinator->ProcessKey(keys.Next());
      if (step > 400) {
        tail_latency_sum += q.latency.seconds();
        ++tail_queries;
      }
    }
    (void)stack.coordinator->EndTimeStep();
  }

  Outcome out;
  out.label = label;
  out.service_calls = stack.service->invocations();
  out.spill_hits = stack.coordinator->spill_hits();
  out.tail_mean_latency_s =
      tail_queries == 0 ? 0.0
                        : tail_latency_sum / static_cast<double>(tail_queries);
  out.compute_cost = stack.provider->AccruedCostDollars();
  out.storage_cost = store.AccruedCostDollars();
  return out;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Persistent Spill Tier (S3-like, paper §IV.D)",
              "Decay-evicted records spill to object storage and reheat in "
              "~220 ms instead of 23 s.");

  const Outcome memory_only = Run(cfg, false, "memory-only");
  const Outcome tiered = Run(cfg, true, "memory+s3");

  Table table({"config", "service_calls", "spill_hits",
               "tail_mean_latency_s", "compute_usd", "storage_usd",
               "total_usd"});
  for (const Outcome& o : {memory_only, tiered}) {
    table.AddRow({o.label, FormatG(static_cast<double>(o.service_calls)),
                  FormatG(static_cast<double>(o.spill_hits)),
                  FormatG(o.tail_mean_latency_s), FormatG(o.compute_cost),
                  FormatG(o.storage_cost),
                  FormatG(o.compute_cost + o.storage_cost)});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("spill tier absorbs a large share of would-be misses",
                   tiered.spill_hits >
                       (memory_only.service_calls -
                        tiered.service_calls) / 2);
  ok &= ShapeCheck("service invocations drop by > 25%",
                   tiered.service_calls <
                       memory_only.service_calls * 3 / 4);
  ok &= ShapeCheck("tail-phase mean latency improves by > 2x",
                   tiered.tail_mean_latency_s <
                       0.5 * memory_only.tail_mean_latency_s);
  ok &= ShapeCheck("storage bill is a small fraction of compute (< 20%)",
                   tiered.storage_cost < 0.2 * tiered.compute_cost);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_spill_tier");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
