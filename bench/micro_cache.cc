// Micro-benchmarks for the cache hot paths: GBA lookup/insert real CPU
// cost, sweep-and-migrate throughput, and the sliding-window scorer.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cloudsim/provider.h"
#include "common/rng.h"
#include "core/elastic_cache.h"
#include "core/sliding_window.h"

namespace {

using ecc::Duration;
using ecc::Rng;
using ecc::VirtualClock;
namespace core = ecc::core;
namespace cloudsim = ecc::cloudsim;

struct CacheFixture {
  explicit CacheFixture(std::size_t records_per_node)
      : provider(cloudsim::CloudOptions{}, &clock),
        cache(
            [&] {
              core::ElasticCacheOptions opts;
              opts.node_capacity_bytes =
                  records_per_node * core::RecordSize(0, std::size_t{1000});
              opts.ring.range = 1u << 16;
              return opts;
            }(),
            &provider, &clock) {}
  VirtualClock clock;
  cloudsim::CloudProvider provider;
  core::ElasticCache cache;
};

void BM_ElasticGetHit(benchmark::State& state) {
  CacheFixture f(1 << 14);
  Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t k = rng.Uniform(1u << 16);
    if (f.cache.Put(k, std::string(1000, 'v')).ok()) keys.push_back(k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.cache.Get(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_ElasticGetHit);

void BM_ElasticGetMiss(benchmark::State& state) {
  CacheFixture f(1 << 14);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.cache.Get(rng.Uniform(1u << 16)));
  }
}
BENCHMARK(BM_ElasticGetMiss);

void BM_ElasticPutNoSplit(benchmark::State& state) {
  // Large capacity: pure insert path, no overflow machinery.
  CacheFixture f(1 << 20);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.cache.Put(rng.Next() % (1u << 16), std::string(1000, 'v')));
  }
}
BENCHMARK(BM_ElasticPutNoSplit);

void BM_ElasticPutWithSplits(benchmark::State& state) {
  // Small nodes: the amortized cost including overflow splits.
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    CacheFixture f(512);
    state.ResumeTiming();
    for (int i = 0; i < 2000; ++i) {
      benchmark::DoNotOptimize(
          f.cache.Put(rng.Next() % (1u << 16), std::string(1000, 'v')));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ElasticPutWithSplits);

void BM_SlidingWindowRecord(benchmark::State& state) {
  core::SlidingWindowOptions opts;
  opts.slices = 100;
  core::SlidingWindow window(opts);
  Rng rng(5);
  for (auto _ : state) {
    window.RecordQuery(rng.Uniform(1u << 15));
  }
}
BENCHMARK(BM_SlidingWindowRecord);

void BM_SlidingWindowAdvance(benchmark::State& state) {
  core::SlidingWindowOptions opts;
  opts.slices = static_cast<std::size_t>(state.range(0));
  core::SlidingWindow window(opts);
  Rng rng(6);
  // Pre-fill the window with realistic slice populations.
  for (std::size_t s = 0; s < opts.slices; ++s) {
    for (int i = 0; i < 250; ++i) window.RecordQuery(rng.Uniform(1u << 15));
    (void)window.AdvanceSlice();
  }
  for (auto _ : state) {
    for (int i = 0; i < 250; ++i) window.RecordQuery(rng.Uniform(1u << 15));
    benchmark::DoNotOptimize(window.AdvanceSlice());
  }
  state.SetItemsProcessed(state.iterations() * 250);
}
BENCHMARK(BM_SlidingWindowAdvance)->Arg(50)->Arg(100)->Arg(400);

void BM_SlidingWindowLambda(benchmark::State& state) {
  core::SlidingWindowOptions opts;
  opts.slices = static_cast<std::size_t>(state.range(0));
  core::SlidingWindow window(opts);
  Rng rng(7);
  for (std::size_t s = 0; s < opts.slices; ++s) {
    for (int i = 0; i < 250; ++i) window.RecordQuery(rng.Uniform(1u << 15));
    (void)window.AdvanceSlice();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.Lambda(rng.Uniform(1u << 15)));
  }
}
BENCHMARK(BM_SlidingWindowLambda)->Arg(50)->Arg(400);

}  // namespace

#include "benchjson_main.h"  // main() with --json support
