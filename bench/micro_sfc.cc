// Micro-benchmarks for the space-filling-curve substrate (B²-Tree
// linearization): Morton vs Hilbert encode/decode and the full
// query-to-key path.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sfc/hilbert.h"
#include "sfc/linearizer.h"
#include "sfc/locality.h"
#include "sfc/morton.h"

namespace {

using ecc::Rng;
namespace sfc = ecc::sfc;

void BM_MortonEncode2(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sfc::MortonEncode2(static_cast<std::uint32_t>(rng.Next()),
                           static_cast<std::uint32_t>(rng.Next())));
  }
}
BENCHMARK(BM_MortonEncode2);

void BM_MortonDecode2(benchmark::State& state) {
  Rng rng(2);
  std::uint32_t x = 0, y = 0;
  for (auto _ : state) {
    sfc::MortonDecode2(rng.Next(), x, y);
    benchmark::DoNotOptimize(x + y);
  }
}
BENCHMARK(BM_MortonDecode2);

void BM_MortonEncode3(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::MortonEncode3(
        static_cast<std::uint32_t>(rng.Uniform(1u << 21)),
        static_cast<std::uint32_t>(rng.Uniform(1u << 21)),
        static_cast<std::uint32_t>(rng.Uniform(1u << 21))));
  }
}
BENCHMARK(BM_MortonEncode3);

void BM_HilbertEncode2(benchmark::State& state) {
  Rng rng(4);
  const auto order = static_cast<unsigned>(state.range(0));
  const std::uint32_t mask = (1u << order) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sfc::HilbertEncode2(static_cast<std::uint32_t>(rng.Next()) & mask,
                            static_cast<std::uint32_t>(rng.Next()) & mask,
                            order));
  }
}
BENCHMARK(BM_HilbertEncode2)->Arg(8)->Arg(16)->Arg(24);

void BM_HilbertDecode2(benchmark::State& state) {
  Rng rng(5);
  const auto order = static_cast<unsigned>(state.range(0));
  std::uint32_t x = 0, y = 0;
  for (auto _ : state) {
    sfc::HilbertDecode2(rng.Uniform(1ull << (2 * order)), order, x, y);
    benchmark::DoNotOptimize(x + y);
  }
}
BENCHMARK(BM_HilbertDecode2)->Arg(8)->Arg(16);

void BM_LinearizerEncodeQuery(benchmark::State& state) {
  const sfc::Linearizer lin;
  Rng rng(6);
  for (auto _ : state) {
    sfc::GeoTemporalQuery q;
    q.longitude = rng.UniformDouble(-180.0, 180.0);
    q.latitude = rng.UniformDouble(-90.0, 90.0);
    q.epoch_days = rng.UniformDouble(0.0, 365.0);
    benchmark::DoNotOptimize(lin.EncodeQuery(q));
  }
}
BENCHMARK(BM_LinearizerEncodeQuery);

void BM_LinearizerCellCenter(benchmark::State& state) {
  const sfc::Linearizer lin;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lin.CellCenter(rng.Uniform(lin.KeySpace())));
  }
}
BENCHMARK(BM_LinearizerCellCenter);

void BM_WindowClusters(benchmark::State& state) {
  const auto curve = state.range(0) == 0 ? sfc::CurveKind::kMorton
                                         : sfc::CurveKind::kHilbert;
  double clusters = 0.0;
  for (auto _ : state) {
    clusters = sfc::MeasureWindowClusters(curve, 8, 8, 1, 50);
    benchmark::DoNotOptimize(clusters);
  }
  state.counters["clusters_per_8x8_window"] = clusters;
}
BENCHMARK(BM_WindowClusters)->Arg(0)->Arg(1);  // 0 = Morton, 1 = Hilbert

}  // namespace

#include "benchjson_main.h"  // main() with --json support
