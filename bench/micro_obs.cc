// Observability micro-bench.
//
// Phase A (zero-cost when off): the same workload runs three ways — the
// default private registry, the process-wide disabled registry
// (EccObsDisabled), and full observability (external registry + trace
// ring).  Instrumentation must not perturb the simulation: all three runs
// finish with byte-identical virtual clocks, records placed, and split
// counts.  In disabled mode the stats shim reads all-zero while the split
// history still records the real topology events.
//
// Phase B (hot-path wall cost): the Get loop is timed in wall-clock
// nanoseconds per op (best of `reps` passes).  The disabled-registry run
// compiles the counter sites down to tested-null branches, so it must stay
// within noise of the default run — the bound is a lenient 1.5x so the
// check is robust on loaded CI machines.
//
// Overrides: records=3072 gets=65536 value_bytes=256 reps=5 seed=0x0b5
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/elastic_cache.h"
#include "figcommon.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecc::bench {
namespace {

enum class ObsMode { kDefault, kDisabled, kFull };

const char* ModeName(ObsMode m) {
  switch (m) {
    case ObsMode::kDefault: return "default registry";
    case ObsMode::kDisabled: return "disabled (EccObsDisabled)";
    case ObsMode::kFull: return "full (registry + trace)";
  }
  return "?";
}

struct RunResult {
  std::uint64_t clock_us = 0;
  std::size_t records = 0;
  std::size_t splits = 0;       ///< from split_history (works in all modes)
  std::uint64_t stats_gets = 0; ///< from the CacheStats shim
  std::uint64_t trace_events = 0;
  double get_ns_per_op = 0.0;   ///< best-of-reps wall time of the Get loop
};

RunResult RunWorkload(const Config& cfg, ObsMode mode) {
  VirtualClock clock;
  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x0b5));
  cloudsim::CloudProvider provider(cloud, &clock);

  obs::MetricsRegistry registry;
  obs::TraceLog trace;
  const auto value_bytes =
      static_cast<std::size_t>(cfg.GetInt("value_bytes", 256));
  core::ElasticCacheOptions copts;
  copts.node_capacity_bytes = 512 * core::RecordSize(0, value_bytes);
  copts.ring.range = 1 << 14;
  switch (mode) {
    case ObsMode::kDefault:
      break;  // the cache builds its own private registry
    case ObsMode::kDisabled:
      copts.obs.metrics = &obs::EccObsDisabled();
      break;
    case ObsMode::kFull:
      copts.obs.metrics = &registry;
      copts.obs.trace = &trace;
      break;
  }
  core::ElasticCache cache(copts, &provider, &clock);

  const auto records = static_cast<std::size_t>(cfg.GetInt("records", 3072));
  const auto gets = static_cast<std::size_t>(cfg.GetInt("gets", 65536));
  const auto reps = static_cast<std::size_t>(cfg.GetInt("reps", 5));
  Rng rng(cloud.seed);
  std::vector<core::Key> keys;
  keys.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    keys.push_back(rng.Uniform(copts.ring.range));
  }
  for (const core::Key k : keys) {
    (void)cache.Put(k, std::string(value_bytes, 'v'));
  }

  // The timed hot path.  Reps share the key sequence so every pass does the
  // same work; virtual time advances identically regardless of mode.
  std::vector<core::Key> probes;
  probes.reserve(gets);
  for (std::size_t i = 0; i < gets; ++i) {
    probes.push_back(keys[rng.Uniform(keys.size())]);
  }
  double best_ns = 0.0;
  for (std::size_t rep = 0; rep < (reps == 0 ? 1 : reps); ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::Key k : probes) (void)cache.Get(k);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(probes.empty() ? 1 : probes.size());
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }

  RunResult r;
  r.clock_us = static_cast<std::uint64_t>(clock.now().micros());
  r.records = cache.TotalRecords();
  r.splits = cache.split_history().size();
  r.stats_gets = cache.stats().gets;
  r.trace_events = trace.total_appended();
  r.get_ns_per_op = best_ns;
  return r;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Observability — hot-path cost on/off and simulation invariance",
      "The same workload under a private registry, the disabled registry, "
      "and full metrics+trace; instrumentation must not move the "
      "simulation.");

  const RunResult def = RunWorkload(cfg, ObsMode::kDefault);
  const RunResult off = RunWorkload(cfg, ObsMode::kDisabled);
  const RunResult full = RunWorkload(cfg, ObsMode::kFull);

  Table table({"config", "virtual_s", "records", "splits", "stats_gets",
               "trace_events", "get_ns/op"});
  const std::pair<ObsMode, const RunResult*> rows[] = {
      {ObsMode::kDefault, &def},
      {ObsMode::kDisabled, &off},
      {ObsMode::kFull, &full}};
  for (const auto& [mode, r] : rows) {
    table.AddRow({ModeName(mode), FormatG(r->clock_us / 1e6),
                  std::to_string(r->records), std::to_string(r->splits),
                  std::to_string(r->stats_gets),
                  std::to_string(r->trace_events),
                  FormatG(r->get_ns_per_op)});
  }
  std::printf("%s\n", table.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck(
      "observability does not move the simulation (clock/records/splits)",
      def.clock_us == off.clock_us && def.clock_us == full.clock_us &&
          def.records == off.records && def.records == full.records &&
          def.splits == off.splits && def.splits == full.splits);
  ok &= ShapeCheck("default and full modes count every get",
                   def.stats_gets == full.stats_gets &&
                       def.stats_gets > 0);
  ok &= ShapeCheck(
      "disabled mode reads zero stats but keeps the split history",
      off.stats_gets == 0 && off.splits == def.splits);
  ok &= ShapeCheck("full mode traced events", full.trace_events > 0);
  ok &= ShapeCheck(
      "disabled hot path within noise of default (<= 1.5x)",
      off.get_ns_per_op <= def.get_ns_per_op * 1.5 + 5.0);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "micro_obs");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
