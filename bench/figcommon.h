// Shared scaffolding for the figure-reproduction benches.
//
// Each bench binary builds one or more "stacks" (simulated cloud + cache +
// service + coordinator), drives them with the paper's workload, and prints
// series tables plus a summary.  Every knob is overridable from the command
// line as `key=value` tokens (see Config), so sweeps do not require
// recompilation:
//
//   ./fig3_speedup steps=50000 service=shoreline
//
// The default service is the synthetic stand-in (exact 23 s cost, 1000-byte
// derived results — the paper's measured magnitudes) because figure shapes
// depend only on key statistics and record size; `service=shoreline` runs
// the full CTM + marching-squares pipeline instead.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloudsim/provider.h"
#include "common/config.h"
#include "common/timeseries.h"
#include "common/time.h"
#include "core/coordinator.h"
#include "core/elastic_cache.h"
#include "core/static_cache.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "service/service.h"
#include "sfc/linearizer.h"
#include "workload/experiment.h"
#include "workload/generator.h"

namespace ecc::bench {

/// Everything one experiment run needs, with single ownership.
struct Stack {
  std::unique_ptr<VirtualClock> clock;
  std::unique_ptr<cloudsim::CloudProvider> provider;  // null for static
  // Observability: every stack gets a registry (metrics + telemetry are
  // cheap); the trace ring is allocated only when StackParams::trace.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceLog> trace;
  std::unique_ptr<obs::FleetTelemetry> telemetry;
  std::unique_ptr<core::CacheBackend> cache;
  std::unique_ptr<service::Service> service;
  std::unique_ptr<sfc::Linearizer> linearizer;
  std::unique_ptr<core::Coordinator> coordinator;

  [[nodiscard]] core::ElasticCache* elastic() const {
    return dynamic_cast<core::ElasticCache*>(cache.get());
  }
};

struct StackParams {
  std::uint64_t keyspace = 1u << 16;
  std::size_t records_per_node = 4096;
  /// Derived-result payload bytes (synthetic service).
  std::size_t value_bytes = 1000;
  Duration service_time = Duration::Seconds(23);
  std::string service_kind = "synthetic";  // or "shoreline"
  core::CoordinatorOptions coordinator;
  std::uint64_t seed = 0x90;
  /// 0 = elastic (GBA); otherwise a fixed-node baseline of this size.
  std::size_t static_nodes = 0;
  core::VictimPolicy static_policy = core::VictimPolicy::kLru;
  /// Warm-pool size to prewarm at startup (elastic only; extension).
  std::size_t prewarm = 0;
  /// Contraction floor (elastic only).
  std::size_t min_nodes = 1;
  /// Record copies (elastic only; 2 = successor replication extension).
  std::size_t replicas = 1;
  /// Allocate a trace ring and wire it through cache + coordinator.
  bool trace = false;
  /// Telemetry decimation: record every Nth time step (>= 1).  Long sweeps
  /// (fig4's 200k steps) pass ~1000 to bound series memory.
  std::size_t telemetry_every = 1;
};

/// Per-record in-memory footprint used for capacity calibration.
[[nodiscard]] std::size_t NominalRecordBytes(const StackParams& p);

/// Linearizer grid sized so KeySpace() == p.keyspace (keyspace must be a
/// power of four times a power of two; 2^14..2^16 supported here).
[[nodiscard]] sfc::LinearizerOptions GridFor(std::uint64_t keyspace);

/// Build a ready-to-run stack.
[[nodiscard]] Stack BuildStack(const StackParams& p);

/// Apply `key=value` command-line overrides onto a Config; exits with a
/// usage message on malformed input.
[[nodiscard]] Config ParseArgs(int argc, char** argv);

/// Pretty banner for a figure bench.
void PrintHeader(const std::string& figure, const std::string& description);

/// One qualitative "shape check" line (the paper-shape assertions the
/// bench verifies); prints PASS/FAIL, records the claim into the bench's
/// JSON report (see MaybeWriteBenchJson), and returns pass.
bool ShapeCheck(const std::string& claim, bool ok);

/// If the config carries csv_dir=PATH, write `series` to PATH/<name>.csv
/// (for gnuplot/matplotlib replotting of the figure).  Always records the
/// set into the JSON report as a side effect, csv_dir or not.
void MaybeWriteCsv(const Config& cfg, const SeriesSet& series,
                   const std::string& name);

// --- Machine-readable bench output (CI perf trajectory) -------------------
//
// Every fig/ablation/micro bench accumulates a report — headline scalars
// via BenchMetric, full sweeps via BenchSeries (MaybeWriteCsv feeds this
// automatically), and every ShapeCheck verdict — and writes it as one JSON
// document when the command line carries `--json out.json` (equivalently
// `json=out.json`).  scripts/check_bench.py consumes these to gate gross
// perf regressions; the bench-trajectory CI job archives them per commit.

/// Record one headline scalar (e.g. "hit_rate", "qps_8workers").
void BenchMetric(const std::string& name, double value);

/// Record a whole series set under `name`.
void BenchSeries(const std::string& name, const SeriesSet& series);

/// Write the accumulated report to the path named by `json` (or `--json`)
/// if present; no-op otherwise.  `bench` names the binary in the document.
void MaybeWriteBenchJson(const Config& cfg, const std::string& bench);

/// Run the paper's §IV.C phased workload (normal 50 q/step, intensive 250
/// q/step between steps 101-300, relaxing back to 50 by step 400) against
/// an elastic stack with the given eviction window.  `threshold` < 0 uses
/// the per-(alpha, m) baseline; Fig. 7 passes a fixed threshold instead.
/// Config overrides: keyspace (default 32768), records_per_node (4096),
/// steps (700), observe_every (10), service, seed, epsilon.
[[nodiscard]] workload::ExperimentResult RunPhased(
    const Config& cfg, std::size_t window_slices, double alpha,
    double threshold, const std::string& label);

}  // namespace ecc::bench
