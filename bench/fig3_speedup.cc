// Figure 3 reproduction: "Relative Speedup and Node Allocation" —
// GBA (elastic, infinite eviction window) vs static-2/4/8 with LRU,
// R = 1 query per time step over 2*10^5 steps, inputs uniform over 64K keys.
//
// Paper shape: statics flatten quickly (≈1.15x, 1.34x, 2x); GBA keeps
// climbing past 15x while growing to ~15 nodes, steep early growth that
// stabilizes after ~75k queries.
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct RunOutput {
  std::string label;
  workload::ExperimentResult result;
};

RunOutput RunSystem(const Config& cfg, std::size_t static_nodes,
                    const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 16);
  params.records_per_node = cfg.GetInt("records_per_node", 4096);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x31);
  params.static_nodes = static_nodes;
  // Infinite eviction window: the Fig. 3 configuration.
  params.coordinator.window.slices = 0;
  params.coordinator.contraction_epsilon = 0;
  Stack stack = BuildStack(params);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xf16));
  workload::ConstantRate rate(cfg.GetInt("rate", 1));
  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 200000);
  eopts.observe_every = cfg.GetInt("observe_every", 5000);
  eopts.baseline_exec = Duration::Seconds(cfg.GetDouble("baseline", 23.0));
  eopts.label = label;
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(),
                                    &keys, &rate, stack.provider.get(),
                                    stack.clock.get());
  RunOutput out;
  out.label = label;
  out.result = driver.Run();
  return out;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Figure 3 — Relative Speedup and Node Allocation (64K keys, R=1)",
      "GBA elastic cache (infinite window) vs fixed static-2/4/8 with LRU.");

  std::vector<RunOutput> runs;
  runs.push_back(RunSystem(cfg, 0, "gba"));
  runs.push_back(RunSystem(cfg, 2, "static-2"));
  runs.push_back(RunSystem(cfg, 4, "static-4"));
  runs.push_back(RunSystem(cfg, 8, "static-8"));

  // Combined speedup series (one column per system) + GBA node series —
  // the two y-axes of the paper's figure.
  SeriesSet fig("queries");
  const Series* gba_q = runs[0].result.series.Find("queries_total");
  for (const RunOutput& run : runs) {
    const Series* sp = run.result.series.Find("speedup");
    Series& col = fig.Get("speedup_" + run.label);
    for (std::size_t i = 0; i < sp->size(); ++i) {
      col.Add(gba_q->ys()[i], sp->ys()[i]);
    }
  }
  {
    const Series* nodes = runs[0].result.series.Find("nodes");
    Series& col = fig.Get("nodes_gba");
    for (std::size_t i = 0; i < nodes->size(); ++i) {
      col.Add(gba_q->ys()[i], nodes->ys()[i]);
    }
  }
  std::printf("\n%s\n", fig.ToTable().c_str());
  MaybeWriteCsv(cfg, fig, "fig3_speedup");

  Table summary({"system", "final_speedup", "max_speedup", "hit_rate",
                 "nodes_final", "nodes_mean", "nodes_max", "evictions",
                 "splits", "cost_usd"});
  for (const RunOutput& run : runs) {
    const auto& s = run.result.summary;
    summary.AddRow({run.label, FormatG(s.final_speedup),
                    FormatG(s.max_speedup), FormatG(s.hit_rate),
                    FormatG(static_cast<double>(s.final_nodes)),
                    FormatG(s.mean_nodes),
                    FormatG(static_cast<double>(s.max_nodes)),
                    FormatG(static_cast<double>(s.evictions)),
                    FormatG(static_cast<double>(s.splits)),
                    FormatG(s.cost_usd)});
  }
  std::printf("%s\n", summary.ToString().c_str());

  // Paper-shape assertions.
  const auto& gba = runs[0].result.summary;
  const auto& s2 = runs[1].result.summary;
  const auto& s4 = runs[2].result.summary;
  const auto& s8 = runs[3].result.summary;
  bool ok = true;
  ok &= ShapeCheck("statics ordered: static-2 < static-4 < static-8",
                   s2.final_speedup < s4.final_speedup &&
                       s4.final_speedup < s8.final_speedup);
  ok &= ShapeCheck("static-2 flattens near 1.15x (within [1.05, 1.3])",
                   s2.final_speedup > 1.05 && s2.final_speedup < 1.3);
  ok &= ShapeCheck("static-4 flattens near 1.34x (within [1.2, 1.55])",
                   s4.final_speedup > 1.2 && s4.final_speedup < 1.55);
  ok &= ShapeCheck("static-8 flattens near 2x (within [1.7, 2.4])",
                   s8.final_speedup > 1.7 && s8.final_speedup < 2.4);
  ok &= ShapeCheck("GBA exceeds 15.2x-style gains (final > 10x)",
                   gba.final_speedup > 10.0);
  ok &= ShapeCheck("GBA beats static-8 by >4x at the end",
                   gba.final_speedup > 4.0 * s8.final_speedup);
  ok &= ShapeCheck("GBA fleet ends near ~15 nodes (within [12, 20])",
                   gba.final_nodes >= 12 && gba.final_nodes <= 20);
  {
    // Growth stabilizes: most allocations happen in the first half.
    const Series* nodes = runs[0].result.series.Find("nodes");
    const std::size_t half = nodes->size() / 2;
    const double mid = nodes->ys()[half];
    const double end = nodes->LastY();
    ok &= ShapeCheck("node growth concentrated early (>=70% by midpoint)",
                     mid >= 0.7 * end);
  }
  ok &= ShapeCheck("statics never allocate (node counts fixed)",
                   s2.node_allocations == 0 && s4.node_allocations == 0 &&
                       s8.node_allocations == 0);
  std::printf("\n");
  BenchMetric("gba_final_speedup", gba.final_speedup);
  BenchMetric("gba_hit_rate", gba.hit_rate);
  BenchMetric("gba_final_nodes", static_cast<double>(gba.final_nodes));
  BenchMetric("static8_final_speedup", s8.final_speedup);
  MaybeWriteBenchJson(cfg, "fig3_speedup");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
