// Ablation: migrate batch size vs T_net amortization.
//
// The paper's analysis makes per-record transfer time T_net the dominant
// term of T_migrate.  Our network model charges one RTT per MIGRATE
// message, so batching amortizes latency: this bench reruns the Fig. 3 GBA
// workload sweeping records-per-message and reports total (virtual)
// migration time.  Expected shape: strongly decreasing, flattening once
// the payload term dominates the per-message term.
#include <cstdio>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct Outcome {
  std::size_t batch = 0;
  Duration migration_time;
  std::uint64_t records_migrated = 0;
  double final_speedup = 0.0;
};

Outcome Run(const Config& cfg, std::size_t batch) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 16);
  params.records_per_node = cfg.GetInt("records_per_node", 4096);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x31);
  params.coordinator.window.slices = 0;
  params.coordinator.contraction_epsilon = 0;
  Stack stack = BuildStack(params);
  // Rebuild the elastic cache with the batch override.
  core::ElasticCacheOptions eopts;
  eopts.node_capacity_bytes =
      params.records_per_node * NominalRecordBytes(params);
  eopts.ring.range = params.keyspace;
  eopts.migrate_batch_records = batch;
  stack.cache = std::make_unique<core::ElasticCache>(
      eopts, stack.provider.get(), stack.clock.get());
  stack.coordinator = std::make_unique<core::Coordinator>(
      core::CoordinatorOptions{}, stack.cache.get(), stack.service.get(),
      stack.linearizer.get(), stack.clock.get());

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xf16));
  workload::ConstantRate rate(1);
  workload::ExperimentOptions exp;
  exp.time_steps = cfg.GetInt("steps", 100000);
  exp.observe_every = exp.time_steps;
  exp.label = "batch" + std::to_string(batch);
  workload::ExperimentDriver driver(exp, stack.coordinator.get(), &keys,
                                    &rate, stack.provider.get(),
                                    stack.clock.get());
  const auto result = driver.Run();

  Outcome out;
  out.batch = batch;
  out.migration_time = stack.cache->stats().total_migration_time;
  out.records_migrated = stack.cache->stats().records_migrated;
  out.final_speedup = result.summary.final_speedup;
  return out;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Migrate Batch Size vs T_net Amortization",
              "Records per MIGRATE message on the Fig. 3 GBA workload; one "
              "RTT is paid per message.");

  const std::vector<std::size_t> batches = {1, 8, 64, 256};
  std::vector<Outcome> outcomes;
  for (std::size_t b : batches) outcomes.push_back(Run(cfg, b));

  Table table({"batch_records", "migration_time_s", "per_record_ms",
               "records_migrated", "final_speedup"});
  for (const Outcome& o : outcomes) {
    table.AddRow({FormatG(static_cast<double>(o.batch)),
                  FormatG(o.migration_time.seconds()),
                  FormatG(o.migration_time.millis() /
                          std::max<double>(1.0, o.records_migrated)),
                  FormatG(static_cast<double>(o.records_migrated)),
                  FormatG(o.final_speedup)});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("same records migrate regardless of batching",
                   outcomes.front().records_migrated ==
                       outcomes.back().records_migrated);
  ok &= ShapeCheck(
      "migration time decreases monotonically with batch size",
      outcomes[0].migration_time > outcomes[1].migration_time &&
          outcomes[1].migration_time > outcomes[2].migration_time &&
          outcomes[2].migration_time >= outcomes[3].migration_time);
  ok &= ShapeCheck("batching 1 -> 64 wins at least 5x",
                   outcomes[0].migration_time.seconds() >
                       5.0 * outcomes[2].migration_time.seconds());
  ok &= ShapeCheck("returns diminish past 64 records/message (< 2x more)",
                   outcomes[2].migration_time.seconds() <
                       2.0 * outcomes[3].migration_time.seconds());
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_batch_size");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
