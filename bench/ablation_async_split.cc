// Ablation: asynchronous node allocation with proactive background splits
// (paper §VI: "strategies, such as preloading and data replication can
// certainly be used to implement an asynchronous node allocation ...
// Record prefetching from a node that is predictably close to invoking
// migration can also be considered to reduce migration cost").
//
// Fig. 4 shows the reactive design stalls an unlucky query for the whole
// boot + sweep.  Here the fill threshold triggers a warm boot and a
// background half-bucket migration *before* overflow.  We compare worst
// and p99 query latency and the split overhead charged to the query path.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/histogram.h"
#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct Outcome {
  std::string label;
  double worst_query_s = 0.0;
  double p99_query_s = 0.0;
  double charged_split_overhead_s = 0.0;
  std::uint64_t splits = 0;
  std::uint64_t proactive = 0;
  std::size_t final_nodes = 0;
  double cost = 0.0;
};

Outcome Run(const Config& cfg, double proactive_fill,
            const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 15);
  params.records_per_node = cfg.GetInt("records_per_node", 4096);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x31);
  Stack stack = BuildStack(params);
  core::ElasticCacheOptions eopts;
  eopts.node_capacity_bytes =
      params.records_per_node * NominalRecordBytes(params);
  eopts.ring.range = params.keyspace;
  eopts.proactive_split_fill = proactive_fill;
  stack.cache = std::make_unique<core::ElasticCache>(
      eopts, stack.provider.get(), stack.clock.get());
  stack.coordinator = std::make_unique<core::Coordinator>(
      core::CoordinatorOptions{}, stack.cache.get(), stack.service.get(),
      stack.linearizer.get(), stack.clock.get());

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xf16));
  const std::size_t steps = cfg.GetInt("steps", 60000);
  Histogram latency_s(1e-6);
  Outcome out;
  out.label = label;
  for (std::size_t step = 1; step <= steps; ++step) {
    const core::QueryOutcome q =
        stack.coordinator->ProcessKey(keys.Next());
    latency_s.Add(q.latency.seconds());
    out.worst_query_s = std::max(out.worst_query_s, q.latency.seconds());
    (void)stack.coordinator->EndTimeStep();
  }
  out.p99_query_s = latency_s.Percentile(99);
  out.charged_split_overhead_s =
      stack.cache->stats().total_split_overhead.seconds();
  out.splits = stack.cache->stats().splits;
  out.proactive = stack.cache->stats().proactive_splits;
  out.final_nodes = stack.cache->NodeCount();
  out.cost = stack.provider->AccruedCostDollars();
  return out;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Asynchronous Allocation / Proactive Splits "
              "(paper future work)",
              "Reactive last-resort splits vs fill-triggered background "
              "splits, Fig. 3 style workload.");

  const Outcome reactive = Run(cfg, 0.0, "reactive");
  const Outcome proactive =
      Run(cfg, cfg.GetDouble("fill", 0.8), "proactive-0.8");

  Table table({"config", "worst_query_s", "p99_query_s",
               "charged_split_overhead_s", "splits", "proactive",
               "final_nodes", "cost_usd"});
  for (const Outcome& o : {reactive, proactive}) {
    table.AddRow({o.label, FormatG(o.worst_query_s), FormatG(o.p99_query_s),
                  FormatG(o.charged_split_overhead_s),
                  FormatG(static_cast<double>(o.splits)),
                  FormatG(static_cast<double>(o.proactive)),
                  FormatG(static_cast<double>(o.final_nodes)),
                  FormatG(o.cost)});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("reactive worst query stalls on a boot (> 40 s)",
                   reactive.worst_query_s > 40.0);
  ok &= ShapeCheck(
      "proactive worst query never exceeds a service call (+ margin)",
      proactive.worst_query_s < 35.0);
  ok &= ShapeCheck("proactive machinery engaged without split thrash",
                   proactive.proactive > 0 &&
                       proactive.splits < 3 * reactive.splits);
  ok &= ShapeCheck("charged split overhead collapses (> 90% reduction)",
                   proactive.charged_split_overhead_s <
                       0.1 * reactive.charged_split_overhead_s);
  ok &= ShapeCheck("fleets converge to comparable sizes (within 25%)",
                   proactive.final_nodes <= reactive.final_nodes * 5 / 4 &&
                       reactive.final_nodes <= proactive.final_nodes * 5 / 4);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_async_split");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
