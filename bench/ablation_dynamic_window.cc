// Ablation: dynamic window sizing (the paper's §IV.D/§VI future work).
//
// The evaluation concludes that window length m dominates both speedup and
// node cost and that "a dynamically changing m can thus be very useful in
// driving down cost."  This bench runs the phased workload under fixed
// windows (m = 50 and m = 400) and under the feedback controller
// (DynamicWindowPolicy), comparing peak speedup against cloud cost.
//
// Expected outcome: the dynamic window lands between the fixed extremes —
// near-m=400 burst speedup at materially lower node cost.
#include <cstdio>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

workload::ExperimentResult RunDynamic(const Config& cfg,
                                      const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 15);
  params.records_per_node = cfg.GetInt("records_per_node", 3500);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x51);
  params.coordinator.window.slices = cfg.GetInt("start_window", 100);
  params.coordinator.window.alpha = cfg.GetDouble("alpha", 0.99);
  params.coordinator.contraction_epsilon = cfg.GetInt("epsilon", 5);
  params.coordinator.dynamic_window = true;
  params.coordinator.dynamic.min_slices = cfg.GetInt("min_window", 25);
  params.coordinator.dynamic.max_slices = cfg.GetInt("max_window", 600);
  params.coordinator.dynamic.period = cfg.GetInt("adjust_period", 8);
  params.min_nodes = 2;
  Stack stack = BuildStack(params);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xabc));
  const auto rate = workload::PaperPhasedSchedule();
  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 700);
  eopts.observe_every = cfg.GetInt("observe_every", 10);
  eopts.label = label;
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(), &keys,
                                    rate.get(), stack.provider.get(),
                                    stack.clock.get());
  return driver.Run();
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Dynamic Window Sizing (paper future work)",
              "Fixed m=50 / m=400 vs hit-rate feedback controller on the "
              "phased workload.");

  const auto fixed_small = RunPhased(cfg, 50, 0.99, -1.0, "fixed-m50");
  const auto fixed_large = RunPhased(cfg, 400, 0.99, -1.0, "fixed-m400");
  const auto dynamic = RunDynamic(cfg, "dynamic");

  Table summary({"policy", "max_speedup", "hit_rate", "nodes_mean",
                 "nodes_max", "nodes_final", "speedup_per_mean_node"});
  const auto row = [&summary](const workload::ExperimentSummary& s) {
    summary.AddRow({s.label, FormatG(s.max_speedup), FormatG(s.hit_rate),
                    FormatG(s.mean_nodes),
                    FormatG(static_cast<double>(s.max_nodes)),
                    FormatG(static_cast<double>(s.final_nodes)),
                    FormatG(s.max_speedup / std::max(1e-9, s.mean_nodes))});
  };
  row(fixed_small.summary);
  row(fixed_large.summary);
  row(dynamic.summary);
  std::printf("\n%s\n", summary.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("dynamic reaches most of m=400's peak (>= 40%)",
                   dynamic.summary.max_speedup >=
                       0.4 * fixed_large.summary.max_speedup);
  ok &= ShapeCheck("dynamic clearly beats m=50's peak",
                   dynamic.summary.max_speedup >
                       1.5 * fixed_small.summary.max_speedup);
  ok &= ShapeCheck("dynamic uses fewer mean nodes than fixed m=400",
                   dynamic.summary.mean_nodes <
                       fixed_large.summary.mean_nodes);
  ok &= ShapeCheck("dynamic releases more capacity by the end",
                   dynamic.summary.final_nodes <
                       fixed_large.summary.final_nodes);
  ok &= ShapeCheck(
      "dynamic's peak speedup per mean node beats fixed m=400",
      dynamic.summary.max_speedup /
              std::max(1e-9, dynamic.summary.mean_nodes) >
          fixed_large.summary.max_speedup /
              std::max(1e-9, fixed_large.summary.mean_nodes));
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_dynamic_window");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
