// Figure 6 reproduction: "Data Reuse and Eviction Behavior" — per-interval
// hit (reuse) and eviction counts over time for the same four window sizes
// as Figure 5.
//
// Paper shape: reuse rises during the intensive period for every window;
// after step 300 eviction turns aggressive for m <= 200; for m = 400 the
// eviction trend inverts (decreasing over the tail) because the expiring
// slices belong to the intensive period whose keys still see reuse, and
// node allocation keeps rising past the burst.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

double SumRange(const Series& s, double x_lo, double x_hi) {
  double total = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.xs()[i] >= x_lo && s.xs()[i] < x_hi) total += s.ys()[i];
  }
  return total;
}

/// Last step at which the node count increased (0 if it never grew).
double LastGrowthStep(const Series& nodes) {
  double last = 0.0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes.ys()[i] > nodes.ys()[i - 1]) last = nodes.xs()[i];
  }
  return last;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  Config cfg = ParseArgs(argc, argv);
  // The m=400 window only finishes expiring burst slices at step 700
  // (300 + m); run past that so the decay of the eviction curve — the
  // paper's "inverted trend" for (d) — is observable.
  if (!cfg.Has("steps")) cfg.Set("steps", "1000");
  PrintHeader(
      "Figure 6 — Data Reuse and Eviction Behavior (32K keys, phased rate)",
      "Per-interval hits and evictions, windows m = 50/100/200/400, "
      "alpha = 0.99.");

  const std::vector<std::size_t> windows = {50, 100, 200, 400};
  std::vector<workload::ExperimentResult> results;
  for (std::size_t m : windows) {
    results.push_back(RunPhased(cfg, m, cfg.GetDouble("alpha", 0.99),
                                /*threshold=*/-1.0,
                                "m" + std::to_string(m)));
  }

  SeriesSet fig("step");
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const std::string m = std::to_string(windows[i]);
    const Series* hits = results[i].series.Find("hits");
    const Series* evict = results[i].series.Find("evictions");
    const Series* nodes = results[i].series.Find("nodes");
    Series& hc = fig.Get("hits_m" + m);
    Series& ec = fig.Get("evict_m" + m);
    Series& nc = fig.Get("nodes_m" + m);
    for (std::size_t j = 0; j < hits->size(); ++j) {
      hc.Add(hits->xs()[j], hits->ys()[j]);
      ec.Add(evict->xs()[j], evict->ys()[j]);
      nc.Add(nodes->xs()[j], nodes->ys()[j]);
    }
  }
  std::printf("\n%s\n", fig.ToTable().c_str());
  MaybeWriteCsv(cfg, fig, "fig6_reuse_eviction");

  const auto steps = static_cast<double>(cfg.GetInt("steps", 1000));
  Table summary({"window", "hits_normal1", "hits_burst", "hits_tail",
                 "evict_burst", "evict_peak_per_step", "evict_late_per_step",
                 "last_node_growth", "nodes_max"});
  struct Shape {
    double hits_normal, hits_burst, hits_tail;
    double evict_burst, evict_mid, evict_late;
    double last_growth, nodes_max;
  };
  std::vector<Shape> shapes;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Series* hits = results[i].series.Find("hits");
    const Series* evict = results[i].series.Find("evictions");
    const Series* nodes = results[i].series.Find("nodes");
    Shape s{};
    s.hits_normal = SumRange(*hits, 0, 101);
    s.hits_burst = SumRange(*hits, 101, 301);
    s.hits_tail = SumRange(*hits, 400, steps + 1);
    s.evict_burst = SumRange(*evict, 101, 301);
    // Peak era: +-50 steps around the expiry of the last burst slice
    // (step 300 + m); late era: the final 150 steps.  Normalized per step.
    const double peak_center = 300.0 + static_cast<double>(windows[i]);
    s.evict_mid =
        SumRange(*evict, peak_center - 50, peak_center + 50) / 100.0;
    s.evict_late = SumRange(*evict, steps - 150, steps + 1) / 150.0;
    s.last_growth = LastGrowthStep(*nodes);
    s.nodes_max = nodes->MaxY();
    shapes.push_back(s);
    summary.AddRow({"m=" + std::to_string(windows[i]),
                    FormatG(s.hits_normal), FormatG(s.hits_burst),
                    FormatG(s.hits_tail), FormatG(s.evict_burst),
                    FormatG(s.evict_mid), FormatG(s.evict_late),
                    FormatG(s.last_growth), FormatG(s.nodes_max)});
  }
  std::printf("%s\n", summary.ToString().c_str());

  bool ok = true;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    // Burst has 5x the queries of the first 100 steps; reuse must rise by
    // more than the traffic ratio alone would during the burst.
    ok &= ShapeCheck("m=" + std::to_string(windows[i]) +
                         ": reuse increases over the intensive period",
                     shapes[i].hits_burst > 5.0 * shapes[i].hits_normal);
  }
  ok &= ShapeCheck("larger windows reuse more during the burst",
                   shapes[0].hits_burst < shapes[3].hits_burst);
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    // m <= 200: once the rate drops, reuse chances fall and eviction turns
    // aggressive ("this allows aggressive eviction behaviors in all
    // cases" except (d)).
    ok &= ShapeCheck(
        "m=" + std::to_string(windows[i]) +
            ": aggressive eviction after the burst expires",
        shapes[i].evict_mid > 0.0 && shapes[i].evict_late > 0.0);
  }
  // (d): the eviction trend inverts — once the burst-era slices finish
  // expiring (step 300 + m = 700), the expiring slices belong to the
  // low-rate tail and the eviction rate decays instead of rising.
  ok &= ShapeCheck("m=400: eviction quiet while burst slices in window",
                   shapes[3].evict_burst == 0.0);
  ok &= ShapeCheck(
      "m=400: eviction decreases over time (late era < peak era)",
      shapes[3].evict_late < shapes[3].evict_mid);
  ok &= ShapeCheck(
      "m=400: node allocation continues past the intensive period "
      "(last growth after step 300)",
      shapes[3].last_growth > 300.0);
  ok &= ShapeCheck(
      "m<=200: node growth completes by the end of the burst",
      shapes[0].last_growth <= 310.0 && shapes[1].last_growth <= 310.0);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "fig6_reuse_eviction");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
