// Ablation: asynchronous node preloading (paper §VI: "strategies, such as
// preloading ... can certainly be used to implement an asynchronous node
// allocation").
//
// Fig. 4 shows split overhead is dominated by instance boot time.  This
// bench reruns the Fig. 3 GBA configuration with a warm pool of prewarmed
// instances: splits that would have blocked on a cold boot draw from the
// pool instead.  Expected outcome: total split overhead collapses (the
// migration share remains), at the price of paying for idle warm capacity.
#include <cstdio>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct Outcome {
  workload::ExperimentSummary summary;
  Duration split_overhead;
  Duration alloc_time;
  double cost = 0.0;
};

Outcome RunWithPrewarm(const Config& cfg, std::size_t prewarm,
                       const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 16);
  params.records_per_node = cfg.GetInt("records_per_node", 4096);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x31);
  params.coordinator.window.slices = 0;
  params.coordinator.contraction_epsilon = 0;
  params.prewarm = prewarm;
  Stack stack = BuildStack(params);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xf16));
  workload::ConstantRate rate(cfg.GetInt("rate", 1));
  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 100000);
  eopts.observe_every = eopts.time_steps;
  eopts.label = label;
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(), &keys,
                                    &rate, stack.provider.get(),
                                    stack.clock.get());
  Outcome out;
  out.summary = driver.Run().summary;
  out.split_overhead = stack.cache->stats().total_split_overhead;
  out.alloc_time = stack.cache->stats().total_alloc_time;
  out.cost = stack.provider->AccruedCostDollars();
  return out;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Warm-Pool Node Preloading (paper future work)",
              "Cold on-demand boots vs prewarmed instances on the Fig. 3 "
              "GBA workload.");

  const std::size_t pool = cfg.GetInt("prewarm", 16);
  const Outcome cold = RunWithPrewarm(cfg, 0, "cold-boot");
  const Outcome warm = RunWithPrewarm(cfg, pool, "warm-pool");

  Table summary({"config", "splits", "alloc_wait_s", "split_overhead_s",
                 "final_speedup", "nodes_final", "cost_usd"});
  const auto row = [&summary](const std::string& name, const Outcome& o) {
    summary.AddRow({name, FormatG(static_cast<double>(o.summary.splits)),
                    FormatG(o.alloc_time.seconds()),
                    FormatG(o.split_overhead.seconds()),
                    FormatG(o.summary.final_speedup),
                    FormatG(static_cast<double>(o.summary.final_nodes)),
                    FormatG(o.cost)});
  };
  row("cold-boot", cold);
  row("warm-pool-" + std::to_string(pool), warm);
  std::printf("\n%s\n", summary.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("warm pool eliminates most allocation wait (>= 90%)",
                   warm.alloc_time.seconds() <
                       0.1 * cold.alloc_time.seconds());
  ok &= ShapeCheck("warm pool cuts total split overhead by > 50%",
                   warm.split_overhead.seconds() <
                       0.5 * cold.split_overhead.seconds());
  ok &= ShapeCheck("both configurations converge to similar fleets",
                   warm.summary.final_nodes >= cold.summary.final_nodes - 2 &&
                       warm.summary.final_nodes <=
                           cold.summary.final_nodes + 2);
  ok &= ShapeCheck("idle warm capacity costs real money (bill >= cold's)",
                   warm.cost >= cold.cost);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_warmpool");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
