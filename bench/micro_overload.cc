// Overload-protection micro-bench.
//
// Phase A (zero-cost abstraction): the same query workload runs with the
// overload subsystem disabled, and enabled but idle (a deadline nobody
// misses, a queue nobody fills, a breaker nobody trips).  The disabled
// path must be bit-identical in virtual time and outcome counts, and the
// enabled-idle path must stay within noise on wall time — the protection
// stack may not tax the healthy path.
//
// Phase B (brownout): a scripted sustained brownout (service latency ×10
// over a slice range) hits an unprotected and a protected run.  The table
// reports sheds, stale serves, deadline overshoots, and worst-case query
// latency; protection must cap tail latency at roughly the deadline while
// the unprotected run eats the full browned-out service cost.
//
// Overrides: keys=512 queries=4096 deadline_ms=2000 seed=0x5eed
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/coordinator.h"
#include "core/elastic_cache.h"
#include "fault/fault.h"
#include "fault/faulty_service.h"
#include "figcommon.h"
#include "service/service.h"

namespace ecc::bench {
namespace {

struct RunResult {
  std::uint64_t clock_us = 0;
  std::uint64_t hits = 0;
  std::uint64_t shed = 0;
  std::uint64_t stale = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t max_latency_us = 0;
  double wall_ns_per_query = 0;
};

enum class Mode { kDisabled, kEnabledIdle, kUnprotected, kProtected };

RunResult RunWorkload(const Config& cfg, Mode mode) {
  VirtualClock clock;
  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x5eed));
  cloudsim::CloudProvider provider(cloud, &clock);

  core::ElasticCacheOptions eopts;
  eopts.node_capacity_bytes = 1024 * core::RecordSize(0, std::size_t{128});
  eopts.ring.range = 1 << 14;
  core::ElasticCache cache(eopts, &provider, &clock);

  service::SyntheticService synthetic("svc", Duration::Seconds(23), 100);
  fault::FaultPlan plan;
  plan.seed = cloud.seed ^ 0x0f;
  const bool brownout =
      mode == Mode::kUnprotected || mode == Mode::kProtected;
  if (brownout) {
    plan.brownouts.push_back({/*from_slice=*/1, /*slices=*/4,
                              /*latency_multiplier=*/10.0});
  }
  fault::FaultInjector injector(plan);
  fault::FaultyService faulty(&synthetic, &injector, Duration::Seconds(5));

  sfc::LinearizerOptions grid;
  grid.spatial_bits = 5;
  grid.time_bits = 4;
  sfc::Linearizer linearizer(grid);

  core::CoordinatorOptions copts;
  copts.window.slices = 4;
  if (mode != Mode::kDisabled && mode != Mode::kUnprotected) {
    auto& ov = copts.overload;
    ov.enabled = true;
    ov.query_deadline = Duration::Millis(static_cast<std::int64_t>(
        cfg.GetInt("deadline_ms", 2000)));
    ov.breaker_enabled = true;
    ov.breaker.min_samples = 2;
    ov.breaker.failure_threshold = 0.5;
    ov.breaker.slow_call_threshold = Duration::Seconds(100);
    ov.breaker.open_cooldown = Duration::Seconds(120);
    ov.stale_serve = true;
    if (mode == Mode::kEnabledIdle) {
      // Idle: thresholds no healthy run can reach.
      ov.query_deadline = Duration::Seconds(1e6);
      ov.breaker.slow_call_threshold = Duration::Seconds(1e6);
    }
  }
  core::Coordinator coordinator(copts, &cache, &faulty, &linearizer, &clock);

  const auto keys = static_cast<std::size_t>(cfg.GetInt("keys", 512));
  const auto queries = static_cast<std::size_t>(cfg.GetInt("queries", 4096));
  Rng rng(cloud.seed);
  std::vector<core::Key> workload;
  workload.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    workload.push_back(rng.Uniform(keys));
  }

  const std::size_t per_step = queries / 8;
  Histogram latency{1.0, 1.15};
  RunResult r;
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries; ++i) {
    const core::QueryOutcome out = coordinator.ProcessKey(workload[i]);
    latency.Add(static_cast<double>(out.latency.micros()));
    if (i % per_step == per_step - 1) {
      (void)coordinator.EndTimeStep();
      injector.AdvanceServiceSlice();
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();

  r.clock_us = static_cast<std::uint64_t>(clock.now().micros());
  r.hits = coordinator.total_hits();
  r.shed = coordinator.shed_count();
  r.stale = coordinator.stale_serves();
  r.deadline_exceeded = coordinator.deadline_exceeded_count();
  r.max_latency_us = static_cast<std::uint64_t>(latency.max());
  r.wall_ns_per_query =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_start)
                              .count()) /
      static_cast<double>(queries);
  return r;
}

std::string Row(const RunResult& r) {
  return FormatG(r.clock_us / 1e6);
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Overload protection — disabled-path overhead and brownout shedding",
      "Deadlines + admission control + circuit breaker + stale serving; "
      "the disabled path must cost nothing, the protected path must cap "
      "tail latency through a ×10 service brownout.");

  // ---- Phase A: the subsystem must be free when off ---------------------
  // Wall time is noisy; take the best of three for both configs.
  RunResult off = RunWorkload(cfg, Mode::kDisabled);
  RunResult idle = RunWorkload(cfg, Mode::kEnabledIdle);
  for (int i = 0; i < 2; ++i) {
    const RunResult off2 = RunWorkload(cfg, Mode::kDisabled);
    if (off2.wall_ns_per_query < off.wall_ns_per_query) off = off2;
    const RunResult idle2 = RunWorkload(cfg, Mode::kEnabledIdle);
    if (idle2.wall_ns_per_query < idle.wall_ns_per_query) idle = idle2;
  }
  Table overhead({"config", "virtual_s", "hits", "shed", "wall_ns/query"});
  overhead.AddRow({"overload off", Row(off), std::to_string(off.hits),
                   std::to_string(off.shed), FormatG(off.wall_ns_per_query)});
  overhead.AddRow({"enabled, idle", Row(idle), std::to_string(idle.hits),
                   std::to_string(idle.shed),
                   FormatG(idle.wall_ns_per_query)});
  std::printf("%s\n", overhead.ToString().c_str());

  // ---- Phase B: brownout, unprotected vs protected ----------------------
  const RunResult raw = RunWorkload(cfg, Mode::kUnprotected);
  const RunResult guarded = RunWorkload(cfg, Mode::kProtected);
  Table storm({"config", "virtual_s", "hits", "shed", "stale",
               "deadline_exc", "max_latency_s"});
  storm.AddRow({"unprotected", Row(raw), std::to_string(raw.hits),
                std::to_string(raw.shed), std::to_string(raw.stale),
                std::to_string(raw.deadline_exceeded),
                FormatG(raw.max_latency_us / 1e6)});
  storm.AddRow({"protected", Row(guarded), std::to_string(guarded.hits),
                std::to_string(guarded.shed), std::to_string(guarded.stale),
                std::to_string(guarded.deadline_exceeded),
                FormatG(guarded.max_latency_us / 1e6)});
  std::printf("%s\n", storm.ToString().c_str());

  const double deadline_s =
      static_cast<double>(cfg.GetInt("deadline_ms", 2000)) / 1e3;
  bool ok = true;
  ok &= ShapeCheck("disabled run is virtually identical to enabled-idle",
                   off.clock_us == idle.clock_us && off.hits == idle.hits &&
                       idle.shed == 0 && idle.stale == 0);
  ok &= ShapeCheck("disabled path wall cost within noise of enabled-idle",
                   off.wall_ns_per_query <= idle.wall_ns_per_query * 1.5 &&
                       idle.wall_ns_per_query <=
                           off.wall_ns_per_query * 1.5);
  ok &= ShapeCheck("brownout without protection eats ×10 latency",
                   raw.max_latency_us / 1e6 > 100.0 && raw.shed == 0);
  ok &= ShapeCheck("protection caps worst-case latency near the deadline",
                   guarded.max_latency_us / 1e6 <= deadline_s * 1.1);
  ok &= ShapeCheck("the protected run sheds or degrades under brownout",
                   guarded.shed + guarded.stale > 0);
  ok &= ShapeCheck("protection reclaims virtual time from the brownout",
                   guarded.clock_us < raw.clock_us);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "micro_overload");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
