// Micro-benchmarks for the service substrate: CTM generation, contour
// extraction, and the full shoreline-service pipeline (the real CPU work a
// cache miss triggers, independent of its 23 s virtual-time charge).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "service/ctm.h"
#include "service/service.h"
#include "service/shoreline.h"

namespace {

using ecc::Rng;
namespace service = ecc::service;

void BM_GenerateCtm(benchmark::State& state) {
  service::CtmGeneratorOptions opts;
  opts.width = static_cast<std::uint32_t>(state.range(0));
  opts.height = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service::GenerateCtm(rng.Next(), opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_GenerateCtm)->Arg(32)->Arg(64)->Arg(128);

void BM_ExtractShoreline(benchmark::State& state) {
  service::CtmGeneratorOptions opts;
  opts.width = static_cast<std::uint32_t>(state.range(0));
  opts.height = static_cast<std::uint32_t>(state.range(0));
  const auto ctm = service::GenerateCtm(42, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service::ExtractShoreline(ctm, 0.0f));
  }
}
BENCHMARK(BM_ExtractShoreline)->Arg(32)->Arg(64)->Arg(128);

void BM_EncodeShoreline(benchmark::State& state) {
  const auto ctm = service::GenerateCtm(42);
  const auto segs = service::ExtractShoreline(ctm, 0.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::EncodeShoreline(segs, ctm.width(), ctm.height(), 1024));
  }
}
BENCHMARK(BM_EncodeShoreline);

void BM_ShorelineServiceInvoke(benchmark::State& state) {
  service::ShorelineServiceOptions opts;
  opts.ctm.width = static_cast<std::uint32_t>(state.range(0));
  opts.ctm.height = static_cast<std::uint32_t>(state.range(0));
  service::ShorelineService svc(opts);
  Rng rng(2);
  for (auto _ : state) {
    ecc::sfc::GeoTemporalQuery q;
    q.longitude = rng.UniformDouble(-180.0, 180.0);
    q.latitude = rng.UniformDouble(-90.0, 90.0);
    q.epoch_days = rng.UniformDouble(0.0, 365.0);
    benchmark::DoNotOptimize(svc.Invoke(q, nullptr));
  }
}
BENCHMARK(BM_ShorelineServiceInvoke)->Arg(32)->Arg(64);

}  // namespace

#include "benchjson_main.h"  // main() with --json support
