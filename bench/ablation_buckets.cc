// Ablation: initial buckets per node vs load balance.
//
// Consistent hashing balances load in proportion to arc lengths; more
// buckets per node (virtual nodes) tighten the variance.  For the elastic
// cache this shows up as fewer premature splits (a node with one huge arc
// overflows while the fleet is half empty).  This bench sweeps the initial
// bucket count on the Fig. 3 workload and reports fill imbalance and split
// counts.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct Outcome {
  std::size_t buckets = 0;
  double fill_cv = 0.0;  ///< coefficient of variation of node fill
  std::uint64_t splits = 0;
  std::size_t final_nodes = 0;
  double hit_rate = 0.0;
};

Outcome Run(const Config& cfg, std::size_t buckets_per_node) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 16);
  params.records_per_node = cfg.GetInt("records_per_node", 4096);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x31);
  Stack stack = BuildStack(params);
  core::ElasticCacheOptions eopts;
  eopts.node_capacity_bytes =
      params.records_per_node * NominalRecordBytes(params);
  eopts.ring.range = params.keyspace;
  eopts.initial_buckets_per_node = buckets_per_node;
  stack.cache = std::make_unique<core::ElasticCache>(
      eopts, stack.provider.get(), stack.clock.get());
  stack.coordinator = std::make_unique<core::Coordinator>(
      core::CoordinatorOptions{}, stack.cache.get(), stack.service.get(),
      stack.linearizer.get(), stack.clock.get());

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xf16));
  workload::ConstantRate rate(1);
  workload::ExperimentOptions exp;
  exp.time_steps = cfg.GetInt("steps", 100000);
  exp.observe_every = exp.time_steps;
  exp.label = "b" + std::to_string(buckets_per_node);
  workload::ExperimentDriver driver(exp, stack.coordinator.get(), &keys,
                                    &rate, stack.provider.get(),
                                    stack.clock.get());
  const auto result = driver.Run();

  Outcome out;
  out.buckets = buckets_per_node;
  out.splits = stack.cache->stats().splits;
  out.final_nodes = stack.cache->NodeCount();
  out.hit_rate = result.summary.hit_rate;

  // Fill imbalance across the final fleet.
  const auto snapshot =
      static_cast<core::ElasticCache*>(stack.cache.get())->Snapshot();
  double mean = 0.0;
  for (const auto& snap : snapshot) {
    mean += static_cast<double>(snap.used_bytes);
  }
  mean /= std::max<std::size_t>(1, snapshot.size());
  double var = 0.0;
  for (const auto& snap : snapshot) {
    const double d = static_cast<double>(snap.used_bytes) - mean;
    var += d * d;
  }
  var /= std::max<std::size_t>(1, snapshot.size());
  out.fill_cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
  return out;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Initial Buckets per Node (virtual nodes)",
              "Load-balance effect of the bucket count on the Fig. 3 GBA "
              "workload.");

  const std::vector<std::size_t> sweep = {1, 4, 16};
  std::vector<Outcome> outcomes;
  for (std::size_t b : sweep) outcomes.push_back(Run(cfg, b));

  Table table({"buckets_per_node", "fill_cv", "splits", "final_nodes",
               "hit_rate"});
  for (const Outcome& o : outcomes) {
    table.AddRow({FormatG(static_cast<double>(o.buckets)),
                  FormatG(o.fill_cv),
                  FormatG(static_cast<double>(o.splits)),
                  FormatG(static_cast<double>(o.final_nodes)),
                  FormatG(o.hit_rate)});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("hit rate is insensitive to the bucket count (< 5%)",
                   std::fabs(outcomes.front().hit_rate -
                             outcomes.back().hit_rate) < 0.05);
  ok &= ShapeCheck("fleet size comparable across the sweep (within 25%)",
                   outcomes.back().final_nodes <=
                           outcomes.front().final_nodes * 5 / 4 &&
                       outcomes.front().final_nodes <=
                           outcomes.back().final_nodes * 5 / 4);
  ok &= ShapeCheck("every configuration converges (splits bounded)",
                   outcomes[0].splits < 1000 && outcomes[2].splits < 1000);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_buckets");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
