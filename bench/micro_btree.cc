// Micro-benchmarks for the B+-Tree: the §III analysis puts a B+-Tree
// search (O(log n)) plus a linear leaf sweep at the heart of
// sweep-and-migrate; these benches measure both pieces.
#include <benchmark/benchmark.h>

#include <vector>

#include "btree/bplus_tree.h"
#include "common/rng.h"

namespace {

using ecc::Rng;
using Tree = ecc::btree::BPlusTree<std::uint64_t>;

Tree BuildTree(std::size_t n, std::uint64_t seed) {
  Tree t;
  Rng rng(seed);
  while (t.size() < n) {
    t.Insert(rng.Next(), t.size());
  }
  return t;
}

void BM_BTreeInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Tree t;
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
         ++i) {
      t.Insert(i, i);
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertSequential)->Arg(1 << 10)->Arg(1 << 14);

void BM_BTreeInsertRandom(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    Tree t;
    state.ResumeTiming();
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      t.Insert(rng.Next(), i);
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertRandom)->Arg(1 << 10)->Arg(1 << 14);

void BM_BTreeFind(benchmark::State& state) {
  const Tree t = BuildTree(state.range(0), 2);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Find(rng.Next()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BTreeFind)->RangeMultiplier(8)->Range(1 << 10, 1 << 19)
    ->Complexity(benchmark::oLogN);

void BM_BTreeErase(benchmark::State& state) {
  Rng rng(4);
  Tree t = BuildTree(1 << 16, 5);
  std::vector<std::uint64_t> keys;
  for (auto it = t.Begin(); it.valid(); it.Next()) keys.push_back(it.key());
  std::size_t i = 0;
  for (auto _ : state) {
    if (i >= keys.size()) {
      state.PauseTiming();
      t = BuildTree(1 << 16, 5);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(t.Erase(keys[i++]));
  }
}
BENCHMARK(BM_BTreeErase);

void BM_BTreeLeafSweep(benchmark::State& state) {
  // The sweep phase of Algorithm 2: linked-leaf walk over half the tree.
  const Tree t = BuildTree(1 << 16, 6);
  const std::uint64_t median = t.KeyAtRank(t.size() / 2);
  for (auto _ : state) {
    std::size_t visited = t.ForEachInRange(
        0, median, [](std::uint64_t, const std::uint64_t&) {});
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size() / 2));
}
BENCHMARK(BM_BTreeLeafSweep);

void BM_BTreeBulkLoad(benchmark::State& state) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    sorted.emplace_back(i * 3, i);
  }
  for (auto _ : state) {
    Tree t;
    auto copy = sorted;
    t.BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(1 << 10)->Arg(1 << 16);

void BM_BTreeInsertSortedBaseline(benchmark::State& state) {
  // The O(n log n) alternative BulkLoad replaces.
  for (auto _ : state) {
    Tree t;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      t.Insert(static_cast<std::uint64_t>(i) * 3, i);
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertSortedBaseline)->Arg(1 << 10)->Arg(1 << 16);

void BM_BTreeSweepRangeCopy(benchmark::State& state) {
  const Tree t = BuildTree(1 << 14, 7);
  const std::uint64_t median = t.KeyAtRank(t.size() / 2);
  for (auto _ : state) {
    auto out = t.SweepRange(0, median);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_BTreeSweepRangeCopy);

}  // namespace

#include "benchjson_main.h"  // main() with --json support
