// Fault-layer micro-bench.
//
// Phase A (zero-cost abstraction): the same workload runs with no injector
// and with an injector bound but idle.  The retry/interceptor layer must
// be invisible on a healthy wire — identical virtual time, records placed,
// and split count, with zero retries charged.
//
// Phase B (fault sweep): wire-fault probability sweeps upward; the table
// reports retries, exhausted calls, degraded operations, migration aborts,
// crash-dropped records, and virtual-time inflation over the fault-free
// baseline.  The retry budget is expected to absorb mild loss (records
// still land) while time inflates with the injected timeouts.
//
// Overrides: records=3072 gets=8192 value_bytes=256 seed=0x5eed
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/elastic_cache.h"
#include "fault/fault.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct RunResult {
  std::uint64_t clock_us = 0;
  std::size_t records = 0;
  std::uint64_t splits = 0;
  std::uint64_t retries = 0;
  std::uint64_t exhausted = 0;
  std::uint64_t degraded_gets = 0;
  std::uint64_t degraded_puts = 0;
  std::uint64_t aborts = 0;
  std::size_t kills = 0;
};

RunResult RunWorkload(const Config& cfg, double fault_p, bool bind_idle) {
  VirtualClock clock;
  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x5eed));
  cloudsim::CloudProvider provider(cloud, &clock);

  fault::FaultPlan plan;
  plan.seed = cloud.seed ^ 0xfa;
  plan.drop_request_p = fault_p;
  plan.drop_response_p = fault_p / 2;
  plan.delay_p = fault_p;
  plan.migration_abort_p = fault_p;
  plan.migration_crash_p = fault_p / 4;
  fault::FaultInjector injector(plan);

  const auto value_bytes =
      static_cast<std::size_t>(cfg.GetInt("value_bytes", 256));
  core::ElasticCacheOptions copts;
  copts.node_capacity_bytes = 512 * core::RecordSize(0, value_bytes);
  copts.ring.range = 1 << 14;
  if (fault_p > 0.0 || bind_idle) copts.fault = &injector;
  core::ElasticCache cache(copts, &provider, &clock);

  const auto records = static_cast<std::size_t>(cfg.GetInt("records", 3072));
  const auto gets = static_cast<std::size_t>(cfg.GetInt("gets", 8192));
  Rng rng(cloud.seed);
  std::vector<core::Key> keys;
  keys.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    keys.push_back(rng.Uniform(copts.ring.range));
  }
  for (const core::Key k : keys) {
    (void)cache.Put(k, std::string(value_bytes, 'v'));  // faults may refuse
  }
  for (std::size_t i = 0; i < gets; ++i) {
    (void)cache.Get(keys[rng.Uniform(keys.size())]);
  }

  RunResult r;
  r.clock_us = static_cast<std::uint64_t>(clock.now().micros());
  r.records = cache.TotalRecords();
  r.splits = cache.stats().splits;
  r.retries = cache.stats().rpc_retries;
  r.exhausted = cache.stats().rpc_failures;
  r.degraded_gets = cache.stats().degraded_gets;
  r.degraded_puts = cache.stats().degraded_puts;
  r.aborts = cache.stats().migration_aborts;
  r.kills = cache.kill_history().size();
  return r;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Fault layer — healthy-wire overhead and wire-fault sweep",
      "RPC retry/timeout + two-phase migration under a seeded fault "
      "schedule; inflation is virtual time over the fault-free baseline.");

  // ---- Phase A: the layer must be free when idle ------------------------
  const RunResult off = RunWorkload(cfg, 0.0, /*bind_idle=*/false);
  const RunResult idle = RunWorkload(cfg, 0.0, /*bind_idle=*/true);
  Table overhead({"config", "virtual_s", "records", "splits", "retries"});
  overhead.AddRow({"no injector", FormatG(off.clock_us / 1e6),
                   std::to_string(off.records), std::to_string(off.splits),
                   std::to_string(off.retries)});
  overhead.AddRow({"idle injector", FormatG(idle.clock_us / 1e6),
                   std::to_string(idle.records), std::to_string(idle.splits),
                   std::to_string(idle.retries)});
  std::printf("%s\n", overhead.ToString().c_str());

  // ---- Phase B: fault-probability sweep ---------------------------------
  Table sweep({"fault_p", "retries", "exhausted", "degraded", "mig_aborts",
               "kills", "records", "inflation"});
  RunResult worst;
  for (const double p : {0.005, 0.01, 0.02, 0.05}) {
    const RunResult r = RunWorkload(cfg, p, /*bind_idle=*/true);
    sweep.AddRow({FormatG(p), std::to_string(r.retries),
                  std::to_string(r.exhausted),
                  std::to_string(r.degraded_gets + r.degraded_puts),
                  std::to_string(r.aborts), std::to_string(r.kills),
                  std::to_string(r.records),
                  FormatG(off.clock_us > 0
                              ? static_cast<double>(r.clock_us) /
                                    static_cast<double>(off.clock_us)
                              : 0.0)});
    worst = r;
  }
  std::printf("%s\n", sweep.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("idle injector is byte-identical to no injector",
                   idle.clock_us == off.clock_us &&
                       idle.records == off.records &&
                       idle.splits == off.splits && idle.retries == 0);
  ok &= ShapeCheck("faulted wire charges retries", worst.retries > 0);
  ok &= ShapeCheck("injected timeouts inflate virtual time",
                   worst.clock_us > off.clock_us);
  ok &= ShapeCheck("the retry budget still lands most of the working set",
                   worst.records * 2 > off.records);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "micro_fault");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
