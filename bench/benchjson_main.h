// Drop-in replacement for BENCHMARK_MAIN() that teaches the
// google-benchmark micro-benches the same `--json out.json` flag the
// fig/ablation benches take (figcommon's MaybeWriteBenchJson).  The flag is
// rewritten to google-benchmark's native JSON reporter
// (--benchmark_out=PATH --benchmark_out_format=json), so the emitted file
// is the upstream schema, not ecc-bench-v1 — scripts/check_bench.py reads
// both.
//
// Usage: include this header once at the end of the bench .cc instead of
// invoking BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argc > 0 ? argv[0] : "bench");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      out_path = arg.substr(7);
    } else {
      args.push_back(arg);
    }
  }
  if (!out_path.empty()) {
    args.push_back("--benchmark_out=" + out_path);
    args.emplace_back("--benchmark_out_format=json");
  }

  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
