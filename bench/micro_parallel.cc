// Parallel front-end micro-bench: aggregate query throughput of the
// ParallelCoordinator over a striped elastic cache, swept over worker
// counts, plus a cold-start phase showing single-flight miss coalescing.
//
// Phase A (hit-heavy scaling): a warm working set is queried by 1/2/4/8
// workers; throughput is queries per virtual makespan second (makespan =
// max per-worker busy time, i.e. wall time given one core per worker).
// Hits are independent, so throughput should scale near-linearly; the
// shape check gates on >= 4x at 8 workers vs 1.
//
// Phase B (cold coalescing): every worker hammers a small hot key set on a
// cold cache.  Single-flight coalescing must collapse the redundant misses
// to exactly one service invocation per distinct key.
//
// Overrides: workers_max=8 stream=8192 warm=512 hot=16 cold_queries=512
//            value_bytes=1000 service_s=23 seed=0x90
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "core/parallel_coordinator.h"
#include "core/striped_backend.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct ParallelStack {
  std::unique_ptr<VirtualClock> clock;
  std::unique_ptr<cloudsim::CloudProvider> provider;
  std::unique_ptr<core::ElasticCache> cache;
  std::unique_ptr<core::StripedBackend> striped;
  std::unique_ptr<service::Service> service;
  std::unique_ptr<sfc::Linearizer> linearizer;
  std::unique_ptr<core::ParallelCoordinator> coordinator;
};

ParallelStack BuildParallelStack(const Config& cfg, std::size_t workers) {
  ParallelStack s;
  s.clock = std::make_unique<VirtualClock>();

  cloudsim::CloudOptions cloud;
  cloud.boot_mean = Duration::Seconds(60);
  cloud.seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 0x90));
  s.provider = std::make_unique<cloudsim::CloudProvider>(cloud, s.clock.get());

  const auto keyspace = static_cast<std::uint64_t>(1) << 14;
  const auto value_bytes =
      static_cast<std::size_t>(cfg.GetInt("value_bytes", 1000));
  core::ElasticCacheOptions copts;
  copts.node_capacity_bytes = 4096 * core::RecordSize(0, value_bytes);
  copts.ring.range = keyspace;
  s.cache = std::make_unique<core::ElasticCache>(copts, s.provider.get(),
                                                 s.clock.get());
  s.striped = std::make_unique<core::StripedBackend>(s.cache.get(),
                                                     /*stripes=*/16);

  s.service = std::make_unique<service::SyntheticService>(
      "synthetic", Duration::Seconds(cfg.GetInt("service_s", 23)),
      value_bytes);
  s.linearizer = std::make_unique<sfc::Linearizer>(GridFor(keyspace));

  core::ParallelCoordinatorOptions popts;
  popts.workers = workers;
  s.coordinator = std::make_unique<core::ParallelCoordinator>(
      popts, s.striped.get(), s.service.get(), s.linearizer.get());
  return s;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Parallel front-end — throughput scaling and miss coalescing",
      "N-worker ParallelCoordinator over a striped elastic cache; virtual "
      "makespan = max per-worker busy time.");

  const auto workers_max =
      static_cast<std::size_t>(cfg.GetInt("workers_max", 8));
  const auto warm = static_cast<std::size_t>(cfg.GetInt("warm", 512));
  const auto stream_len =
      static_cast<std::size_t>(cfg.GetInt("stream", 8192));

  // ---- Phase A: hit-heavy scaling sweep -------------------------------
  std::vector<core::Key> stream;
  stream.reserve(stream_len);
  for (std::size_t i = 0; i < stream_len; ++i) {
    stream.push_back(static_cast<core::Key>(i % warm));
  }

  std::vector<std::size_t> sweep;
  for (std::size_t w = 1; w <= workers_max; w *= 2) sweep.push_back(w);

  Table scaling({"workers", "queries", "hits", "makespan_s", "qps",
                 "speedup"});
  double qps1 = 0.0, qps_last = 0.0;
  bool all_hits = true;
  for (std::size_t w : sweep) {
    ParallelStack s = BuildParallelStack(cfg, w);
    for (std::size_t k = 0; k < warm; ++k) {
      (void)s.striped->Put(static_cast<core::Key>(k),
                           std::string(static_cast<std::size_t>(
                                           cfg.GetInt("value_bytes", 1000)),
                                       'w'));
    }
    const core::ParallelBatchReport r = s.coordinator->RunKeys(stream);
    if (w == 1) qps1 = r.QueriesPerSecond();
    qps_last = r.QueriesPerSecond();
    all_hits &= (r.hits == stream.size());
    scaling.AddRow({std::to_string(w), std::to_string(r.queries),
                    std::to_string(r.hits), FormatG(r.makespan.seconds()),
                    FormatG(r.QueriesPerSecond()),
                    FormatG(qps1 > 0 ? r.QueriesPerSecond() / qps1 : 0.0)});
  }
  std::printf("%s\n", scaling.ToString().c_str());

  // ---- Phase B: cold hot-key coalescing -------------------------------
  const auto hot = static_cast<std::size_t>(cfg.GetInt("hot", 16));
  const auto cold_queries =
      static_cast<std::size_t>(cfg.GetInt("cold_queries", 512));
  std::vector<core::Key> cold_stream;
  cold_stream.reserve(cold_queries);
  for (std::size_t i = 0; i < cold_queries; ++i) {
    cold_stream.push_back(static_cast<core::Key>(i % hot));
  }
  ParallelStack cold = BuildParallelStack(cfg, workers_max);
  const core::ParallelBatchReport cr = cold.coordinator->RunKeys(cold_stream);
  Table coalesce({"queries", "distinct_keys", "misses", "coalesced", "hits",
                  "service_invocations", "coalesce_rate"});
  const double redundant =
      static_cast<double>(cr.queries) - static_cast<double>(hot);
  coalesce.AddRow(
      {std::to_string(cr.queries), std::to_string(hot),
       std::to_string(cr.misses), std::to_string(cr.coalesced),
       std::to_string(cr.hits), std::to_string(cr.service_invocations),
       FormatG(redundant > 0
                   ? static_cast<double>(cr.coalesced + cr.hits) / redundant
                   : 0.0)});
  std::printf("%s\n", coalesce.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck("warm stream is all hits at every worker count",
                   all_hits);
  ok &= ShapeCheck(
      "throughput at " + std::to_string(workers_max) +
          " workers >= 4x the 1-worker baseline",
      qps1 > 0 && qps_last / qps1 >= 4.0);
  ok &= ShapeCheck(
      "cold hot-key batch invokes the service once per distinct key",
      cr.service_invocations == hot && cr.misses == hot);
  ok &= ShapeCheck("every redundant cold miss was coalesced or served",
                   cr.hits + cr.coalesced + cr.misses == cr.queries);
  std::printf("\n");
  BenchMetric("qps_1w", qps1);
  BenchMetric("qps_maxw", qps_last);
  BenchMetric("scaling_factor", qps1 > 0 ? qps_last / qps1 : 0.0);
  MaybeWriteBenchJson(cfg, "micro_parallel");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
