// Ablation: successor replication under node failure (paper §VI suggests
// replication; the paper's evaluation itself assumes nodes never die).
//
// Same phased workload as Figs. 5-7.  At the peak of the intensive period
// one cache node fails abruptly (KillNode).  Without replication every
// record it held is lost and the hit rate craters until the service
// recomputes them; with successor replication the loss is masked and the
// dip largely disappears — at the price of roughly doubled memory use
// (extra splits/allocations) while both copies are live.
#include <algorithm>
#include <cstdio>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct Outcome {
  std::string label;
  double hit_rate_before = 0.0;  ///< interval ending at the failure
  double hit_rate_after = 0.0;   ///< interval right after the failure
  double recovery_steps = 0.0;   ///< steps to regain 90% of pre-kill rate
  std::size_t records_dropped = 0;
  std::size_t records_recoverable = 0;
  std::size_t max_nodes = 0;
  std::uint64_t replica_writes = 0;
};

Outcome Run(const Config& cfg, std::size_t replicas,
            const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 15);
  params.records_per_node = cfg.GetInt("records_per_node", 3500);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x51);
  params.coordinator.window.slices = cfg.GetInt("window", 200);
  params.coordinator.contraction_epsilon = cfg.GetInt("epsilon", 5);
  params.min_nodes = 2;
  params.replicas = replicas;
  Stack stack = BuildStack(params);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xabc));
  const auto rate = workload::PaperPhasedSchedule();
  const std::size_t kill_step = cfg.GetInt("kill_step", 250);
  const std::size_t steps = cfg.GetInt("steps", 500);

  Outcome out;
  out.label = label;
  std::size_t window_hits = 0, window_queries = 0;
  double rate_before = 0.0;
  std::size_t recovered_at = 0;
  for (std::size_t step = 1; step <= steps; ++step) {
    const std::size_t r = rate->RateAt(step);
    for (std::size_t j = 0; j < r; ++j) {
      (void)stack.coordinator->ProcessKey(keys.Next());
    }
    const core::TimeStepReport report = stack.coordinator->EndTimeStep();
    window_hits += report.step_hits;
    window_queries += report.step_queries;
    out.max_nodes = std::max(out.max_nodes, stack.cache->NodeCount());

    if (step % 10 == 0) {
      const double hit_rate =
          window_queries == 0
              ? 0.0
              : static_cast<double>(window_hits) /
                    static_cast<double>(window_queries);
      if (step == kill_step) {
        out.hit_rate_before = hit_rate;
        rate_before = hit_rate;
        // Inject the failure: kill the node owning the median key.
        auto victim = stack.elastic()->OwnerOf(params.keyspace / 2);
        if (victim.ok()) {
          auto report2 = stack.elastic()->KillNode(*victim);
          if (report2.ok()) {
            out.records_dropped = report2->records_dropped;
            out.records_recoverable = report2->records_recoverable;
          }
        }
      } else if (step == kill_step + 10) {
        out.hit_rate_after = hit_rate;
      }
      if (step > kill_step && recovered_at == 0 &&
          hit_rate >= 0.9 * rate_before) {
        recovered_at = step;
      }
      window_hits = window_queries = 0;
    }
  }
  out.recovery_steps = recovered_at == 0
                           ? static_cast<double>(steps - kill_step)
                           : static_cast<double>(recovered_at - kill_step);
  out.replica_writes = stack.cache->stats().replica_writes;
  return out;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Replication under Node Failure (paper future "
              "work)",
              "Abrupt node loss at the burst peak; mirror replicas double the "
              "stored volume (and fleet).");

  const Outcome plain = Run(cfg, 1, "no-replication");
  const Outcome replicated = Run(cfg, 2, "mirror-replica");

  Table table({"config", "hit_before", "hit_after_kill", "dip",
               "recovery_steps", "dropped", "recoverable", "max_nodes",
               "replica_writes"});
  for (const Outcome& o : {plain, replicated}) {
    table.AddRow({o.label, FormatG(o.hit_rate_before),
                  FormatG(o.hit_rate_after),
                  FormatG(o.hit_rate_before - o.hit_rate_after),
                  FormatG(o.recovery_steps),
                  FormatG(static_cast<double>(o.records_dropped)),
                  FormatG(static_cast<double>(o.records_recoverable)),
                  FormatG(static_cast<double>(o.max_nodes)),
                  FormatG(static_cast<double>(o.replica_writes))});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  const double plain_dip = plain.hit_rate_before - plain.hit_rate_after;
  const double repl_dip =
      replicated.hit_rate_before - replicated.hit_rate_after;
  bool ok = true;
  ok &= ShapeCheck("failure drops real data without replication",
                   plain.records_dropped > 0 &&
                       plain.records_recoverable == 0);
  ok &= ShapeCheck("replication makes most dropped records recoverable",
                   replicated.records_recoverable >
                       replicated.records_dropped / 2);
  ok &= ShapeCheck("replication halves the post-failure hit-rate dip",
                   repl_dip < 0.5 * plain_dip || plain_dip <= 0.0);
  ok &= ShapeCheck("replication costs capacity (more nodes at peak)",
                   replicated.max_nodes > plain.max_nodes);
  ok &= ShapeCheck("replicas were actually written",
                   replicated.replica_writes > 0 &&
                       plain.replica_writes == 0);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_replication");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
