// Figure 5 reproduction: "Speedup under Eviction/Contraction" for sliding
// window sizes m = 50/100/200/400, alpha = 0.99, baseline threshold
// T_lambda = alpha^(m-1), on the phased workload (50 -> 250 -> 50 q/step).
//
// Paper shape: all windows adapt to the intensive period; peak speedup and
// node usage grow with m (m=50: ~1.55x on ~2 nodes; m=400: ~8x on up to 8
// nodes); after step 300 nodes relax but never back to 1 (conservative,
// churn-avoiding contraction).
#include <cstdio>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader(
      "Figure 5 — Speedup under Eviction/Contraction (32K keys, phased "
      "rate)",
      "Sliding windows m = 50/100/200/400, alpha = 0.99, baseline "
      "threshold.");

  const std::vector<std::size_t> windows = {50, 100, 200, 400};
  std::vector<workload::ExperimentResult> results;
  for (std::size_t m : windows) {
    results.push_back(RunPhased(cfg, m, cfg.GetDouble("alpha", 0.99),
                                /*threshold=*/-1.0,
                                "m" + std::to_string(m)));
  }

  // Speedup and node columns per window, shared step axis.
  SeriesSet fig("step");
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Series* sp = results[i].series.Find("speedup");
    Series& col = fig.Get("speedup_m" + std::to_string(windows[i]));
    for (std::size_t j = 0; j < sp->size(); ++j) {
      col.Add(sp->xs()[j], sp->ys()[j]);
    }
  }
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Series* nodes = results[i].series.Find("nodes");
    Series& col = fig.Get("nodes_m" + std::to_string(windows[i]));
    for (std::size_t j = 0; j < nodes->size(); ++j) {
      col.Add(nodes->xs()[j], nodes->ys()[j]);
    }
  }
  std::printf("\n%s\n", fig.ToTable().c_str());
  MaybeWriteCsv(cfg, fig, "fig5_window_speedup");

  Table summary({"window", "max_speedup", "final_speedup", "hit_rate",
                 "nodes_mean", "nodes_max", "nodes_final", "evictions",
                 "merges", "cost_usd"});
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& s = results[i].summary;
    summary.AddRow({"m=" + std::to_string(windows[i]),
                    FormatG(s.max_speedup), FormatG(s.final_speedup),
                    FormatG(s.hit_rate), FormatG(s.mean_nodes),
                    FormatG(static_cast<double>(s.max_nodes)),
                    FormatG(static_cast<double>(s.final_nodes)),
                    FormatG(static_cast<double>(s.evictions)),
                    FormatG(static_cast<double>(s.node_removals)),
                    FormatG(s.cost_usd)});
  }
  std::printf("%s\n", summary.ToString().c_str());

  bool ok = true;
  ok &= ShapeCheck(
      "peak speedup grows with window size (m50 < m100 < m200 < m400)",
      results[0].summary.max_speedup < results[1].summary.max_speedup &&
          results[1].summary.max_speedup < results[2].summary.max_speedup &&
          results[2].summary.max_speedup < results[3].summary.max_speedup);
  ok &= ShapeCheck("m=50 peaks modestly (max speedup in [1.2, 3])",
                   results[0].summary.max_speedup > 1.2 &&
                       results[0].summary.max_speedup < 3.0);
  ok &= ShapeCheck("m=400 peaks high (max speedup > 5x)",
                   results[3].summary.max_speedup > 5.0);
  ok &= ShapeCheck("node usage grows with window size (mean nodes ordered)",
                   results[0].summary.mean_nodes <
                           results[3].summary.mean_nodes &&
                       results[1].summary.mean_nodes <
                           results[3].summary.mean_nodes);
  ok &= ShapeCheck("m=50 runs on a small fleet (mean nodes <= 3.5)",
                   results[0].summary.mean_nodes <= 3.5);
  ok &= ShapeCheck("m=400 grows to ~8 nodes (max in [6, 11])",
                   results[3].summary.max_nodes >= 6 &&
                       results[3].summary.max_nodes <= 11);
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    const auto& s = results[i].summary;
    ok &= ShapeCheck("m=" + std::to_string(windows[i]) +
                         " relaxes nodes after the burst (final < max)",
                     s.final_nodes < s.max_nodes);
  }
  for (std::size_t i = 0; i < windows.size(); ++i) {
    ok &= ShapeCheck("m=" + std::to_string(windows[i]) +
                         " never contracts to a single node",
                     results[i].summary.final_nodes > 1);
  }
  // For m=400 the window outlives the burst: the paper flags that node
  // allocation persists well past the intensive period and questions the
  // cost tradeoff (§IV.C/D) — the fleet stays large at the end.
  ok &= ShapeCheck("m=400 retains a large fleet at the end (final >= 6)",
                   results[3].summary.final_nodes >= 6);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "fig5_window_speedup");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
