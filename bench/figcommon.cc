#include "figcommon.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ecc::bench {

namespace {

// Accumulated machine-readable report for the running bench binary.  Bench
// mains are single-threaded, so plain statics suffice.
struct BenchReport {
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, SeriesSet>> series;
  std::vector<std::pair<std::string, bool>> checks;
};

BenchReport& Report() {
  static BenchReport r;
  return r;
}

void JsonAppendString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonAppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void JsonAppendDoubles(std::string& out, const std::vector<double>& vs) {
  out += '[';
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out += ',';
    JsonAppendNumber(out, vs[i]);
  }
  out += ']';
}

}  // namespace

std::size_t NominalRecordBytes(const StackParams& p) {
  return core::RecordSize(0, p.value_bytes);
}

sfc::LinearizerOptions GridFor(std::uint64_t keyspace) {
  // 2*spatial_bits + time_bits must equal log2(keyspace); favour 2-4 time
  // bits as the paper's inputs are "linearized coordinates and date".
  unsigned log2 = 0;
  while ((1ull << log2) < keyspace) ++log2;
  if ((1ull << log2) != keyspace) {
    std::fprintf(stderr, "keyspace must be a power of two\n");
    std::exit(2);
  }
  sfc::LinearizerOptions opts;
  opts.time_bits = log2 % 2 == 0 ? 2 : 3;
  opts.spatial_bits = (log2 - opts.time_bits) / 2;
  while (2 * opts.spatial_bits + opts.time_bits < log2) ++opts.time_bits;
  return opts;
}

Stack BuildStack(const StackParams& p) {
  Stack s;
  s.clock = std::make_unique<VirtualClock>();
  s.linearizer = std::make_unique<sfc::Linearizer>(GridFor(p.keyspace));

  s.metrics = std::make_unique<obs::MetricsRegistry>();
  if (p.trace) s.trace = std::make_unique<obs::TraceLog>();
  obs::FleetTelemetryOptions topts;
  topts.sample_every = p.telemetry_every == 0 ? 1 : p.telemetry_every;
  topts.registry = s.metrics.get();
  s.telemetry = std::make_unique<obs::FleetTelemetry>(topts);
  obs::Observability obs;
  obs.metrics = s.metrics.get();
  obs.trace = s.trace.get();
  obs.telemetry = s.telemetry.get();

  if (p.service_kind == "shoreline") {
    service::ShorelineServiceOptions sopts;
    sopts.base_exec_time = p.service_time;
    sopts.ctm.width = 32;
    sopts.ctm.height = 32;
    sopts.grid = s.linearizer->options();
    sopts.max_result_bytes = p.value_bytes;
    sopts.seed = p.seed ^ 0x5ea5ULL;
    s.service = std::make_unique<service::ShorelineService>(sopts);
  } else {
    s.service = std::make_unique<service::SyntheticService>(
        "synthetic-derived", p.service_time, p.value_bytes);
  }

  const std::uint64_t capacity =
      p.records_per_node * NominalRecordBytes(p);
  if (p.static_nodes > 0) {
    core::StaticCacheOptions sopts;
    sopts.nodes = p.static_nodes;
    sopts.node_capacity_bytes = capacity;
    sopts.ring.range = p.keyspace;
    sopts.policy = p.static_policy;
    sopts.seed = p.seed ^ 0x57a7ULL;
    s.cache = std::make_unique<core::StaticCache>(sopts, s.clock.get());
  } else {
    cloudsim::CloudOptions copts;
    copts.seed = p.seed ^ 0xec2ULL;
    s.provider = std::make_unique<cloudsim::CloudProvider>(copts,
                                                           s.clock.get());
    if (p.prewarm > 0) s.provider->PrewarmAsync(p.prewarm);
    core::ElasticCacheOptions eopts;
    eopts.node_capacity_bytes = capacity;
    // Mirror replication stores secondaries in the upper half of the hash
    // line, so the ring must be twice the primary key space.
    eopts.ring.range = p.replicas >= 2 ? 2 * p.keyspace : p.keyspace;
    eopts.min_nodes = p.min_nodes;
    eopts.replicas = p.replicas;
    eopts.obs = obs;
    s.cache = std::make_unique<core::ElasticCache>(eopts, s.provider.get(),
                                                   s.clock.get());
  }

  core::CoordinatorOptions copts = p.coordinator;
  copts.obs = obs;
  // Elastic stacks feed the coordinator's elasticity policy its cost
  // context (billing snapshot per boundary) and receive prewarm launches.
  if (copts.provider == nullptr) copts.provider = s.provider.get();
  s.coordinator = std::make_unique<core::Coordinator>(
      copts, s.cache.get(), s.service.get(), s.linearizer.get(),
      s.clock.get());
  return s;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // `--json PATH` / `--json=PATH` are aliases for the `json=PATH` token
    // so CI invocations read naturally.
    if (arg == "--json" && i + 1 < argc) {
      config.Set("json", argv[++i]);
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      config.Set("json", arg.substr(7));
      continue;
    }
    if (Status s = config.ParseToken(argv[i]); !s.ok()) {
      std::fprintf(stderr, "usage: %s [key=value ...]\n  bad arg: %s\n",
                   argv[0], s.ToString().c_str());
      std::exit(2);
    }
  }
  return config;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================="
              "=================\n");
}

bool ShapeCheck(const std::string& claim, bool ok) {
  std::printf("[shape %s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  Report().checks.emplace_back(claim, ok);
  return ok;
}

void BenchMetric(const std::string& name, double value) {
  Report().metrics.emplace_back(name, value);
}

void BenchSeries(const std::string& name, const SeriesSet& series) {
  Report().series.emplace_back(name, series);
}

void MaybeWriteBenchJson(const Config& cfg, const std::string& bench) {
  if (!cfg.Has("json")) return;
  const BenchReport& r = Report();
  std::string out = "{\n  \"bench\": ";
  JsonAppendString(out, bench);
  out += ",\n  \"format\": \"ecc-bench-v1\",\n  \"metrics\": {";
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    JsonAppendString(out, r.metrics[i].first);
    out += ": ";
    JsonAppendNumber(out, r.metrics[i].second);
  }
  out += r.metrics.empty() ? "},\n" : "\n  },\n";
  out += "  \"checks\": [";
  std::size_t failed = 0;
  for (std::size_t i = 0; i < r.checks.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"claim\": ";
    JsonAppendString(out, r.checks[i].first);
    out += ", \"pass\": ";
    out += r.checks[i].second ? "true" : "false";
    out += '}';
    if (!r.checks[i].second) ++failed;
  }
  out += r.checks.empty() ? "],\n" : "\n  ],\n";
  out += "  \"checks_failed\": ";
  JsonAppendNumber(out, static_cast<double>(failed));
  out += ",\n  \"series\": {";
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    const SeriesSet& set = r.series[i].second;
    out += i > 0 ? ",\n    " : "\n    ";
    JsonAppendString(out, r.series[i].first);
    out += ": {\"x_label\": ";
    JsonAppendString(out, set.x_label());
    out += ", \"columns\": {";
    bool first_col = true;
    for (const std::string& col : set.names()) {
      const Series* s = set.Find(col);
      if (s == nullptr) continue;
      if (!first_col) out += ", ";
      first_col = false;
      JsonAppendString(out, col);
      out += ": {\"x\": ";
      JsonAppendDoubles(out, s->xs());
      out += ", \"y\": ";
      JsonAppendDoubles(out, s->ys());
      out += '}';
    }
    out += "}}";
  }
  out += r.series.empty() ? "}\n}\n" : "\n  }\n}\n";

  const std::string path = cfg.GetString("json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[json] cannot open %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

void MaybeWriteCsv(const Config& cfg, const SeriesSet& series,
                   const std::string& name) {
  BenchSeries(name, series);
  if (!cfg.Has("csv_dir")) return;
  const std::string path = cfg.GetString("csv_dir") + "/" + name + ".csv";
  if (Status s = series.WriteCsvFile(path); s.ok()) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[csv] %s: %s\n", path.c_str(),
                 s.ToString().c_str());
  }
}

workload::ExperimentResult RunPhased(const Config& cfg,
                                     std::size_t window_slices, double alpha,
                                     double threshold,
                                     const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 15);  // 32K inputs (§IV.C)
  params.records_per_node = cfg.GetInt("records_per_node", 3500);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x51);
  params.coordinator.window.slices = window_slices;
  params.coordinator.window.alpha = alpha;
  params.coordinator.window.threshold = threshold;
  params.coordinator.contraction_epsilon = cfg.GetInt("epsilon", 5);
  // The cooperative cache never collapses to a lone node in the paper's
  // runs; keep at least two cooperating nodes.
  params.min_nodes = cfg.GetInt("min_nodes", 2);
  Stack stack = BuildStack(params);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xabc));
  const auto rate = workload::PaperPhasedSchedule();
  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 700);
  eopts.observe_every = cfg.GetInt("observe_every", 10);
  eopts.baseline_exec = Duration::Seconds(cfg.GetDouble("baseline", 23.0));
  eopts.label = label;
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(), &keys,
                                    rate.get(), stack.provider.get(),
                                    stack.clock.get());
  return driver.Run();
}

}  // namespace ecc::bench
