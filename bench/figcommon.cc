#include "figcommon.h"

#include <cstdio>
#include <cstdlib>

namespace ecc::bench {

std::size_t NominalRecordBytes(const StackParams& p) {
  return core::RecordSize(0, p.value_bytes);
}

sfc::LinearizerOptions GridFor(std::uint64_t keyspace) {
  // 2*spatial_bits + time_bits must equal log2(keyspace); favour 2-4 time
  // bits as the paper's inputs are "linearized coordinates and date".
  unsigned log2 = 0;
  while ((1ull << log2) < keyspace) ++log2;
  if ((1ull << log2) != keyspace) {
    std::fprintf(stderr, "keyspace must be a power of two\n");
    std::exit(2);
  }
  sfc::LinearizerOptions opts;
  opts.time_bits = log2 % 2 == 0 ? 2 : 3;
  opts.spatial_bits = (log2 - opts.time_bits) / 2;
  while (2 * opts.spatial_bits + opts.time_bits < log2) ++opts.time_bits;
  return opts;
}

Stack BuildStack(const StackParams& p) {
  Stack s;
  s.clock = std::make_unique<VirtualClock>();
  s.linearizer = std::make_unique<sfc::Linearizer>(GridFor(p.keyspace));

  s.metrics = std::make_unique<obs::MetricsRegistry>();
  if (p.trace) s.trace = std::make_unique<obs::TraceLog>();
  obs::FleetTelemetryOptions topts;
  topts.sample_every = p.telemetry_every == 0 ? 1 : p.telemetry_every;
  topts.registry = s.metrics.get();
  s.telemetry = std::make_unique<obs::FleetTelemetry>(topts);
  obs::Observability obs;
  obs.metrics = s.metrics.get();
  obs.trace = s.trace.get();
  obs.telemetry = s.telemetry.get();

  if (p.service_kind == "shoreline") {
    service::ShorelineServiceOptions sopts;
    sopts.base_exec_time = p.service_time;
    sopts.ctm.width = 32;
    sopts.ctm.height = 32;
    sopts.grid = s.linearizer->options();
    sopts.max_result_bytes = p.value_bytes;
    sopts.seed = p.seed ^ 0x5ea5ULL;
    s.service = std::make_unique<service::ShorelineService>(sopts);
  } else {
    s.service = std::make_unique<service::SyntheticService>(
        "synthetic-derived", p.service_time, p.value_bytes);
  }

  const std::uint64_t capacity =
      p.records_per_node * NominalRecordBytes(p);
  if (p.static_nodes > 0) {
    core::StaticCacheOptions sopts;
    sopts.nodes = p.static_nodes;
    sopts.node_capacity_bytes = capacity;
    sopts.ring.range = p.keyspace;
    sopts.policy = p.static_policy;
    sopts.seed = p.seed ^ 0x57a7ULL;
    s.cache = std::make_unique<core::StaticCache>(sopts, s.clock.get());
  } else {
    cloudsim::CloudOptions copts;
    copts.seed = p.seed ^ 0xec2ULL;
    s.provider = std::make_unique<cloudsim::CloudProvider>(copts,
                                                           s.clock.get());
    if (p.prewarm > 0) s.provider->PrewarmAsync(p.prewarm);
    core::ElasticCacheOptions eopts;
    eopts.node_capacity_bytes = capacity;
    // Mirror replication stores secondaries in the upper half of the hash
    // line, so the ring must be twice the primary key space.
    eopts.ring.range = p.replicas >= 2 ? 2 * p.keyspace : p.keyspace;
    eopts.min_nodes = p.min_nodes;
    eopts.replicas = p.replicas;
    eopts.obs = obs;
    s.cache = std::make_unique<core::ElasticCache>(eopts, s.provider.get(),
                                                   s.clock.get());
  }

  core::CoordinatorOptions copts = p.coordinator;
  copts.obs = obs;
  s.coordinator = std::make_unique<core::Coordinator>(
      copts, s.cache.get(), s.service.get(), s.linearizer.get(),
      s.clock.get());
  return s;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (Status s = config.ParseToken(argv[i]); !s.ok()) {
      std::fprintf(stderr, "usage: %s [key=value ...]\n  bad arg: %s\n",
                   argv[0], s.ToString().c_str());
      std::exit(2);
    }
  }
  return config;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================="
              "=================\n");
}

bool ShapeCheck(const std::string& claim, bool ok) {
  std::printf("[shape %s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

void MaybeWriteCsv(const Config& cfg, const SeriesSet& series,
                   const std::string& name) {
  if (!cfg.Has("csv_dir")) return;
  const std::string path = cfg.GetString("csv_dir") + "/" + name + ".csv";
  if (Status s = series.WriteCsvFile(path); s.ok()) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[csv] %s: %s\n", path.c_str(),
                 s.ToString().c_str());
  }
}

workload::ExperimentResult RunPhased(const Config& cfg,
                                     std::size_t window_slices, double alpha,
                                     double threshold,
                                     const std::string& label) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 15);  // 32K inputs (§IV.C)
  params.records_per_node = cfg.GetInt("records_per_node", 3500);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x51);
  params.coordinator.window.slices = window_slices;
  params.coordinator.window.alpha = alpha;
  params.coordinator.window.threshold = threshold;
  params.coordinator.contraction_epsilon = cfg.GetInt("epsilon", 5);
  // The cooperative cache never collapses to a lone node in the paper's
  // runs; keep at least two cooperating nodes.
  params.min_nodes = cfg.GetInt("min_nodes", 2);
  Stack stack = BuildStack(params);

  workload::UniformKeyGenerator keys(params.keyspace,
                                     cfg.GetInt("workload_seed", 0xabc));
  const auto rate = workload::PaperPhasedSchedule();
  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 700);
  eopts.observe_every = cfg.GetInt("observe_every", 10);
  eopts.baseline_exec = Duration::Seconds(cfg.GetDouble("baseline", 23.0));
  eopts.label = label;
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(), &keys,
                                    rate.get(), stack.provider.get(),
                                    stack.clock.get());
  return driver.Run();
}

}  // namespace ecc::bench
