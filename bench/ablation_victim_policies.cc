// Ablation: victim policies for the static baseline, uniform vs skewed
// workloads.
//
// The paper's statics use LRU.  This bench sweeps LRU/FIFO/LFU/Random on
// static-4 under (a) the paper's uniform draws — where policies barely
// differ because every key is equally likely — and (b) a Zipf(0.99)
// workload, where recency/frequency policies must beat random eviction.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "figcommon.h"

namespace ecc::bench {
namespace {

struct Row {
  std::string policy;
  double uniform_hit_rate = 0.0;
  double zipf_hit_rate = 0.0;
};

double RunOne(const Config& cfg, core::VictimPolicy policy, bool zipf) {
  StackParams params;
  params.keyspace = cfg.GetInt("keyspace", 1 << 14);
  params.records_per_node = cfg.GetInt("records_per_node", 512);
  params.value_bytes = cfg.GetInt("value_bytes", 1000);
  params.service_kind = cfg.GetString("service", "synthetic");
  params.seed = cfg.GetInt("seed", 0x77);
  params.static_nodes = cfg.GetInt("nodes", 4);
  params.static_policy = policy;
  params.coordinator.window.slices = 0;
  params.coordinator.contraction_epsilon = 0;
  Stack stack = BuildStack(params);

  std::unique_ptr<workload::KeyGenerator> keys;
  if (zipf) {
    keys = std::make_unique<workload::ZipfKeyGenerator>(
        params.keyspace, cfg.GetDouble("zipf_s", 0.99),
        cfg.GetInt("workload_seed", 0x21));
  } else {
    keys = std::make_unique<workload::UniformKeyGenerator>(
        params.keyspace, cfg.GetInt("workload_seed", 0x21));
  }
  workload::ConstantRate rate(cfg.GetInt("rate", 1));
  workload::ExperimentOptions eopts;
  eopts.time_steps = cfg.GetInt("steps", 60000);
  eopts.observe_every = eopts.time_steps;
  eopts.label = "victim";
  workload::ExperimentDriver driver(eopts, stack.coordinator.get(),
                                    keys.get(), &rate, nullptr,
                                    stack.clock.get());
  return driver.Run().summary.hit_rate;
}

int Main(int argc, char** argv) {
  Log::SetLevel(LogLevel::kError);
  const Config cfg = ParseArgs(argc, argv);
  PrintHeader("Ablation — Static-Cache Victim Policies",
              "LRU (the paper's choice) vs FIFO/LFU/Random on uniform and "
              "Zipf(0.99) workloads, static-4.");

  const std::vector<core::VictimPolicy> policies = {
      core::VictimPolicy::kLru, core::VictimPolicy::kFifo,
      core::VictimPolicy::kLfu, core::VictimPolicy::kRandom};
  std::vector<Row> rows;
  for (core::VictimPolicy p : policies) {
    Row row;
    row.policy = core::VictimPolicyName(p);
    row.uniform_hit_rate = RunOne(cfg, p, /*zipf=*/false);
    row.zipf_hit_rate = RunOne(cfg, p, /*zipf=*/true);
    rows.push_back(row);
  }

  Table table({"policy", "uniform_hit_rate", "zipf_hit_rate"});
  for (const Row& r : rows) {
    table.AddRow({r.policy, FormatG(r.uniform_hit_rate),
                  FormatG(r.zipf_hit_rate)});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  const Row& lru = rows[0];
  const Row& lfu = rows[2];
  const Row& random = rows[3];
  bool ok = true;
  ok &= ShapeCheck(
      "uniform workload: all policies within 15% of one another",
      [&] {
        double lo = 1.0, hi = 0.0;
        for (const Row& r : rows) {
          lo = std::min(lo, r.uniform_hit_rate);
          hi = std::max(hi, r.uniform_hit_rate);
        }
        return hi <= lo * 1.15;
      }());
  ok &= ShapeCheck("zipf: every policy beats its own uniform hit rate",
                   [&] {
                     for (const Row& r : rows) {
                       if (r.zipf_hit_rate <= r.uniform_hit_rate) {
                         return false;
                       }
                     }
                     return true;
                   }());
  ok &= ShapeCheck("zipf: LRU beats random eviction",
                   lru.zipf_hit_rate > random.zipf_hit_rate);
  ok &= ShapeCheck("zipf: LFU is competitive with LRU (>= 95%)",
                   lfu.zipf_hit_rate >= 0.95 * lru.zipf_hit_rate);
  std::printf("\n");
  MaybeWriteBenchJson(cfg, "ablation_victim_policies");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ecc::bench

int main(int argc, char** argv) { return ecc::bench::Main(argc, argv); }
