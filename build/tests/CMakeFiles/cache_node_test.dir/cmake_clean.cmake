file(REMOVE_RECURSE
  "CMakeFiles/cache_node_test.dir/cache_node_test.cc.o"
  "CMakeFiles/cache_node_test.dir/cache_node_test.cc.o.d"
  "cache_node_test"
  "cache_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
