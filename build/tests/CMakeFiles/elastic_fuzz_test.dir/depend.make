# Empty dependencies file for elastic_fuzz_test.
# This may be replaced when dependencies are built.
