file(REMOVE_RECURSE
  "CMakeFiles/elastic_fuzz_test.dir/elastic_fuzz_test.cc.o"
  "CMakeFiles/elastic_fuzz_test.dir/elastic_fuzz_test.cc.o.d"
  "elastic_fuzz_test"
  "elastic_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
