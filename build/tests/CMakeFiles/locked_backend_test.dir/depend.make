# Empty dependencies file for locked_backend_test.
# This may be replaced when dependencies are built.
