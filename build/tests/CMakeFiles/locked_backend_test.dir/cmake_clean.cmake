file(REMOVE_RECURSE
  "CMakeFiles/locked_backend_test.dir/locked_backend_test.cc.o"
  "CMakeFiles/locked_backend_test.dir/locked_backend_test.cc.o.d"
  "locked_backend_test"
  "locked_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locked_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
