file(REMOVE_RECURSE
  "CMakeFiles/socket_channel_test.dir/socket_channel_test.cc.o"
  "CMakeFiles/socket_channel_test.dir/socket_channel_test.cc.o.d"
  "socket_channel_test"
  "socket_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
