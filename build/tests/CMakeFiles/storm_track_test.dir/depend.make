# Empty dependencies file for storm_track_test.
# This may be replaced when dependencies are built.
