file(REMOVE_RECURSE
  "CMakeFiles/storm_track_test.dir/storm_track_test.cc.o"
  "CMakeFiles/storm_track_test.dir/storm_track_test.cc.o.d"
  "storm_track_test"
  "storm_track_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_track_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
