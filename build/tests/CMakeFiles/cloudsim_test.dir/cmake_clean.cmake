file(REMOVE_RECURSE
  "CMakeFiles/cloudsim_test.dir/cloudsim_test.cc.o"
  "CMakeFiles/cloudsim_test.dir/cloudsim_test.cc.o.d"
  "cloudsim_test"
  "cloudsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
