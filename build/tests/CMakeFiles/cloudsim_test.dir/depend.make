# Empty dependencies file for cloudsim_test.
# This may be replaced when dependencies are built.
