file(REMOVE_RECURSE
  "CMakeFiles/inundation_test.dir/inundation_test.cc.o"
  "CMakeFiles/inundation_test.dir/inundation_test.cc.o.d"
  "inundation_test"
  "inundation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inundation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
