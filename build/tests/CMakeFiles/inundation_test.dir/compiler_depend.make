# Empty compiler generated dependencies file for inundation_test.
# This may be replaced when dependencies are built.
