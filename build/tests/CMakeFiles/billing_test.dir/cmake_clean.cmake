file(REMOVE_RECURSE
  "CMakeFiles/billing_test.dir/billing_test.cc.o"
  "CMakeFiles/billing_test.dir/billing_test.cc.o.d"
  "billing_test"
  "billing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
