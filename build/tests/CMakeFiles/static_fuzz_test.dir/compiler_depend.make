# Empty compiler generated dependencies file for static_fuzz_test.
# This may be replaced when dependencies are built.
