file(REMOVE_RECURSE
  "CMakeFiles/static_fuzz_test.dir/static_fuzz_test.cc.o"
  "CMakeFiles/static_fuzz_test.dir/static_fuzz_test.cc.o.d"
  "static_fuzz_test"
  "static_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
