file(REMOVE_RECURSE
  "CMakeFiles/static_cache_test.dir/static_cache_test.cc.o"
  "CMakeFiles/static_cache_test.dir/static_cache_test.cc.o.d"
  "static_cache_test"
  "static_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
