# Empty dependencies file for static_cache_test.
# This may be replaced when dependencies are built.
