# Empty dependencies file for proactive_split_test.
# This may be replaced when dependencies are built.
