file(REMOVE_RECURSE
  "CMakeFiles/proactive_split_test.dir/proactive_split_test.cc.o"
  "CMakeFiles/proactive_split_test.dir/proactive_split_test.cc.o.d"
  "proactive_split_test"
  "proactive_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
