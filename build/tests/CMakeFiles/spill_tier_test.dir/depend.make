# Empty dependencies file for spill_tier_test.
# This may be replaced when dependencies are built.
