file(REMOVE_RECURSE
  "CMakeFiles/spill_tier_test.dir/spill_tier_test.cc.o"
  "CMakeFiles/spill_tier_test.dir/spill_tier_test.cc.o.d"
  "spill_tier_test"
  "spill_tier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spill_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
