file(REMOVE_RECURSE
  "CMakeFiles/elastic_cache_test.dir/elastic_cache_test.cc.o"
  "CMakeFiles/elastic_cache_test.dir/elastic_cache_test.cc.o.d"
  "elastic_cache_test"
  "elastic_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
