# Empty dependencies file for elastic_cache_test.
# This may be replaced when dependencies are built.
