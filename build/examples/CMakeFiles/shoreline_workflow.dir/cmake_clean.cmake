file(REMOVE_RECURSE
  "CMakeFiles/shoreline_workflow.dir/shoreline_workflow.cpp.o"
  "CMakeFiles/shoreline_workflow.dir/shoreline_workflow.cpp.o.d"
  "shoreline_workflow"
  "shoreline_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoreline_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
