# Empty compiler generated dependencies file for shoreline_workflow.
# This may be replaced when dependencies are built.
