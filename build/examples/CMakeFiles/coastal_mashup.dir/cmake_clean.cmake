file(REMOVE_RECURSE
  "CMakeFiles/coastal_mashup.dir/coastal_mashup.cpp.o"
  "CMakeFiles/coastal_mashup.dir/coastal_mashup.cpp.o.d"
  "coastal_mashup"
  "coastal_mashup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coastal_mashup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
