# Empty dependencies file for coastal_mashup.
# This may be replaced when dependencies are built.
