# Empty compiler generated dependencies file for disaster_burst.
# This may be replaced when dependencies are built.
