file(REMOVE_RECURSE
  "CMakeFiles/disaster_burst.dir/disaster_burst.cpp.o"
  "CMakeFiles/disaster_burst.dir/disaster_burst.cpp.o.d"
  "disaster_burst"
  "disaster_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
