file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_split.dir/ablation_async_split.cc.o"
  "CMakeFiles/ablation_async_split.dir/ablation_async_split.cc.o.d"
  "ablation_async_split"
  "ablation_async_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
