# Empty compiler generated dependencies file for ablation_async_split.
# This may be replaced when dependencies are built.
