
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_async_split.cc" "bench/CMakeFiles/ablation_async_split.dir/ablation_async_split.cc.o" "gcc" "bench/CMakeFiles/ablation_async_split.dir/ablation_async_split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ecc_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ecc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/ecc_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/hashring/CMakeFiles/ecc_hashring.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudsim/CMakeFiles/ecc_cloudsim.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/ecc_service.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/ecc_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
