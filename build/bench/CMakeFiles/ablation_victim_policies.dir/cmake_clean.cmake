file(REMOVE_RECURSE
  "CMakeFiles/ablation_victim_policies.dir/ablation_victim_policies.cc.o"
  "CMakeFiles/ablation_victim_policies.dir/ablation_victim_policies.cc.o.d"
  "ablation_victim_policies"
  "ablation_victim_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_victim_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
