# Empty compiler generated dependencies file for ablation_victim_policies.
# This may be replaced when dependencies are built.
