# Empty compiler generated dependencies file for fig6_reuse_eviction.
# This may be replaced when dependencies are built.
