file(REMOVE_RECURSE
  "CMakeFiles/fig6_reuse_eviction.dir/fig6_reuse_eviction.cc.o"
  "CMakeFiles/fig6_reuse_eviction.dir/fig6_reuse_eviction.cc.o.d"
  "fig6_reuse_eviction"
  "fig6_reuse_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reuse_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
