# Empty dependencies file for fig4_split_overhead.
# This may be replaced when dependencies are built.
