file(REMOVE_RECURSE
  "CMakeFiles/fig4_split_overhead.dir/fig4_split_overhead.cc.o"
  "CMakeFiles/fig4_split_overhead.dir/fig4_split_overhead.cc.o.d"
  "fig4_split_overhead"
  "fig4_split_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_split_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
