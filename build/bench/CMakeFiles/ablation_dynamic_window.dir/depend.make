# Empty dependencies file for ablation_dynamic_window.
# This may be replaced when dependencies are built.
