file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_window.dir/ablation_dynamic_window.cc.o"
  "CMakeFiles/ablation_dynamic_window.dir/ablation_dynamic_window.cc.o.d"
  "ablation_dynamic_window"
  "ablation_dynamic_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
