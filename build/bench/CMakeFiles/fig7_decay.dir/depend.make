# Empty dependencies file for fig7_decay.
# This may be replaced when dependencies are built.
