file(REMOVE_RECURSE
  "CMakeFiles/fig7_decay.dir/fig7_decay.cc.o"
  "CMakeFiles/fig7_decay.dir/fig7_decay.cc.o.d"
  "fig7_decay"
  "fig7_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
