# Empty dependencies file for fig5_window_speedup.
# This may be replaced when dependencies are built.
