file(REMOVE_RECURSE
  "CMakeFiles/ablation_warmpool.dir/ablation_warmpool.cc.o"
  "CMakeFiles/ablation_warmpool.dir/ablation_warmpool.cc.o.d"
  "ablation_warmpool"
  "ablation_warmpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warmpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
