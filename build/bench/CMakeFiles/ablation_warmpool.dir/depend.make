# Empty dependencies file for ablation_warmpool.
# This may be replaced when dependencies are built.
