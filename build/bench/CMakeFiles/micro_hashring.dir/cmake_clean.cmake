file(REMOVE_RECURSE
  "CMakeFiles/micro_hashring.dir/micro_hashring.cc.o"
  "CMakeFiles/micro_hashring.dir/micro_hashring.cc.o.d"
  "micro_hashring"
  "micro_hashring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hashring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
