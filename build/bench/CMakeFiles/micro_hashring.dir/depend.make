# Empty dependencies file for micro_hashring.
# This may be replaced when dependencies are built.
