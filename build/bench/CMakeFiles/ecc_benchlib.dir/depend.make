# Empty dependencies file for ecc_benchlib.
# This may be replaced when dependencies are built.
