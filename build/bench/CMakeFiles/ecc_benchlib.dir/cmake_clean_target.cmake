file(REMOVE_RECURSE
  "../lib/libecc_benchlib.a"
)
