file(REMOVE_RECURSE
  "../lib/libecc_benchlib.a"
  "../lib/libecc_benchlib.pdb"
  "CMakeFiles/ecc_benchlib.dir/figcommon.cc.o"
  "CMakeFiles/ecc_benchlib.dir/figcommon.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
