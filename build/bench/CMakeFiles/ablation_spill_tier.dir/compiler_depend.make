# Empty compiler generated dependencies file for ablation_spill_tier.
# This may be replaced when dependencies are built.
