file(REMOVE_RECURSE
  "CMakeFiles/ablation_spill_tier.dir/ablation_spill_tier.cc.o"
  "CMakeFiles/ablation_spill_tier.dir/ablation_spill_tier.cc.o.d"
  "ablation_spill_tier"
  "ablation_spill_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spill_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
