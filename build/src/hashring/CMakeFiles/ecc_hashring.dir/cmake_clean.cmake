file(REMOVE_RECURSE
  "CMakeFiles/ecc_hashring.dir/consistent_hash.cc.o"
  "CMakeFiles/ecc_hashring.dir/consistent_hash.cc.o.d"
  "libecc_hashring.a"
  "libecc_hashring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_hashring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
