# Empty compiler generated dependencies file for ecc_hashring.
# This may be replaced when dependencies are built.
