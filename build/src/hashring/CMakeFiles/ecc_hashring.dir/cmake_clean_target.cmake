file(REMOVE_RECURSE
  "libecc_hashring.a"
)
