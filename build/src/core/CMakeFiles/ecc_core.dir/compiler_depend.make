# Empty compiler generated dependencies file for ecc_core.
# This may be replaced when dependencies are built.
