
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admin.cc" "src/core/CMakeFiles/ecc_core.dir/admin.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/admin.cc.o.d"
  "/root/repo/src/core/cache_node.cc" "src/core/CMakeFiles/ecc_core.dir/cache_node.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/cache_node.cc.o.d"
  "/root/repo/src/core/coordinator.cc" "src/core/CMakeFiles/ecc_core.dir/coordinator.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/coordinator.cc.o.d"
  "/root/repo/src/core/dynamic_window.cc" "src/core/CMakeFiles/ecc_core.dir/dynamic_window.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/dynamic_window.cc.o.d"
  "/root/repo/src/core/elastic_cache.cc" "src/core/CMakeFiles/ecc_core.dir/elastic_cache.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/elastic_cache.cc.o.d"
  "/root/repo/src/core/sliding_window.cc" "src/core/CMakeFiles/ecc_core.dir/sliding_window.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/sliding_window.cc.o.d"
  "/root/repo/src/core/static_cache.cc" "src/core/CMakeFiles/ecc_core.dir/static_cache.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/static_cache.cc.o.d"
  "/root/repo/src/core/victim.cc" "src/core/CMakeFiles/ecc_core.dir/victim.cc.o" "gcc" "src/core/CMakeFiles/ecc_core.dir/victim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/ecc_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/hashring/CMakeFiles/ecc_hashring.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudsim/CMakeFiles/ecc_cloudsim.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/ecc_service.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/ecc_sfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
