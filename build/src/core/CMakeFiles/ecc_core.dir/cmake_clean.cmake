file(REMOVE_RECURSE
  "CMakeFiles/ecc_core.dir/admin.cc.o"
  "CMakeFiles/ecc_core.dir/admin.cc.o.d"
  "CMakeFiles/ecc_core.dir/cache_node.cc.o"
  "CMakeFiles/ecc_core.dir/cache_node.cc.o.d"
  "CMakeFiles/ecc_core.dir/coordinator.cc.o"
  "CMakeFiles/ecc_core.dir/coordinator.cc.o.d"
  "CMakeFiles/ecc_core.dir/dynamic_window.cc.o"
  "CMakeFiles/ecc_core.dir/dynamic_window.cc.o.d"
  "CMakeFiles/ecc_core.dir/elastic_cache.cc.o"
  "CMakeFiles/ecc_core.dir/elastic_cache.cc.o.d"
  "CMakeFiles/ecc_core.dir/sliding_window.cc.o"
  "CMakeFiles/ecc_core.dir/sliding_window.cc.o.d"
  "CMakeFiles/ecc_core.dir/static_cache.cc.o"
  "CMakeFiles/ecc_core.dir/static_cache.cc.o.d"
  "CMakeFiles/ecc_core.dir/victim.cc.o"
  "CMakeFiles/ecc_core.dir/victim.cc.o.d"
  "libecc_core.a"
  "libecc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
