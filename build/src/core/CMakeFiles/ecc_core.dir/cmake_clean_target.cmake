file(REMOVE_RECURSE
  "libecc_core.a"
)
