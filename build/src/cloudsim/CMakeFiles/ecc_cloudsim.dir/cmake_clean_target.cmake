file(REMOVE_RECURSE
  "libecc_cloudsim.a"
)
