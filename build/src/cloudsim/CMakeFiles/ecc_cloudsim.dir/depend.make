# Empty dependencies file for ecc_cloudsim.
# This may be replaced when dependencies are built.
