file(REMOVE_RECURSE
  "CMakeFiles/ecc_cloudsim.dir/billing.cc.o"
  "CMakeFiles/ecc_cloudsim.dir/billing.cc.o.d"
  "CMakeFiles/ecc_cloudsim.dir/instance.cc.o"
  "CMakeFiles/ecc_cloudsim.dir/instance.cc.o.d"
  "CMakeFiles/ecc_cloudsim.dir/persistent_store.cc.o"
  "CMakeFiles/ecc_cloudsim.dir/persistent_store.cc.o.d"
  "CMakeFiles/ecc_cloudsim.dir/provider.cc.o"
  "CMakeFiles/ecc_cloudsim.dir/provider.cc.o.d"
  "libecc_cloudsim.a"
  "libecc_cloudsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_cloudsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
