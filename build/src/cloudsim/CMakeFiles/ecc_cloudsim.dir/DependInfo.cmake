
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloudsim/billing.cc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/billing.cc.o" "gcc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/billing.cc.o.d"
  "/root/repo/src/cloudsim/instance.cc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/instance.cc.o" "gcc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/instance.cc.o.d"
  "/root/repo/src/cloudsim/persistent_store.cc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/persistent_store.cc.o" "gcc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/persistent_store.cc.o.d"
  "/root/repo/src/cloudsim/provider.cc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/provider.cc.o" "gcc" "src/cloudsim/CMakeFiles/ecc_cloudsim.dir/provider.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
