file(REMOVE_RECURSE
  "libecc_net.a"
)
