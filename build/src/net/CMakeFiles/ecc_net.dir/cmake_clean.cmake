file(REMOVE_RECURSE
  "CMakeFiles/ecc_net.dir/message.cc.o"
  "CMakeFiles/ecc_net.dir/message.cc.o.d"
  "CMakeFiles/ecc_net.dir/netmodel.cc.o"
  "CMakeFiles/ecc_net.dir/netmodel.cc.o.d"
  "CMakeFiles/ecc_net.dir/rpc.cc.o"
  "CMakeFiles/ecc_net.dir/rpc.cc.o.d"
  "CMakeFiles/ecc_net.dir/socket_channel.cc.o"
  "CMakeFiles/ecc_net.dir/socket_channel.cc.o.d"
  "CMakeFiles/ecc_net.dir/wire.cc.o"
  "CMakeFiles/ecc_net.dir/wire.cc.o.d"
  "libecc_net.a"
  "libecc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
