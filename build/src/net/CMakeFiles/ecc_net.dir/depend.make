# Empty dependencies file for ecc_net.
# This may be replaced when dependencies are built.
