# Empty dependencies file for ecc_workload.
# This may be replaced when dependencies are built.
