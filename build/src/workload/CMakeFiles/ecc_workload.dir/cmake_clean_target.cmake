file(REMOVE_RECURSE
  "libecc_workload.a"
)
