file(REMOVE_RECURSE
  "CMakeFiles/ecc_workload.dir/experiment.cc.o"
  "CMakeFiles/ecc_workload.dir/experiment.cc.o.d"
  "CMakeFiles/ecc_workload.dir/generator.cc.o"
  "CMakeFiles/ecc_workload.dir/generator.cc.o.d"
  "CMakeFiles/ecc_workload.dir/storm_track.cc.o"
  "CMakeFiles/ecc_workload.dir/storm_track.cc.o.d"
  "CMakeFiles/ecc_workload.dir/trace.cc.o"
  "CMakeFiles/ecc_workload.dir/trace.cc.o.d"
  "libecc_workload.a"
  "libecc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
