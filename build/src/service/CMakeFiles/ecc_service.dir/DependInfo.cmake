
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/composite.cc" "src/service/CMakeFiles/ecc_service.dir/composite.cc.o" "gcc" "src/service/CMakeFiles/ecc_service.dir/composite.cc.o.d"
  "/root/repo/src/service/ctm.cc" "src/service/CMakeFiles/ecc_service.dir/ctm.cc.o" "gcc" "src/service/CMakeFiles/ecc_service.dir/ctm.cc.o.d"
  "/root/repo/src/service/inundation.cc" "src/service/CMakeFiles/ecc_service.dir/inundation.cc.o" "gcc" "src/service/CMakeFiles/ecc_service.dir/inundation.cc.o.d"
  "/root/repo/src/service/registry.cc" "src/service/CMakeFiles/ecc_service.dir/registry.cc.o" "gcc" "src/service/CMakeFiles/ecc_service.dir/registry.cc.o.d"
  "/root/repo/src/service/service.cc" "src/service/CMakeFiles/ecc_service.dir/service.cc.o" "gcc" "src/service/CMakeFiles/ecc_service.dir/service.cc.o.d"
  "/root/repo/src/service/shoreline.cc" "src/service/CMakeFiles/ecc_service.dir/shoreline.cc.o" "gcc" "src/service/CMakeFiles/ecc_service.dir/shoreline.cc.o.d"
  "/root/repo/src/service/water_level.cc" "src/service/CMakeFiles/ecc_service.dir/water_level.cc.o" "gcc" "src/service/CMakeFiles/ecc_service.dir/water_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/ecc_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
