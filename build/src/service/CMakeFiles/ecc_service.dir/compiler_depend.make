# Empty compiler generated dependencies file for ecc_service.
# This may be replaced when dependencies are built.
