file(REMOVE_RECURSE
  "libecc_service.a"
)
