file(REMOVE_RECURSE
  "CMakeFiles/ecc_service.dir/composite.cc.o"
  "CMakeFiles/ecc_service.dir/composite.cc.o.d"
  "CMakeFiles/ecc_service.dir/ctm.cc.o"
  "CMakeFiles/ecc_service.dir/ctm.cc.o.d"
  "CMakeFiles/ecc_service.dir/inundation.cc.o"
  "CMakeFiles/ecc_service.dir/inundation.cc.o.d"
  "CMakeFiles/ecc_service.dir/registry.cc.o"
  "CMakeFiles/ecc_service.dir/registry.cc.o.d"
  "CMakeFiles/ecc_service.dir/service.cc.o"
  "CMakeFiles/ecc_service.dir/service.cc.o.d"
  "CMakeFiles/ecc_service.dir/shoreline.cc.o"
  "CMakeFiles/ecc_service.dir/shoreline.cc.o.d"
  "CMakeFiles/ecc_service.dir/water_level.cc.o"
  "CMakeFiles/ecc_service.dir/water_level.cc.o.d"
  "libecc_service.a"
  "libecc_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
