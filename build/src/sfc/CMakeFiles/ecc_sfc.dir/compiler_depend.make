# Empty compiler generated dependencies file for ecc_sfc.
# This may be replaced when dependencies are built.
