
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/hilbert.cc" "src/sfc/CMakeFiles/ecc_sfc.dir/hilbert.cc.o" "gcc" "src/sfc/CMakeFiles/ecc_sfc.dir/hilbert.cc.o.d"
  "/root/repo/src/sfc/linearizer.cc" "src/sfc/CMakeFiles/ecc_sfc.dir/linearizer.cc.o" "gcc" "src/sfc/CMakeFiles/ecc_sfc.dir/linearizer.cc.o.d"
  "/root/repo/src/sfc/locality.cc" "src/sfc/CMakeFiles/ecc_sfc.dir/locality.cc.o" "gcc" "src/sfc/CMakeFiles/ecc_sfc.dir/locality.cc.o.d"
  "/root/repo/src/sfc/morton.cc" "src/sfc/CMakeFiles/ecc_sfc.dir/morton.cc.o" "gcc" "src/sfc/CMakeFiles/ecc_sfc.dir/morton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
