file(REMOVE_RECURSE
  "libecc_sfc.a"
)
