file(REMOVE_RECURSE
  "CMakeFiles/ecc_sfc.dir/hilbert.cc.o"
  "CMakeFiles/ecc_sfc.dir/hilbert.cc.o.d"
  "CMakeFiles/ecc_sfc.dir/linearizer.cc.o"
  "CMakeFiles/ecc_sfc.dir/linearizer.cc.o.d"
  "CMakeFiles/ecc_sfc.dir/locality.cc.o"
  "CMakeFiles/ecc_sfc.dir/locality.cc.o.d"
  "CMakeFiles/ecc_sfc.dir/morton.cc.o"
  "CMakeFiles/ecc_sfc.dir/morton.cc.o.d"
  "libecc_sfc.a"
  "libecc_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
