file(REMOVE_RECURSE
  "libecc_btree.a"
)
