# Empty compiler generated dependencies file for ecc_btree.
# This may be replaced when dependencies are built.
