file(REMOVE_RECURSE
  "CMakeFiles/ecc_btree.dir/b2tree.cc.o"
  "CMakeFiles/ecc_btree.dir/b2tree.cc.o.d"
  "libecc_btree.a"
  "libecc_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
