# Empty dependencies file for ecc_common.
# This may be replaced when dependencies are built.
