file(REMOVE_RECURSE
  "CMakeFiles/ecc_common.dir/config.cc.o"
  "CMakeFiles/ecc_common.dir/config.cc.o.d"
  "CMakeFiles/ecc_common.dir/histogram.cc.o"
  "CMakeFiles/ecc_common.dir/histogram.cc.o.d"
  "CMakeFiles/ecc_common.dir/log.cc.o"
  "CMakeFiles/ecc_common.dir/log.cc.o.d"
  "CMakeFiles/ecc_common.dir/rng.cc.o"
  "CMakeFiles/ecc_common.dir/rng.cc.o.d"
  "CMakeFiles/ecc_common.dir/table.cc.o"
  "CMakeFiles/ecc_common.dir/table.cc.o.d"
  "CMakeFiles/ecc_common.dir/time.cc.o"
  "CMakeFiles/ecc_common.dir/time.cc.o.d"
  "CMakeFiles/ecc_common.dir/timeseries.cc.o"
  "CMakeFiles/ecc_common.dir/timeseries.cc.o.d"
  "libecc_common.a"
  "libecc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
