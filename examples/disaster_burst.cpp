// Disaster burst: the paper's motivating scenario (§I) as a narrative run.
//
// "The catastrophic earthquake in Haiti generated massive amounts of
// concern ... This abrupt rise in interest prompted the development of
// several Web services ... because service requests during these
// situations are often related, a considerable amount of redundancy can be
// exploited."
//
// The workload is a hotspot generator: most queries concentrate on the
// disaster region, with a background of worldwide traffic.  Interest
// surges for a while and then wanes; the elastic cache grows through the
// surge and contracts afterwards, and the run prints the fleet/hit-rate
// timeline.
//
//   ./disaster_burst
#include <algorithm>
#include <cstdio>

#include "cloudsim/provider.h"
#include "core/coordinator.h"
#include "core/elastic_cache.h"
#include "service/service.h"
#include "workload/generator.h"

int main() {
  using namespace ecc;

  VirtualClock clock;
  cloudsim::CloudOptions cloud_opts;
  cloud_opts.seed = 18;
  cloudsim::CloudProvider cloud(cloud_opts, &clock);

  service::ShorelineServiceOptions svc_opts;
  svc_opts.grid.spatial_bits = 6;  // 2^(12+5) = 128K cells
  svc_opts.ctm.width = 32;
  svc_opts.ctm.height = 32;
  service::ShorelineService shoreline(svc_opts);
  const sfc::Linearizer& lin = shoreline.linearizer();

  core::ElasticCacheOptions cache_opts;
  cache_opts.node_capacity_bytes = 500 * 1100;  // ~500 records per node
  cache_opts.ring.range = lin.KeySpace();
  cache_opts.min_nodes = 2;
  core::ElasticCache cache(cache_opts, &cloud, &clock);

  core::CoordinatorOptions coord_opts;
  coord_opts.window.slices = 40;   // interest window
  coord_opts.window.alpha = 0.99;
  coord_opts.contraction_epsilon = 4;
  core::Coordinator coordinator(coord_opts, &cache, &shoreline, &lin,
                                &clock);

  // 2% of the map (the disaster region) receives 90% of the traffic.
  workload::HotspotKeyGenerator keys(lin.KeySpace(), 0.02, 0.90, 99);

  // Interest timeline: calm, surge, peak, waning, calm.
  workload::PiecewiseRate interest({{1, 5},
                                    {30, 5},
                                    {40, 120},   // the event breaks
                                    {90, 120},   // sustained peak
                                    {130, 10},   // relief phase
                                    {200, 5}},
                                   /*interpolate=*/true);

  std::printf("step  rate  hit%%   nodes  evictions  merges  bill($)\n");
  std::size_t peak_nodes = 0;
  for (std::size_t step = 1; step <= 200; ++step) {
    const std::size_t r = interest.RateAt(step);
    for (std::size_t j = 0; j < r; ++j) {
      (void)coordinator.ProcessKey(keys.Next());
    }
    const core::TimeStepReport report = coordinator.EndTimeStep();
    peak_nodes = std::max(peak_nodes, cache.NodeCount());
    if (step % 10 == 0) {
      const double hit_pct =
          report.step_queries == 0
              ? 0.0
              : 100.0 * static_cast<double>(report.step_hits) /
                    static_cast<double>(report.step_queries);
      std::printf("%4zu  %4zu  %5.1f  %5zu  %9llu  %6llu  %7.2f\n", step, r,
                  hit_pct, cache.NodeCount(),
                  static_cast<unsigned long long>(cache.stats().evictions),
                  static_cast<unsigned long long>(
                      cache.stats().node_removals),
                  cloud.AccruedCostDollars());
    }
  }

  std::printf("\nthe fleet peaked at %zu nodes during the surge and ended "
              "at %zu after interest waned\n",
              peak_nodes, cache.NodeCount());
  std::printf("service invocations avoided by reuse: %llu of %llu queries "
              "(%.1f%%)\n",
              static_cast<unsigned long long>(coordinator.total_hits()),
              static_cast<unsigned long long>(coordinator.total_queries()),
              100.0 * static_cast<double>(coordinator.total_hits()) /
                  static_cast<double>(coordinator.total_queries()));
  return 0;
}
