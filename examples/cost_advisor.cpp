// Cost advisor: instance-type and elasticity cost/performance comparison
// (the paper's §IV.D cost discussion, which it defers to a companion
// paper, reconstructed over our simulated catalog).
//
// For one fixed workload it compares:
//   * GBA elastic fleets built from each 2010 EC2 instance type (capacity
//     scales with instance memory; so does price), and
//   * the static-8 baseline,
// reporting hit rate, node usage, and dollars per 1000 accelerated
// queries.
//
//   ./cost_advisor
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cloudsim/instance.h"
#include "cloudsim/provider.h"
#include "common/table.h"
#include "core/coordinator.h"
#include "core/elastic_cache.h"
#include "core/static_cache.h"
#include "service/service.h"
#include "workload/generator.h"

namespace {

using namespace ecc;

struct Verdict {
  std::string config;
  double hit_rate = 0.0;
  double mean_nodes = 0.0;
  double bill = 0.0;
  double dollars_per_1k_hits = 0.0;
};

constexpr std::uint64_t kKeyspace = 1u << 13;
constexpr std::size_t kSteps = 4000;
constexpr std::size_t kRate = 4;

/// Records one instance can hold: we model the cache as entitled to half
/// the instance memory, scaled down 1:2000 to keep the demo fast while
/// preserving the capacity ratios between instance types.
std::uint64_t CacheBytesFor(const cloudsim::InstanceType& type) {
  return type.memory_bytes / 2 / 2000;
}

Verdict RunElastic(const cloudsim::InstanceType& type) {
  VirtualClock clock;
  cloudsim::CloudOptions cloud_opts;
  cloud_opts.instance_type = type;
  cloud_opts.seed = 5;
  cloudsim::CloudProvider cloud(cloud_opts, &clock);

  core::ElasticCacheOptions cache_opts;
  cache_opts.node_capacity_bytes = CacheBytesFor(type);
  cache_opts.ring.range = kKeyspace;
  core::ElasticCache cache(cache_opts, &cloud, &clock);

  service::SyntheticService service("derived", Duration::Seconds(23), 1000);
  sfc::LinearizerOptions grid;
  grid.spatial_bits = 5;
  grid.time_bits = 3;
  sfc::Linearizer lin(grid);

  core::CoordinatorOptions coord_opts;
  coord_opts.window.slices = 0;  // capacity, not eviction, binds here
  core::Coordinator coordinator(coord_opts, &cache, &service, &lin, &clock);

  workload::UniformKeyGenerator keys(kKeyspace, 11);
  double node_steps = 0.0;
  for (std::size_t step = 1; step <= kSteps; ++step) {
    for (std::size_t j = 0; j < kRate; ++j) {
      (void)coordinator.ProcessKey(keys.Next());
    }
    (void)coordinator.EndTimeStep();
    node_steps += static_cast<double>(cache.NodeCount());
  }

  Verdict v;
  v.config = "gba/" + type.name;
  v.hit_rate = static_cast<double>(coordinator.total_hits()) /
               static_cast<double>(coordinator.total_queries());
  v.mean_nodes = node_steps / kSteps;
  v.bill = cloud.AccruedCostDollars();
  v.dollars_per_1k_hits =
      v.bill / std::max(1.0, static_cast<double>(coordinator.total_hits())) *
      1000.0;
  return v;
}

Verdict RunStatic(std::size_t nodes) {
  VirtualClock clock;
  core::StaticCacheOptions cache_opts;
  cache_opts.nodes = nodes;
  cache_opts.node_capacity_bytes = CacheBytesFor(cloudsim::SmallInstance());
  cache_opts.ring.range = kKeyspace;
  core::StaticCache cache(cache_opts, &clock);

  service::SyntheticService service("derived", Duration::Seconds(23), 1000);
  sfc::LinearizerOptions grid;
  grid.spatial_bits = 5;
  grid.time_bits = 3;
  sfc::Linearizer lin(grid);
  core::Coordinator coordinator({}, &cache, &service, &lin, &clock);

  workload::UniformKeyGenerator keys(kKeyspace, 11);
  for (std::size_t step = 1; step <= kSteps; ++step) {
    for (std::size_t j = 0; j < kRate; ++j) {
      (void)coordinator.ProcessKey(keys.Next());
    }
    (void)coordinator.EndTimeStep();
  }

  // A statically reserved fleet is billed for its full wall-clock span.
  const double hours = clock.now().seconds() / 3600.0;
  Verdict v;
  v.config = "static-" + std::to_string(nodes) + "/m1.small";
  v.hit_rate = static_cast<double>(coordinator.total_hits()) /
               static_cast<double>(coordinator.total_queries());
  v.mean_nodes = static_cast<double>(nodes);
  v.bill = std::ceil(hours) * cloudsim::SmallInstance().price_per_hour *
           static_cast<double>(nodes);
  v.dollars_per_1k_hits =
      v.bill / std::max(1.0, static_cast<double>(coordinator.total_hits())) *
      1000.0;
  return v;
}

}  // namespace

int main() {
  std::vector<Verdict> verdicts;
  for (const auto& type :
       {cloudsim::SmallInstance(), cloudsim::LargeInstance(),
        cloudsim::XLargeInstance(), cloudsim::HighMemXLInstance()}) {
    verdicts.push_back(RunElastic(type));
  }
  verdicts.push_back(RunStatic(8));

  Table table({"config", "hit_rate", "mean_nodes", "bill_usd",
               "usd_per_1k_hits"});
  for (const Verdict& v : verdicts) {
    table.AddRow({v.config, FormatG(v.hit_rate), FormatG(v.mean_nodes),
                  FormatG(v.bill), FormatG(v.dollars_per_1k_hits)});
  }
  std::printf("Cost/performance over an identical workload "
              "(%zu steps x %zu queries):\n\n%s\n",
              kSteps, kRate, table.ToString().c_str());
  std::printf("Reading: bigger instances need fewer nodes but cost more "
              "per hour; the\nhigh-memory type (m2.xlarge, the cheapest "
              "2010 $/GB) wins on dollars per\nhit, and every elastic "
              "fleet beats the static reservation, which bills for\npeak "
              "provisioning the whole time.\n");
  return 0;
}
